"""Tests for Host dispatch and the Packet model."""

import pytest

from repro.net.host import Host
from repro.net.packet import ACK_BYTES, HEADER_BYTES, MTU_BYTES, Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.transport.base import Flow
from repro.transport.tcp import TCPSender

from conftest import make_packet


# -- Packet ---------------------------------------------------------------

def test_packet_payload():
    packet = Packet(flow_id=1, src="a", dst="b", size=1500,
                    seq=100, end_seq=1560)
    assert packet.payload == 1460


def test_ack_has_no_payload():
    ack = Packet(flow_id=1, src="a", dst="b", size=ACK_BYTES,
                 is_ack=True, ack_seq=500)
    assert ack.payload == 0
    assert ack.ack_seq == 500


def test_packet_defaults():
    packet = make_packet()
    assert not packet.ecn_ce
    assert not packet.retransmitted
    assert packet.ts_echo is None


def test_wire_constants():
    assert HEADER_BYTES == 40
    assert MTU_BYTES == 1500
    assert ACK_BYTES == HEADER_BYTES


# -- Host -------------------------------------------------------------------

def test_host_requires_nic_for_sending():
    sim = Simulator()
    host = Host(sim, "h")
    with pytest.raises(ConfigurationError):
        host.send_packet(make_packet())


def test_duplicate_sender_registration_rejected():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=10 ** 9, prop_delay_ns=0)
    flow = Flow(flow_id=7, src="h", dst="x", size=1000)
    host.register_sender(TCPSender(sim, host, flow))
    with pytest.raises(ConfigurationError):
        host.register_sender(TCPSender(sim, host, flow))


def test_ack_for_unknown_flow_is_ignored():
    sim = Simulator()
    host = Host(sim, "h")
    host.receive(make_packet(40, flow_id=99, is_ack=True))
    assert host.received_packets == 1  # counted, not crashed


def test_data_creates_receiver_on_demand():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=10 ** 9, prop_delay_ns=0)

    class Sink:
        def receive(self, packet):
            pass

    host.nic.connect(Sink())
    data = Packet(flow_id=5, src="x", dst="h", size=1500,
                  seq=0, end_seq=1460)
    host.receive(data)
    assert 5 in host.receivers
    assert host.receivers[5].next_expected == 1460


def test_receiver_echoes_service_class_on_ack():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=10 ** 9, prop_delay_ns=0)
    acks = []

    class Sink:
        def receive(self, packet):
            acks.append(packet)

    host.nic.connect(Sink())
    data = Packet(flow_id=5, src="x", dst="h", size=1500,
                  seq=0, end_seq=1460, service_class=3)
    host.receive(data)
    sim.run()
    assert acks[0].is_ack
    assert acks[0].service_class == 3
    assert acks[0].dst == "x"


def test_receiver_echoes_ce_and_timestamp():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=10 ** 9, prop_delay_ns=0)
    acks = []

    class Sink:
        def receive(self, packet):
            acks.append(packet)

    host.nic.connect(Sink())
    data = Packet(flow_id=5, src="x", dst="h", size=1500,
                  seq=0, end_seq=1460, ecn_capable=True, created_at=123)
    data.ecn_ce = True
    host.receive(data)
    retx = Packet(flow_id=5, src="x", dst="h", size=1500,
                  seq=1460, end_seq=2920, created_at=456)
    retx.retransmitted = True
    host.receive(retx)
    sim.run()
    assert acks[0].ece is True
    assert acks[0].ts_echo == 123
    # Karn's rule: retransmitted segments yield no timestamp echo.
    assert acks[1].ts_echo is None


def test_out_of_order_reassembly_with_duplicates():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=10 ** 9, prop_delay_ns=0)

    class Sink:
        def receive(self, packet):
            pass

    host.nic.connect(Sink())

    def segment(seq, end):
        return Packet(flow_id=1, src="x", dst="h", size=end - seq + 40,
                      seq=seq, end_seq=end)

    host.receive(segment(1460, 2920))      # out of order
    assert host.receivers[1].next_expected == 0
    host.receive(segment(1460, 2920))      # duplicate OOO
    host.receive(segment(0, 1460))         # fills the hole
    assert host.receivers[1].next_expected == 2920
    host.receive(segment(0, 1460))         # stale duplicate
    assert host.receivers[1].next_expected == 2920
    assert host.receivers[1].duplicate_packets == 2
