"""Pooling correctness: recycled objects must be indistinguishable.

Two pools exist — the simulator's internal Event free list and the
PacketPool — and both share one failure mode: a recycled object leaking
state from its previous life.  These tests pin the defences in:

* Packet.reset clears *every* slot, including the flags only faults set
  (``corrupted``), only switches set (``ecn_ce``/``ece``), and only
  receivers read (``ts_echo``);
* Event generation counters let retained handles detect recycling, and
  ``cancel_versioned`` no-ops on a stale generation instead of killing
  the innocent event now living in the object;
* the port's in-flight tracking stays correct when delivery events are
  recycled underneath it.
"""

import pytest

from repro.net.packet import Packet
from repro.perf.config import PerfConfig, use_config
from repro.perf.pool import DEFAULT_CAP, PacketPool
from repro.sim.engine import Simulator


# -- PacketPool: no stale fields ----------------------------------------------


def test_recycled_packet_never_leaks_stale_fields():
    pool = PacketPool()
    dirty = pool.acquire(7, "a", "b", 1500, seq=10, end_seq=1470,
                         service_class=3, ecn_capable=True, is_ack=False,
                         created_at=99)
    # Scribble over every mutable post-construction field a packet can
    # pick up in flight.
    dirty.ecn_ce = True
    dirty.ece = True
    dirty.corrupted = True
    dirty.retransmitted = True
    dirty.ts_echo = 12345
    dirty.priority = 9
    dirty.enqueued_at = 777
    assert pool.release(dirty)

    recycled = pool.acquire(8, "c", "d", 40, is_ack=True, ack_seq=1470)
    assert recycled is dirty  # same object, new life
    fresh = Packet(8, "c", "d", 40, is_ack=True, ack_seq=1470)
    for slot in Packet.__slots__:
        assert getattr(recycled, slot) == getattr(fresh, slot), slot


def test_pool_reuse_counters_and_cap():
    pool = PacketPool(cap=2)
    packets = [Packet(i, "s", "d", 100) for i in range(3)]
    assert pool.release(packets[0])
    assert pool.release(packets[1])
    assert not pool.release(packets[2])  # over cap
    assert pool.rejected == 1
    assert pool.size() == 2
    first = pool.acquire(9, "s", "d", 100)
    assert first is packets[1]  # LIFO
    assert pool.reused == 1
    assert pool.acquired == 1


def test_pool_double_release_guard():
    pool = PacketPool()
    packet = Packet(1, "s", "d", 100)
    assert pool.release(packet)
    assert not pool.release(packet)  # same object twice in a row
    assert pool.rejected == 1
    assert pool.size() == 1


def test_default_cap_sane():
    assert PacketPool().cap == DEFAULT_CAP
    with pytest.raises(ValueError):
        PacketPool(cap=0)


# -- Event pool: generations and versioned cancel -----------------------------


def _pooled_sim() -> Simulator:
    return Simulator(pooling=True)


def test_event_generation_bumps_on_reuse():
    sim = _pooled_sim()
    fired = []
    first = sim.schedule(10, fired.append, "one")
    gen = first.gen
    sim.run()
    # The executed event goes back to the free list; the next schedule
    # re-issues the same object with a bumped generation.
    second = sim.schedule(10, fired.append, "two")
    assert second is first
    assert second.gen == gen + 1
    assert sim.events_reused == 1
    sim.run()
    assert fired == ["one", "two"]


def test_cancel_versioned_noop_on_stale_generation():
    sim = _pooled_sim()
    fired = []
    handle = sim.schedule(10, fired.append, "old")
    stale_gen = handle.gen
    sim.run()
    # Recycle the object into a new logical event...
    recycled = sim.schedule(10, fired.append, "new")
    assert recycled is handle
    # ...then cancel through the stale handle: must NOT kill the new one.
    sim.cancel_versioned(handle, stale_gen)
    sim.run()
    assert fired == ["old", "new"]
    # A current-generation versioned cancel still works.
    live = sim.schedule(10, fired.append, "never")
    sim.cancel_versioned(live, live.gen)
    sim.run()
    assert fired == ["old", "new"]


def test_raw_cancel_on_recycled_handle_would_misfire():
    """Documents *why* versioned cancel exists: a raw cancel through a
    stale handle kills the bystander event now living in the object."""
    sim = _pooled_sim()
    fired = []
    handle = sim.schedule(10, fired.append, "old")
    sim.run()
    recycled = sim.schedule(10, fired.append, "new")
    assert recycled is handle
    sim.cancel(handle)  # the unsafe pattern
    sim.run()
    assert fired == ["old"]  # "new" was killed — hence cancel_versioned


def test_pending_exact_after_pooled_run():
    sim = _pooled_sim()
    for i in range(5):
        sim.schedule(10 * (i + 1), lambda: None)
    keep = sim.schedule(1000, lambda: None)
    assert sim.pending() == 6
    sim.run(until=500)
    assert sim.pending() == 1
    sim.cancel(keep)
    assert sim.pending() == 0
    sim.run()
    assert sim.events_executed == 5


def test_self_clearing_timer_pattern_safe_without_versioning():
    """A handle cleared inside its own callback (RTO-timer pattern)
    never observes a recycled object."""
    sim = _pooled_sim()
    state = {"timer": None, "fired": 0}

    def on_timer():
        state["timer"] = None
        state["fired"] += 1

    state["timer"] = sim.schedule(10, on_timer)
    sim.run()
    assert state["timer"] is None
    assert state["fired"] == 1


# -- port in-flight safety under event recycling ------------------------------


def test_link_down_with_recycled_delivery_events():
    """After heavy traffic (events recycled many times over), link-down
    must lose exactly the packets on the wire — no stale-handle kills,
    identically in tracking and heap-scan modes."""
    from repro.experiments.runner import buffer_factory
    from repro.net.port import EgressPort
    from repro.queueing.schedulers.drr import DRRScheduler

    losses = {}
    for scan in (False, True):
        config = PerfConfig(heap_scan_inflight=scan)
        with use_config(config):
            sim = Simulator()
            port = EgressPort(
                sim, "p->s", rate_bps=10 ** 9, prop_delay_ns=100_000,
                buffer_bytes=85_000,
                scheduler=DRRScheduler([1500.0] * 2),
                buffer_manager=buffer_factory(
                    "besteffort", rtt_ns=500_000)())
            received = []
            port.connect(type("Sink", (), {
                "receive": lambda self, p: received.append(p.flow_id)})())
            for i in range(40):
                sim.at(i * 12_000 + 1, port.send,
                       Packet(i, "p", "s", 1500, service_class=i % 2))
            # Cut the link mid-run: several deliveries are in flight.
            sim.at(300_000, port.set_link_down)
            sim.run()
            assert port.inflight_losses > 0
            assert len(received) + port.dropped_packets == 40
            losses[scan] = (port.inflight_losses, port.dropped_packets,
                            len(received))
    assert losses[False] == losses[True]
