"""Chaos-soak harness tests: grammar, invariants, tortures, shrinker.

Layers:

1. scenario grammar — generation is a pure function of (seed, index),
   every generated scenario validates, JSON roundtrips exactly;
2. invariant engine — clean runs stay clean, real state tampering and
   the drill both trip, non-raising mode records instead;
3. run_case — every torture mode completes with a plain-JSON verdict;
4. orchestration — serial and ``--jobs 2`` produce identical verdict
   lists, ``soak.case`` events use sequence-number time;
5. shrinker — a drill failure minimizes to a scenario that still fails
   the same way, and the written bundle's replay line reproduces it
   through the real CLI.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.sim.trace import TOPIC_SOAK_CASE, TraceBus
from repro.soak import (
    DRILL_PROBLEM,
    InvariantEngine,
    InvariantViolation,
    ScenarioGenerator,
    SoakScenario,
    run_case,
    run_soak,
    shrink,
    write_soak_bundle,
)
from repro.soak.runner import _build_world
from repro.soak.scenario import SCHEMES, TORTURE_MODES


def tiny(**overrides):
    """A fast-running scenario for unit tests."""
    spec = dict(seed=1, scheme="dynaq", num_queues=2, flows_per_queue=1,
                duration_ms=8.0, sample_interval_ms=2.0,
                check_every_ms=2.0)
    spec.update(overrides)
    return SoakScenario(**spec)


# -- 1. scenario grammar ------------------------------------------------------

def test_generator_is_deterministic_and_bounded():
    first = ScenarioGenerator(42).generate(12)
    second = ScenarioGenerator(42).generate(12)
    assert [s.to_dict() for s in first] == [s.to_dict() for s in second]
    for scenario in first:
        assert scenario.scheme in SCHEMES
        assert 1 <= scenario.num_queues <= 8
        assert 1 <= scenario.flows_per_queue <= 8
        assert scenario.torture in TORTURE_MODES
        if scenario.torture != "none":
            assert scenario.snapshot_every_ms is not None


def test_generator_differs_across_seeds_and_indices():
    a = ScenarioGenerator(1).generate(6)
    b = ScenarioGenerator(2).generate(6)
    assert [s.digest for s in a] != [s.digest for s in b]
    assert len({s.digest for s in a}) > 1


def test_generated_fault_schedules_fit_the_horizon():
    """Non-overlapping and within-horizon by construction: loading one
    exercises FaultSchedule's own validators."""
    for scenario in ScenarioGenerator(7).generate(20):
        if scenario.faults is not None:
            schedule = scenario.fault_schedule()
            schedule.validate_horizon(scenario.duration_ns,
                                      context="soak scenario")


def test_scenario_json_roundtrip(tmp_path):
    scenario = ScenarioGenerator(3).scenario(0)
    path = scenario.write(tmp_path / "s.json")
    loaded = SoakScenario.from_file(path)
    assert loaded.to_dict() == scenario.to_dict()
    assert loaded.digest == scenario.digest


@pytest.mark.parametrize("overrides", [
    {"scheme": "meteor"},
    {"num_queues": 0},
    {"num_queues": 99},
    {"flows_per_queue": 0},
    {"duration_ms": 0},
    {"perf_base": "warp"},
    {"perf": {"flux_capacitor": True}},
    {"perf": {"calendar_queue": "yes"}},
    {"torture": "rack"},
    {"torture": "kill-restore"},            # needs snapshot_every_ms
    {"snapshot_every_ms": 99.0},            # past the horizon
    {"check_every_ms": 0},
    {"faults": {"events": [                 # injects past the horizon
        {"time_ms": 99.0, "kind": "stall", "target": "s0->h0",
         "duration_ms": 1.0}]}},
])
def test_scenario_validation_rejects(overrides):
    with pytest.raises((ConfigurationError, ValueError)):
        tiny(**overrides)


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="unknown"):
        SoakScenario.from_dict({"scheme": "dynaq", "warp_speed": 9})


def test_replace_revalidates():
    scenario = tiny()
    with pytest.raises((ConfigurationError, ValueError)):
        scenario.replace(num_queues=0)
    assert scenario.replace(num_queues=1).num_queues == 1


def test_catalog_scenarios_are_valid():
    from pathlib import Path

    catalog = sorted(
        (Path(__file__).resolve().parent.parent / "scenarios")
        .glob("*.json"))
    assert catalog, "scenarios/ catalog is empty"
    for path in catalog:
        SoakScenario.from_file(path)  # validation happens on load


# -- 2. invariant engine ------------------------------------------------------

def test_engine_rejects_bad_cadence():
    with pytest.raises(ValueError):
        InvariantEngine(object(), check_every_ns=0)


def test_engine_clean_world_has_no_problems():
    world, engine = _build_world(tiny(), None)
    world.net.sim.run(until=world.horizon_ns // 2)
    assert engine.run_checks() == []
    assert engine.checks > 1  # cadence sweeps ran inside the sim too
    engine.close()


def test_engine_catches_tampered_occupancy():
    """Corrupting a port's byte ledger trips packet conservation."""
    world, engine = _build_world(tiny(), None)
    sim = world.net.sim
    sim.run(until=world.horizon_ns // 4)
    port = world.net.switch("s0").ports["s0->h0"]
    port._total_bytes += 1500  # phantom packet
    with pytest.raises(InvariantViolation) as excinfo:
        engine.run_checks()
    assert excinfo.value.problems
    assert engine.violations and engine.violations[0]["boundary"] == "manual"
    engine.close()


def test_engine_records_without_raising_when_asked():
    world, _ = _build_world(tiny(), None)
    engine = InvariantEngine(world, check_every_ns=1000, drill=True,
                             raise_on_violation=False)
    assert engine.run_checks() == [DRILL_PROBLEM]
    assert engine.violation_count == 1


# -- 3. run_case across torture modes -----------------------------------------

def test_run_case_plain_is_clean():
    verdict = run_case(tiny())
    assert verdict["status"] == "ok", verdict["detail"]
    assert verdict["checks"] > 0
    assert verdict["violations"] == []
    assert verdict["digest"] == tiny().digest


def test_run_case_kill_restore_is_clean():
    verdict = run_case(tiny(torture="kill-restore", snapshot_every_ms=3.0,
                            duration_ms=10.0))
    assert verdict["status"] == "ok", verdict["detail"]


def test_run_case_corrupt_snapshot_detects_all_corruptions():
    verdict = run_case(tiny(torture="corrupt-snapshot",
                            snapshot_every_ms=3.0, duration_ms=10.0))
    assert verdict["status"] == "ok", verdict["detail"]


def test_run_case_drill_reports_violation():
    verdict = run_case(tiny(drill=True))
    assert verdict["status"] == "violation"
    assert DRILL_PROBLEM in verdict["detail"]
    assert verdict["violations"][0]["problems"] == [DRILL_PROBLEM]


def test_run_case_faulted_checks_at_boundaries():
    verdict = run_case(tiny(
        duration_ms=12.0,
        faults={"events": [
            {"time_ms": 4.0, "kind": "link_flap", "target": "s0->h0",
             "duration_ms": 1.0}]}))
    assert verdict["status"] == "ok", verdict["detail"]
    # cadence sweeps plus one per fault boundary (inject + recover)
    assert verdict["checks"] >= 12_000 // 2_000 + 2


# -- 4. orchestration ---------------------------------------------------------

def test_run_soak_serial_equals_parallel(tmp_path):
    serial = run_soak(seed=11, iterations=3, jobs=1,
                      shrink_failures=False)
    parallel = run_soak(seed=11, iterations=3, jobs=2,
                        checkpoint=tmp_path / "ck.jsonl",
                        shrink_failures=False)
    assert serial.verdicts == parallel.verdicts
    assert serial.ok and parallel.ok


def test_run_soak_publishes_sequence_timed_case_events():
    trace = TraceBus()
    seen = []

    def on_case(**payload):
        seen.append(payload)

    trace.subscribe(TOPIC_SOAK_CASE, on_case)
    run_soak(seed=5, iterations=2, shrink_failures=False, trace=trace)
    assert [event["time"] for event in seen] == [1, 2]
    assert all("status=ok" in event["detail"] for event in seen)


def test_run_soak_rejects_bad_iterations():
    with pytest.raises(ConfigurationError):
        run_soak(seed=1, iterations=0)


# -- 5. shrinker --------------------------------------------------------------

def test_shrink_refuses_a_passing_scenario():
    with pytest.raises(ConfigurationError, match="does not fail"):
        shrink(tiny())


def test_shrink_drill_to_minimal_and_replay_reproduces(tmp_path):
    """The full failure pipeline: a faulted, tortured drill scenario
    shrinks to a minimal one that still fails the same way, and the
    bundle's one-command replay line reproduces it via the real CLI."""
    from repro.cli import main

    scenario = tiny(
        seed=9, num_queues=4, flows_per_queue=2, duration_ms=16.0,
        torture="kill-restore", snapshot_every_ms=5.0, drill=True,
        faults={"events": [
            {"time_ms": 6.0, "kind": "stall", "target": "s0->h0",
             "duration_ms": 1.0}]})
    result = shrink(scenario)
    assert result.verdict["status"] == "violation"
    minimal = result.minimal
    # The shrinker stripped everything the failure does not need.
    assert minimal.faults is None
    assert minimal.torture == "none"
    assert minimal.num_queues == 1
    assert minimal.flows_per_queue == 1
    assert minimal.duration_ms < scenario.duration_ms
    assert minimal.drill  # ...but kept the actual cause
    assert result.removed

    bundle = write_soak_bundle(tmp_path, scenario=scenario, result=result)
    replay = (bundle / "REPLAY.txt").read_text()
    assert "soak --replay" in replay
    assert json.loads((bundle / "verdict.json").read_text())["shrink_log"]
    code = main(["soak", "--replay", str(bundle / "minimal.json")])
    assert code == 1  # the minimal scenario still fails


# -- CLI ----------------------------------------------------------------------

def test_cli_clean_soak_exits_zero(capsys, tmp_path):
    from repro.cli import main

    out = tmp_path / "verdicts.jsonl"
    code = main(["soak", "--seed", "5", "--iterations", "2",
                 "--out", str(out)])
    printed = capsys.readouterr().out
    assert code == 0
    assert "soak clean" in printed
    lines = out.read_text().splitlines()
    assert len(lines) == 2
    assert all(json.loads(line)["status"] == "ok" for line in lines)


def test_cli_drill_exits_one_with_bundle(capsys, tmp_path):
    from repro.cli import main

    triage = tmp_path / "triage"
    code = main(["soak", "--seed", "5", "--iterations", "1", "--drill",
                 "--triage-dir", str(triage)])
    printed = capsys.readouterr().out
    assert code == 1
    assert "SOAK FAILURES" in printed
    bundles = list(triage.glob("bundle-*"))
    assert len(bundles) == 1
    for name in ("scenario.json", "minimal.json", "verdict.json",
                 "REPLAY.txt"):
        assert (bundles[0] / name).exists()
