"""Unit and property tests for the BShare comparator.

BShare splits the buffer into per-queue reservations (weight-shared
``reserve_fraction * B``) and a DT-governed shared pool over the rest;
see :mod:`repro.queueing.bshare`.  The differential FAST==REFERENCE
trace test lives with the other comparators in ``test_competitive.py``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.competitive import run_arena
from repro.experiments.runner import scheme
from repro.queueing.bshare import BShareBuffer

from conftest import FakePort, make_packet


# -- parameter validation -----------------------------------------------------

def test_rejects_bad_alpha():
    with pytest.raises(ValueError, match="alpha"):
        BShareBuffer(alpha=0)
    with pytest.raises(ValueError, match="alpha"):
        BShareBuffer(alpha=-1.0)


def test_rejects_bad_reserve_fraction():
    with pytest.raises(ValueError, match="reserve_fraction"):
        BShareBuffer(reserve_fraction=1.0)
    with pytest.raises(ValueError, match="reserve_fraction"):
        BShareBuffer(reserve_fraction=-0.1)


def test_registered_as_scheme():
    manager = scheme("bshare").make(rtt_ns=500_000)
    assert isinstance(manager, BShareBuffer)


# -- reservation split --------------------------------------------------------

def test_reservations_follow_weights():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    weights=[4.0, 3.0, 2.0, 1.0])
    manager = BShareBuffer(reserve_fraction=0.4)
    manager.attach(port)
    assert manager.reserved_bytes == [16_000, 12_000, 8_000, 4_000]
    assert manager.shared_bytes == 100_000 - 40_000


def test_reservation_is_a_hard_floor():
    """Below its reservation a queue admits regardless of the others."""
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = BShareBuffer(reserve_fraction=0.4)  # 10 KB per queue
    manager.attach(port)
    port.fill(0, 89_000)  # queue 0 hogs nearly everything
    assert manager.admit(make_packet(1000), 1).accept


def test_port_full_still_drops_under_reservation():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = BShareBuffer(reserve_fraction=0.4)
    manager.attach(port)
    port.fill(0, 100_000)
    decision = manager.admit(make_packet(100), 1)
    assert not decision.accept
    assert decision.reason == "port buffer full"
    assert manager.drops == 1


# -- shared-pool threshold ----------------------------------------------------

def test_threshold_formula_over_shared_free_space():
    """T_i = r_i + alpha * shared_free, with shared_q = max(q - r, 0)."""
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = BShareBuffer(alpha=0.5, reserve_fraction=0.2)  # r_i = 5 KB
    manager.attach(port)
    assert manager.shared_bytes == 80_000
    port.fill(0, 25_000)   # 20 KB above its reservation
    port.fill(1, 3_000)    # under its reservation: no shared use
    shared_free = 80_000 - 20_000
    assert manager.current_threshold(2) == pytest.approx(
        5_000 + 0.5 * shared_free)
    # Queue 0 is way above its own threshold: the next packet drops.
    decision = manager.admit(make_packet(20_000), 0)
    assert not decision.accept
    assert decision.reason == "bshare threshold"


def test_shared_pool_tightens_as_it_fills():
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = BShareBuffer(alpha=1.0, reserve_fraction=0.2)
    manager.attach(port)
    empty = manager.current_threshold(0)
    port.fill(1, 50_000)  # 40 KB of shared use
    assert manager.current_threshold(0) < empty


# -- arena property test ------------------------------------------------------

schedule_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=6),
             min_size=3, max_size=3),
    min_size=1, max_size=25)


@settings(max_examples=30, deadline=None)
@given(arrivals=schedule_strategy,
       buffer_cells=st.integers(min_value=4, max_value=24))
def test_bshare_arena_conserves_and_bounds(arrivals, buffer_cells):
    """Arena runs never overflow the buffer and conserve packets."""
    result = run_arena("bshare", arrivals, buffer_cells=buffer_cells)
    assert result.arrivals == sum(sum(row) for row in arrivals)
    assert result.delivered + result.dropped == result.arrivals
    assert result.delivered >= 0 and result.dropped >= 0
