"""System-level invariants and failure injection.

These tests drive full simulations and then check conservation laws and
structural invariants that must hold no matter what the traffic did:

* packet conservation per port (enqueued == transmitted + buffered),
* DynaQ's ``sum(T) == B`` on every port after real traffic,
* non-negative queue occupancies,
* byte-exact delivery under loss, reordering (ECMP), and blackholes.
"""

import pytest

from repro.apps.iperf import IperfApp
from repro.core.dynaq import DynaQBuffer
from repro.net.topology import build_leaf_spine, build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.transport.tcp import TCPSender


def star_net(buffer_factory, num_hosts=4, buffer_bytes=kilobytes(85)):
    return build_star(
        num_hosts=num_hosts, rate_bps=gbps(1), rtt_ns=microseconds(500),
        buffer_bytes=buffer_bytes,
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=buffer_factory)


def all_ports(net):
    for switch in net.switches.values():
        yield from switch.port_list()
    for host in net.hosts.values():
        if host.nic is not None:
            yield host.nic


def run_congested(net, duration_s=0.3):
    for index, queue in ((1, 0), (2, 1), (3, 1)):
        app = IperfApp(net.sim, net.host(f"h{index}"), destination="h0",
                       num_flows=6, service_class=queue,
                       flow_id_base=index * 100)
        app.start_at(0)
    net.sim.run(until=seconds(duration_s))


def test_packet_conservation_per_port():
    net = star_net(BestEffortBuffer, buffer_bytes=kilobytes(30))
    run_congested(net)
    for port in all_ports(net):
        buffered = port.total_bytes()
        assert (port.enqueued_packets
                >= port.transmitted_packets), port.name
        # Every enqueued packet was either transmitted or is still queued.
        queued_packets = sum(
            len(port._queues[i]) for i in range(port.num_queues))
        assert (port.enqueued_packets
                == port.transmitted_packets + queued_packets), port.name
        assert buffered >= 0


def test_dynaq_threshold_invariant_after_real_traffic():
    net = star_net(DynaQBuffer)
    run_congested(net)
    for port in all_ports(net):
        manager = port.buffer_manager
        if isinstance(manager, DynaQBuffer):
            assert manager.threshold_sum() == port.buffer_bytes, port.name
            assert all(t >= 0 for t in manager.thresholds), port.name


def test_no_negative_occupancy_under_congestion():
    net = star_net(DynaQBuffer, buffer_bytes=kilobytes(20))
    run_congested(net)
    for port in all_ports(net):
        for queue in range(port.num_queues):
            assert port.queue_bytes(queue) >= 0
        assert port.total_bytes() <= port.buffer_bytes


def test_occupancy_never_exceeds_buffer_besteffort():
    net = star_net(BestEffortBuffer, buffer_bytes=kilobytes(20))
    peak = {"value": 0}
    bottleneck = net.switch("s0").ports["s0->h0"]
    original = bottleneck.send

    def watched_send(packet):
        original(packet)
        peak["value"] = max(peak["value"], bottleneck.total_bytes())

    bottleneck.send = watched_send
    run_congested(net)
    assert peak["value"] <= kilobytes(20)


def test_byte_exact_delivery_under_heavy_loss():
    """A flow through a 5 KB buffer completes with exact reassembly."""
    net = star_net(BestEffortBuffer, buffer_bytes=5_000)
    flows = []
    for index, src in ((1, "h1"), (2, "h2"), (3, "h3")):
        flow = Flow(flow_id=index, src=src, dst="h0", size=150_000)
        sender = TCPSender(net.sim, net.host(src), flow)
        net.host(src).register_sender(sender)
        sender.start()
        flows.append(sender)
    net.sim.run(until=seconds(5))
    for sender in flows:
        assert sender.complete
        receiver = net.host("h0").receivers[sender.flow.flow_id]
        assert receiver.next_expected == 150_000


def test_delivery_across_ecmp_reordering():
    """ECMP paths have equal delay here, but the flow must still complete
    if one spine path is slowed (propagation skew => reordering)."""
    net = build_leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2,
        rate_bps=gbps(10), rtt_ns=microseconds(85),
        buffer_bytes=kilobytes(192),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=BestEffortBuffer)
    # Skew one uplink's propagation delay to 5x.
    net.switch("leaf0").ports["leaf0->spine1"].prop_delay_ns *= 5
    flow = Flow(flow_id=1, src="h0_0", dst="h1_1", size=500_000)
    sender = TCPSender(net.sim, net.host("h0_0"), flow)
    net.host("h0_0").register_sender(sender)
    sender.start()
    net.sim.run(until=seconds(2))
    assert sender.complete
    assert net.host("h1_1").receivers[1].next_expected == 500_000


def test_transient_blackhole_recovery():
    """A port that eats all packets for 30 ms must not wedge the flows."""
    net = star_net(BestEffortBuffer)
    bottleneck = net.switch("s0").ports["s0->h0"]
    original = bottleneck.send
    gate = {"open": False}

    def gated(packet):
        if gate["open"]:
            original(packet)

    bottleneck.send = gated
    net.sim.schedule(seconds(0.03), lambda: gate.update(open=True))
    flow = Flow(flow_id=1, src="h1", dst="h0", size=50_000)
    sender = TCPSender(net.sim, net.host("h1"), flow)
    net.host("h1").register_sender(sender)
    sender.start()
    net.sim.run(until=seconds(3))
    assert sender.complete
    assert sender.timeouts >= 1


def test_aborted_flows_leave_clean_state():
    net = star_net(DynaQBuffer)
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=4, service_class=0)
    app.start_at(0)
    app.stop_at(seconds(0.05))
    net.sim.run(until=seconds(0.3))
    # After abort + drain, no packets linger and no timers fire forever.
    for port in all_ports(net):
        assert port.total_bytes() == 0
    assert net.sim.peek_time() is None


def test_two_parallel_simulations_do_not_interfere():
    """Simulator instances are fully independent (no global state)."""
    net_a = star_net(DynaQBuffer)
    net_b = star_net(DynaQBuffer)
    run_congested(net_a, duration_s=0.05)
    events_before = net_b.sim.events_executed
    assert events_before == 0
    run_congested(net_b, duration_s=0.05)
    assert net_a.sim.now == net_b.sim.now
    assert (net_a.switch("s0").ports["s0->h0"].transmitted_packets
            == net_b.switch("s0").ports["s0->h0"].transmitted_packets)
