"""Tests for topology validation and trace-driven workloads."""

import random

import pytest

from repro.net.topology import Network, build_leaf_spine, build_star
from repro.net.validate import ValidationIssue, assert_valid, validate_network
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.sim.units import gbps, kilobytes, microseconds
from repro.workloads.flowgen import FlowSpec, generate_flows
from repro.workloads.datasets import WEB_SEARCH
from repro.workloads.trace import fit_cdf, load_flow_trace, save_flow_trace


def healthy_star():
    return build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=microseconds(500),
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=BestEffortBuffer)


# -- validation -----------------------------------------------------------------

def test_builders_produce_valid_networks():
    assert validate_network(healthy_star()) == []
    fabric = build_leaf_spine(
        num_leaves=2, num_spines=2, hosts_per_leaf=2,
        rate_bps=gbps(10), rtt_ns=microseconds(85),
        buffer_bytes=kilobytes(192),
        scheduler_factory=lambda: DRRScheduler([1500] * 8),
        buffer_factory=BestEffortBuffer)
    assert validate_network(fabric) == []


def test_missing_nic_detected():
    net = healthy_star()
    net.hosts["h1"].nic = None
    issues = validate_network(net)
    assert any("h1 has no NIC" in issue.message for issue in issues)
    with pytest.raises(ValueError):
        assert_valid(net)


def test_unconnected_port_detected():
    net = healthy_star()
    net.switch("s0").ports["s0->h2"].peer = None
    issues = validate_network(net)
    assert any("not connected" in issue.message for issue in issues)


def test_missing_route_detected():
    net = healthy_star()
    net.switch("s0").table._routes.pop("h1")
    issues = validate_network(net)
    assert any("no route to h1" in issue.message for issue in issues)


def test_mixed_queue_counts_is_warning_only():
    net = healthy_star()
    from repro.net.port import EgressPort
    odd = EgressPort(
        net.sim, "s0->odd", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=1000, scheduler=DRRScheduler([1500] * 2),
        buffer_manager=BestEffortBuffer())
    odd.connect(net.host("h0"))
    net.switch("s0").add_port(odd)
    issues = validate_network(net)
    warnings = [i for i in issues
                if i.severity == ValidationIssue.WARNING]
    assert warnings
    assert_valid(net)  # warnings don't raise


def test_assert_valid_passes_on_healthy():
    assert_valid(healthy_star())


# -- flow traces -------------------------------------------------------------------

def test_trace_roundtrip(tmp_path):
    specs = [FlowSpec(1_000_000, 5_000), FlowSpec(2_500_000, 150_000)]
    path = tmp_path / "trace.csv"
    assert save_flow_trace(path, specs) == 2
    loaded = load_flow_trace(path)
    assert loaded == specs


def test_trace_sorts_by_arrival(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival_s,size_bytes\n0.5,100\n0.1,200\n")
    loaded = load_flow_trace(path)
    assert [spec.size_bytes for spec in loaded] == [200, 100]


def test_trace_accepts_extra_columns(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("src,arrival_s,size_bytes,notes\nh1,0.1,100,x\n")
    loaded = load_flow_trace(path)
    assert loaded == [FlowSpec(100_000_000, 100)]


def test_trace_rejects_bad_header(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("time,bytes\n0.1,100\n")
    with pytest.raises(ValueError):
        load_flow_trace(path)


def test_trace_rejects_bad_values(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival_s,size_bytes\n-1,100\n")
    with pytest.raises(ValueError):
        load_flow_trace(path)
    path.write_text("arrival_s,size_bytes\n0.1,zero\n")
    with pytest.raises(ValueError):
        load_flow_trace(path)


def test_trace_rejects_empty_file(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("")
    with pytest.raises(ValueError):
        load_flow_trace(path)


def test_trace_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("arrival_s,size_bytes\n0.1,100\n\n0.2,200\n")
    assert len(load_flow_trace(path)) == 2


# -- CDF fitting --------------------------------------------------------------------

def test_fit_cdf_reproduces_distribution_shape():
    rng = random.Random(5)
    specs = generate_flows(distribution=WEB_SEARCH, load=0.5,
                           link_rate_bps=gbps(1), num_flows=3_000,
                           rng=rng)
    fitted = fit_cdf(specs, points=40)
    # Median and 90th percentile within a factor of the source.
    assert fitted.inverse(0.5) == pytest.approx(
        WEB_SEARCH.inverse(0.5), rel=0.5)
    assert fitted.inverse(0.9) == pytest.approx(
        WEB_SEARCH.inverse(0.9), rel=0.5)


def test_fit_cdf_constant_sizes():
    specs = [FlowSpec(i, 1_000) for i in range(10)]
    fitted = fit_cdf(specs)
    assert fitted.inverse(0.5) in (1_000, 1_001)


def test_fit_cdf_validation():
    with pytest.raises(ValueError):
        fit_cdf([])
    with pytest.raises(ValueError):
        fit_cdf([FlowSpec(0, 100)], points=1)


def test_fitted_cdf_is_sampleable():
    specs = [FlowSpec(i, 100 * (i + 1)) for i in range(50)]
    fitted = fit_cdf(specs)
    rng = random.Random(1)
    for _ in range(100):
        assert 100 <= fitted.sample(rng) <= 5_000
