"""Fault-injection subsystem tests: schedules, controller, recovery."""

import hashlib
import json

import pytest

from repro.core.dynaq import DynaQBuffer
from repro.faults import (
    FaultController,
    FaultEvent,
    FaultSchedule,
    ScenarioWatchdog,
    ThresholdInvariantMonitor,
)
from repro.net.topology import build_star
from repro.net.validate import ValidationIssue, validate_network
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.queueing.schedulers.wrr import WRRScheduler
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError, WatchdogTimeout
from repro.sim.trace import (
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_FAULT_INJECT,
    TOPIC_FAULT_RECOVER,
)
from repro.sim.units import (
    gbps,
    kilobytes,
    microseconds,
    milliseconds,
    seconds,
)
from repro.transport.base import Flow
from repro.transport.tcp import TCPSender

RTT = microseconds(500)
BUFFER = kilobytes(85)


def make_net(buffer_factory=BestEffortBuffer, num_hosts=3, num_queues=4,
             trace=None, buffer_bytes=BUFFER):
    return build_star(
        num_hosts=num_hosts, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=buffer_bytes,
        scheduler_factory=lambda: DRRScheduler([1500.0] * num_queues),
        buffer_factory=buffer_factory, trace=trace)


def start_flow(net, size, src="h1", dst="h2", flow_id=0, service_class=0):
    flow = Flow(flow_id=flow_id, src=src, dst=dst, size=size,
                service_class=service_class)
    sender = TCPSender(net.sim, net.host(src), flow)
    net.host(src).register_sender(sender)
    sender.start()
    return sender


# -- schedule parsing ---------------------------------------------------------

def test_schedule_parses_ms_sugar_and_sorts():
    schedule = FaultSchedule.from_dict({"events": [
        {"time_ms": 2, "kind": "link_up", "target": "p"},
        {"time_ns": 500, "kind": "stall", "target": "p"},
    ]})
    assert [event.kind for event in schedule] == ["stall", "link_up"]
    assert schedule.events[1].time_ns == 2_000_000


def test_schedule_accepts_bare_list_and_roundtrips():
    spec = [{"time_ns": 10, "kind": "corrupt", "target": "p", "rate": 0.5,
             "duration_ns": 5}]
    schedule = FaultSchedule.from_dict(spec)
    assert schedule.to_dict()["events"] == [
        {"time_ns": 10, "kind": "corrupt", "target": "p", "rate": 0.5,
         "duration_ns": 5}]
    assert schedule.last_event_ns() == 15


def test_schedule_from_file_names_after_stem(tmp_path):
    path = tmp_path / "flaky.json"
    path.write_text(json.dumps({"events": [
        {"time_ms": 1, "kind": "host_crash", "target": "h1"}]}))
    schedule = FaultSchedule.from_file(path)
    assert schedule.name == "flaky"
    assert len(schedule) == 1


@pytest.mark.parametrize("spec", [
    {"time_ns": 0, "kind": "meteor", "target": "p"},
    {"time_ns": 0, "time_ms": 1, "kind": "stall", "target": "p"},
    {"time_ns": -5, "kind": "stall", "target": "p"},
    {"kind": "stall", "target": "p"},
    {"time_ns": 0, "kind": "stall"},
    {"time_ns": 0, "kind": "link_flap", "target": "p"},
    {"time_ns": 0, "kind": "link_up", "target": "p", "duration_ns": 5},
    {"time_ns": 0, "kind": "stall", "target": "p", "duration_ns": 0},
    {"time_ns": 0, "kind": "corrupt", "target": "p"},
    {"time_ns": 0, "kind": "corrupt", "target": "p", "rate": 1.5},
    {"time_ns": 0, "kind": "stall", "target": "p", "rate": 0.5},
    {"time_ns": 0, "kind": "reconfigure", "target": "p"},
    {"time_ns": 0, "kind": "reconfigure", "target": "p",
     "weights": [1, 0]},
    {"time_ns": 0, "kind": "stall", "target": "p", "weights": [1]},
    {"time_ns": 0, "kind": "stall", "target": "p", "typo": True},
])
def test_schedule_rejects_bad_events(spec):
    with pytest.raises(ConfigurationError):
        FaultSchedule.from_dict([spec])


def test_schedule_rejects_overlapping_intervals_same_target():
    """Two flaps racing their recoveries on one link must not load."""
    with pytest.raises(ConfigurationError, match="overlaps"):
        FaultSchedule.from_dict([
            {"time_ns": 100, "kind": "link_flap", "target": "p",
             "duration_ns": 50},
            {"time_ns": 120, "kind": "link_down", "target": "p",
             "duration_ns": 50},
        ])


def test_schedule_allows_staggered_and_cross_target_intervals():
    # Back-to-back on one target (end == next start) and simultaneous
    # intervals on different targets or of different families are fine.
    schedule = FaultSchedule.from_dict([
        {"time_ns": 100, "kind": "link_flap", "target": "p",
         "duration_ns": 50},
        {"time_ns": 150, "kind": "link_flap", "target": "p",
         "duration_ns": 50},
        {"time_ns": 120, "kind": "link_flap", "target": "q",
         "duration_ns": 50},
        {"time_ns": 120, "kind": "stall", "target": "p",
         "duration_ns": 50},
    ])
    assert len(schedule) == 4


def test_schedule_validate_horizon_rejects_late_inject_and_recover():
    schedule = FaultSchedule.from_dict([
        {"time_ns": 900, "kind": "stall", "target": "p",
         "duration_ns": 300}])
    with pytest.raises(ConfigurationError, match="past the test horizon"):
        schedule.validate_horizon(800, context="test")
    with pytest.raises(ConfigurationError, match="recovers"):
        schedule.validate_horizon(1000, context="test")
    schedule.validate_horizon(1200, context="test")  # fits: no raise


def test_schedule_file_errors(tmp_path):
    with pytest.raises(ConfigurationError):
        FaultSchedule.from_file(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigurationError):
        FaultSchedule.from_file(bad)


# -- controller target resolution ---------------------------------------------

def test_controller_rejects_unknown_targets():
    net = make_net()
    schedule = FaultSchedule([FaultEvent(0, "stall", "s0->h9")])
    with pytest.raises(ConfigurationError):
        FaultController(net, schedule).arm()
    schedule = FaultSchedule([FaultEvent(0, "host_crash", "h9")])
    with pytest.raises(ConfigurationError):
        FaultController(net, schedule).arm()


def test_controller_publishes_inject_and_recover():
    net = make_net()
    seen = []
    net.trace.subscribe(TOPIC_FAULT_INJECT,
                        lambda **kw: seen.append(("inject", kw["detail"])))
    net.trace.subscribe(TOPIC_FAULT_RECOVER,
                        lambda **kw: seen.append(("recover", kw["detail"])))
    schedule = FaultSchedule([
        FaultEvent(1000, "stall", "s0->h2",
                   duration_ns=microseconds(10))])
    controller = FaultController(net, schedule)
    controller.arm()
    net.sim.run(until=milliseconds(1))
    assert seen == [("inject", "stall"), ("recover", "stall over")]
    assert controller.injected == 1 and controller.recovered == 1


# -- link flap: in-flight loss and recovery -------------------------------------

def test_link_down_kills_packets_already_on_the_wire():
    net = make_net()
    start_flow(net, 400_000)
    nic = net.host("h1").nic
    # 1500 B at 1 Gbps is ~12 us on the wire against a 125 us hop, so a
    # few packets from the initial burst are mid-flight at t=50 us.
    net.sim.run(until=microseconds(50))
    # The default fast path keeps no per-packet wire bookkeeping; the
    # authoritative in-flight set is the scheduled delivery events (the
    # reference-mode tracking deque mirrors exactly this).
    live = net.sim.pending_events_for(nic._deliver)
    assert live                             # wire is busy right now
    nic.set_link_down()
    assert nic.inflight_losses == len(live)
    assert not nic.link_up


def test_link_flap_drops_traffic_and_flow_recovers():
    net = make_net()
    sender = start_flow(net, 400_000)
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "link_flap", "h1.nic",
                   duration_ns=milliseconds(15))])
    FaultController(net, schedule).arm()
    net.sim.run(until=seconds(1))
    nic = net.host("h1").nic
    assert nic.link_up                      # flap ended
    assert nic.dropped_packets > 0          # sends during the outage died
    assert sender.timeouts > 0              # loss surfaced as RTO
    assert sender.complete                  # ...and the flow still finished


def test_stall_parks_port_and_resume_drains():
    net = make_net()
    sender = start_flow(net, 200_000)
    port = net.switch("s0").ports["s0->h2"]
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "stall", "s0->h2",
                   duration_ns=milliseconds(5))])
    FaultController(net, schedule).arm()
    net.sim.run(until=milliseconds(3))
    transmitted_during_stall = port.transmitted_packets
    assert port.stalled
    net.sim.run(until=milliseconds(4))
    # Parked: nothing leaves the port while stalled.
    assert port.transmitted_packets == transmitted_during_stall
    net.sim.run(until=seconds(1))
    assert not port.stalled
    assert sender.complete


def test_corruption_checksum_drops_then_retransmit_completes():
    net = make_net()
    sender = start_flow(net, 150_000)
    schedule = FaultSchedule([
        FaultEvent(microseconds(100), "corrupt", "s0->h2", rate=0.3,
                   duration_ns=milliseconds(5))])
    FaultController(net, schedule).arm()
    net.sim.run(until=seconds(2))
    port = net.switch("s0").ports["s0->h2"]
    assert port.corrupt_rate == 0.0          # fault cleared
    assert port.corrupted_packets > 0
    assert net.host("h2").checksum_drops > 0
    assert sender.retransmissions > 0
    assert sender.complete


def test_corruption_is_seed_deterministic():
    def corrupted_count(seed):
        import random
        net = make_net()
        start_flow(net, 150_000)
        schedule = FaultSchedule([
            FaultEvent(0, "corrupt", "s0->h2", rate=0.2)])
        FaultController(net, schedule, rng=random.Random(seed)).arm()
        net.sim.run(until=milliseconds(20))
        return net.switch("s0").ports["s0->h2"].corrupted_packets

    assert corrupted_count(7) == corrupted_count(7)


# -- host crash / restart -------------------------------------------------------

def test_host_crash_triggers_backoff_and_restart_completes():
    net = make_net()
    sender = start_flow(net, 300_000)
    receiver = net.host("h2")
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "host_crash", "h2",
                   duration_ns=milliseconds(60))])
    FaultController(net, schedule).arm()
    net.sim.run(until=milliseconds(55))
    assert not receiver.alive
    assert receiver.dropped_while_down > 0
    # 60 ms dead against a 10 ms RTO_min: several expiries, so the
    # RFC 6298 exponential backoff must have engaged.
    assert sender.timeouts >= 2
    assert sender.rto.rto_ns > sender.rto.min_rto_ns
    net.sim.run(until=seconds(2))
    assert receiver.alive
    assert receiver.crashes == 1
    assert sender.complete


def test_crashed_sender_host_restarts_its_own_flows():
    net = make_net()
    sender = start_flow(net, 300_000)
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "host_crash", "h1",
                   duration_ns=milliseconds(20))])
    FaultController(net, schedule).arm()
    net.sim.run(until=milliseconds(10))
    # Crashed: transport suspended, no retransmission timer pending.
    assert sender._rto_event is None
    net.sim.run(until=seconds(2))
    assert sender.complete


# -- DynaQ reconfiguration ------------------------------------------------------

def test_reconfigure_keeps_threshold_sum_and_publishes():
    net = make_net(buffer_factory=DynaQBuffer)
    start_flow(net, 100_000, dst="h0")
    seen = []
    net.trace.subscribe(TOPIC_DYNAQ_RECONFIGURE,
                        lambda **kw: seen.append(kw))
    port = net.switch("s0").ports["s0->h0"]
    net.sim.run(until=milliseconds(2))
    port.reconfigure_weights([6000.0, 4500.0, 3000.0, 1500.0])
    manager = port.buffer_manager
    assert sum(manager.thresholds) == BUFFER
    # Eq. 1 split for 4:3:2:1 weights.
    assert manager.thresholds[0] > manager.thresholds[3]
    assert len(seen) == 1
    assert sum(seen[0]["thresholds"]) == BUFFER
    assert port.queue_weights() == [6000.0, 4500.0, 3000.0, 1500.0]


def test_reconfigure_fault_event_end_to_end():
    net = make_net(buffer_factory=DynaQBuffer)
    start_flow(net, 200_000, dst="h0")
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "reconfigure", "s0->h0",
                   weights=[3000.0, 1500.0, 1500.0, 1500.0])])
    FaultController(net, schedule).arm()
    monitor = ThresholdInvariantMonitor(net.trace, expected=BUFFER)
    net.sim.run(until=milliseconds(5))
    manager = net.switch("s0").ports["s0->h0"].buffer_manager
    assert sum(manager.thresholds) == BUFFER
    assert monitor.checked > 0
    assert monitor.violation_count == 0


def test_reconfigure_rejects_wrong_weight_count():
    net = make_net(buffer_factory=DynaQBuffer)
    port = net.switch("s0").ports["s0->h0"]
    with pytest.raises(ConfigurationError):
        port.reconfigure_weights([1.0, 1.0])
    with pytest.raises(ConfigurationError):
        port.buffer_manager.reconfigure([1.0, 1.0])


# -- acceptance: killing a queue redistributes its threshold fast --------------

def test_queue_kill_redistributes_threshold_within_one_rtt():
    """Crash the host feeding queue 0; DynaQ must hand its threshold to
    the surviving queue within one RTT of simulated time.

    Algorithm 1 only lifts victim protection once the victim queue is
    empty, so the buffer must be shallow enough that queue 0 can drain
    its threshold's worth of bytes well inside one RTT at its DRR share
    of the link (20 KB -> ~10 KB at ~0.5 Gbps is ~160 us of the 500 us
    RTT, leaving the rest of the window for the survivor to steal).
    """
    from repro.net.packet import Packet

    buffer_bytes = kilobytes(20)
    net = make_net(buffer_factory=DynaQBuffer, num_hosts=4, num_queues=2,
                   buffer_bytes=buffer_bytes)

    # Constant-rate sources instead of TCP: the assertion is about DynaQ's
    # threshold dynamics, not congestion control, and TCP's synchronized
    # RTO collapse around the crash would leave both queues empty.  Each
    # host offers its NIC line rate (1500 B / 12 us = 1 Gbps); queue 1 is
    # fed by BOTH h2 and h3 so the bottleneck stays oversubscribed — and
    # queue 1 keeps producing over-threshold arrivals — after h1 dies.
    # host.send_packet() already drops traffic from a crashed host, so
    # the host_crash fault silences queue 0's source on its own.
    def constant_rate(src, flow_id, service_class):
        host = net.host(src)
        state = {"seq": 0}

        def send():
            packet = Packet(flow_id=flow_id, src=src, dst="h0", size=1500,
                            seq=state["seq"], end_seq=state["seq"] + 1500,
                            service_class=service_class)
            state["seq"] += 1500
            host.send_packet(packet)
            net.sim.schedule(microseconds(12), send)

        net.sim.schedule(0, send)

    constant_rate("h1", flow_id=1, service_class=0)
    constant_rate("h2", flow_id=2, service_class=1)
    constant_rate("h3", flow_id=3, service_class=1)
    kill_ns = milliseconds(20)
    schedule = FaultSchedule([FaultEvent(kill_ns, "host_crash", "h1")])
    FaultController(net, schedule).arm()
    manager = net.switch("s0").ports["s0->h0"].buffer_manager
    net.sim.run(until=kill_ns)
    before = list(manager.thresholds)
    net.sim.run(until=kill_ns + RTT)
    after = list(manager.thresholds)
    assert sum(after) == buffer_bytes            # invariant held throughout
    assert after[0] < before[0]                  # victim's share moved...
    assert after[1] > before[1]                  # ...to the survivor


# -- invariant monitor ----------------------------------------------------------

def test_monitor_counts_violations_against_expected():
    from repro.sim.trace import TOPIC_THRESHOLD_CHANGE, TraceBus
    trace = TraceBus()
    monitor = ThresholdInvariantMonitor(trace, expected=100)
    trace.publish(TOPIC_THRESHOLD_CHANGE, port="p", time=1,
                  thresholds=(60, 40))
    trace.publish(TOPIC_THRESHOLD_CHANGE, port="p", time=2,
                  thresholds=(60, 39))
    assert monitor.checked == 2
    assert monitor.violation_count == 1
    assert monitor.violations[0]["sum"] == 99
    monitor.close()
    trace.publish(TOPIC_THRESHOLD_CHANGE, port="p", time=3,
                  thresholds=(1, 1))
    assert monitor.checked == 2  # unsubscribed


# -- watchdog -------------------------------------------------------------------

def test_watchdog_sim_budget_stops_cleanly():
    sim = Simulator()
    ticks = []

    def tick():
        ticks.append(sim.now)
        sim.schedule(milliseconds(1), tick)

    sim.schedule(0, tick)
    watchdog = ScenarioWatchdog(sim, sim_budget_ns=milliseconds(5))
    watchdog.start()
    sim.run(until=seconds(1))
    assert sim.now == milliseconds(5)
    assert watchdog.tripped is not None
    assert "simulated-time" in watchdog.tripped
    with pytest.raises(WatchdogTimeout):
        watchdog.raise_if_tripped()


def test_watchdog_wall_budget_trips():
    sim = Simulator()

    def tick():
        sim.schedule(milliseconds(1), tick)

    sim.schedule(0, tick)
    watchdog = ScenarioWatchdog(sim, wall_budget_s=1e-9,
                                check_interval_ns=milliseconds(1))
    watchdog.start()
    sim.run(until=seconds(1))
    assert watchdog.tripped is not None
    assert "wall-clock" in watchdog.tripped
    assert sim.now < seconds(1)


def test_watchdog_untripped_is_quiet():
    sim = Simulator()
    watchdog = ScenarioWatchdog(sim, sim_budget_ns=seconds(10))
    watchdog.start()
    sim.run(until=milliseconds(1))
    watchdog.cancel()
    assert watchdog.tripped is None
    watchdog.raise_if_tripped()  # no-op


# -- configuration validation (zero/negative weights) ---------------------------

def test_zero_and_negative_weights_raise_configuration_error():
    for bad in ([0.0, 1.0], [-1.0, 1.0], [0.0, 0.0], []):
        with pytest.raises(ConfigurationError):
            DRRScheduler(bad)
        with pytest.raises(ConfigurationError):
            WRRScheduler(bad)
    # ConfigurationError doubles as ValueError for legacy call sites.
    with pytest.raises(ValueError):
        DRRScheduler([0.0])


def test_validate_network_flags_nonpositive_port_weights():
    net = make_net()
    port = net.switch("s0").ports["s0->h1"]
    port.scheduler.quanta = [0.0] * port.num_queues  # simulate corruption
    issues = validate_network(net)
    errors = [issue for issue in issues
              if issue.severity == ValidationIssue.ERROR]
    assert any("non-positive" in issue.message for issue in errors)
    assert all("non-positive" not in issue.message
               or "s0->h1" in issue.message for issue in errors)


# -- determinism under faults ---------------------------------------------------

def test_chaos_trace_is_byte_identical_across_runs(tmp_path):
    from repro.experiments.chaos import run_chaos
    from repro.telemetry import TelemetrySession

    schedule = FaultSchedule.from_dict({"name": "det", "events": [
        {"time_ms": 3, "kind": "link_flap", "target": "h1.nic",
         "duration_ms": 2},
        {"time_ms": 4, "kind": "corrupt", "target": "s0->h0",
         "rate": 0.2, "duration_ms": 2},
    ]})

    def run(path):
        with TelemetrySession(trace_out=path) as session:
            result = run_chaos("dynaq", schedule, duration_s=0.01,
                               sample_interval_s=0.002, seed=42,
                               trace=session.trace)
        assert result.violations == 0
        return hashlib.sha256(path.read_bytes()).hexdigest()

    first = run(tmp_path / "a.jsonl")
    second = run(tmp_path / "b.jsonl")
    assert (tmp_path / "a.jsonl").stat().st_size > 0
    assert first == second
