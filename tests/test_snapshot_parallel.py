"""Mid-sim resume in the parallel executor.

The kill drill stands in for a real worker crash: ``SnapshotHalt``
inside a worker becomes ``os._exit(43)`` with no result message, so the
parent exercises its genuine died-mid-job path.  The drill is also
self-proving — the save counter rides inside the snapshot, so a retry
that truly restored runs past the drill point, while a retry that
silently restarted from t=0 would trip the same drill again and exhaust
its retry budget.  A passing test therefore *is* the mid-flight-resume
proof.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.parallel import JobSpec, job_key, parallel_map
from repro.sim.units import milliseconds
from repro.snapshot import SnapshotManager

STATIC_PARAMS = {
    "scheme": "dynaq", "rate": "10g", "num_queues": 4,
    "first_stop_ms": 20.0, "stop_step_ms": 10.0, "duration_ms": 60.0,
    "sample_interval_ms": 5.0,
}


def _static_spec(snapshot=None):
    return JobSpec(job_key("static-sim", STATIC_PARAMS, label="dynaq"),
                   "static-sim", STATIC_PARAMS, snapshot=snapshot)


def test_drilled_worker_resumes_from_autosave_not_t0(tmp_path):
    (clean,) = parallel_map([_static_spec()], jobs=2)

    snap = tmp_path / "job.snap"
    spec = _static_spec(snapshot={"every_ns": milliseconds(10),
                                  "out": str(snap),
                                  "halt_after_saves": 3})
    (drilled,) = parallel_map([spec], jobs=2, retries=1)

    # Attempt 1 died at the 3rd autosave (t=30ms of 60ms); attempt 2
    # restored and finished.  One retry is only enough because the
    # restored world's save counter is already past the drill — a t=0
    # restart would have died at save 3 again and failed the job.
    assert drilled.ok
    assert drilled.attempts == 2
    assert drilled.value == clean.value

    header = SnapshotManager().peek(snap)
    assert header["kind"] == "static-sim"
    assert header["meta"]["saves"] > 3  # the resumed run kept autosaving


def test_autosave_cadence_requires_somewhere_to_save():
    with pytest.raises(ConfigurationError, match="checkpoint"):
        parallel_map([_static_spec()], jobs=1,
                     autosave_every_ns=milliseconds(10))


def test_autosave_paths_derive_from_checkpoint(tmp_path):
    checkpoint = tmp_path / "sweep.jsonl"
    directory = tmp_path / "sweep.jsonl.autosaves"
    (plain,) = parallel_map([_static_spec()], jobs=1)
    kinds = []

    def peek(outcome):
        # The job just finished; GC has not run yet, so its autosave is
        # still on disk next to the checkpoint.
        kinds.extend(SnapshotManager().peek(path)["kind"]
                     for path in directory.glob("*.snap"))

    (saved,) = parallel_map([_static_spec()], jobs=1,
                            checkpoint=checkpoint,
                            autosave_every_ns=milliseconds(10),
                            on_result=peek)
    # Autosaves shift sequence numbers uniformly, never results.
    assert saved.value == plain.value
    assert kinds == ["static-sim"]
    # After a fully successful sweep the directory is garbage-collected,
    # so a --resume against the finished checkpoint cannot pick up
    # obsolete autosaves.
    assert not directory.exists()


def test_failed_jobs_keep_their_autosave_for_triage(tmp_path):
    checkpoint = tmp_path / "sweep.jsonl"
    directory = tmp_path / "sweep.jsonl.autosaves"
    directory.mkdir()
    drill = directory / "drill.snap"
    # One job whose caller-provided drill snapshot re-fires on every
    # restored attempt (save counter rides in the snapshot, so each
    # retry is already past the halt threshold) and exhausts its retry
    # budget; one ordinary job whose autosave the executor attaches.
    doomed = _static_spec(snapshot={"every_ns": milliseconds(10),
                                    "out": str(drill),
                                    "halt_after_saves": 1})
    healthy = JobSpec(job_key("static-sim", STATIC_PARAMS, label="again"),
                      "static-sim", STATIC_PARAMS)
    failed, ok = parallel_map([doomed, healthy], jobs=2,
                              checkpoint=checkpoint,
                              autosave_every_ns=milliseconds(10))
    assert not failed.ok and ok.ok
    # GC removed the successful job's attached autosave but left the
    # failed job's snapshot (its resume point / triage evidence), so the
    # directory itself must survive too.
    assert drill.exists()
    assert list(directory.glob("*.snap")) == [drill]


def test_corrupt_autosave_falls_back_to_fresh_run(tmp_path):
    snap = tmp_path / "job.snap"
    snap.write_bytes(b"this is not a snapshot")
    spec = _static_spec(snapshot={"every_ns": milliseconds(10),
                                  "out": str(snap)})
    (clean,) = parallel_map([_static_spec()], jobs=1)
    (resumed,) = parallel_map([spec], jobs=1,
                              checkpoint=tmp_path / "ck.jsonl",
                              resume=True)
    # Worker policies degrade a torn autosave to a clean t=0 run.
    assert resumed.ok and resumed.attempts == 1
    assert resumed.value == clean.value


def test_fresh_sweep_discards_stale_autosaves(tmp_path):
    snap = tmp_path / "job.snap"
    snap.write_bytes(b"stale autosave from an older sweep")
    spec = _static_spec(snapshot={"out": str(snap)})  # no cadence
    (outcome,) = parallel_map([spec], jobs=1)
    assert outcome.ok
    assert not snap.exists()  # unlinked before dispatch, never rewritten
