"""Tests for the incast/microburst experiment module."""

import pytest

from repro.experiments.incast import IncastResult, incast_sweep, run_incast


def quick_incast(scheme, **kwargs):
    defaults = dict(num_workers=6, background_flows=2, horizon_s=1.5)
    defaults.update(kwargs)
    return run_incast(scheme, **defaults)


def test_incast_completes_all_workers():
    result = quick_incast("dynaq")
    assert result.all_completed
    assert result.completed == 6
    assert result.query_completion_ms is not None
    assert result.query_completion_ms >= result.mean_fct_ms


def test_incast_without_background():
    result = quick_incast("besteffort", background_flows=0)
    assert result.all_completed
    # Unloaded port: the burst fits, QCT stays in the low milliseconds.
    assert result.query_completion_ms < 20.0


def test_incast_records_bottleneck_drops():
    result = quick_incast("besteffort", num_workers=12)
    assert result.drops_at_bottleneck > 0


def test_incast_eviction_no_worse_than_plain():
    plain = quick_incast("dynaq", num_workers=12)
    evict = quick_incast("dynaq-evict", num_workers=12)
    assert evict.all_completed
    assert evict.query_completion_ms <= plain.query_completion_ms * 1.1


def test_incast_sweep_shape():
    results = incast_sweep(["dynaq"], [4, 8], background_flows=0,
                           horizon_s=1.0)
    assert set(results) == {"dynaq"}
    assert [r.num_workers for r in results["dynaq"]] == [4, 8]
    assert all(isinstance(r, IncastResult) for r in results["dynaq"])
