"""Unit tests for time/size/rate conversions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import units


def test_time_conversions():
    assert units.seconds(1) == 1_000_000_000
    assert units.milliseconds(10) == 10_000_000
    assert units.microseconds(500) == 500_000
    assert units.nanoseconds(7.4) == 7


def test_to_seconds_roundtrip():
    assert units.to_seconds(units.seconds(2.5)) == pytest.approx(2.5)


def test_size_conversions():
    assert units.kilobytes(85) == 85_000
    assert units.megabytes(1) == 1_000_000


def test_rate_conversions():
    assert units.gbps(1) == 1_000_000_000
    assert units.mbps(100) == 100_000_000


def test_transmission_time_1500B_at_1gbps():
    # 1500 B = 12000 bits -> 12 us at 1 Gbps.
    assert units.transmission_time(1500, units.gbps(1)) == 12_000


def test_transmission_time_rounds_up():
    # 1 byte at 3 bps: 8/3 s = 2.666..s -> ceil.
    assert units.transmission_time(1, 3) == 2_666_666_667


def test_transmission_time_zero_rate_raises():
    with pytest.raises(ValueError):
        units.transmission_time(100, 0)


def test_bdp_testbed_value():
    # 1 Gbps x 500 us = 62.5 KB, the paper's testbed BDP.
    assert units.bandwidth_delay_product(
        units.gbps(1), units.microseconds(500)) == 62_500


def test_bdp_10g_value():
    # 10 Gbps x 84 us = 105 KB.
    assert units.bandwidth_delay_product(
        units.gbps(10), units.microseconds(84)) == 105_000


@given(st.integers(min_value=1, max_value=10**7),
       st.integers(min_value=1_000, max_value=10**12))
def test_transmission_time_is_positive_and_ceil(size, rate):
    tx = units.transmission_time(size, rate)
    assert tx >= 1
    # ceil property: tx is the smallest integer with tx*rate >= bits*1e9
    bits = size * 8
    assert tx * rate >= bits * units.SECOND
    assert (tx - 1) * rate < bits * units.SECOND
