"""Property-based tests (Hypothesis) on cross-cutting invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynaq import DynaQBuffer
from repro.core.eviction import DynaQEvictBuffer
from repro.net.port import EgressPort
from repro.net.shared_buffer import SharedBufferPool
from repro.net.tokenbucket import TokenBucket
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.dynamic_threshold import DynamicThresholdBuffer
from repro.queueing.pql import PQLBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.units import gbps

from conftest import make_packet


class Sink:
    def receive(self, packet):
        pass


# -- port conservation under arbitrary traffic ----------------------------------------

MANAGERS = [BestEffortBuffer, PQLBuffer, DynamicThresholdBuffer,
            DynaQBuffer, DynaQEvictBuffer]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3),       # queue
                          st.integers(64, 9000),   # size
                          st.integers(0, 500_000)  # gap ns
                          ), min_size=1, max_size=80),
       st.sampled_from(range(len(MANAGERS))))
def test_port_conservation_random_traffic(events, manager_index):
    """enqueued == transmitted + buffered, occupancy bounded, for every
    drop-based manager under random arrival patterns."""
    sim = Simulator()
    port = EgressPort(
        sim, "p", rate_bps=gbps(1), prop_delay_ns=1_000,
        buffer_bytes=20_000, scheduler=DRRScheduler([1500] * 4),
        buffer_manager=MANAGERS[manager_index]())
    port.connect(Sink())
    clock = 0
    for queue, size, gap in events:
        clock += gap
        sim.at(clock, port.send,
               make_packet(size, service_class=queue))
    sim.run()
    assert port.total_bytes() == 0
    assert port.enqueued_packets == port.transmitted_packets
    assert port.enqueued_packets + port.dropped_packets == len(events)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(64, 9000),
                          st.integers(0, 500_000)),
                min_size=1, max_size=80))
def test_occupancy_never_exceeds_buffer(events):
    sim = Simulator()
    port = EgressPort(
        sim, "p", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=20_000, scheduler=DRRScheduler([1500] * 4),
        buffer_manager=DynaQBuffer())
    port.connect(Sink())
    peak = {"value": 0}
    original = port.send

    def watched(packet):
        original(packet)
        peak["value"] = max(peak["value"], port.total_bytes())

    clock = 0
    for queue, size, gap in events:
        clock += gap
        sim.at(clock, watched, make_packet(size, service_class=queue))
    sim.run()
    assert peak["value"] <= 20_000


# -- token bucket -----------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 10_000_000),   # time gap ns
                          st.integers(1, 5_000)),       # request bytes
                min_size=1, max_size=60))
def test_token_bucket_never_exceeds_sustained_rate(requests):
    """Consumed bytes <= burst + rate * elapsed, for any request mix."""
    rate_bps = 8_000_000  # 1 MB/s
    burst = 10_000
    bucket = TokenBucket(rate_bps=rate_bps, burst_bytes=burst)
    clock = 0
    consumed = 0
    for gap, size in requests:
        clock += gap
        if bucket.try_consume(clock, size):
            consumed += size
    allowance = burst + clock * rate_bps / (8 * 1e9)
    assert consumed <= allowance + 1


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 100_000), st.integers(1, 50_000))
def test_token_bucket_next_available_is_sufficient(size, wait_hint):
    bucket = TokenBucket(rate_bps=8_000_000, burst_bytes=50_000)
    bucket.try_consume(0, 50_000)  # drain
    size = min(size, 50_000)
    ready = bucket.next_available_ns(0, size)
    assert bucket.try_consume(ready, size)


# -- shared pool --------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.booleans(),          # reserve or release-all
                          st.integers(1, 5_000)),
                min_size=1, max_size=100),
       st.floats(min_value=0.25, max_value=4.0))
def test_pool_invariants_under_random_ops(operations, alpha):
    pool = SharedBufferPool(50_000, alpha=alpha)
    held = {"a": 0, "b": 0, "c": 0}
    for name in held:
        pool.register(name)
    for name, reserve, size in operations:
        if reserve:
            if pool.try_reserve(name, size):
                held[name] += size
        elif held[name]:
            pool.release(name, held[name])
            held[name] = 0
        # Invariants after every operation:
        assert pool.total_usage == sum(held.values())
        assert 0 <= pool.total_usage <= pool.capacity_bytes
        assert pool.free_bytes >= 0


# -- DRR never starves ----------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(100, 9000), min_size=1, max_size=30),
       st.lists(st.integers(100, 9000), min_size=1, max_size=30))
def test_drr_serves_both_queues_interleaved(sizes_a, sizes_b):
    """With two backlogged queues, DRR alternates service: neither queue
    waits for the other to drain completely (unless tiny)."""
    from conftest import ListQueueView
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([list(sizes_a), list(sizes_b)])
    scheduler.on_enqueue(0)
    scheduler.on_enqueue(1)
    order = []
    served_bytes = []
    while True:
        index = scheduler.select(view)
        if index is None:
            break
        served_bytes.append((index, view.pop(index)))
        order.append(index)
    assert order.count(0) == len(sizes_a)
    assert order.count(1) == len(sizes_b)
    # Bounded head start: queue 0 serves at most ~one quantum's worth of
    # bytes (plus one oversized head) before queue 1 gets its turn.
    bytes_before_q1 = 0
    for index, size in served_bytes:
        if index == 1:
            break
        bytes_before_q1 += size
    else:
        return  # queue 1's share came entirely after queue 0 drained
    assert bytes_before_q1 <= 1500 + 9000
