"""Per-packet queue diagnosis: sketches, capture, dumps, queries, CLI.

The determinism tests are the contract: the diagnosis dump must be
byte-identical between the FAST and REFERENCE perf configs, between a
serial run and ``parallel_map`` fan-out of the same jobs, and between an
uninterrupted run and one killed at an autosave and restored.
"""

import json

import pytest

from repro.cli import main
from repro.diagnosis import (
    DiagnosisQuery,
    SketchSettings,
    load_diagnosis,
    write_diagnosis,
)
from repro.diagnosis.dump import DIAGNOSIS_SCHEMA
from repro.diagnosis.jobs import fair_sharing_diagnosis_job
from repro.diagnosis.query import percentile_victim, render_summary
from repro.diagnosis.sketch import PortDiagnosisSketch
from repro.errors import ConfigurationError, SnapshotHalt
from repro.experiments.parallel import (
    JobSpec,
    callable_target,
    job_key,
    parallel_map,
)
from repro.net.port import EgressPort
from repro.perf.config import (
    active_config,
    fast_mode,
    reference_mode,
    use_config,
)
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


# -- sketch unit tests --------------------------------------------------------

def test_sketch_accounts_windows_and_delays():
    sketch = PortDiagnosisSketch("p", SketchSettings(window_ns=100))
    sketch.record_enqueue(10, 0, 1, 500, 500, None)
    sketch.record_enqueue(150, 0, 2, 300, 800, None)
    sketch.record_dequeue(180, 0, 1, 500, 170, 300, None)
    dump = sketch.to_dict()
    assert dump["windows"]["0"]["0"]["1"] == 500
    assert dump["windows"]["1"]["0"]["2"] == 300
    stats = dump["flows"]["1"]
    assert stats["packets"] == 1
    assert stats["max_delay_ns"] == 170
    assert stats["max_enqueued_ns"] == 10
    assert stats["max_dequeued_ns"] == 180
    assert stats["max_queue"] == 0
    assert dump["updates"] == 3


def test_threshold_snapshot_rising_edge_only():
    sketch = PortDiagnosisSketch("p", SketchSettings(window_ns=100))
    assert sketch.record_enqueue(0, 0, 1, 100, 50, 200) is None
    snap = sketch.record_enqueue(1, 0, 1, 100, 250, 200)
    assert snap is not None
    assert snap["detail"] == "threshold-cross"
    assert snap["composition"] == {1: 200}
    # Still over: no second snapshot until the queue dips back under.
    assert sketch.record_enqueue(2, 0, 1, 100, 300, 200) is None
    sketch.record_dequeue(3, 0, 1, 300, 3, 100, 200)
    assert sketch.record_enqueue(4, 0, 1, 100, 250, 200) is not None


def test_drop_snapshot_once_per_window():
    sketch = PortDiagnosisSketch("p", SketchSettings(window_ns=100))
    first = sketch.record_drop(5, 0, 7, 100, "queue full", 400, 300)
    assert first is not None
    assert first["detail"] == "drop:queue full"
    assert sketch.record_drop(6, 0, 7, 100, "queue full", 400, 300) is None
    assert (sketch.record_drop(105, 0, 7, 100, "queue full", 400, 300)
            is not None)
    # Queue-less drops (downed link) aggregate but never snapshot.
    assert sketch.record_drop(7, None, 7, 100, "link down", 0, None) is None
    dump = sketch.to_dict()
    assert dump["drops"] == [
        {"queue": None, "flow": 7, "reason": "link down",
         "count": 1, "bytes": 100},
        {"queue": 0, "flow": 7, "reason": "queue full",
         "count": 3, "bytes": 300},
    ]


def test_ring_spills_to_archive():
    sketch = PortDiagnosisSketch(
        "p", SketchSettings(window_ns=10, ring_slots=2))
    for window in range(5):
        sketch.record_enqueue(window * 10, 0, window, 100, 100, None)
    dump = sketch.to_dict()
    assert sorted(dump["windows"], key=int) == ["0", "1", "2", "3", "4"]


def test_evict_counts_drop_and_decrements_live():
    sketch = PortDiagnosisSketch("p", SketchSettings(window_ns=100))
    sketch.record_enqueue(0, 1, 3, 400, 400, None)
    snap = sketch.record_evict(1, 1, 3, 400, 0, None)
    assert snap is not None
    assert snap["detail"] == "drop:evicted"
    assert snap["composition"] == {}
    assert sketch.to_dict()["drops"] == [
        {"queue": 1, "flow": 3, "reason": "evicted",
         "count": 1, "bytes": 400}]


def test_settings_validate():
    with pytest.raises(ValueError):
        SketchSettings(window_ns=0)
    with pytest.raises(ValueError):
        SketchSettings(ring_slots=0)
    with pytest.raises(ValueError):
        SketchSettings(max_snapshots=-1)


# -- the perf switch ----------------------------------------------------------

def _port(sim):
    return EgressPort(
        sim, "p", rate_bps=10 ** 9, prop_delay_ns=0, buffer_bytes=10_000,
        scheduler=DRRScheduler([1500] * 4),
        buffer_manager=BestEffortBuffer())


def test_switch_off_means_no_sketch():
    assert not active_config().queue_diagnosis
    assert _port(Simulator())._sketch is None
    with use_config(active_config().clone(queue_diagnosis=True)):
        assert _port(Simulator())._sketch is not None


# -- determinism: FAST vs REFERENCE -------------------------------------------

def _canon(document):
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def test_fast_and_reference_dumps_byte_identical():
    with fast_mode():
        fast = fair_sharing_diagnosis_job(scheme="dynaq", time_unit_s=0.02)
    with reference_mode():
        reference = fair_sharing_diagnosis_job(scheme="dynaq",
                                               time_unit_s=0.02)
    assert fast["ports"]
    assert _canon(fast) == _canon(reference)
    assert (render_summary(DiagnosisQuery(fast))
            == render_summary(DiagnosisQuery(reference)))


# -- determinism: parallel fan-out --------------------------------------------

def _fair_sharing_spec(scheme):
    params = {"target": callable_target(fair_sharing_diagnosis_job),
              "kwargs": {"scheme": scheme, "time_unit_s": 0.02}}
    return JobSpec(job_key("callable", params, label=scheme),
                   "callable", params)


def test_parallel_diagnosis_jobs_match_serial():
    specs = [_fair_sharing_spec("dynaq"), _fair_sharing_spec("besteffort")]
    fanned = parallel_map(specs, jobs=2)
    assert all(outcome.ok for outcome in fanned)
    serial = parallel_map(specs, jobs=1)
    assert ([_canon(outcome.value) for outcome in fanned]
            == [_canon(outcome.value) for outcome in serial])
    # The worker round-trip is faithful to an in-process run.
    direct = fair_sharing_diagnosis_job(scheme="dynaq", time_unit_s=0.02)
    assert _canon(fanned[0].value) == _canon(direct)


# -- determinism: kill + restore ----------------------------------------------

def test_killed_and_restored_dump_matches_uninterrupted(tmp_path, capsys):
    # 0.0157 s cadence: the kill lands mid-window (windows are 1 ms).
    base_args = ["fair-sharing", "--schemes", "dynaq",
                 "--time-unit", "0.02", "--snapshot-every", "0.0157"]
    baseline = tmp_path / "base.diag.json"
    code, _ = run_cli(capsys, *base_args,
                      "--snapshot-out", str(tmp_path / "a.snap"),
                      "--diagnose-out", str(baseline))
    assert code == 0

    snap = tmp_path / "b.snap"
    partial = tmp_path / "partial.diag.json"
    code, _ = run_cli(capsys, *base_args, "--snapshot-out", str(snap),
                      "--snapshot-kill-after", "1",
                      "--diagnose-out", str(partial))
    assert code == 3
    # The partial dump exists but collected nothing (the run died).
    assert load_diagnosis(partial)["worlds"] == 0

    restored = tmp_path / "restored.diag.json"
    code, _ = run_cli(capsys, "fair-sharing", "--schemes", "dynaq",
                      "--time-unit", "0.02", "--restore", str(snap),
                      "--diagnose-out", str(restored))
    assert code == 0
    assert restored.read_bytes() == baseline.read_bytes()


# -- CLI ----------------------------------------------------------------------

def test_cli_diagnose_roundtrip(tmp_path, capsys):
    dump_path = tmp_path / "fs.diag.json"
    code, out = run_cli(capsys, "fair-sharing", "--schemes", "dynaq",
                        "--time-unit", "0.02",
                        "--diagnose-out", str(dump_path))
    assert code == 0
    assert f"wrote {dump_path}" in out

    document = load_diagnosis(dump_path)
    assert document["schema"] == DIAGNOSIS_SCHEMA
    assert document["ports"]

    code, out = run_cli(capsys, "diagnose", str(dump_path))
    assert code == 0
    assert "diagnosis:" in out
    assert "victims by max queueing delay" in out

    query = DiagnosisQuery(document)
    victim = query.victims(top=1)[0]["flow"]
    code, out = run_cli(capsys, "diagnose", str(dump_path),
                        "--victim-flow", str(victim))
    assert code == 0
    assert f"victim flow {victim}" in out
    assert "culprits" in out

    label = query.labels()[0]
    code, out = run_cli(capsys, "diagnose", str(dump_path),
                        "--port", label, "--window", "0:5000000")
    assert code == 0
    assert "fill report" in out


def test_cli_diagnose_window_width_flag(tmp_path, capsys):
    dump_path = tmp_path / "w.diag.json"
    code, _ = run_cli(capsys, "fair-sharing", "--schemes", "dynaq",
                      "--time-unit", "0.02",
                      "--diagnose-out", str(dump_path),
                      "--diagnose-window", "0.002")
    assert code == 0
    assert load_diagnosis(dump_path)["window_ns"] == 2_000_000


def test_cli_rejects_parallel_diagnosis(tmp_path, capsys):
    code, out = run_cli(capsys, "fct", "--schemes", "dynaq",
                        "--loads", "0.5", "--flows", "10", "--jobs", "2",
                        "--diagnose-out", str(tmp_path / "x.json"))
    assert code == 2
    assert "serial run" in out
    code, out = run_cli(capsys, "incast", "--schemes", "dynaq",
                        "--jobs", "2",
                        "--diagnose-out", str(tmp_path / "y.json"))
    assert code == 2
    assert "serial run" in out


def test_cli_percentile_needs_fct_join(tmp_path, capsys):
    path = tmp_path / "empty.diag.json"
    write_diagnosis(path, {"schema": DIAGNOSIS_SCHEMA,
                           "window_ns": 1_000_000, "worlds": 0,
                           "ports": {}})
    code, out = run_cli(capsys, "diagnose", str(path),
                        "--victim-percentile", "99")
    assert code == 2
    assert "--join-fct" in out


def test_load_diagnosis_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{not json")
    with pytest.raises(ConfigurationError):
        load_diagnosis(path)
    path.write_text(json.dumps({"schema": "other/1"}))
    with pytest.raises(ConfigurationError):
        load_diagnosis(path)
    path.write_text(json.dumps({"schema": DIAGNOSIS_SCHEMA}))
    with pytest.raises(ConfigurationError):
        load_diagnosis(path)


# -- query layer --------------------------------------------------------------

def test_percentile_victim_nearest_rank():
    rows = [(1, 1.0, 10), (2, 2.0, 10), (3, 3.0, 10), (4, 4.0, 10)]
    assert percentile_victim(rows, 50) == (2, 2.0)
    assert percentile_victim(rows, 100) == (4, 4.0)
    assert percentile_victim(rows, 99) == (4, 4.0)
    with pytest.raises(ConfigurationError):
        percentile_victim(rows, 0)


def test_query_resolve_port_and_culprits():
    document = {
        "schema": DIAGNOSIS_SCHEMA, "window_ns": 100, "worlds": 1,
        "ports": {
            "dynaq/p0": {
                "port": "p0", "window_ns": 100, "updates": 3,
                "snapshots_taken": 0,
                "windows": {"0": {"1": {"5": 300, "6": 700}}},
                "flows": {"5": {"packets": 1, "total_delay_ns": 80,
                                "max_delay_ns": 80, "max_enqueued_ns": 10,
                                "max_dequeued_ns": 90, "max_queue": 1}},
                "drops": [], "snapshots": [],
            },
        },
    }
    query = DiagnosisQuery(document)
    assert query.resolve_port("p0") == ["dynaq/p0"]
    with pytest.raises(ConfigurationError):
        query.resolve_port("nope")
    report = query.culprits(5)
    assert report["queue"] == 1
    assert report["rows"] == [(6, 700), (5, 300)]
    with pytest.raises(ConfigurationError):
        query.culprits(99)
