"""Unit tests for seeded random streams and the stable hash."""

from repro.sim.randomness import RandomStreams, stable_hash


def test_same_seed_same_stream():
    a = RandomStreams(7).stream("flows")
    b = RandomStreams(7).stream("flows")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(7)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(1)
    assert streams.stream("x") is streams.stream("x")


def test_draws_on_one_stream_do_not_perturb_another():
    reference = RandomStreams(3)
    expected = [reference.stream("b").random() for _ in range(3)]

    perturbed = RandomStreams(3)
    perturbed.stream("a").random()  # extra draw elsewhere
    actual = [perturbed.stream("b").random() for _ in range(3)]
    assert actual == expected


def test_spawn_derives_independent_child():
    parent = RandomStreams(5)
    child1 = parent.spawn("rep1")
    child2 = parent.spawn("rep2")
    assert child1.stream("x").random() != child2.stream("x").random()


def test_spawn_is_deterministic():
    a = RandomStreams(5).spawn("rep1").stream("x").random()
    b = RandomStreams(5).spawn("rep1").stream("x").random()
    assert a == b


def test_stable_hash_is_stable():
    assert stable_hash("a", 1, "b") == stable_hash("a", 1, "b")


def test_stable_hash_differs_on_parts():
    assert stable_hash("a", 1) != stable_hash("a", 2)
    assert stable_hash("ab") != stable_hash("a", "b")


def test_stable_hash_known_width():
    value = stable_hash("ecmp", 42)
    assert 0 <= value < 2 ** 64
