"""Tests for fairness, FCT statistics, throughput and queue-length meters."""

import pytest

from repro.metrics.collector import DropMarkCollector
from repro.metrics.fairness import (
    jain_index,
    throughput_shares,
    weighted_jain_index,
)
from repro.metrics.fct import (
    FCTCollector,
    mean_fct_ms,
    normalize_to,
    percentile_fct_ms,
)
from repro.metrics.queuelen import QueueLengthSampler
from repro.metrics.throughput import PortThroughputMeter
from repro.net.port import EgressPort
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.trace import TOPIC_PACKET_DROP, TraceBus

from conftest import make_packet


# -- Jain index --------------------------------------------------------------

def test_jain_perfect_fairness():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_total_unfairness():
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_known_value():
    # (1+2+3)^2 / (3 * (1+4+9)) = 36/42
    assert jain_index([1, 2, 3]) == pytest.approx(36 / 42)


def test_jain_empty_and_zero():
    assert jain_index([]) == 1.0
    assert jain_index([0, 0]) == 1.0


def test_jain_rejects_negative():
    with pytest.raises(ValueError):
        jain_index([-1, 2])


def test_weighted_jain_scores_weighted_shares_as_fair():
    # Rates exactly proportional to weights 4:3:2:1 -> perfect score.
    assert weighted_jain_index([4, 3, 2, 1],
                               [4, 3, 2, 1]) == pytest.approx(1.0)


def test_weighted_jain_penalises_equal_split_under_weights():
    score = weighted_jain_index([1, 1, 1, 1], [4, 3, 2, 1])
    assert score < 0.9


def test_weighted_jain_validation():
    with pytest.raises(ValueError):
        weighted_jain_index([1], [1, 2])
    with pytest.raises(ValueError):
        weighted_jain_index([1, 1], [1, 0])


def test_throughput_shares():
    assert throughput_shares([3, 1]) == [0.75, 0.25]
    assert throughput_shares([0, 0]) == [0.0, 0.0]


# -- FCT statistics ------------------------------------------------------------

def filled_collector():
    collector = FCTCollector()
    collector.record(1, 50_000, 1_000_000)        # small, 1 ms
    collector.record(2, 100_000, 3_000_000)       # small (boundary), 3 ms
    collector.record(3, 1_000_000, 10_000_000)    # medium, 10 ms
    collector.record(4, 50_000_000, 400_000_000)  # large, 400 ms
    return collector


def test_flow_size_buckets():
    collector = filled_collector()
    assert len(collector.small_flows()) == 2
    assert len(collector.medium_flows()) == 1
    assert len(collector.large_flows()) == 1
    assert len(collector.all_flows()) == 4


def test_summary_values():
    summary = filled_collector().summary()
    assert summary["avg_overall_ms"] == pytest.approx(103.5)
    assert summary["avg_small_ms"] == pytest.approx(2.0)
    assert summary["avg_large_ms"] == pytest.approx(400.0)
    assert summary["p99_small_ms"] == pytest.approx(2.98, abs=0.01)


def test_summary_with_no_flows():
    summary = FCTCollector().summary()
    assert all(value is None for value in summary.values())


def test_mean_fct_empty():
    assert mean_fct_ms([]) is None


def test_percentile_interpolation():
    collector = FCTCollector()
    for i in range(1, 101):
        collector.record(i, 1_000, i * 1_000_000)
    assert percentile_fct_ms(collector.records, 50) == pytest.approx(50.5)
    assert percentile_fct_ms(collector.records, 99) == pytest.approx(99.01)
    assert percentile_fct_ms(collector.records, 100) == pytest.approx(100.0)
    assert percentile_fct_ms(collector.records, 0) == pytest.approx(1.0)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile_fct_ms(filled_collector().records, 150)


def test_negative_fct_rejected():
    with pytest.raises(ValueError):
        FCTCollector().record(1, 100, -5)


def test_normalize_to():
    assert normalize_to(2.0, 3.0) == 1.5
    assert normalize_to(None, 3.0) is None
    assert normalize_to(2.0, None) is None
    assert normalize_to(0.0, 3.0) is None


# -- port meters -----------------------------------------------------------------

def metered_port():
    sim = Simulator()
    trace = TraceBus()
    port = EgressPort(
        sim, "p0", rate_bps=10 ** 9, prop_delay_ns=0, buffer_bytes=100_000,
        scheduler=DRRScheduler([1500] * 2),
        buffer_manager=BestEffortBuffer(), trace=trace)

    class Sink:
        def receive(self, packet):
            pass

    port.connect(Sink())
    return sim, port


def test_throughput_meter_measures_rate():
    sim, port = metered_port()
    meter = PortThroughputMeter(sim, port, interval_ns=1_000_000)  # 1 ms

    def inject():
        port.send(make_packet(1500, service_class=0))
        if sim.now < 900_000:
            sim.schedule(12_000, inject)  # back-to-back at line rate

    inject()
    sim.run(until=1_000_000)
    sample = meter.samples[0]
    # Line-rate injection into queue 0 -> ~1 Gbps measured.
    assert sample.per_queue_bps[0] == pytest.approx(1e9, rel=0.1)
    assert sample.per_queue_bps[1] == 0.0
    assert sample.aggregate_bps == sample.per_queue_bps[0]


def test_throughput_meter_trace_requirement():
    # The subscriber backend needs the port's trace bus; the batched
    # backend (the fast-path default) reads the port's transmit
    # counters directly and works without one.
    sim = Simulator()
    port = EgressPort(
        sim, "p", rate_bps=10 ** 9, prop_delay_ns=0, buffer_bytes=10_000,
        scheduler=DRRScheduler([1500]), buffer_manager=BestEffortBuffer())
    with pytest.raises(ValueError):
        PortThroughputMeter(sim, port, interval_ns=1_000, batched=False)
    meter = PortThroughputMeter(sim, port, interval_ns=1_000, batched=True)
    assert meter.samples == []


def test_throughput_meter_interval_validation():
    sim, port = metered_port()
    with pytest.raises(ValueError):
        PortThroughputMeter(sim, port, interval_ns=0)


def test_queue_length_sampler_records_events():
    sim, port = metered_port()
    sampler = QueueLengthSampler(port)
    for _ in range(3):
        port.send(make_packet(1500, service_class=1))
    sim.run()
    # 3 enqueues + 3 dequeues = 6 samples.
    assert len(sampler.samples) == 6
    assert sampler.peak_occupancy(1) == 3_000  # two buffered behind one
    assert sampler.mean_occupancy(1) > 0
    assert sampler.series(0) == [0] * 6


def test_queue_length_sampler_max_samples():
    sim, port = metered_port()
    sampler = QueueLengthSampler(port, max_samples=2)
    for _ in range(5):
        port.send(make_packet(1500))
    sim.run()
    assert len(sampler.samples) == 2


def test_drop_mark_collector():
    trace = TraceBus()
    collector = DropMarkCollector(trace)
    trace.publish(TOPIC_PACKET_DROP, port="p0", time=0,
                  packet=make_packet(), queue=0, detail="port buffer full",
                  queue_bytes=(0,))
    assert collector.total_drops == 1
    assert collector.drops_by_reason["port buffer full"] == 1
    summary = collector.as_dict()
    assert summary["drops"] == 1 and summary["marks"] == 0
    assert summary["drops_by_reason"] == {"port buffer full": 1}
    assert summary["drops_by_port"] == {"p0": 1}
    assert summary["marks_by_port"] == {}
