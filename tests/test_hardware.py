"""Unit tests for the §IV-A hardware cost model."""

import pytest

from repro.core.hardware import (
    CycleBudget,
    algorithm1_cycles,
    cost_table,
    relative_overhead,
)


def test_paper_headline_seven_cycles():
    """8-queue port: 1 + 3 + 2 + 1 = 7 cycles (paper §IV-A)."""
    budget = algorithm1_cycles(8)
    assert budget.threshold_check == 1
    assert budget.victim_search == 3
    assert budget.protection_check == 2
    assert budget.threshold_exchange == 1
    assert budget.total == 7


def test_four_queue_port_costs_six_cycles():
    assert algorithm1_cycles(4).total == 6


def test_trident3_overhead_is_0_88_percent():
    overhead = relative_overhead(8)
    assert overhead == pytest.approx(7 / 800)
    assert round(100 * overhead, 2) == 0.88


def test_relative_overhead_scales_with_clock():
    # A 2 GHz chip has twice the cycle budget per 800 ns.
    assert relative_overhead(8, clock_ghz=2.0) == pytest.approx(7 / 1600)


def test_invalid_inputs_raise():
    with pytest.raises(ValueError):
        algorithm1_cycles(0)
    with pytest.raises(ValueError):
        relative_overhead(8, packet_delay_ns=0)


def test_cost_table_rows():
    rows = cost_table()
    assert [row["queues"] for row in rows] == [4, 8]
    eight = rows[1]
    assert eight["total_cycles"] == 7
    assert eight["trident3_overhead_pct"] == pytest.approx(0.875)


def test_cycle_budget_total_property():
    assert CycleBudget(1, 2, 3, 4).total == 10
