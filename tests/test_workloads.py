"""Tests for the empirical workloads and the Poisson flow generator."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.units import gbps
from repro.workloads.datasets import (
    CACHE,
    DATA_MINING,
    HADOOP,
    WEB_SEARCH,
    workload,
    workload_names,
)
from repro.workloads.distributions import EmpiricalCDF
from repro.workloads.flowgen import (
    arrival_rate_per_second,
    generate_flows,
    iter_flows,
)


# -- EmpiricalCDF ------------------------------------------------------------

def simple_cdf():
    return EmpiricalCDF("simple", [(100, 0.0), (1_000, 0.5), (10_000, 1.0)])


def test_cdf_validation_rejects_bad_points():
    with pytest.raises(ValueError):
        EmpiricalCDF("x", [(100, 0.0)])                    # too few
    with pytest.raises(ValueError):
        EmpiricalCDF("x", [(100, 0.5), (50, 1.0)])         # sizes decrease
    with pytest.raises(ValueError):
        EmpiricalCDF("x", [(100, 0.5), (200, 0.4)])        # probs decrease
    with pytest.raises(ValueError):
        EmpiricalCDF("x", [(100, 0.0), (200, 0.9)])        # no endpoint
    with pytest.raises(ValueError):
        EmpiricalCDF("x", [(0, 0.0), (200, 1.0)])          # zero size


def test_inverse_endpoints():
    cdf = simple_cdf()
    assert cdf.inverse(0.0) == 100
    assert cdf.inverse(1.0) == 10_000


def test_inverse_interpolates():
    cdf = simple_cdf()
    assert cdf.inverse(0.25) == 550       # halfway from 100 to 1000
    assert cdf.inverse(0.75) == 5_500


def test_inverse_out_of_range():
    with pytest.raises(ValueError):
        simple_cdf().inverse(1.5)


def test_sample_within_support():
    cdf = simple_cdf()
    rng = random.Random(1)
    for _ in range(500):
        assert 100 <= cdf.sample(rng) <= 10_000


def test_mean_bytes_piecewise():
    cdf = simple_cdf()
    # 0.5*(100+1000)/2 + 0.5*(1000+10000)/2 = 275 + 2750 = 3025
    assert cdf.mean_bytes() == pytest.approx(3_025)


def test_cdf_at_roundtrips_inverse():
    cdf = simple_cdf()
    for u in (0.1, 0.3, 0.5, 0.8):
        assert cdf.cdf_at(cdf.inverse(u)) == pytest.approx(u, abs=0.01)


def test_cdf_at_boundaries():
    cdf = simple_cdf()
    assert cdf.cdf_at(50) == 0.0
    assert cdf.cdf_at(10_000) == 1.0
    assert cdf.cdf_at(999_999) == 1.0


def test_truncated_clips_tail():
    truncated = DATA_MINING.truncated(1_000_000)
    assert truncated.sizes[-1] == 1_000_000
    assert truncated.probs[-1] == 1.0
    rng = random.Random(2)
    assert all(truncated.sample(rng) <= 1_000_000 for _ in range(300))


def test_truncated_above_support_is_identity():
    truncated = simple_cdf().truncated(10 ** 9)
    assert truncated.sizes == simple_cdf().sizes


def test_truncated_below_support_rejected():
    with pytest.raises(ValueError):
        simple_cdf().truncated(50)


@given(st.floats(min_value=0.0, max_value=1.0))
def test_inverse_is_monotone(u):
    cdf = simple_cdf()
    if u < 1.0:
        assert cdf.inverse(u) <= cdf.inverse(min(u + 0.01, 1.0))


# -- the four paper workloads -------------------------------------------------

def test_workload_lookup():
    assert workload("web_search") is WEB_SEARCH
    with pytest.raises(KeyError):
        workload("bitcoin")


def test_workload_names_order():
    assert workload_names() == [
        "web_search", "data_mining", "cache", "hadoop"]


def test_all_workloads_are_valid_cdfs():
    for name in workload_names():
        cdf = workload(name)
        assert cdf.probs[-1] == 1.0
        assert cdf.mean_bytes() > 0


def test_data_mining_half_of_flows_are_tiny():
    """Paper Fig. 2: ~50 % of data-mining flows are about 1 KB."""
    assert DATA_MINING.cdf_at(1_100) == pytest.approx(0.5, abs=0.02)


def test_data_mining_bytes_come_from_elephants():
    """Paper Fig. 2: ~90 % of bytes from flows larger than 100 MB."""
    assert DATA_MINING.bytes_fraction_above(100_000_000) > 0.55


def test_web_search_is_least_skewed():
    """Web search has the largest share of mid-size flows, which is why
    the paper uses it for the testbed (many concurrent flows)."""
    mid_share = {
        name: workload(name).cdf_at(10_000_000) - workload(name).cdf_at(100_000)
        for name in workload_names()
    }
    assert mid_share["web_search"] == max(mid_share.values())


def test_workload_means_are_heavy_tailed():
    for name in workload_names():
        cdf = workload(name)
        median = cdf.inverse(0.5)
        assert cdf.mean_bytes() > median  # mean far above median


# -- flow generation --------------------------------------------------------------

def test_arrival_rate_formula():
    # 50 % of 1 Gbps with 1 MB mean flows -> 62.5 flows/s.
    rate = arrival_rate_per_second(0.5, gbps(1), 1_000_000)
    assert rate == pytest.approx(62.5)


def test_arrival_rate_validation():
    with pytest.raises(ValueError):
        arrival_rate_per_second(0.0, gbps(1), 1_000)
    with pytest.raises(ValueError):
        arrival_rate_per_second(0.5, gbps(1), 0)


def test_generate_flows_count_and_ordering():
    specs = generate_flows(
        distribution=WEB_SEARCH, load=0.5, link_rate_bps=gbps(1),
        num_flows=200, rng=random.Random(3))
    assert len(specs) == 200
    times = [spec.arrival_ns for spec in specs]
    assert times == sorted(times)
    assert all(spec.size_bytes > 0 for spec in specs)


def test_generate_flows_rate_approximates_load():
    specs = generate_flows(
        distribution=WEB_SEARCH, load=0.6, link_rate_bps=gbps(1),
        num_flows=3_000, rng=random.Random(4))
    horizon_s = specs[-1].arrival_ns / 1e9
    offered = sum(spec.size_bytes for spec in specs) * 8 / horizon_s
    assert offered == pytest.approx(0.6 * 1e9, rel=0.25)


def test_generate_flows_deterministic_per_seed():
    a = generate_flows(distribution=CACHE, load=0.4,
                       link_rate_bps=gbps(1), num_flows=50,
                       rng=random.Random(7))
    b = generate_flows(distribution=CACHE, load=0.4,
                       link_rate_bps=gbps(1), num_flows=50,
                       rng=random.Random(7))
    assert a == b


def test_iter_flows_matches_generate():
    gen = iter_flows(distribution=HADOOP, load=0.3,
                     link_rate_bps=gbps(1), rng=random.Random(9))
    first = [next(gen) for _ in range(10)]
    expected = generate_flows(distribution=HADOOP, load=0.3,
                              link_rate_bps=gbps(1), num_flows=10,
                              rng=random.Random(9))
    assert first == expected


def test_generate_flows_rejects_zero_count():
    with pytest.raises(ValueError):
        generate_flows(distribution=CACHE, load=0.5,
                       link_rate_bps=gbps(1), num_flows=0,
                       rng=random.Random(1))
