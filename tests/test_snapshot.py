"""Snapshot/restore: file integrity, byte-identical resume, triage.

The differential tests are the heart of this file: a run that is killed
at an autosave and restored must produce the same trace bytes, the same
samples, and the same engine op counters as a run that was never
interrupted (given the same autosave cadence, since every autosave tick
consumes one event sequence number).  Both the pooled FAST engine and
the bare-Event REFERENCE engine are covered.
"""

import hashlib
import json
import pickle

import pytest

from repro.errors import (
    ConfigurationError,
    SimulationError,
    SnapshotError,
    SnapshotHalt,
    SnapshotIntegrityError,
)
from repro.experiments.testbed import DEFAULT_CONFIG, _prepare_bulk
from repro.perf.config import fast_mode, reference_mode
from repro.sim.engine import Simulator
from repro.sim.trace import TOPIC_SNAPSHOT_LIFECYCLE, TraceBus
from repro.sim.units import milliseconds
from repro.snapshot import (
    SimWorld,
    SnapshotManager,
    SnapshotPolicy,
    restore_world,
    run_world,
)
from repro.telemetry import TelemetrySession

MODES = [fast_mode, reference_mode]


# -- snapshot file format -----------------------------------------------------

def test_save_load_roundtrip_with_header(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save({"a": [1, 2]}, path, kind="unit", sim_now=7,
                 meta={"k": "v"})
    obj, header = manager.load(path, expect_kind="unit")
    assert obj == {"a": [1, 2]}
    assert header["kind"] == "unit"
    assert header["sim_now"] == 7
    assert header["meta"]["k"] == "v"


def test_peek_reads_header_without_unpickling(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save([1, 2, 3], path, kind="unit", sim_now=3)
    header = manager.peek(path)
    assert header["kind"] == "unit"
    assert header["payload_bytes"] > 0


def test_corrupted_payload_is_detected(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save({"a": 1}, path, kind="unit")
    blob = bytearray(path.read_bytes())
    blob[-1] ^= 0xFF
    path.write_bytes(bytes(blob))
    with pytest.raises(SnapshotIntegrityError):
        manager.load(path)


def test_truncated_payload_is_detected(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save(list(range(100)), path, kind="unit")
    path.write_bytes(path.read_bytes()[:-10])
    with pytest.raises(SnapshotIntegrityError):
        manager.load(path)


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "x.snap"
    header = json.dumps({"magic": "not-a-snapshot", "version": 1})
    path.write_bytes(header.encode() + b"\n" + b"payload")
    with pytest.raises(SnapshotError):
        SnapshotManager().load(path)


def test_unknown_version_rejected(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save({"a": 1}, path, kind="unit")
    header_line, _, rest = path.read_bytes().partition(b"\n")
    header = json.loads(header_line)
    header["version"] = 99
    path.write_bytes(json.dumps(header).encode() + b"\n" + rest)
    with pytest.raises(SnapshotError):
        manager.load(path)


def test_kind_mismatch_rejected(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save({"a": 1}, path, kind="bulk")
    with pytest.raises(SnapshotError, match="kind"):
        manager.load(path, expect_kind="fct")


def test_unpicklable_payload_fails_cleanly(tmp_path):
    path = tmp_path / "x.snap"
    with pytest.raises(SnapshotError):
        SnapshotManager().save(lambda: 0, path, kind="unit")
    assert not path.exists()  # nothing half-written is left behind


def test_autosave_atomically_replaces_previous(tmp_path):
    manager = SnapshotManager()
    path = tmp_path / "x.snap"
    manager.save({"save": 1}, path, kind="unit")
    manager.save({"save": 2}, path, kind="unit")
    obj, _ = manager.load(path)
    assert obj == {"save": 2}


# -- policy validation --------------------------------------------------------

def test_policy_rejects_nonpositive_cadence():
    with pytest.raises(ConfigurationError):
        SnapshotPolicy(every_ns=0, out="x.snap")


def test_policy_requires_out_for_autosave():
    with pytest.raises(ConfigurationError, match="snapshot-out"):
        SnapshotPolicy(every_ns=1000)


def test_policy_kill_drill_requires_cadence():
    with pytest.raises(ConfigurationError, match="snapshot-every"):
        SnapshotPolicy(halt_after_saves=2)


def test_drain_world_requires_chunk():
    with pytest.raises(ConfigurationError):
        SimWorld(kind="unit", net=None, finish=lambda w: None,
                 horizon_ns=10, drain_key="app")


# -- differential resume ------------------------------------------------------

def _build_bulk(trace=None):
    """A small fig.-5-style staggered-stop bulk world."""
    return _prepare_bulk(
        "dynaq", flows_per_queue=[2, 2, 2, 2],
        quanta=[DEFAULT_CONFIG.quantum_bytes] * 4,
        stop_times_ns=[milliseconds(8), milliseconds(12),
                       milliseconds(16), None],
        duration_ns=milliseconds(24),
        sample_interval_ns=milliseconds(3),
        config=DEFAULT_CONFIG, trace=trace)


def _op_counters(world):
    sim = world.net.sim
    return (sim.now, sim.events_scheduled, sim.events_executed,
            sim.events_cancelled)


def _sha256(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_killed_and_restored_run_is_byte_identical(tmp_path, mode):
    every_ns = milliseconds(7)

    with mode():
        # Arm A: uninterrupted, same autosave cadence.
        trace_a = tmp_path / "a.jsonl"
        session = TelemetrySession(trace_out=trace_a)
        with session:
            world_a = _build_bulk(session.trace)
            run_world(world_a, SnapshotPolicy(
                every_ns=every_ns, out=tmp_path / "a.snap"))
            result_a = world_a.finish(world_a)
            counters_a = _op_counters(world_a)

        # Arm B: killed by the drill right after the 2nd autosave...
        trace_b = tmp_path / "b.jsonl"
        snap_b = tmp_path / "b.snap"
        session = TelemetrySession(trace_out=trace_b)
        policy_b = SnapshotPolicy(every_ns=every_ns, out=snap_b,
                                  halt_after_saves=2)
        with session:
            world_b = _build_bulk(session.trace)
            with pytest.raises(SnapshotHalt):
                run_world(world_b, policy_b)

        header = SnapshotManager().peek(snap_b)
        assert header["kind"] == "bulk"
        assert header["meta"]["saves"] == 2
        assert header["sim_now"] == 2 * every_ns

        # ...then restored under the *same* policy: the drill counter
        # rode inside the snapshot, so it never re-trips.
        world_r = restore_world(snap_b, expect_kind="bulk")
        assert world_r.restored
        assert world_r.saves == 2
        run_world(world_r, policy_b)
        result_r = world_r.finish(world_r)
        counters_r = _op_counters(world_r)
        world_r.close_recorders()
        assert world_r.saves > 2  # kept autosaving after the restore

    assert result_r.scheme == result_a.scheme
    assert result_r.samples == result_a.samples
    assert counters_r == counters_a
    assert _sha256(trace_b) == _sha256(trace_a)


@pytest.mark.parametrize("base", ["fast", "reference"])
def test_kill_restore_with_calendar_and_batched_advance(tmp_path, base,
                                                        monkeypatch):
    """Kill/restore stays byte-identical with the calendar queue engaged
    and batched link advance active mid-flight — the two perf paths that
    restructure the event loop itself, under both perf bases (REFERENCE
    gets just these two switches forced on)."""
    from repro.perf.config import FAST, REFERENCE, use_config

    monkeypatch.setenv("REPRO_CALENDAR_WARMUP", "8")
    # Batching is only statically eligible on ports whose dequeue hook
    # was elided as a provable no-op, which is inline_hot_calls' job —
    # so the REFERENCE variant needs that switch too.
    config = FAST if base == "fast" else REFERENCE.clone(
        calendar_queue=True, batched_link_advance=True,
        inline_hot_calls=True)
    every_ns = milliseconds(7)

    with use_config(config):
        trace_a = tmp_path / "a.jsonl"
        session = TelemetrySession(trace_out=trace_a)
        with session:
            world_a = _build_bulk(session.trace)
            run_world(world_a, SnapshotPolicy(
                every_ns=every_ns, out=tmp_path / "a.snap"))
            result_a = world_a.finish(world_a)
            counters_a = _op_counters(world_a)
            # The premise: the calendar really did engage, and the
            # bottleneck ran with batched link advance armed (only
            # plain-DRR ports qualify, so `any`, not `all`).
            assert world_a.net.sim._cal is not None
            assert any(port._batch_ok for port in world_a.iter_ports())

        trace_b = tmp_path / "b.jsonl"
        snap_b = tmp_path / "b.snap"
        session = TelemetrySession(trace_out=trace_b)
        policy_b = SnapshotPolicy(every_ns=every_ns, out=snap_b,
                                  halt_after_saves=1)
        with session:
            world_b = _build_bulk(session.trace)
            with pytest.raises(SnapshotHalt):
                run_world(world_b, policy_b)
            assert world_b.net.sim._cal is not None  # engaged pre-kill

        world_r = restore_world(snap_b, expect_kind="bulk")
        run_world(world_r, policy_b)
        result_r = world_r.finish(world_r)
        counters_r = _op_counters(world_r)
        world_r.close_recorders()

    assert result_r.samples == result_a.samples
    assert counters_r == counters_a
    assert _sha256(trace_b) == _sha256(trace_a)


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_restore_without_policy_keeps_sequence_parity(tmp_path, mode):
    """A bare restore (no --snapshot-every) still matches byte-for-byte:
    the world remembers its cadence and keeps consuming one sequence
    number per tick even though nothing is written."""
    every_ns = milliseconds(5)
    with mode():
        world_a = _build_bulk()
        run_world(world_a, SnapshotPolicy(every_ns=every_ns,
                                          out=tmp_path / "a.snap"))
        counters_a = _op_counters(world_a)
        samples_a = world_a.finish(world_a).samples

        snap = tmp_path / "b.snap"
        world_b = _build_bulk()
        with pytest.raises(SnapshotHalt):
            run_world(world_b, SnapshotPolicy(
                every_ns=every_ns, out=snap, halt_after_saves=1))

        world_r = restore_world(snap)
        run_world(world_r)  # no policy at all
        assert world_r.saves == 1  # nothing new was written
        assert _op_counters(world_r) == counters_a
        assert world_r.finish(world_r).samples == samples_a


# -- restored heap semantics --------------------------------------------------

class _Hits:
    """Picklable callback target with a stable bound-method identity."""

    def __init__(self):
        self.tags = []
        self.cb = self.hit  # one bound method, shared through the pickle

    def hit(self, tag):
        self.tags.append(tag)


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_stale_generation_cancel_is_noop_across_restore(tmp_path, mode):
    with mode():
        sim = Simulator()
        hits = _Hits()
        first = sim.schedule(5, hits.cb, "early")
        stale_gen = first.gen
        sim.run(until=5)
        assert hits.tags == ["early"]
        # Pooled engines recycle `first`'s object for this new event
        # (gen bumps); the reference engine allocates a fresh one and
        # leaves `first` consumed.  Either way the retained handle is
        # stale now.
        later = sim.schedule(10, hits.cb, "late")
        if sim.pooling:
            assert later is first and later.gen == stale_gen + 1

        manager = SnapshotManager()
        path = tmp_path / "sim.snap"
        manager.save({"sim": sim, "hits": hits, "first": first,
                      "later": later}, path, kind="unit",
                     sim_now=sim.now)
        state, _ = manager.load(path)
        sim2, hits2 = state["sim"], state["hits"]

        # The stale handle stays a no-op on the restored heap.
        assert sim2.pending() == 1
        sim2.cancel_versioned(state["first"], stale_gen)
        assert sim2.pending() == 1
        sim2.check_consistency()

        # pending_events_for still finds the live event by identity.
        pending = sim2.pending_events_for(hits2.cb)
        assert [event.args for event in pending] == [("late",)]

        # Cancelling with the *current* generation does take effect.
        live = state["later"]
        sim2.cancel_versioned(live, live.gen)
        assert sim2.pending() == 0
        sim2.check_consistency()
        sim2.run()
        assert hits2.tags == ["early"]  # "late" was cancelled


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_restored_heap_executes_pending_events_once(tmp_path, mode):
    with mode():
        sim = Simulator()
        hits = _Hits()
        for delay, tag in [(5, "a"), (10, "b"), (15, "c")]:
            sim.schedule(delay, hits.cb, tag)
        sim.run(until=5)
        manager = SnapshotManager()
        path = tmp_path / "sim.snap"
        manager.save({"sim": sim, "hits": hits}, path, kind="unit")
        state, _ = manager.load(path)
        sim2, hits2 = state["sim"], state["hits"]
        sim2.run()
        assert hits2.tags == ["a", "b", "c"]
        assert sim2.pending() == 0
        sim2.check_consistency()


# -- post-exception resumability ----------------------------------------------

class _Bomb:
    def explode(self):
        raise RuntimeError("injected failure")


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_exception_escaping_callback_leaves_resumable_state(tmp_path, mode):
    with mode():
        sim = Simulator()
        hits = _Hits()
        bomb = _Bomb()
        sim.schedule(1, hits.cb, "before")
        sim.schedule(2, bomb.explode)
        sim.schedule(3, hits.cb, "after")
        with pytest.raises(RuntimeError, match="injected"):
            sim.run()
        # The raising event was consumed *before* its callback ran, so
        # heap and counters agree and the state is snapshot-worthy.
        sim.check_consistency()
        assert hits.tags == ["before"]
        assert sim.pending() == 1

        manager = SnapshotManager()
        path = tmp_path / "postmortem.snap"
        manager.save({"sim": sim, "hits": hits}, path, kind="unit")
        state, _ = manager.load(path)
        sim2, hits2 = state["sim"], state["hits"]
        sim2.run()  # the crash never re-fires; the tail completes
        assert hits2.tags == ["before", "after"]
        sim2.check_consistency()


def _raise_simulation_error():
    raise SimulationError("injected mid-run failure")


@pytest.mark.parametrize("mode", MODES, ids=["fast", "reference"])
def test_simulation_error_writes_restorable_triage_bundle(tmp_path, mode):
    with mode():
        world = _build_bulk()
        world.net.sim.schedule(milliseconds(5), _raise_simulation_error)
        policy = SnapshotPolicy(triage_dir=tmp_path / "triage")
        with pytest.raises(SimulationError, match="injected"):
            run_world(world, policy)

        assert world.last_triage is not None
        bundle = tmp_path / "triage"
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["reason"] == "simulation-error"
        assert manifest["heap_consistent"] is True
        assert manifest["sim_now"] == milliseconds(5)
        profile = (bundle / "profile.txt").read_text()
        assert "simulation-error" in profile
        assert "events executed" in profile

        # The post-mortem snapshot is itself restorable: the poisoned
        # event was already consumed, so the run completes this time.
        restored = restore_world(bundle / "snapshot.bin",
                                 expect_kind="bulk")
        run_world(restored)
        assert restored.finish(restored).samples


def test_restore_rejects_non_world_payload(tmp_path):
    path = tmp_path / "x.snap"
    SnapshotManager().save({"not": "a world"}, path, kind="bulk")
    with pytest.raises(SnapshotError, match="SimWorld"):
        restore_world(path)


def test_world_state_survives_a_plain_pickle_cycle():
    """Identity sharing: the heap, ports, and collectors stay one graph."""
    world = pickle.loads(pickle.dumps(_build_bulk()))
    sim = world.net.sim
    assert sim.pending() > 0
    sim.check_consistency()
    for port in world.iter_ports():
        assert port.sim is sim  # no duplicated simulator after restore


# -- snapshot.lifecycle events ------------------------------------------------

class _LifecycleLog:
    """Picklable subscriber so a copy can ride inside the snapshot."""

    def __init__(self):
        self.events = []

    def __call__(self, **payload):
        self.events.append((payload["detail"], payload["saves"]))


def test_autosave_and_restore_publish_lifecycle_events(tmp_path):
    trace = TraceBus()
    log = _LifecycleLog()
    trace.subscribe(TOPIC_SNAPSHOT_LIFECYCLE, log)
    snap = tmp_path / "x.snap"
    policy = SnapshotPolicy(every_ns=milliseconds(7), out=snap,
                            halt_after_saves=1)

    world = _build_bulk(trace)
    with pytest.raises(SnapshotHalt):
        run_world(world, policy)
    assert log.events == [("save", 1)]

    # The world is pickled *before* the save event is published, so the
    # subscriber copy inside the snapshot has not seen its own save; the
    # first thing it observes is the restore.
    restored = restore_world(snap, expect_kind="bulk")
    subscribers = restored.net.trace._subscribers[TOPIC_SNAPSHOT_LIFECYCLE]
    copies = [s for s in subscribers if isinstance(s, _LifecycleLog)]
    assert len(copies) == 1
    assert copies[0].events == [("restore", 1)]

    # Finishing the run keeps autosaving and publishing on the new bus.
    run_world(restored, SnapshotPolicy(every_ns=milliseconds(7), out=snap))
    assert copies[0].events[0] == ("restore", 1)
    assert [d for d, _ in copies[0].events[1:]] == ["save"] * (
        len(copies[0].events) - 1)
    assert copies[0].events[-1][1] == restored.saves


def test_lifecycle_events_without_bus_are_free(tmp_path):
    # No trace bus attached: autosave must not trip over the missing bus.
    world = _build_bulk(trace=None)
    run_world(world, SnapshotPolicy(every_ns=milliseconds(7),
                                    out=tmp_path / "x.snap"))
    assert world.saves > 0
