"""Differential tests: calendar-queue scheduler vs the binary heap.

The calendar queue (``PerfConfig.calendar_queue``) is a pure
scheduling-layer substitution: any interleaving of ``schedule`` /
``at`` / ``cancel`` / ``cancel_versioned`` / ``run`` must execute the
same callbacks in the same order with the same counters, ``pending()``,
``peek_time()``, and ``pending_events_for()`` results as the heap —
including across a pickle snapshot/restore of the mid-run simulator.
The hypothesis suite drives both engines in lockstep through random
interleavings; the deterministic tests pin the two engine-loop bugfixes
(integer horizon past 2**53 ns, pool release on a raising callback).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class Recorder:
    """Picklable callback target: logs ``(tag, now)`` on each firing.

    Tags that are non-negative multiples of five chain a follow-up
    event, so run loops are exercised with mid-run insertions (the case
    that migrates calendar buckets).  Chained tags are negative and
    never chain again.
    """

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def fire(self, tag):
        self.log.append((tag, self.sim.now))
        if tag >= 0 and tag % 5 == 0:
            self.sim.schedule(7, self.fire, -tag - 1)


class World:
    """One simulator plus its recorder and retained event handles.

    Pickled as a single root so handle aliasing survives the snapshot
    exactly the way ``repro.snapshot`` pickles a live world.
    """

    def __init__(self, sim):
        self.sim = sim
        self.rec = Recorder(sim)
        self.handles = []   # [(event, gen-at-schedule-time), ...]

    def apply(self, op, arg):
        sim = self.sim
        if op == "schedule":
            event = sim.schedule(arg, self.rec.fire, len(self.handles))
            self.handles.append((event, event.gen))
        elif op == "at":
            event = sim.at(sim.now + arg, self.rec.fire,
                           len(self.handles))
            self.handles.append((event, event.gen))
        elif op == "cancel":
            if self.handles:
                event, gen = self.handles[arg % len(self.handles)]
                # Plain cancel is only pool-safe while the handle is
                # still current; both worlds make the same recycling
                # decisions, so this guard matches on both or neither.
                if event.gen == gen:
                    sim.cancel(event)
        elif op == "cancel_versioned":
            if self.handles:
                event, gen = self.handles[arg % len(self.handles)]
                sim.cancel_versioned(event, gen)
        elif op == "cancel_stale":
            if self.handles:
                event, gen = self.handles[arg % len(self.handles)]
                sim.cancel_versioned(event, gen - 1)   # never current
        elif op == "run":
            sim.run(until=sim.now + arg)
        elif op == "snapshot":
            return pickle.loads(pickle.dumps(self))
        return self

    def pending_times_for_recorder(self):
        return [(event.time, event.args)
                for event in self.sim.pending_events_for(self.rec.fire)]


def _check_lockstep(a, b):
    assert a.sim.now == b.sim.now
    assert a.sim.pending() == b.sim.pending()
    assert a.sim.peek_time() == b.sim.peek_time()


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 40)),
        st.tuples(st.just("at"), st.integers(0, 40)),
        st.tuples(st.just("cancel"), st.integers(0, 999)),
        st.tuples(st.just("cancel_versioned"), st.integers(0, 999)),
        st.tuples(st.just("cancel_stale"), st.integers(0, 999)),
        st.tuples(st.just("run"), st.integers(0, 25)),
        st.tuples(st.just("snapshot"), st.just(0)),
    ),
    min_size=1, max_size=60)


@pytest.mark.parametrize("warmup", [0, 6])
@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_calendar_matches_heap_on_random_interleavings(warmup, ops):
    """Lockstep differential: same ops → same observable behaviour.

    ``warmup=0`` runs the whole sequence on an engaged calendar;
    ``warmup=6`` starts on the heap and lets the calendar engage
    mid-sequence once enough events accumulate (the production path,
    normally reached via the ``REPRO_CALENDAR_WARMUP`` threshold).
    """
    heap_world = World(Simulator(pooling=True, calendar=False))
    cal_world = World(Simulator(pooling=True, calendar=True,
                                calendar_warmup=warmup))
    for op, arg in ops:
        heap_world = heap_world.apply(op, arg)
        cal_world = cal_world.apply(op, arg)
        _check_lockstep(heap_world, cal_world)
        assert (heap_world.pending_times_for_recorder()
                == cal_world.pending_times_for_recorder())
    # Drain both and compare the full execution record.
    heap_world.sim.run()
    cal_world.sim.run()
    assert heap_world.rec.log == cal_world.rec.log
    for attr in ("now", "events_executed", "events_cancelled"):
        assert (getattr(heap_world.sim, attr)
                == getattr(cal_world.sim, attr)), attr
    assert (heap_world.sim.events_scheduled
            == cal_world.sim.events_scheduled)
    assert heap_world.sim.pending() == cal_world.sim.pending() == 0
    heap_world.sim.check_consistency()
    cal_world.sim.check_consistency()


def test_snapshot_restore_preserves_stale_handle_semantics():
    """A pickled-and-restored calendar honours versioned cancels taken
    before the snapshot, exactly like the heap does."""
    for calendar in (False, True):
        world = World(Simulator(pooling=True, calendar=calendar,
                                calendar_warmup=0))
        world.apply("schedule", 10)
        world.apply("schedule", 20)
        world.apply("run", 15)            # first fires, handle recycled
        restored = world.apply("snapshot", 0)
        event, gen = restored.handles[0]
        restored.sim.cancel_versioned(event, gen)   # stale: must no-op
        restored.sim.run()
        assert [tag for tag, _ in restored.rec.log] == [0, -1, 1]
        restored.sim.check_consistency()


# -- bugfix 1: integer horizon past 2**53 ns ----------------------------------


@pytest.mark.parametrize("calendar", [False, True])
def test_extreme_horizon_is_exact(calendar):
    """``run(until=...)`` past 2**53 ns must not round the horizon.

    2**53 + 1 is the first integer a double cannot represent; a float
    horizon sentinel would land the clock on 2**53 instead and run (or
    skip) events scheduled exactly at the boundary.  Covers the pooled
    loop, the general loop (forced via ``max_events``), and both heap
    and calendar layouts.
    """
    boundary = 2 ** 53 + 1
    fired = []

    sim = Simulator(pooling=True, calendar=calendar, calendar_warmup=0)
    sim.run(until=boundary)
    assert sim.now == boundary and isinstance(sim.now, int)
    sim.at(boundary + 1, fired.append, "pooled")
    sim.run(until=boundary)              # inclusive horizon: not yet
    assert fired == []
    sim.run(until=boundary + 1)
    assert fired == ["pooled"] and sim.now == boundary + 1

    general = Simulator(pooling=True, calendar=calendar,
                        calendar_warmup=0)
    general.at(boundary + 1, fired.append, "general")
    general.run(until=boundary + 1, max_events=10)
    assert fired == ["pooled", "general"]
    assert general.now == boundary + 1 and isinstance(general.now, int)


# -- bugfix 2: pool release when a callback raises ----------------------------


def _raising_scenario(sim):
    done = []

    def boom():
        raise RuntimeError("boom")

    for i in range(4):
        sim.schedule(10 + i, done.append, i)
    sim.schedule(20, boom)
    sim.schedule(30, done.append, 99)
    return done


@pytest.mark.parametrize("calendar", [False, True])
def test_raising_callback_keeps_pool_stats_identical(calendar):
    """A raising callback must leave identical pool/counter state in the
    pooled fast loop and the general loop (the general loop used to leak
    the consumed event instead of recycling it)."""
    stats = []
    for force_general in (False, True):
        sim = Simulator(pooling=True, calendar=calendar,
                        calendar_warmup=0)
        done = _raising_scenario(sim)
        kwargs = {"max_events": 100} if force_general else {}
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=1_000, **kwargs)
        sim.check_consistency()          # resumable post-mortem state
        stats.append((sim.now, sim.pool_size(), sim.pending(),
                      sim.events_executed, sim.events_reused,
                      tuple(done)))
        # The run is resumable: the remaining event still fires.
        sim.run()
        assert done[-1] == 99
    assert stats[0] == stats[1]
