"""Tests for the command-line interface (fast subcommands + plumbing)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_schemes(capsys):
    code, out = run_cli(capsys, "list-schemes")
    assert code == 0
    assert "dynaq" in out
    assert "besteffort" in out
    assert "pmsb" in out


def test_workloads(capsys):
    code, out = run_cli(capsys, "workloads")
    assert code == 0
    assert "web_search" in out
    assert "data_mining" in out


def test_hw_cost(capsys):
    code, out = run_cli(capsys, "hw-cost")
    assert code == 0
    assert "7 cycles" in out
    assert "0.88%" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scheme_raises():
    with pytest.raises(KeyError):
        main(["convergence", "--schemes", "bogus", "--duration", "0.01"])


def test_convergence_runs_tiny(capsys):
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05")
    assert code == 0
    assert "DynaQ" in out
    assert "q1(Gbps)" in out


def test_weighted_runs_tiny(capsys):
    code, out = run_cli(capsys, "weighted", "--schemes", "dynaq",
                        "--weights", "2,1", "--duration", "0.05")
    assert code == 0
    assert "ideal" in out


def test_fct_runs_tiny(capsys, tmp_path):
    prefix = str(tmp_path / "fct")
    code, out = run_cli(capsys, "fct", "--schemes", "dynaq",
                        "--loads", "0.3", "--flows", "20",
                        "--truncate-mb", "0.5", "--csv", prefix)
    assert code == 0
    assert "absolute FCTs" in out
    assert "wrote" in out
    assert (tmp_path / "fct.dynaq.0.30.csv").exists()


def test_convergence_csv_export(capsys, tmp_path):
    prefix = str(tmp_path / "conv")
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05", "--csv", prefix)
    assert code == 0
    assert (tmp_path / "conv.dynaq.csv").exists()


def test_parser_structure():
    parser = build_parser()
    # All documented subcommands exist.
    subparsers = parser._subparsers._group_actions[0].choices
    for command in ("list-schemes", "workloads", "hw-cost", "convergence",
                    "motivation", "fair-sharing", "weighted",
                    "protocol-mix", "fct", "static-sim", "incast"):
        assert command in subparsers


def test_incast_runs_tiny(capsys):
    code, out = run_cli(capsys, "incast", "--schemes", "dynaq",
                        "--workers", "4", "--horizon", "1.0")
    assert code == 0
    assert "QCT" in out
