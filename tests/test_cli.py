"""Tests for the command-line interface (fast subcommands + plumbing)."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_list_schemes(capsys):
    code, out = run_cli(capsys, "list-schemes")
    assert code == 0
    assert "dynaq" in out
    assert "besteffort" in out
    assert "pmsb" in out


def test_workloads(capsys):
    code, out = run_cli(capsys, "workloads")
    assert code == 0
    assert "web_search" in out
    assert "data_mining" in out


def test_hw_cost(capsys):
    code, out = run_cli(capsys, "hw-cost")
    assert code == 0
    assert "7 cycles" in out
    assert "0.88%" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_scheme_reports_valid_policies(capsys):
    # A typo'd scheme name is a usage error (exit 2) carrying the list
    # of valid policies, not a bare KeyError traceback.
    code = main(["convergence", "--schemes", "bogus",
                 "--duration", "0.01"])
    captured = capsys.readouterr()
    assert code == 2
    assert "ConfigurationError" in captured.out
    assert "unknown scheme 'bogus'" in captured.out
    assert "'dynaq'" in captured.out and "'lqd'" in captured.out


def test_unknown_adversary_fails_before_telemetry(capsys, tmp_path):
    # Same contract for `repro competitive`: a typo'd adversary is a
    # usage error carrying the sorted valid-adversary list, raised
    # before the telemetry session opens (no trace file left behind)
    # and before any worker fan-out.
    trace = tmp_path / "never.jsonl"
    code = main(["competitive", "--adversaries", "bogus-flood",
                 "--rounds", "1", "--trace-out", str(trace)])
    captured = capsys.readouterr()
    assert code == 2
    assert "ConfigurationError" in captured.out
    assert "unknown adversary 'bogus-flood'" in captured.out
    assert "'burst-flood'" in captured.out and "'random'" in captured.out
    assert not trace.exists()


def test_convergence_runs_tiny(capsys):
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05")
    assert code == 0
    assert "DynaQ" in out
    assert "q1(Gbps)" in out


def test_weighted_runs_tiny(capsys):
    code, out = run_cli(capsys, "weighted", "--schemes", "dynaq",
                        "--weights", "2,1", "--duration", "0.05")
    assert code == 0
    assert "ideal" in out


def test_fct_runs_tiny(capsys, tmp_path):
    prefix = str(tmp_path / "fct")
    code, out = run_cli(capsys, "fct", "--schemes", "dynaq",
                        "--loads", "0.3", "--flows", "20",
                        "--truncate-mb", "0.5", "--csv", prefix)
    assert code == 0
    assert "absolute FCTs" in out
    assert "wrote" in out
    assert (tmp_path / "fct.dynaq.0.30.csv").exists()


def test_convergence_csv_export(capsys, tmp_path):
    prefix = str(tmp_path / "conv")
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05", "--csv", prefix)
    assert code == 0
    assert (tmp_path / "conv.dynaq.csv").exists()


def test_fct_parallel_output_is_byte_identical(capsys, tmp_path):
    sweep = ["fct", "--schemes", "dynaq,pql", "--loads", "0.3",
             "--flows", "20", "--truncate-mb", "0.5"]
    code, serial_out = run_cli(capsys, *sweep,
                               "--csv", str(tmp_path / "s"))
    assert code == 0
    code, parallel_out = run_cli(
        capsys, *sweep, "--csv", str(tmp_path / "p"), "--jobs", "2",
        "--checkpoint", str(tmp_path / "ck.jsonl"))
    assert code == 0
    norm = str(tmp_path) + "/"
    assert (serial_out.replace(norm + "s.", "X.")
            == parallel_out.replace(norm + "p.", "X."))
    for name in ("dynaq", "pql"):
        assert ((tmp_path / f"s.{name}.0.30.csv").read_bytes()
                == (tmp_path / f"p.{name}.0.30.csv").read_bytes())
    # And a resumed run replays the checkpoint to the same bytes.
    code, resumed_out = run_cli(
        capsys, *sweep, "--csv", str(tmp_path / "r"), "--jobs", "2",
        "--checkpoint", str(tmp_path / "ck.jsonl"), "--resume")
    assert code == 0
    assert (resumed_out.replace(norm + "r.", "X.")
            == parallel_out.replace(norm + "p.", "X."))


def test_parser_structure():
    parser = build_parser()
    # All documented subcommands exist.
    subparsers = parser._subparsers._group_actions[0].choices
    for command in ("list-schemes", "workloads", "hw-cost", "convergence",
                    "motivation", "fair-sharing", "weighted",
                    "protocol-mix", "fct", "static-sim", "incast",
                    "profile", "trace-validate"):
        assert command in subparsers


def test_convergence_trace_out_end_to_end(capsys, tmp_path):
    """Acceptance: --trace-out emits a schema-valid JSONL trace with
    dynaq.threshold and dynaq.steal events."""
    import json

    from repro.telemetry import validate_trace_file

    path = tmp_path / "trace.jsonl"
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05", "--trace-out", str(path))
    assert code == 0
    assert f"wrote {path}" in out
    count, errors = validate_trace_file(path)
    assert errors == []
    assert count > 0
    topics = {json.loads(line)["topic"] for line in path.open()}
    assert "dynaq.threshold" in topics
    assert "dynaq.steal" in topics
    # And the CLI validator agrees.
    code, out = run_cli(capsys, "trace-validate", str(path))
    assert code == 0
    assert "OK" in out


def test_trace_out_topic_filter(capsys, tmp_path):
    import json

    path = tmp_path / "drops.jsonl"
    code, _ = run_cli(capsys, "convergence", "--schemes", "dynaq",
                      "--duration", "0.05", "--trace-out", str(path),
                      "--trace-topics", "packet.drop")
    assert code == 0
    topics = {json.loads(line)["topic"] for line in path.open()}
    assert topics <= {"packet.drop"}


def test_timeline_csv_flag(capsys, tmp_path):
    prefix = str(tmp_path / "tl")
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq",
                        "--duration", "0.05", "--timeline-csv", prefix)
    assert code == 0
    assert ".thresholds.csv" in out
    written = list(tmp_path.glob("tl.*.thresholds.csv"))
    assert written
    header = written[0].read_text().splitlines()[0]
    assert header.startswith("time_s,T1_bytes")


def test_profile_subcommand(capsys):
    """Acceptance: `repro profile convergence` prints events/sec and a
    per-callback time table."""
    code, out = run_cli(capsys, "profile", "convergence",
                        "--scheme", "dynaq", "--duration", "0.05")
    assert code == 0
    assert "events/sec" in out
    assert "callback" in out
    assert "EgressPort" in out  # at least one real callback row


def test_trace_validate_rejects_bad_file(capsys, tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"topic": "nope"}\n')
    code, out = run_cli(capsys, "trace-validate", str(path))
    assert code == 1
    assert "error:" in out


def test_trace_window_parsing():
    parser = build_parser()
    args = parser.parse_args(["convergence", "--trace-window", "100:200"])
    assert args.trace_window == (100, 200)
    args = parser.parse_args(["convergence", "--trace-window", ":500"])
    assert args.trace_window == (None, 500)
    with pytest.raises(SystemExit):
        parser.parse_args(["convergence", "--trace-window", "42"])


def test_incast_runs_tiny(capsys):
    code, out = run_cli(capsys, "incast", "--schemes", "dynaq",
                        "--workers", "4", "--horizon", "1.0")
    assert code == 0
    assert "QCT" in out


def test_bench_smoke_writes_report(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    code, out = run_cli(capsys, "bench", "--quick", "--scale", "0.1",
                        "--repeats", "1", "--out", str(out_path))
    assert code == 0
    assert "fig05_traced" in out
    assert "speedup" in out
    import json
    report = json.loads(out_path.read_text())
    assert report["schema"] == "repro.bench/1"
    assert len(report["benches"]) == 9
    for bench in report["benches"]:
        assert bench["ops_equal"]


def test_bench_emit_baseline_and_compare(capsys, tmp_path):
    out_path = tmp_path / "bench.json"
    baseline_path = tmp_path / "baseline.json"
    code, _ = run_cli(capsys, "bench", "--quick", "--scale", "0.1",
                      "--repeats", "1", "--out", str(out_path),
                      "--emit-baseline", str(baseline_path))
    assert code == 0
    assert baseline_path.exists()
    # A second run compared against its own floored baseline passes.
    code, out = run_cli(capsys, "bench", "--quick", "--scale", "0.1",
                        "--repeats", "1", "--out", str(out_path),
                        "--baseline", str(baseline_path),
                        "--budget", "0.9")
    assert code == 0


def test_trace_topics_opt_in_captures_snapshot_lifecycle(capsys, tmp_path):
    trace = tmp_path / "lifecycle.jsonl"
    code, _ = run_cli(capsys, "fair-sharing", "--schemes", "dynaq",
                      "--time-unit", "0.02",
                      "--snapshot-every", "0.03",
                      "--snapshot-out", str(tmp_path / "x.snap"),
                      "--trace-out", str(trace),
                      "--trace-topics", "snapshot.lifecycle")
    assert code == 0
    records = [json.loads(line) for line in trace.read_text().splitlines()]
    assert records
    assert all(r["topic"] == "snapshot.lifecycle" for r in records)
    assert [r["saves"] for r in records] == list(range(1, len(records) + 1))
    assert all(r["detail"] == "save" for r in records)
    from repro.telemetry import validate_trace_file
    count, errors = validate_trace_file(trace)
    assert count == len(records)
    assert errors == []

    # Without the explicit opt-in the default recorder drops the topic.
    quiet = tmp_path / "default.jsonl"
    code, _ = run_cli(capsys, "fair-sharing", "--schemes", "dynaq",
                      "--time-unit", "0.02",
                      "--snapshot-every", "0.03",
                      "--snapshot-out", str(tmp_path / "y.snap"),
                      "--trace-out", str(quiet))
    assert code == 0
    topics = {json.loads(line)["topic"]
              for line in quiet.read_text().splitlines()}
    assert "snapshot.lifecycle" not in topics
