"""Compatibility matrix: every scheme x every scheduler, end to end.

Parametrised smoke tests that run two competing flows through every
(buffer manager, scheduler) combination the library supports and check
the universal invariants: flows complete, bytes are delivered exactly,
occupancies end at zero, and no scheme stalls the link.  Catches
interface regressions that unit tests of individual components miss.
"""

import pytest

from repro.experiments.runner import buffer_factory, scheme
from repro.net.topology import build_star
from repro.queueing.schedulers.drr import DRRScheduler
from repro.queueing.schedulers.spq import SPQDRRScheduler, SPQScheduler
from repro.queueing.schedulers.wrr import WRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.experiments.runner import transport_for

RTT = microseconds(500)

SCHEDULERS = {
    "drr": lambda: DRRScheduler([1500] * 4),
    "wrr": lambda: WRRScheduler([1.0] * 4),
    "spq": lambda: SPQScheduler(4),
    "spq-drr": lambda: SPQDRRScheduler(1, [1500] * 3),
}

# MQ-ECN legitimately refuses non-DRR schedulers (paper §II-C).
SCHEMES = ["dynaq", "dynaq-tournament", "dynaq-evict", "besteffort",
           "pql", "dt", "tcn", "tcn-drop", "pmsb", "perqueue-ecn",
           "dynaq-ecn", "red", "red-drop", "codel"]


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("scheme_name", SCHEMES)
def test_scheme_scheduler_combination(scheme_name, scheduler_name):
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=SCHEDULERS[scheduler_name],
        buffer_factory=buffer_factory(scheme_name, rtt_ns=RTT))
    sender_class = transport_for(scheme_name)
    senders = []
    for index, (src, service_class) in enumerate(
            (("h1", 1), ("h2", 2)), start=1):
        flow = Flow(flow_id=index, src=src, dst="h0", size=120_000,
                    service_class=service_class)
        sender = sender_class(net.sim, net.host(src), flow)
        net.host(src).register_sender(sender)
        sender.start()
        senders.append(sender)
    net.sim.run(until=seconds(4))

    for sender in senders:
        assert sender.complete, (
            f"{scheme_name}/{scheduler_name}: flow "
            f"{sender.flow.flow_id} stuck at {sender.high_ack}")
        receiver = net.host("h0").receivers[sender.flow.flow_id]
        assert receiver.next_expected == 120_000
    for port in net.switch("s0").port_list():
        assert port.total_bytes() == 0
        for queue in range(port.num_queues):
            assert port.queue_bytes(queue) >= 0


def test_mqecn_works_with_drr_end_to_end():
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=buffer_factory("mqecn", rtt_ns=RTT))
    sender_class = transport_for("mqecn")
    flow = Flow(flow_id=1, src="h1", dst="h0", size=120_000,
                service_class=1)
    sender = sender_class(net.sim, net.host("h1"), flow)
    net.host("h1").register_sender(sender)
    sender.start()
    net.sim.run(until=seconds(4))
    assert sender.complete


def test_mqecn_rejects_spq_scheduler():
    with pytest.raises(TypeError):
        build_star(
            num_hosts=2, rate_bps=gbps(1), rtt_ns=RTT,
            buffer_bytes=kilobytes(85),
            scheduler_factory=lambda: SPQScheduler(4),
            buffer_factory=buffer_factory("mqecn", rtt_ns=RTT))
