"""Tests for the report formatting helpers."""

import pytest

from repro.experiments.report import (
    fairness_table,
    fct_absolute_table,
    fct_matrix,
    share_table,
    throughput_table,
    timeseries_table,
)
from repro.experiments.testbed import DEFAULT_CONFIG, FCTResult, ThroughputResult
from repro.metrics.fct import FCTCollector
from repro.metrics.throughput import ThroughputSample


def make_throughput_result(scheme="DynaQ", rates=((5e8, 5e8),)):
    samples = [
        ThroughputSample(time_ns=(i + 1) * 10 ** 9, per_queue_bps=rate,
                         aggregate_bps=sum(rate))
        for i, rate in enumerate(rates)
    ]
    return ThroughputResult(scheme, samples, None, DEFAULT_CONFIG,
                            num_queues=len(rates[0]))


def make_fct_result(scheme="DynaQ", load=0.5, overall=10.0):
    collector = FCTCollector()
    collector.record(1, 50_000, int(overall * 1e6))
    return FCTResult(scheme, load,
                     {"avg_overall_ms": overall, "avg_small_ms": overall,
                      "avg_large_ms": None, "p99_small_ms": overall},
                     completed=1, outstanding=0, collector=collector)


def test_throughput_table_contents():
    table = throughput_table([make_throughput_result()], title="T")
    assert "T" in table
    assert "DynaQ" in table
    assert "0.50" in table       # 0.5 Gbps
    assert "1.00" in table       # aggregate


def test_share_table_contains_ideal_row():
    table = share_table([make_throughput_result()], title="S",
                        ideal=[0.5, 0.5])
    assert "ideal" in table
    assert "q1" in table and "q2" in table


def test_timeseries_table_rows_per_sample():
    result = make_throughput_result(rates=((1e9, 0.0), (0.0, 1e9)))
    table = timeseries_table([result], title="TS", queues=[0, 1])
    lines = table.splitlines()
    assert len([line for line in lines if line.startswith(" ")]) >= 2
    assert "1.00" in table


def test_fct_matrix_normalises_to_baseline():
    results = {
        "dynaq": [make_fct_result("DynaQ", overall=10.0)],
        "pql": [make_fct_result("PQL", overall=18.0)],
    }
    table = fct_matrix(results, metric="avg_overall_ms", title="M")
    assert "1.00" in table        # DynaQ normalised to itself
    assert "1.80" in table        # PQL 1.8x


def test_fct_matrix_missing_baseline_raises():
    with pytest.raises(KeyError):
        fct_matrix({"pql": [make_fct_result("PQL")]},
                   metric="avg_overall_ms", title="M")


def test_fct_matrix_handles_none_metric():
    results = {"dynaq": [make_fct_result("DynaQ")]}
    table = fct_matrix(results, metric="avg_large_ms", title="M")
    assert "-" in table


def test_fct_absolute_table_lists_every_cell():
    results = {
        "dynaq": [make_fct_result("DynaQ", load=0.3),
                  make_fct_result("DynaQ", load=0.5)],
    }
    table = fct_absolute_table(results, title="A")
    assert table.count("DynaQ") == 2
    assert "0.30" in table and "0.50" in table


def test_fairness_table_mean_and_min():
    table = fairness_table({"DynaQ": [1.0, 0.8]}, title="F")
    assert "0.90" in table   # mean
    assert "0.80" in table   # min
