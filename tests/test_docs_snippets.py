"""Keep the documentation honest: run the tutorial's code paths."""

from repro.apps import IperfApp, RequestResponseApp, random_many_to_one_placement
from repro.experiments import buffer_factory
from repro.metrics import PortThroughputMeter, QueueLengthSampler
from repro.net import assert_valid, build_star
from repro.queueing import BufferManager, Decision
from repro.queueing.schedulers import DRRScheduler
from repro.sim import RandomStreams, units
from repro.transport import PIASConfig
from repro.workloads import WEB_SEARCH, generate_flows


def tutorial_net(buffer=None):
    net = build_star(
        num_hosts=5,
        rate_bps=units.gbps(1),
        rtt_ns=units.microseconds(500),
        buffer_bytes=units.kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=buffer or buffer_factory(
            "dynaq", rtt_ns=units.microseconds(500)),
    )
    assert_valid(net)
    return net


def test_tutorial_steps_one_to_four():
    net = tutorial_net()
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=8, service_class=1)
    app.start_at(0)
    app.stop_at(units.seconds(0.1))
    bottleneck = net.switch("s0").ports["s0->h0"]
    meter = PortThroughputMeter(net.sim, bottleneck,
                                units.milliseconds(20))
    lengths = QueueLengthSampler(bottleneck, max_samples=1000)
    net.sim.run(until=units.seconds(0.15))
    assert meter.mean_rate_bps(1, start_ns=units.milliseconds(20),
                               end_ns=units.milliseconds(100)) > 0.9e9
    assert lengths.samples


def test_tutorial_request_response():
    net = tutorial_net()
    rng = RandomStreams(1).stream("flows")
    specs = generate_flows(
        distribution=WEB_SEARCH.truncated(300_000), load=0.5,
        link_rate_bps=units.gbps(1), num_flows=25, rng=rng)
    app = RequestResponseApp(
        net, specs=specs,
        placement=random_many_to_one_placement(
            ["h1", "h2", "h3", "h4"], "h0", num_service_classes=4,
            rng=rng),
        pias=PIASConfig())
    net.sim.run(until=units.seconds(5))
    assert app.completed == 25
    summary = app.fct.summary()
    assert summary["avg_overall_ms"] > 0


class TwoThreshold(BufferManager):
    """The tutorial's example scheme, verbatim."""

    name = "TwoThreshold"

    def attach(self, port):
        super().attach(port)
        share = port.buffer_bytes // port.num_queues
        self.lo, self.hi = share // 3, share

    def admit(self, packet, queue_index):
        occupancy = self.port.queue_bytes(queue_index)
        if occupancy + packet.size > self.hi:
            self.drops += 1
            return Decision.dropped("hi threshold")
        drop = self._port_tail_drop(packet)
        if drop is not None:
            return drop
        return Decision.accepted(
            mark=packet.ecn_capable and occupancy > self.lo)


def test_tutorial_custom_scheme_runs_end_to_end():
    net = tutorial_net(buffer=TwoThreshold)
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=4, service_class=0)
    app.start_at(0)
    net.sim.run(until=units.seconds(0.05))
    assert app.total_acked_bytes() > 0
    manager = net.switch("s0").ports["s0->h0"].buffer_manager
    assert isinstance(manager, TwoThreshold)
