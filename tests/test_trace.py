"""Unit tests for the trace bus."""

from repro.sim.trace import TraceBus


def test_publish_reaches_subscriber():
    bus = TraceBus()
    seen = []
    bus.subscribe("topic", lambda **kw: seen.append(kw))
    bus.publish("topic", value=1)
    assert seen == [{"value": 1}]


def test_publish_without_subscribers_is_noop():
    bus = TraceBus()
    bus.publish("nobody", value=1)  # must not raise


def test_multiple_subscribers_all_called():
    bus = TraceBus()
    seen = []
    bus.subscribe("t", lambda **kw: seen.append("a"))
    bus.subscribe("t", lambda **kw: seen.append("b"))
    bus.publish("t")
    assert seen == ["a", "b"]


def test_unsubscribe_stops_delivery():
    bus = TraceBus()
    seen = []
    callback = lambda **kw: seen.append(1)  # noqa: E731
    bus.subscribe("t", callback)
    bus.unsubscribe("t", callback)
    bus.publish("t")
    assert seen == []


def test_unsubscribe_unknown_is_noop():
    bus = TraceBus()
    bus.unsubscribe("t", lambda **kw: None)  # must not raise


def test_has_subscribers():
    bus = TraceBus()
    assert not bus.has_subscribers("t")
    bus.subscribe("t", lambda **kw: None)
    assert bus.has_subscribers("t")


def test_topics_are_isolated():
    bus = TraceBus()
    seen = []
    bus.subscribe("a", lambda **kw: seen.append("a"))
    bus.publish("b")
    assert seen == []


def test_positional_payload_supported():
    bus = TraceBus()
    seen = []
    bus.subscribe("t", lambda x, y: seen.append(x + y))
    bus.publish("t", 2, 3)
    assert seen == [5]


def test_unsubscribe_during_publish_still_delivers_snapshot():
    # Publish iterates a snapshot: a callback that unsubscribes its
    # sibling mid-delivery must not starve that sibling for the current
    # publish (it does stop future ones).
    bus = TraceBus()
    seen = []

    def second(**kw):
        seen.append("second")

    def first(**kw):
        seen.append("first")
        bus.unsubscribe("t", second)

    bus.subscribe("t", first)
    bus.subscribe("t", second)
    bus.publish("t")
    assert seen == ["first", "second"]
    bus.publish("t")
    assert seen == ["first", "second", "first"]


def test_self_unsubscribe_during_publish():
    bus = TraceBus()
    seen = []

    def once(**kw):
        seen.append(1)
        bus.unsubscribe("t", once)

    bus.subscribe("t", once)
    bus.publish("t")
    bus.publish("t")
    assert seen == [1]


def test_duplicate_subscribe_delivers_twice():
    bus = TraceBus()
    seen = []
    callback = lambda **kw: seen.append(1)  # noqa: E731
    bus.subscribe("t", callback)
    bus.subscribe("t", callback)
    bus.publish("t")
    assert seen == [1, 1]
    # One unsubscribe removes one registration, not both.
    bus.unsubscribe("t", callback)
    bus.publish("t")
    assert seen == [1, 1, 1]


def test_emit_skips_payload_without_subscribers():
    bus = TraceBus()
    built = []

    def payload():
        built.append(1)
        return {"value": 7}

    bus.emit("t", payload)
    assert built == []  # factory never invoked: zero-cost when untraced

    seen = []
    bus.subscribe("t", lambda **kw: seen.append(kw))
    bus.emit("t", payload)
    assert built == [1]
    assert seen == [{"value": 7}]
