"""Tests for the extension features: runtime buffer resize (§III-B3),
the DynaQ-Evict variant, delayed ACKs, and classic ECN-TCP."""

import pytest

from repro.core.dynaq import DynaQBuffer
from repro.core.eviction import DynaQEvictBuffer
from repro.net.host import Host
from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.net.topology import build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.perqueue_ecn import PerQueueECNBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow, FlowReceiver
from repro.transport.ecn_tcp import ECNTCPSender
from repro.transport.tcp import TCPSender

from conftest import FakePort, make_packet

RTT = microseconds(500)


# -- runtime buffer resize ------------------------------------------------------

def make_port(manager, buffer_bytes=100_000):
    sim = Simulator()
    port = EgressPort(
        sim, "p0", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=buffer_bytes, scheduler=DRRScheduler([1500] * 4),
        buffer_manager=manager)

    class Sink:
        def receive(self, packet):
            pass

    port.connect(Sink())
    return sim, port


def test_resize_reinitializes_dynaq_thresholds():
    manager = DynaQBuffer()
    sim, port = make_port(manager)
    assert manager.threshold_sum() == 100_000
    port.resize_buffer(200_000)
    assert manager.threshold_sum() == 200_000
    assert manager.thresholds == [50_000] * 4


def test_resize_validates_size():
    sim, port = make_port(DynaQBuffer())
    with pytest.raises(ConfigurationError):
        port.resize_buffer(0)


def test_resize_works_for_managers_without_reinitialize():
    manager = BestEffortBuffer()
    sim, port = make_port(manager)
    port.resize_buffer(10_000)
    assert port.buffer_bytes == 10_000


def test_shrink_enforced_on_new_arrivals():
    manager = BestEffortBuffer()
    sim, port = make_port(manager, buffer_bytes=100_000)
    for _ in range(10):
        port.send(make_packet(1500))
    port.resize_buffer(5_000)
    before = port.dropped_packets
    for _ in range(5):
        port.send(make_packet(1500))
    assert port.dropped_packets > before


# -- DynaQ-Evict -------------------------------------------------------------------

def test_evict_tail_removes_and_accounts():
    sim, port = make_port(BestEffortBuffer())
    port.send(make_packet(1500, service_class=1))  # transmits immediately
    port.send(make_packet(1500, service_class=1))
    port.send(make_packet(1000, service_class=1))
    assert port.queue_bytes(1) == 2_500
    evicted = port.evict_tail(1)
    assert evicted.size == 1_000  # tail, not head
    assert port.queue_bytes(1) == 1_500
    assert port.dropped_packets == 1


def test_evict_tail_empty_queue_returns_none():
    sim, port = make_port(BestEffortBuffer())
    assert port.evict_tail(2) is None


def test_dynaq_evict_admits_burst_at_full_port():
    """The scenario that motivates the extension: an idle queue's burst
    arrives at a physically full port and would be tail-dropped by plain
    DynaQ; DynaQ-Evict evicts the over-threshold holder instead."""
    fake = FakePort(buffer_bytes=10_000, num_queues=2)

    # Plain DynaQ: queue 1 stole queue 0's threshold and filled the port.
    plain = DynaQBuffer()
    plain.attach(fake)
    plain.thresholds = [2_000, 8_000]
    fake.fill(1, 10_000)  # occupancy above its threshold (stolen later)
    decision = plain.admit(make_packet(1500), 0)
    assert not decision.accept
    assert decision.reason == "port buffer full"

    # DynaQ-Evict on a real port in the same state.
    sim, port = make_port(DynaQEvictBuffer(), buffer_bytes=12_000)
    manager = port.buffer_manager
    # Fill queue 1 until the port is physically full (the first packet
    # dequeues straight onto the wire, the next 8 fill the 12 KB buffer).
    for _ in range(9):
        port.send(make_packet(1500, service_class=1))
    assert port.total_bytes() == 12_000
    manager.thresholds = [9_000, 1_000, 1_000, 1_000]
    burst = make_packet(1500, service_class=0)
    port.send(burst)
    assert manager.evictions >= 1
    assert port.queue_bytes(0) == 1_500  # the burst got in


def test_dynaq_evict_keeps_threshold_invariant():
    sim, port = make_port(DynaQEvictBuffer(), buffer_bytes=12_000)
    manager = port.buffer_manager
    for service_class in (0, 1, 2, 3, 1, 1, 1, 1, 0, 2):
        port.send(make_packet(1500, service_class=service_class))
    assert manager.threshold_sum() == 12_000


def test_dynaq_evict_end_to_end():
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=DynaQEvictBuffer)
    senders = []
    for index, src in ((1, "h1"), (2, "h2")):
        flow = Flow(flow_id=index, src=src, dst="h0", size=500_000,
                    service_class=index - 1)
        sender = TCPSender(net.sim, net.host(src), flow)
        net.host(src).register_sender(sender)
        sender.start()
        senders.append(sender)
    net.sim.run(until=seconds(2))
    assert all(sender.complete for sender in senders)


# -- delayed ACKs --------------------------------------------------------------------

class AckSink:
    def __init__(self):
        self.acks = []

    def receive(self, packet):
        self.acks.append(packet)


def delayed_host(sim):
    host = Host(sim, "h", delayed_ack=True)
    host.attach_nic(rate_bps=gbps(1), prop_delay_ns=0)
    sink = AckSink()
    host.nic.connect(sink)
    return host, sink


def segment(seq, end, flow_id=1, ce=False):
    packet = Packet(flow_id=flow_id, src="x", dst="h",
                    size=end - seq + 40, seq=seq, end_seq=end,
                    ecn_capable=ce)
    packet.ecn_ce = ce
    return packet


def test_delayed_ack_coalesces_pairs():
    sim = Simulator()
    host, sink = delayed_host(sim)
    host.receive(segment(0, 1460))
    host.receive(segment(1460, 2920))
    sim.run(until=100_000)  # below the 1 ms delack timer
    assert len(sink.acks) == 1
    assert sink.acks[0].ack_seq == 2920


def test_delayed_ack_timer_fires_for_odd_segment():
    sim = Simulator()
    host, sink = delayed_host(sim)
    host.receive(segment(0, 1460))
    sim.run(until=100_000)
    assert len(sink.acks) == 0
    sim.run(until=2_000_000)
    assert len(sink.acks) == 1


def test_delayed_ack_immediate_on_out_of_order():
    sim = Simulator()
    host, sink = delayed_host(sim)
    host.receive(segment(1460, 2920))  # gap
    sim.run(until=1_000)
    assert len(sink.acks) == 1
    assert sink.acks[0].ack_seq == 0


def test_delayed_ack_immediate_on_ce_mark():
    sim = Simulator()
    host, sink = delayed_host(sim)
    host.receive(segment(0, 1460, ce=True))
    sim.run(until=1_000)
    assert len(sink.acks) == 1
    assert sink.acks[0].ece


def test_delayed_ack_flow_still_completes():
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=BestEffortBuffer)
    net.host("h0").delayed_ack = True
    flow = Flow(flow_id=1, src="h1", dst="h0", size=300_000)
    sender = TCPSender(net.sim, net.host("h1"), flow)
    net.host("h1").register_sender(sender)
    sender.start()
    net.sim.run(until=seconds(2))
    assert sender.complete
    receiver = net.host("h0").receivers[1]
    # Roughly half the ACKs of per-packet acking.
    assert receiver.acks_sent < sender.packets_sent


# -- ECN-TCP -----------------------------------------------------------------------

def test_ecn_tcp_is_ecn_capable():
    sim = Simulator()
    host = Host(sim, "h")
    host.attach_nic(rate_bps=gbps(1), prop_delay_ns=0)
    flow = Flow(flow_id=1, src="h", dst="x", size=10_000)
    sender = ECNTCPSender(sim, host, flow)
    assert flow.ecn is True


def test_ecn_tcp_halves_once_per_window():
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=lambda: PerQueueECNBuffer(rtt_ns=RTT))
    senders = []
    for index, src in ((1, "h1"), (2, "h2")):
        flow = Flow(flow_id=index, src=src, dst="h0", size=2_000_000)
        sender = ECNTCPSender(net.sim, net.host(src), flow)
        net.host(src).register_sender(sender)
        sender.start()
        senders.append(sender)
    net.sim.run(until=seconds(3))
    assert all(sender.complete for sender in senders)
    total_reductions = sum(sender.ecn_reductions for sender in senders)
    total_echoes = sum(sender.ecn_echoes for sender in senders)
    assert total_reductions > 0
    # Far fewer reductions than echoes: once per window, not per packet.
    assert total_reductions < total_echoes / 2
