"""Parallel sweep executor: determinism, crash isolation, resume.

The experiments at module scope exist so spawn-started workers can
re-import them by ``"test_parallel:<name>"`` — the executor rejects
lambdas and closures for exactly that reason.
"""

import json
import os

import pytest

from repro.experiments.parallel import (
    JOB_KINDS,
    JobSpec,
    SweepCheckpoint,
    callable_target,
    job_key,
    parallel_map,
    parallel_fct_sweep,
    resolve_target,
)
from repro.experiments.runner import reseed
from repro.experiments.sweeps import run_sweep, sweep_table
from repro.metrics.export import write_sweep_csv
from repro.sim.errors import ConfigurationError, SimulationError
from repro.sim.trace import TOPIC_PARALLEL_JOB, TraceBus


# -- worker-importable experiments --------------------------------------------

def quadratic(*, x, seed):
    return {"m": float(x * x + seed), "sparse": None}


def flaky_below_reseed(*, x, seed):
    # Fails on any first-attempt seed (< 7919), passes once reseeded.
    if seed < 7919:
        raise SimulationError(f"flaky at seed {seed}")
    return {"m": float(x + seed)}


def always_fails(*, x, seed):
    raise SimulationError("broken point")


def fails_on_even_seed(*, x, seed):
    if seed % 2 == 0:
        raise SimulationError("even seed")
    return {"m": float(x + seed)}


def hard_crash(*, x, seed):
    os._exit(3)


def scaled(*, x, w, seed):
    return {"m": float(x * w + seed), "sparse": None}


def logging_square(*, x, seed, log):
    # Appends one line per execution so tests can count real runs
    # across process boundaries.
    with open(log, "a") as handle:
        handle.write(f"{x}-{seed}\n")
    return {"m": float(x * x)}


def _log_lines(path):
    return open(path).read().splitlines() if os.path.exists(path) else []


def _spec(fn, *, label, x, seed=1, **extra):
    kwargs = {"x": x, "seed": seed, **extra}
    params = {"target": callable_target(fn), "kwargs": kwargs}
    return JobSpec(job_key("callable", params, label=label), "callable",
                   params, seed=seed, seed_path=("kwargs", "seed"))


# -- job identity --------------------------------------------------------------

def test_job_key_stable_and_param_sensitive():
    key = job_key("fct", {"scheme": "dynaq", "load": 0.3})
    assert key == job_key("fct", {"load": 0.3, "scheme": "dynaq"})
    assert key != job_key("fct", {"scheme": "dynaq", "load": 0.5})
    assert job_key("fct", {}, label="a").startswith("a:fct:")


def test_job_key_rejects_unjsonable_params():
    with pytest.raises(ConfigurationError):
        job_key("callable", {"fn": object()})


def test_callable_target_roundtrip():
    target = callable_target(quadratic)
    assert target == "test_parallel:quadratic"
    assert resolve_target(target) is quadratic


def test_callable_target_rejects_lambdas_and_closures():
    with pytest.raises(ConfigurationError):
        callable_target(lambda *, x, seed: {})

    def local(*, x, seed):
        return {}

    with pytest.raises(ConfigurationError):
        callable_target(local)


# -- executor semantics ---------------------------------------------------------

def test_outcomes_come_back_in_spec_order():
    specs = [_spec(quadratic, label=f"p{x}", x=x) for x in (5, 2, 9)]
    outcomes = parallel_map(specs, jobs=2)
    assert [o.key for o in outcomes] == [s.key for s in specs]
    assert [o.value["m"] for o in outcomes] == [26.0, 5.0, 82.0]
    assert all(o.ok and o.attempts == 1 and not o.cached
               for o in outcomes)


def test_serial_and_parallel_outcomes_are_identical():
    specs = [_spec(quadratic, label=f"p{x}", x=x) for x in (1, 2, 3)]
    serial = parallel_map(specs, jobs=1)
    fanned = parallel_map(specs, jobs=2)
    assert serial == fanned


def test_retry_uses_the_deterministic_reseed_sequence():
    specs = [_spec(flaky_below_reseed, label="f", x=3)]
    (outcome,) = parallel_map(specs, jobs=1, retries=1)
    assert outcome.ok
    assert outcome.attempts == 2
    assert outcome.seed == reseed(1, 2)
    assert outcome.value["m"] == float(3 + reseed(1, 2))


def test_exhausted_retries_record_a_failure_instead_of_raising():
    specs = [_spec(always_fails, label="bad", x=1),
             _spec(quadratic, label="good", x=4)]
    bad, good = parallel_map(specs, jobs=2, retries=1)
    assert not bad.ok
    assert bad.error == "broken point"
    assert bad.attempts == 2
    assert bad.value is None
    assert good.ok and good.value["m"] == 17.0


def test_worker_death_is_isolated_and_reported():
    specs = [_spec(hard_crash, label="crash", x=1),
             _spec(quadratic, label="ok", x=6)]
    crashed, survived = parallel_map(specs, jobs=2)
    assert not crashed.ok
    assert "worker died" in crashed.error
    assert "3" in crashed.error
    assert survived.ok and survived.value["m"] == 37.0


def test_bad_arguments_rejected():
    with pytest.raises(ConfigurationError):
        parallel_map([], jobs=0)
    with pytest.raises(ConfigurationError):
        parallel_map([], retries=-1)
    spec = _spec(quadratic, label="p", x=1)
    with pytest.raises(ConfigurationError):
        parallel_map([spec, spec], jobs=1)
    with pytest.raises(ConfigurationError):
        parallel_map([spec._replace(kind="nope")], jobs=1)


# -- checkpoint / resume --------------------------------------------------------

def test_resume_replays_completed_points(tmp_path):
    log = tmp_path / "runs.log"
    path = tmp_path / "sweep.jsonl"
    specs = [_spec(logging_square, label=f"p{x}", x=x, log=str(log))
             for x in (2, 3)]

    first = parallel_map(specs, jobs=1, checkpoint=path)
    assert len(_log_lines(log)) == 2

    second = parallel_map(specs, jobs=1, checkpoint=path, resume=True)
    assert len(_log_lines(log)) == 2  # nothing re-ran
    assert all(o.cached for o in second)
    assert [o.value for o in second] == [o.value for o in first]


def test_interrupted_sweep_resumes_to_identical_outcomes(tmp_path):
    def specs_logging_to(log):
        return [_spec(logging_square, label=f"p{x}", x=x, log=str(log))
                for x in (1, 2, 3, 4)]

    reference = parallel_map(specs_logging_to(tmp_path / "ref.log"),
                             jobs=1)

    log = tmp_path / "runs.log"
    path = tmp_path / "sweep.jsonl"
    specs = specs_logging_to(log)
    seen = []

    def interrupt_after_two(outcome):
        seen.append(outcome)
        if len(seen) == 2:
            raise KeyboardInterrupt

    with pytest.raises(KeyboardInterrupt):
        parallel_map(specs, jobs=1, checkpoint=path,
                     on_result=interrupt_after_two)
    assert len(_log_lines(log)) == 2

    resumed = parallel_map(specs, jobs=1, checkpoint=path, resume=True)
    lines = _log_lines(log)
    assert len(lines) == len(specs)        # every job ran exactly once
    assert len(set(lines)) == len(specs)   # ... and no job ran twice
    assert [o.cached for o in resumed] == [True, True, False, False]
    assert ([(o.value, o.error, o.attempts) for o in resumed]
            == [(o.value, o.error, o.attempts) for o in reference])


def test_failed_entries_rerun_on_resume(tmp_path):
    path = tmp_path / "sweep.jsonl"
    spec = _spec(always_fails, label="bad", x=1)
    (first,) = parallel_map([spec], jobs=1, checkpoint=path)
    assert not first.ok

    good = _spec(quadratic, label="bad", x=1)._replace(key=spec.key)
    (second,) = parallel_map([good], jobs=1, checkpoint=path,
                             resume=True)
    assert second.ok and not second.cached  # failure was not replayed


def test_torn_checkpoint_tail_is_ignored(tmp_path):
    path = tmp_path / "sweep.jsonl"
    entry = {"key": "k1", "status": "ok", "attempts": 1, "seed": 1,
             "payload": {"m": 1.0}}
    path.write_text(json.dumps(entry) + "\n" + '{"key": "k2", "sta')
    store = SweepCheckpoint(path, resume=True)
    assert len(store) == 1
    assert store.completed("k1")["payload"] == {"m": 1.0}
    assert store.completed("k2") is None


def test_trace_reports_job_lifecycle(tmp_path):
    path = tmp_path / "sweep.jsonl"
    trace = TraceBus()
    events = []
    trace.subscribe(TOPIC_PARALLEL_JOB,
                    lambda **payload: events.append(payload))
    specs = [_spec(quadratic, label="p1", x=1)]
    parallel_map(specs, jobs=1, checkpoint=path, trace=trace)
    # Terminal events carry the attempt count ("done[1]" = first try).
    assert [e["detail"].split()[0] for e in events] == ["start", "done[1]"]
    assert all(isinstance(e["time"], int) for e in events)

    events.clear()
    parallel_map(specs, jobs=1, checkpoint=path, resume=True,
                 trace=trace)
    assert [e["detail"].split()[0] for e in events] == ["cached"]


# -- run_sweep integration ------------------------------------------------------

def test_run_sweep_parallel_matches_serial_bytes(tmp_path):
    grid = {"x": [1, 2], "w": [10]}
    serial = run_sweep(scaled, grid, seeds=[1, 2])
    fanned = run_sweep(scaled, grid, seeds=[1, 2], jobs=2,
                       checkpoint=tmp_path / "ck.jsonl")
    assert serial == fanned
    assert (sweep_table(serial, metric="m", title="T")
            == sweep_table(fanned, metric="m", title="T"))
    write_sweep_csv(tmp_path / "serial.csv", serial)
    write_sweep_csv(tmp_path / "fanned.csv", fanned)
    assert ((tmp_path / "serial.csv").read_bytes()
            == (tmp_path / "fanned.csv").read_bytes())


def test_run_sweep_tolerates_failing_seeds():
    records = run_sweep(fails_on_even_seed, {"x": [1]}, seeds=[1, 2, 3])
    (record,) = records
    assert record["failures"] == 1
    assert record["metrics"]["m"].count == 2


def test_run_sweep_rejects_lambda_when_parallel():
    with pytest.raises(ConfigurationError):
        run_sweep(lambda *, x, seed: {"m": x}, {"x": [1]}, jobs=2)


# -- fct front-end (one real simulation pair) -----------------------------------

def test_parallel_fct_sweep_matches_serial(tmp_path):
    from repro.experiments.testbed import fct_load_sweep
    from repro.workloads.datasets import workload

    distribution = workload("web_search").truncated(12_000_000)
    serial = fct_load_sweep(["dynaq"], [0.3], num_flows=30,
                            distribution=distribution, seed=1)
    fanned, failures = parallel_fct_sweep(
        ["dynaq"], [0.3], num_flows=30, workload="web_search",
        truncate_mb=12.0, seed=1, jobs=2,
        checkpoint=tmp_path / "fct.jsonl")
    assert failures == []
    a, b = serial["dynaq"][0], fanned["dynaq"][0]
    assert a.summary == b.summary
    assert a.collector.records == b.collector.records
    assert (a.scheme, a.load, a.completed, a.outstanding) \
        == (b.scheme, b.load, b.completed, b.outstanding)
