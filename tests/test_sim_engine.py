"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


def test_schedule_and_run_executes_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(30, order.append, "c")
    sim.schedule(10, order.append, "a")
    sim.schedule(20, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_timestamp_executes_fifo():
    sim = Simulator()
    order = []
    for tag in range(10):
        sim.schedule(5, order.append, tag)
    sim.run()
    assert order == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]
    assert sim.now == 42


def test_run_until_is_inclusive():
    sim = Simulator()
    hits = []
    sim.schedule(100, hits.append, "at-100")
    sim.schedule(101, hits.append, "at-101")
    sim.run(until=100)
    assert hits == ["at-100"]
    assert sim.now == 100


def test_run_until_with_no_events_advances_clock():
    sim = Simulator()
    sim.run(until=500)
    assert sim.now == 500


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    order = []

    def first():
        order.append("first")
        sim.schedule(5, lambda: order.append("nested"))

    sim.schedule(1, first)
    sim.run()
    assert order == ["first", "nested"]
    assert sim.now == 6


def test_cancel_prevents_execution():
    sim = Simulator()
    hits = []
    event = sim.schedule(10, hits.append, "x")
    sim.cancel(event)
    sim.run()
    assert hits == []


def test_cancel_none_is_noop():
    sim = Simulator()
    sim.cancel(None)  # must not raise


def test_cancel_after_execution_is_noop():
    sim = Simulator()
    hits = []
    event = sim.schedule(1, hits.append, "x")
    sim.run()
    sim.cancel(event)
    assert hits == ["x"]


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_at_in_past_raises():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(5, lambda: None)


def test_stop_halts_after_current_callback():
    sim = Simulator()
    order = []

    def stopper():
        order.append("stop")
        sim.stop()

    sim.schedule(1, stopper)
    sim.schedule(2, order.append, "never")
    sim.run()
    assert order == ["stop"]
    assert sim.pending() == 1


def test_run_resumes_after_stop():
    sim = Simulator()
    order = []
    sim.schedule(1, lambda: (order.append("a"), sim.stop()))
    sim.schedule(2, order.append, "b")
    sim.run()
    sim.run()
    assert order[-1] == "b"


def test_max_events_bounds_execution():
    sim = Simulator()
    count = []
    for _ in range(100):
        sim.schedule(1, count.append, 1)
    sim.run(max_events=10)
    assert len(count) == 10


def test_pending_counts_live_events():
    sim = Simulator()
    e1 = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.cancel(e1)
    assert sim.pending() == 1


def test_peek_time_skips_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1, lambda: None)
    sim.schedule(7, lambda: None)
    sim.cancel(e1)
    assert sim.peek_time() == 7


def test_peek_time_empty_heap():
    sim = Simulator()
    assert sim.peek_time() is None


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 5


def test_cancel_after_execution_keeps_pending_exact():
    # The O(1) live counter must not double-decrement when an already
    # executed event is cancelled.  pooling=False so the executed handle
    # is not recycled into the survivor; retained-handle cancellation
    # under pooling goes through cancel_versioned (test_perf_pooling.py).
    sim = Simulator(pooling=False)
    executed = sim.schedule(1, lambda: None)
    sim.run()
    survivor = sim.schedule(5, lambda: None)
    assert sim.pending() == 1
    sim.cancel(executed)  # no-op: already consumed by the run loop
    assert sim.pending() == 1
    sim.cancel(survivor)
    assert sim.pending() == 0


def test_double_cancel_counts_once():
    sim = Simulator()
    event = sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending() == 1
    assert sim.events_cancelled == 1


def test_scheduled_and_cancelled_counters():
    sim = Simulator()
    events = [sim.schedule(i + 1, lambda: None) for i in range(4)]
    sim.cancel(events[0])
    sim.cancel(events[2])
    sim.run()
    assert sim.events_scheduled == 4
    assert sim.events_cancelled == 2
    assert sim.events_executed == 2
    assert sim.pending() == 0


def test_profiler_hook_records_each_event():
    sim = Simulator()

    class Probe:
        def __init__(self):
            self.calls = []

        def record(self, callback, elapsed_s, heap_len):
            self.calls.append((callback, elapsed_s, heap_len))

    probe = Probe()
    sim.profiler = probe
    sim.schedule(1, lambda: None)
    sim.schedule(2, lambda: None)
    sim.run()
    assert len(probe.calls) == 2
    assert all(elapsed >= 0 for _, elapsed, _ in probe.calls)


def test_reentrant_run_raises():
    sim = Simulator()
    caught = []

    def reenter():
        try:
            sim.run()
        except SimulationError:
            caught.append(True)

    sim.schedule(1, reenter)
    sim.run()
    assert caught == [True]


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.schedule(1, lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]


def test_deterministic_event_sequence():
    """Two identical simulations produce identical execution traces."""
    def build_and_run():
        sim = Simulator()
        trace = []

        def emit(tag):
            trace.append((sim.now, tag))
            if tag < 3:
                sim.schedule(10 - tag, emit, tag + 1)

        sim.schedule(5, emit, 0)
        sim.schedule(5, emit, 2)
        sim.run()
        return trace

    assert build_and_run() == build_and_run()
