"""Unit tests for the RFC 6298 RTO estimator."""

import pytest

from repro.sim.units import MILLISECOND
from repro.transport.rto import RTOEstimator


def test_first_sample_initialises_srtt_and_var():
    rto = RTOEstimator(min_rto_ns=1)
    rto.add_sample(100_000)
    assert rto.srtt_ns == 100_000
    assert rto.rttvar_ns == 50_000
    # RTO = SRTT + max(4*RTTVAR, granularity) = 100k + 1ms-granularity.
    assert rto.rto_ns == 100_000 + MILLISECOND


def test_smoothing_follows_rfc_gains():
    rto = RTOEstimator(min_rto_ns=1)
    rto.add_sample(100_000)
    rto.add_sample(200_000)
    # RTTVAR = 3/4*50k + 1/4*|100k-200k| = 62.5k
    # SRTT = 7/8*100k + 1/8*200k = 112.5k
    assert rto.srtt_ns == pytest.approx(112_500)
    assert rto.rttvar_ns == pytest.approx(62_500)


def test_min_rto_clamp():
    rto = RTOEstimator(min_rto_ns=10 * MILLISECOND)
    rto.add_sample(100_000)  # tiny RTT -> raw RTO ~1.1 ms
    assert rto.rto_ns == 10 * MILLISECOND


def test_max_rto_clamp():
    rto = RTOEstimator(min_rto_ns=1_000, max_rto_ns=2 * MILLISECOND)
    rto.add_sample(100 * MILLISECOND)
    assert rto.rto_ns == 2 * MILLISECOND


def test_backoff_doubles_and_sample_resets():
    rto = RTOEstimator(min_rto_ns=1 * MILLISECOND,
                       max_rto_ns=1_000 * MILLISECOND)
    rto.add_sample(5 * MILLISECOND)
    base = rto.rto_ns
    rto.on_timeout()
    assert rto.rto_ns == 2 * base
    rto.on_timeout()
    assert rto.rto_ns == 4 * base
    rto.add_sample(5 * MILLISECOND)
    assert rto.rto_ns == pytest.approx(base, rel=0.5)


def test_backoff_respects_max():
    rto = RTOEstimator(min_rto_ns=MILLISECOND, max_rto_ns=8 * MILLISECOND)
    rto.add_sample(2 * MILLISECOND)
    for _ in range(10):
        rto.on_timeout()
    assert rto.rto_ns == 8 * MILLISECOND


def test_pre_sample_rto_is_conservative():
    rto = RTOEstimator(min_rto_ns=10 * MILLISECOND)
    assert rto.rto_ns >= 10 * MILLISECOND


def test_invalid_bounds_raise():
    with pytest.raises(ValueError):
        RTOEstimator(min_rto_ns=0)
    with pytest.raises(ValueError):
        RTOEstimator(min_rto_ns=10, max_rto_ns=5)


def test_negative_sample_rejected():
    rto = RTOEstimator()
    with pytest.raises(ValueError):
        rto.add_sample(-1)


# -- property-style coverage (fault-recovery paths lean on these) -------------

@pytest.mark.parametrize("base_rtt_ns", [
    200_000, 2 * MILLISECOND, 9 * MILLISECOND, 47 * MILLISECOND])
def test_backoff_is_clamped_doubling(base_rtt_ns):
    """After k expiries the RTO equals clamp(base << k) exactly — the
    RFC 6298 doubling never drifts or over/undershoots the bounds."""
    min_rto = 10 * MILLISECOND
    max_rto = 4_000 * MILLISECOND
    rto = RTOEstimator(min_rto_ns=min_rto, max_rto_ns=max_rto)
    rto.add_sample(base_rtt_ns)
    base = rto._rto_ns
    for k in range(1, 12):
        rto.on_timeout()
        expected = max(min_rto, min(base << k, max_rto))
        assert rto.rto_ns == expected


def test_rto_never_leaves_bounds():
    """Whatever the sample/timeout history, min <= rto <= max."""
    rto = RTOEstimator(min_rto_ns=5 * MILLISECOND,
                       max_rto_ns=100 * MILLISECOND)
    samples = [1_000, 500 * MILLISECOND, 3 * MILLISECOND, 0,
               77 * MILLISECOND, 250_000]
    for i, sample in enumerate(samples):
        rto.add_sample(sample)
        assert 5 * MILLISECOND <= rto.rto_ns <= 100 * MILLISECOND
        for _ in range(i):
            rto.on_timeout()
            assert 5 * MILLISECOND <= rto.rto_ns <= 100 * MILLISECOND


def test_sample_after_deep_backoff_recovers_fast():
    """One fresh ACK sample collapses an arbitrarily deep backoff (Karn's
    restart), so a recovered path is not stuck waiting seconds."""
    rto = RTOEstimator(min_rto_ns=10 * MILLISECOND)
    rto.add_sample(2 * MILLISECOND)
    for _ in range(8):
        rto.on_timeout()
    assert rto.rto_ns > 10 * MILLISECOND
    rto.add_sample(2 * MILLISECOND)
    assert rto.rto_ns == 10 * MILLISECOND


def test_rto_timer_restarts_after_host_crash_fault():
    """End-to-end: a host_crash fault cancels the sender's RTO timer, the
    restart re-arms it, and the estimator's backoff state carries the
    outage (timer hygiene for repro.faults)."""
    from repro.faults import FaultController, FaultEvent, FaultSchedule
    from repro.net.topology import build_star
    from repro.queueing.besteffort import BestEffortBuffer
    from repro.queueing.schedulers.drr import DRRScheduler
    from repro.sim.units import gbps, kilobytes, microseconds, milliseconds
    from repro.transport.base import Flow
    from repro.transport.tcp import TCPSender

    net = build_star(num_hosts=3, rate_bps=gbps(1),
                     rtt_ns=microseconds(500),
                     buffer_bytes=kilobytes(85),
                     scheduler_factory=lambda: DRRScheduler([1500.0] * 2),
                     buffer_factory=BestEffortBuffer)
    flow = Flow(flow_id=0, src="h1", dst="h2", size=300_000)
    sender = TCPSender(net.sim, net.host("h1"), flow)
    net.host("h1").register_sender(sender)
    sender.start()
    schedule = FaultSchedule([
        FaultEvent(milliseconds(1), "host_crash", "h1",
                   duration_ns=milliseconds(30))])
    FaultController(net, schedule).arm()
    net.sim.run(until=milliseconds(10))
    assert sender._rto_event is None        # crash cancelled the timer
    net.sim.run(until=milliseconds(32))
    assert sender._rto_event is not None    # restart re-armed it
    net.sim.run(until=2_000_000_000)
    assert sender.complete                  # and the flow finished
    assert sender._rto_event is None        # completed flows hold no timer
