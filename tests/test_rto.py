"""Unit tests for the RFC 6298 RTO estimator."""

import pytest

from repro.sim.units import MILLISECOND
from repro.transport.rto import RTOEstimator


def test_first_sample_initialises_srtt_and_var():
    rto = RTOEstimator(min_rto_ns=1)
    rto.add_sample(100_000)
    assert rto.srtt_ns == 100_000
    assert rto.rttvar_ns == 50_000
    # RTO = SRTT + max(4*RTTVAR, granularity) = 100k + 1ms-granularity.
    assert rto.rto_ns == 100_000 + MILLISECOND


def test_smoothing_follows_rfc_gains():
    rto = RTOEstimator(min_rto_ns=1)
    rto.add_sample(100_000)
    rto.add_sample(200_000)
    # RTTVAR = 3/4*50k + 1/4*|100k-200k| = 62.5k
    # SRTT = 7/8*100k + 1/8*200k = 112.5k
    assert rto.srtt_ns == pytest.approx(112_500)
    assert rto.rttvar_ns == pytest.approx(62_500)


def test_min_rto_clamp():
    rto = RTOEstimator(min_rto_ns=10 * MILLISECOND)
    rto.add_sample(100_000)  # tiny RTT -> raw RTO ~1.1 ms
    assert rto.rto_ns == 10 * MILLISECOND


def test_max_rto_clamp():
    rto = RTOEstimator(min_rto_ns=1_000, max_rto_ns=2 * MILLISECOND)
    rto.add_sample(100 * MILLISECOND)
    assert rto.rto_ns == 2 * MILLISECOND


def test_backoff_doubles_and_sample_resets():
    rto = RTOEstimator(min_rto_ns=1 * MILLISECOND,
                       max_rto_ns=1_000 * MILLISECOND)
    rto.add_sample(5 * MILLISECOND)
    base = rto.rto_ns
    rto.on_timeout()
    assert rto.rto_ns == 2 * base
    rto.on_timeout()
    assert rto.rto_ns == 4 * base
    rto.add_sample(5 * MILLISECOND)
    assert rto.rto_ns == pytest.approx(base, rel=0.5)


def test_backoff_respects_max():
    rto = RTOEstimator(min_rto_ns=MILLISECOND, max_rto_ns=8 * MILLISECOND)
    rto.add_sample(2 * MILLISECOND)
    for _ in range(10):
        rto.on_timeout()
    assert rto.rto_ns == 8 * MILLISECOND


def test_pre_sample_rto_is_conservative():
    rto = RTOEstimator(min_rto_ns=10 * MILLISECOND)
    assert rto.rto_ns >= 10 * MILLISECOND


def test_invalid_bounds_raise():
    with pytest.raises(ValueError):
        RTOEstimator(min_rto_ns=0)
    with pytest.raises(ValueError):
        RTOEstimator(min_rto_ns=10, max_rto_ns=5)


def test_negative_sample_rejected():
    rto = RTOEstimator()
    with pytest.raises(ValueError):
        rto.add_sample(-1)
