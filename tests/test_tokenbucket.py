"""Tests for the token bucket and port shaping (§IV-B)."""

import pytest

from repro.net.port import EgressPort
from repro.net.tokenbucket import TokenBucket, shape_port
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.fifo import FIFOScheduler
from repro.sim.engine import Simulator
from repro.sim.units import SECOND, gbps

from conftest import make_packet


# -- TokenBucket -----------------------------------------------------------------

def test_bucket_starts_full():
    bucket = TokenBucket(rate_bps=gbps(1), burst_bytes=10_000)
    assert bucket.tokens_at(0) == 10_000


def test_consume_depletes_and_refills():
    bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)  # 1000 B/s
    assert bucket.try_consume(0, 1_000)
    assert not bucket.try_consume(0, 1)
    # After half a second: 500 bytes refilled.
    assert bucket.tokens_at(SECOND // 2) == pytest.approx(500)
    assert bucket.try_consume(SECOND // 2, 500)


def test_bucket_caps_at_burst():
    bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)
    bucket.try_consume(0, 1_000)
    assert bucket.tokens_at(100 * SECOND) == 1_000


def test_next_available_time():
    bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)  # 1000 B/s
    bucket.try_consume(0, 1_000)
    # 250 bytes need 0.25 s.
    assert bucket.next_available_ns(0, 250) == pytest.approx(
        SECOND // 4, rel=0.01)
    assert bucket.next_available_ns(SECOND, 250) == SECOND


def test_bucket_rejects_time_reversal():
    bucket = TokenBucket(rate_bps=8_000, burst_bytes=1_000)
    bucket.tokens_at(100)
    with pytest.raises(ValueError):
        bucket.tokens_at(50)


def test_bucket_validation():
    with pytest.raises(ValueError):
        TokenBucket(rate_bps=0, burst_bytes=100)
    with pytest.raises(ValueError):
        TokenBucket(rate_bps=100, burst_bytes=0)


# -- port shaping ------------------------------------------------------------------

class Sink:
    def __init__(self, sim):
        self.sim = sim
        self.arrivals = []

    def receive(self, packet):
        self.arrivals.append(self.sim.now)


def shaped_port(fraction):
    sim = Simulator()
    port = EgressPort(
        sim, "p0", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=10 ** 6, scheduler=FIFOScheduler(),
        buffer_manager=BestEffortBuffer())
    sink = Sink(sim)
    port.connect(sink)
    shape_port(port, fraction)
    return sim, port, sink


def test_shaped_port_throughput_fraction():
    sim, port, sink = shaped_port(0.5)
    for _ in range(100):
        port.send(make_packet(1500))
    sim.run()
    # 100 x 1500 B at 0.5 Gbps = 2.4 ms.
    assert sink.arrivals[-1] == pytest.approx(2_400_000, rel=0.01)


def test_paper_default_half_percent_headroom():
    sim, port, sink = shaped_port(0.995)
    for _ in range(10):
        port.send(make_packet(1500))
    sim.run()
    unshaped_ns = 10 * 12_000
    assert sink.arrivals[-1] == pytest.approx(unshaped_ns / 0.995, rel=0.01)
    assert port.shaped_fraction == 0.995


def test_shape_port_validation():
    sim, port, _ = shaped_port(0.9)
    with pytest.raises(ValueError):
        shape_port(port, 0)
    with pytest.raises(ValueError):
        shape_port(port, 1.5)
