"""Tests for the classic AQM comparators: RED/WRED and CoDel."""

import pytest

from repro.queueing.codel import CoDelBuffer
from repro.queueing.red import REDBuffer
from repro.sim.units import MILLISECOND, microseconds

from conftest import FakePort, make_packet


# -- RED ---------------------------------------------------------------------

def make_red(**kwargs):
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = REDBuffer(**kwargs)
    manager.attach(port)
    return port, manager


def test_red_thresholds_follow_queue_shares():
    port, manager = make_red()
    # Share = 25 KB per queue; min 20 %, max 60 %.
    assert manager.min_th == [5_000] * 4
    assert manager.max_th == [15_000] * 4


def test_red_weighted_thresholds():
    port = FakePort(buffer_bytes=100_000, num_queues=2,
                    weights=[3.0, 1.0])
    manager = REDBuffer()
    manager.attach(port)
    assert manager.min_th[0] == 3 * manager.min_th[1]


def test_red_accepts_below_min_threshold():
    port, manager = make_red()
    for _ in range(50):
        decision = manager.admit(make_packet(1500, ecn=True), 0)
        assert decision.accept and not decision.mark


def test_red_marks_above_max_threshold():
    port, manager = make_red()
    port.fill(0, 40_000)
    manager.avg[0] = 40_000.0  # force the EWMA to steady state
    decision = manager.admit(make_packet(1500, ecn=True), 0)
    assert decision.accept and decision.mark


def test_red_drop_variant_drops_non_ect():
    port, manager = make_red(ecn=False)
    port.fill(0, 40_000)
    manager.avg[0] = 40_000.0
    decision = manager.admit(make_packet(1500), 0)
    assert not decision.accept


def test_red_probabilistic_region_marks_some():
    port, manager = make_red()
    port.fill(0, 10_000)
    manager.avg[0] = 10_000.0  # inside [min_th, max_th)
    outcomes = [manager.admit(make_packet(1500, ecn=True), 0).mark
                for _ in range(400)]
    assert 0 < sum(outcomes) < 400


def test_red_average_tracks_occupancy():
    port, manager = make_red(ewma_weight=0.5)
    port.fill(0, 10_000)
    manager.admit(make_packet(1500, ecn=True), 0)
    assert manager.avg[0] == pytest.approx(5_000)


def test_red_validation():
    with pytest.raises(ValueError):
        REDBuffer(min_th_fraction=0.7, max_th_fraction=0.5)
    with pytest.raises(ValueError):
        REDBuffer(max_p=0)


def test_red_deterministic_per_seed():
    def outcomes(seed):
        port, manager = make_red(seed=seed)
        port.fill(0, 10_000)
        manager.avg[0] = 10_000.0
        return [manager.admit(make_packet(1500, ecn=True), 0).mark
                for _ in range(100)]

    assert outcomes(1) == outcomes(1)
    assert outcomes(1) != outcomes(2)


# -- CoDel --------------------------------------------------------------------

def make_codel(**kwargs):
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = CoDelBuffer(**kwargs)
    manager.attach(port)
    return port, manager


def dequeue_with_sojourn(port, manager, sojourn_ns, queue=0, ecn=True):
    packet = make_packet(1500, ecn=ecn)
    packet.enqueued_at = port.now()
    port.set_time(port.now() + sojourn_ns)
    return manager.on_dequeue(packet, queue)


def test_codel_below_target_never_acts():
    port, manager = make_codel()
    for _ in range(100):
        decision = dequeue_with_sojourn(port, manager, 100_000)
        assert decision.accept and not decision.mark


def test_codel_waits_one_interval_before_acting():
    port, manager = make_codel(target_ns=microseconds(500),
                               interval_ns=10 * MILLISECOND)
    # First packet above target: starts the timer, no action yet.
    decision = dequeue_with_sojourn(port, manager, 600_000)
    assert decision.accept and not decision.mark
    # Still within the interval: no action.
    decision = dequeue_with_sojourn(port, manager, 600_000)
    assert not decision.mark
    # Advance past the interval: the next above-target dequeue acts.
    port.set_time(port.now() + 11 * MILLISECOND)
    decision = dequeue_with_sojourn(port, manager, 600_000)
    assert decision.mark


def test_codel_accelerates_drops_in_dropping_state():
    port, manager = make_codel(interval_ns=10 * MILLISECOND)
    marks = 0
    for _ in range(300):
        port.set_time(port.now() + MILLISECOND)
        decision = dequeue_with_sojourn(port, manager, 700_000)
        if decision.mark:
            marks += 1
    # Control law engaged and the count grew.
    assert marks >= 2
    assert manager._states[0].count >= 2


def test_codel_exits_dropping_when_sojourn_recovers():
    port, manager = make_codel()
    for _ in range(50):
        port.set_time(port.now() + MILLISECOND)
        dequeue_with_sojourn(port, manager, 700_000)
    dequeue_with_sojourn(port, manager, 100_000)  # back under target
    assert manager._states[0].dropping is False


def test_codel_drop_variant_for_non_ect():
    port, manager = make_codel(ecn=False, interval_ns=MILLISECOND)
    drops = 0
    for _ in range(100):
        port.set_time(port.now() + MILLISECOND)
        decision = dequeue_with_sojourn(port, manager, 700_000, ecn=False)
        if not decision.accept:
            drops += 1
    assert drops > 0
    assert manager.drops == drops


def test_codel_per_queue_state_is_independent():
    port, manager = make_codel(interval_ns=MILLISECOND)
    for _ in range(50):
        port.set_time(port.now() + MILLISECOND)
        dequeue_with_sojourn(port, manager, 700_000, queue=0)
    assert manager._states[0].first_above_time is not None
    assert manager._states[1].first_above_time is None


def test_codel_validation():
    with pytest.raises(ValueError):
        CoDelBuffer(target_ns=0)
