"""Unit tests for DynaQ's Algorithm 1 against a fake port."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynaq import DynaQBuffer
from repro.sim.trace import TOPIC_THRESHOLD_CHANGE, TraceBus

from conftest import FakePort, make_packet

MTU = 1500


def make_dynaq(port=None, **kwargs):
    manager = DynaQBuffer(**kwargs)
    manager.attach(port or FakePort(buffer_bytes=100_000, num_queues=4))
    return manager


def test_initial_thresholds_follow_eq1():
    manager = make_dynaq()
    assert manager.thresholds == [25_000] * 4
    assert manager.satisfaction == [25_000] * 4


def test_threshold_sum_equals_buffer_initially():
    manager = make_dynaq()
    assert manager.threshold_sum() == 100_000


def test_below_threshold_no_adjustment():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = make_dynaq(port)
    decision = manager.admit(make_packet(MTU), 0)
    assert decision.accept
    assert manager.thresholds == [25_000] * 4
    assert manager.threshold_moves == 0


def test_steals_from_inactive_queue():
    """A queue over threshold takes buffer from an idle victim."""
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = make_dynaq(port)
    port.fill(0, 25_000)  # queue 0 exactly at threshold
    decision = manager.admit(make_packet(MTU), 0)
    assert decision.accept
    assert manager.thresholds[0] == 25_000 + MTU
    # Some other queue lost exactly MTU.
    assert manager.threshold_sum() == 100_000
    assert manager.threshold_moves == 1


def test_victim_is_largest_extra_buffer():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = make_dynaq(port)
    # Give queue 2 extra threshold by direct manipulation.
    manager.thresholds = [25_000, 20_000, 35_000, 20_000]
    port.fill(0, 25_000)
    manager.admit(make_packet(MTU), 0)
    assert manager.thresholds[2] == 35_000 - MTU


def test_drop_when_victim_is_unsatisfied_and_active():
    """Line 3's second condition: active victims below S are protected."""
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = make_dynaq(port)
    # Both queues at threshold (50 KB each) and active.
    port.fill(0, 50_000)
    port.fill(1, 40_000)
    decision = manager.admit(make_packet(MTU), 0)
    assert not decision.accept
    assert manager.protected_drops == 1
    assert manager.threshold_sum() == 100_000


def test_inactive_victim_is_not_protected():
    """Empty queues lose threshold even below S (work conservation)."""
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = make_dynaq(port)
    manager.thresholds = [60_000, 40_000]  # victim already below S=50 KB
    port.fill(0, 60_000)
    decision = manager.admit(make_packet(MTU), 0)
    assert decision.accept
    assert manager.thresholds == [60_000 + MTU, 40_000 - MTU]


def test_drop_when_victim_threshold_smaller_than_packet():
    """Line 3's first condition keeps every T_i >= 0."""
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = make_dynaq(port)
    manager.thresholds = [99_000, 1_000]
    port.fill(0, 99_000)
    decision = manager.admit(make_packet(MTU), 0)
    assert not decision.accept
    assert manager.thresholds == [99_000, 1_000]


def test_lone_queue_grows_to_nearly_whole_buffer():
    """Work conservation: a single active queue absorbs the buffer.

    Victims cannot give up a residue smaller than one packet, so the
    reachable threshold is B minus at most (M-1) packet-sized residues —
    far beyond the BDP, which is all work conservation needs.
    """
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = make_dynaq(port)
    occupancy = 0
    while occupancy + MTU <= 95_000:
        decision = manager.admit(make_packet(MTU), 0)
        assert decision.accept, f"dropped at occupancy {occupancy}"
        port.fill(0, MTU)
        occupancy += MTU
    assert manager.thresholds[0] >= 95_000
    assert manager.thresholds[0] > 100_000 - 4 * MTU
    assert manager.threshold_sum() == 100_000


def test_port_tail_drop_still_applies():
    # Queue 0 is under its threshold so Algorithm 1 does nothing, but the
    # port-occupancy check (the final enqueue decision) still rejects.
    port = FakePort(buffer_bytes=10_000, num_queues=2)
    manager = make_dynaq(port)
    port.fill(0, 4_000)
    port.fill(1, 5_800)
    decision = manager.admit(make_packet(800), 0)
    assert not decision.accept
    assert decision.reason == "port buffer full"


def test_single_queue_port_degenerates_to_tail_drop():
    port = FakePort(buffer_bytes=10_000, num_queues=1, weights=[1.0])
    manager = make_dynaq(port)
    port.fill(0, 10_000)
    decision = manager.admit(make_packet(MTU), 0)
    assert not decision.accept


def test_weighted_initialization():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    weights=[4.0, 3.0, 2.0, 1.0])
    manager = make_dynaq(port)
    assert manager.thresholds == [40_000, 30_000, 20_000, 10_000]


def test_reinitialize_after_buffer_resize():
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = make_dynaq(port)
    port.fill(0, 50_000)
    manager.admit(make_packet(MTU), 0)  # perturb thresholds
    port.buffer_bytes = 200_000
    manager.reinitialize()
    assert manager.thresholds == [100_000, 100_000]
    assert manager.threshold_sum() == 200_000


def test_satisfaction_override_validation():
    with pytest.raises(ValueError):
        make_dynaq(satisfaction_override=[1, 2, 3])  # port has 4 queues


def test_satisfaction_override_applied():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = DynaQBuffer(satisfaction_override=[10_000] * 4)
    manager.attach(port)
    assert manager.satisfaction == [10_000] * 4


def test_unknown_victim_search_rejected():
    with pytest.raises(ValueError):
        DynaQBuffer(victim_search="bogus")


def test_tournament_search_equivalent_behaviour():
    for search in ("linear", "tournament"):
        port = FakePort(buffer_bytes=100_000, num_queues=4)
        manager = DynaQBuffer(victim_search=search)
        manager.attach(port)
        manager.thresholds = [25_000, 30_000, 25_000, 20_000]
        port.fill(0, 25_000)
        manager.admit(make_packet(MTU), 0)
        assert manager.thresholds[1] == 30_000 - MTU


def test_threshold_trace_published():
    trace = TraceBus()
    events = []
    trace.subscribe(TOPIC_THRESHOLD_CHANGE, lambda **kw: events.append(kw))
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = DynaQBuffer(trace=trace, port_name="p0")
    manager.attach(port)
    # attach publishes a baseline snapshot (victim/gainer = -1) ...
    assert len(events) == 1
    assert events[0]["victim"] == -1 and events[0]["gainer"] == -1
    assert sum(events[0]["satisfaction"]) <= 100_000
    port.fill(0, 50_000)
    manager.admit(make_packet(MTU), 0)
    # ... and every threshold move publishes one change event.
    assert len(events) == 2
    assert events[1]["gainer"] == 0
    assert events[1]["port"] == "p0"
    assert sum(events[1]["thresholds"]) == 100_000


def test_extra_buffer_accessor():
    manager = make_dynaq()
    assert manager.extra_buffer(0) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),      # queue
              st.integers(min_value=64, max_value=9000),  # packet size
              st.booleans()),                             # drain first?
    min_size=1, max_size=300))
def test_invariant_threshold_sum_under_random_traffic(operations):
    """sum(T) == B and T_i >= 0 survive arbitrary admit sequences."""
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = DynaQBuffer()
    manager.attach(port)
    queue_fill = [0, 0, 0, 0]
    for queue, size, drain in operations:
        if drain and queue_fill[queue] > 0:
            port.drain(queue, queue_fill[queue])
            queue_fill[queue] = 0
        decision = manager.admit(make_packet(size), queue)
        if decision.accept:
            port.fill(queue, size)
            queue_fill[queue] += size
        assert manager.threshold_sum() == 100_000
        assert all(t >= 0 for t in manager.thresholds)
