"""Transport tests: TCP/NewReno, CUBIC, DCTCP over a real mini-network."""

import pytest

from repro.net.topology import build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.perqueue_ecn import PerQueueECNBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.errors import TransportError
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow, segment_sizes, wire_size
from repro.transport.cubic import CubicSender
from repro.transport.dctcp import DCTCPSender
from repro.transport.registry import available_protocols, sender_class
from repro.transport.tcp import TCPSender

RTT = microseconds(500)


def make_net(buffer_bytes=kilobytes(85), buffer_factory=BestEffortBuffer,
             num_hosts=3):
    return build_star(
        num_hosts=num_hosts, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=buffer_bytes,
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=buffer_factory)


def run_flow(net, size, sender_cls=TCPSender, src="h1", dst="h2",
             flow_id=0, **kwargs):
    flow = Flow(flow_id=flow_id, src=src, dst=dst, size=size)
    sender = sender_cls(net.sim, net.host(src), flow, **kwargs)
    net.host(src).register_sender(sender)
    sender.start()
    return sender


# -- helpers ----------------------------------------------------------------

def test_segment_sizes_cover_flow_exactly():
    segments = segment_sizes(4000, 1460)
    assert segments == [(0, 1460), (1460, 2920), (2920, 4000)]


def test_wire_size_adds_header():
    assert wire_size(1460) == 1500


def test_flow_rejects_empty():
    with pytest.raises(TransportError):
        Flow(flow_id=0, src="a", dst="b", size=0)


def test_registry_contains_all_protocols():
    assert available_protocols() == [
        "cubic", "dctcp", "ecn-tcp", "tcp", "vegas"]
    assert sender_class("TCP") is TCPSender


def test_registry_unknown_protocol():
    with pytest.raises(KeyError):
        sender_class("quic")


def test_pias_tagging_per_offset():
    flow = Flow(flow_id=0, src="a", dst="b", size=10 ** 6,
                service_class=3, pias_threshold=100_000)
    assert flow.class_for_offset(0) == 0
    assert flow.class_for_offset(99_999) == 0
    assert flow.class_for_offset(100_000) == 3


# -- clean-path behaviour ------------------------------------------------------

def test_single_flow_completes_and_fct_reasonable():
    net = make_net()
    sender = run_flow(net, 100_000)
    net.sim.run(until=seconds(1))
    assert sender.complete
    # 100 KB at 1 Gbps is 0.8 ms of wire time; FCT must be a handful of
    # RTTs (slow start) but well under 20 ms.
    assert sender.fct_ns() < 20_000_000
    assert sender.retransmissions == 0


def test_tiny_flow_finishes_in_about_one_rtt():
    net = make_net()
    sender = run_flow(net, 1_000)
    net.sim.run(until=seconds(1))
    assert sender.complete
    assert sender.fct_ns() < 2 * RTT


def test_receiver_reassembles_exact_bytes():
    net = make_net()
    sender = run_flow(net, 123_456)
    net.sim.run(until=seconds(1))
    receiver = net.host("h2").receivers[0]
    assert receiver.next_expected == 123_456
    assert receiver.received_bytes == 123_456


def test_fct_before_completion_raises():
    net = make_net()
    sender = run_flow(net, 10 ** 7)
    with pytest.raises(TransportError):
        sender.fct_ns()


def test_double_start_rejected():
    net = make_net()
    sender = run_flow(net, 10_000)
    with pytest.raises(TransportError):
        sender.start()


def test_initial_window_is_ten_segments():
    net = make_net()
    sender = run_flow(net, 10 ** 6)
    # Immediately after start, exactly IW segments are in flight.
    assert sender.next_seq == 10 * sender.mss


def test_slow_start_doubles_window():
    net = make_net()
    sender = run_flow(net, 10 ** 7)
    net.sim.run(until=3 * RTT)
    assert sender.cwnd >= 20 * sender.mss  # grew beyond IW


def test_abort_stops_flow():
    net = make_net()
    sender = run_flow(net, 10 ** 9)
    net.sim.run(until=10 * RTT)
    sender.abort()
    acked_at_abort = sender.high_ack
    assert sender.complete
    net.sim.run(until=seconds(0.1))
    assert sender.packets_sent > 0
    # No new data transmitted after abort.
    assert sender.high_ack == acked_at_abort


def test_two_flows_share_link():
    net = make_net()
    a = run_flow(net, 500_000, flow_id=1)
    b = run_flow(net, 500_000, src="h1", dst="h2", flow_id=2)
    net.sim.run(until=seconds(1))
    assert a.complete and b.complete


# -- loss recovery ----------------------------------------------------------------

def lossy_pair(size=400_000, cls_a=TCPSender, cls_b=TCPSender):
    """Two senders on distinct hosts converge on h2 through a tiny buffer.

    A single flow never overflows the switch (its own NIC paces it at the
    same line rate); congestion needs fan-in, exactly as in the paper's
    many-to-one scenarios.
    """
    net = make_net(buffer_bytes=6_000)
    a = run_flow(net, size, sender_cls=cls_a, src="h0", dst="h2", flow_id=1)
    b = run_flow(net, size, sender_cls=cls_b, src="h1", dst="h2", flow_id=2)
    return net, a, b


def test_fast_retransmit_recovers_from_loss():
    net, a, b = lossy_pair()
    net.sim.run(until=seconds(3))
    assert a.complete and b.complete
    assert a.retransmissions + b.retransmissions > 0
    # Loss was recovered by dupacks (mostly), not stalls: FCT is far less
    # than the RTO-bound worst case of one timeout per window.
    assert a.fct_ns() < seconds(2)


def test_ssthresh_reduced_after_loss():
    net, a, b = lossy_pair()
    net.sim.run(until=seconds(3))
    assert min(a.ssthresh, b.ssthresh) < (1 << 62)


def test_rto_fires_when_whole_window_lost():
    """Drop everything for a while: only the RTO can recover."""
    net = make_net()
    port = net.switch("s0").ports["s0->h2"]
    real_send = port.send
    blackhole = {"on": True}

    def gated_send(packet):
        if blackhole["on"] and not packet.is_ack:
            return  # silently eat every data packet
        real_send(packet)

    port.send = gated_send
    sender = run_flow(net, 50_000)
    net.sim.schedule(seconds(0.05), lambda: blackhole.update(on=False))
    net.sim.run(until=seconds(2))
    assert sender.complete
    assert sender.timeouts >= 1


def test_rto_uses_min_rto_floor():
    net = make_net()
    sender = run_flow(net, 100_000, min_rto_ns=10_000_000)
    net.sim.run(until=seconds(1))
    assert sender.rto.min_rto_ns == 10_000_000
    assert sender.rto.rto_ns >= 10_000_000


# -- CUBIC ------------------------------------------------------------------------

def test_cubic_completes_clean_path():
    net = make_net()
    sender = run_flow(net, 1_000_000, sender_cls=CubicSender)
    net.sim.run(until=seconds(1))
    assert sender.complete


def test_cubic_recovers_from_loss():
    net, a, b = lossy_pair(size=300_000, cls_a=CubicSender,
                           cls_b=CubicSender)
    net.sim.run(until=seconds(4))
    assert a.complete and b.complete
    assert max(a.w_max_segments, b.w_max_segments) > 0


def test_cubic_beta_decrease():
    net, a, b = lossy_pair(size=300_000, cls_a=CubicSender,
                           cls_b=CubicSender)
    net.sim.run(until=seconds(4))
    # After any loss, ssthresh is 0.7x cwnd (not Reno's 0.5x of flight);
    # just assert the multiplicative-decrease hook ran on someone.
    assert min(a.ssthresh, b.ssthresh) < (1 << 62)


# -- DCTCP ------------------------------------------------------------------------

def ecn_net():
    return make_net(
        buffer_factory=lambda: PerQueueECNBuffer(rtt_ns=RTT))


def test_dctcp_flow_is_ecn_capable():
    net = ecn_net()
    sender = run_flow(net, 100_000, sender_cls=DCTCPSender)
    assert sender.flow.ecn is True
    net.sim.run(until=seconds(1))
    assert sender.complete


def test_dctcp_alpha_tracks_marking():
    net = ecn_net()
    # Two competing DCTCP flows drive the queue over the marking
    # threshold, so alpha must move away from its initial value and
    # ECN echoes must be observed.
    a = run_flow(net, 2_000_000, sender_cls=DCTCPSender, src="h0",
                 dst="h2", flow_id=1)
    b = run_flow(net, 2_000_000, sender_cls=DCTCPSender, src="h1",
                 dst="h2", flow_id=2)
    net.sim.run(until=seconds(1))
    assert a.complete and b.complete
    assert a.ecn_echoes + b.ecn_echoes > 0


def test_dctcp_cwnd_reduction_is_gentler_than_halving():
    """With small alpha, the window reduction is less than 50 %."""
    net = ecn_net()
    sender = run_flow(net, 4_000_000, sender_cls=DCTCPSender)
    net.sim.run(until=seconds(2))
    assert sender.complete
    # alpha decays from 1.0 toward the actual marking fraction.
    assert 0.0 <= sender.alpha < 1.0


def test_plain_tcp_ignores_ecn_echo():
    net = ecn_net()
    sender = run_flow(net, 1_000_000, sender_cls=TCPSender)
    net.sim.run(until=seconds(2))
    assert sender.complete
    # Non-ECT packets are never marked, so no echoes arrive at all.
    assert sender.ecn_echoes == 0
