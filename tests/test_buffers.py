"""Unit tests for the baseline / comparator buffer managers."""

import pytest

from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.dynamic_threshold import DynamicThresholdBuffer
from repro.queueing.mqecn import MQECNBuffer
from repro.queueing.perqueue_ecn import (
    DEFAULT_LAMBDA,
    PerQueueECNBuffer,
    ecn_threshold_bytes,
)
from repro.queueing.pmsb import PMSBBuffer
from repro.queueing.pql import PQLBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.queueing.schedulers.spq import SPQScheduler
from repro.queueing.tcn import TCNBuffer
from repro.sim.units import gbps, microseconds

from conftest import FakePort, make_packet

RTT = microseconds(500)


# -- BestEffort --------------------------------------------------------------

def test_besteffort_accepts_until_port_full():
    port = FakePort(buffer_bytes=10_000, num_queues=2)
    manager = BestEffortBuffer()
    manager.attach(port)
    assert manager.admit(make_packet(9_000), 0).accept
    port.fill(0, 9_000)
    assert manager.admit(make_packet(1_000), 1).accept
    port.fill(1, 1_000)
    decision = manager.admit(make_packet(1), 0)
    assert not decision.accept
    assert manager.drops == 1


def test_besteffort_ignores_per_queue_occupancy():
    """One queue may monopolise the whole buffer (the Fig. 1 pathology)."""
    port = FakePort(buffer_bytes=10_000, num_queues=4)
    manager = BestEffortBuffer()
    manager.attach(port)
    port.fill(3, 9_900)
    assert manager.admit(make_packet(100), 3).accept


# -- PQL ----------------------------------------------------------------------

def test_pql_limits_follow_weights():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    weights=[4.0, 3.0, 2.0, 1.0])
    manager = PQLBuffer()
    manager.attach(port)
    assert manager.limits == [40_000, 30_000, 20_000, 10_000]


def test_pql_drops_at_queue_limit_even_with_free_buffer():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = PQLBuffer()
    manager.attach(port)
    port.fill(0, 25_000)  # at the static limit; buffer 75 % empty
    decision = manager.admit(make_packet(100), 0)
    assert not decision.accept
    assert decision.reason == "per-queue limit"


def test_pql_accepts_below_limit():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = PQLBuffer()
    manager.attach(port)
    port.fill(0, 20_000)
    assert manager.admit(make_packet(1500), 0).accept


# -- Dynamic Threshold -----------------------------------------------------------

def test_dt_threshold_shrinks_with_occupancy():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = DynamicThresholdBuffer(alpha=1.0)
    manager.attach(port)
    assert manager.current_threshold() == 100_000
    port.fill(0, 60_000)
    assert manager.current_threshold() == 40_000


def test_dt_drop_above_threshold():
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    manager = DynamicThresholdBuffer(alpha=0.5)
    manager.attach(port)
    port.fill(0, 40_000)
    # threshold = 0.5 * (100k - 40k) = 30k < queue occupancy -> drop.
    assert not manager.admit(make_packet(1500), 0).accept


def test_dt_same_threshold_for_all_queues():
    """DT cannot provide *weighted* isolation: thresholds are identical."""
    port = FakePort(buffer_bytes=100_000, num_queues=2,
                    weights=[10.0, 1.0])
    manager = DynamicThresholdBuffer()
    manager.attach(port)
    port.fill(0, 30_000)
    port.fill(1, 30_000)
    threshold = manager.current_threshold()
    assert threshold == 40_000  # independent of weights


def test_dt_rejects_bad_alpha():
    with pytest.raises(ValueError):
        DynamicThresholdBuffer(alpha=0)


# -- Per-Queue ECN ------------------------------------------------------------------

def test_ecn_threshold_bytes_testbed_value():
    # C*RTT*lambda = 62.5 KB * 0.48 = 30 KB, the paper's DCTCP K.
    assert ecn_threshold_bytes(gbps(1), RTT, DEFAULT_LAMBDA) == 30_000


def test_perqueue_ecn_marks_above_share_threshold():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    link_rate_bps=gbps(1))
    manager = PerQueueECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    # K = 30 KB -> per-queue K_i = 7.5 KB with equal weights.
    assert manager.queue_thresholds == [7_500] * 4
    port.fill(0, 8_000)
    decision = manager.admit(make_packet(1500, ecn=True), 0)
    assert decision.accept and decision.mark
    assert manager.marks == 1


def test_perqueue_ecn_no_mark_below_threshold():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    link_rate_bps=gbps(1))
    manager = PerQueueECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    decision = manager.admit(make_packet(1500, ecn=True), 0)
    assert decision.accept and not decision.mark


def test_perqueue_ecn_never_marks_non_ect():
    port = FakePort(buffer_bytes=100_000, num_queues=4,
                    link_rate_bps=gbps(1))
    manager = PerQueueECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    port.fill(0, 50_000)
    decision = manager.admit(make_packet(1500, ecn=False), 0)
    assert decision.accept and not decision.mark


# -- PMSB -------------------------------------------------------------------------

def make_pmsb(port=None):
    port = port or FakePort(buffer_bytes=100_000, num_queues=4,
                            link_rate_bps=gbps(1))
    manager = PMSBBuffer(rtt_ns=RTT)
    manager.attach(port)
    return port, manager


def test_pmsb_thresholds():
    _, manager = make_pmsb()
    assert manager.port_threshold == 30_000
    assert manager.queue_thresholds == [7_500] * 4


def test_pmsb_requires_both_conditions():
    port, manager = make_pmsb()
    packet = make_packet(1500, ecn=True)
    # Queue over K_i but port under K: selective blindness, no mark.
    port.fill(0, 10_000)
    assert not manager.admit(packet, 0).mark
    # Port over K but this queue under K_i: still no mark.
    port.fill(1, 25_000)
    assert not manager.admit(make_packet(1500, ecn=True), 2).mark
    # Both conditions: mark.
    assert manager.admit(make_packet(1500, ecn=True), 0).mark


# -- TCN --------------------------------------------------------------------------

def test_tcn_threshold_is_240us_at_testbed_settings():
    manager = TCNBuffer(rtt_ns=RTT)
    assert manager.sojourn_threshold_ns == 240_000
    assert manager.sojourn_threshold_us == pytest.approx(240.0)


def test_tcn_marks_on_long_sojourn():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = TCNBuffer(rtt_ns=RTT)
    manager.attach(port)
    packet = make_packet(1500, ecn=True)
    packet.enqueued_at = 0
    port.set_time(300_000)  # 300 us in queue > 240 us threshold
    decision = manager.on_dequeue(packet, 0)
    assert decision.accept and decision.mark


def test_tcn_no_mark_on_short_sojourn():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = TCNBuffer(rtt_ns=RTT)
    manager.attach(port)
    packet = make_packet(1500, ecn=True)
    packet.enqueued_at = 0
    port.set_time(100_000)
    decision = manager.on_dequeue(packet, 0)
    assert decision.accept and not decision.mark


def test_tcn_drop_variant_drops_at_dequeue():
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = TCNBuffer(rtt_ns=RTT, drop_variant=True)
    manager.attach(port)
    packet = make_packet(1500)
    packet.enqueued_at = 0
    port.set_time(300_000)
    decision = manager.on_dequeue(packet, 0)
    assert not decision.accept
    assert manager.dequeue_drops == 1
    assert manager.name == "TCN-drop"


def test_tcn_enqueue_is_plain_tail_drop():
    port = FakePort(buffer_bytes=10_000, num_queues=2)
    manager = TCNBuffer(rtt_ns=RTT)
    manager.attach(port)
    port.fill(0, 10_000)
    assert not manager.admit(make_packet(1500), 0).accept


# -- MQ-ECN -----------------------------------------------------------------------

def make_mqecn_port():
    port = FakePort(buffer_bytes=100_000, num_queues=2,
                    link_rate_bps=gbps(1))
    port.scheduler = DRRScheduler([1500, 1500])
    return port


def test_mqecn_requires_drr_scheduler():
    port = FakePort(buffer_bytes=100_000, num_queues=2)
    port.scheduler = SPQScheduler(2)
    manager = MQECNBuffer(rtt_ns=RTT)
    with pytest.raises(TypeError):
        manager.attach(port)


def test_mqecn_threshold_capped_at_link_rate():
    port = make_mqecn_port()
    manager = MQECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    # No active queues -> analytic round estimate 0 -> full-rate K.
    assert manager.marking_threshold(0) == 30_000


def test_mqecn_threshold_scales_with_round_time():
    port = make_mqecn_port()
    manager = MQECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    # Simulate a measured round of 24 us with quantum 1500 B:
    # service rate = 1500*8/24us = 0.5 Gbps -> K_i = 15 KB.
    port.scheduler.round_time_ns = 24_000.0
    assert manager.marking_threshold(0) == 15_000


def test_mqecn_marks_above_threshold():
    port = make_mqecn_port()
    manager = MQECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    port.scheduler.round_time_ns = 24_000.0
    port.fill(0, 20_000)
    decision = manager.admit(make_packet(1500, ecn=True), 0)
    assert decision.accept and decision.mark
