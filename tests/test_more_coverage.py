"""Additional coverage: result helpers, config defaults, edge cases."""

import pytest

from repro.experiments.incast import IncastResult
from repro.experiments.simulation import (
    SIM_10G,
    SIM_100G,
    LeafSpineConfig,
    StaticSimResult,
    many_flows_senders,
)
from repro.experiments.testbed import DEFAULT_CONFIG
from repro.experiments.testbed import TestbedConfig as _TestbedConfig
from repro.metrics.throughput import ThroughputSample
from repro.net.packet import JUMBO_MTU_BYTES
from repro.sim.units import gbps, kilobytes, megabytes, microseconds
from repro.workloads.datasets import WEB_SEARCH

from conftest import FakePort, make_packet


# -- configuration constants match the paper -----------------------------------------

def test_testbed_config_matches_paper():
    assert DEFAULT_CONFIG.rate_bps == gbps(1)
    assert DEFAULT_CONFIG.buffer_bytes == kilobytes(85)
    assert DEFAULT_CONFIG.rtt_ns == microseconds(500)
    assert DEFAULT_CONFIG.min_rto_ns == 10_000_000
    assert DEFAULT_CONFIG.mtu_bytes == 1500


def test_sim_configs_match_paper():
    assert SIM_10G.rate_bps == gbps(10)
    assert SIM_10G.buffer_bytes == kilobytes(192)   # Trident+
    assert SIM_10G.rtt_ns == microseconds(84)
    assert SIM_100G.rate_bps == gbps(100)
    assert SIM_100G.buffer_bytes == megabytes(1)    # Trident 3
    assert SIM_100G.mtu_bytes == JUMBO_MTU_BYTES
    assert SIM_100G.min_rto_ns == 5_000_000         # jiffy-timer floor


def test_leaf_spine_config_matches_paper():
    config = LeafSpineConfig()
    assert config.num_leaves == 12
    assert config.num_spines == 12
    assert config.hosts_per_leaf == 12
    assert config.rtt_ns == 85_200


def test_many_flows_senders_is_exponential():
    # Fig. 12: queue k has 2^(3+k) senders; queue 8 -> 2048.
    assert many_flows_senders(1) == 16
    assert many_flows_senders(8) == 2048


def test_custom_testbed_config_overrides():
    config = _TestbedConfig(rate_bps=gbps(10))
    assert config.rate_bps == gbps(10)
    assert config.buffer_bytes == kilobytes(85)  # others keep defaults


# -- StaticSimResult helpers ------------------------------------------------------------

def make_static_result():
    samples = [
        ThroughputSample(10_000_000, (5e9, 5e9), 10e9),
        ThroughputSample(20_000_000, (10e9, 0.0), 10e9),
    ]
    return StaticSimResult(
        scheme="DynaQ", samples=samples,
        stop_times_ns=[None, 15_000_000], config=SIM_10G, num_queues=2)


def test_active_queue_bookkeeping():
    result = make_static_result()
    assert result.active_queues_at(10_000_000) == [0, 1]
    assert result.active_queues_at(16_000_000) == [0]


def test_fairness_series_ignores_stopped_queues():
    result = make_static_result()
    series = result.fairness_series()
    assert series[0] == pytest.approx(1.0)   # both active, equal
    assert series[1] == pytest.approx(1.0)   # queue 2 stopped: only q1
    assert len(series) == 2


def test_mean_helpers_window():
    result = make_static_result()
    assert result.mean_aggregate_bps() == pytest.approx(10e9)
    assert result.mean_aggregate_bps(start_ns=15_000_000) == pytest.approx(10e9)
    assert result.mean_fairness() == pytest.approx(1.0)
    # Empty window defaults to perfect fairness.
    assert result.mean_fairness(start_ns=10**12) == 1.0


# -- IncastResult -----------------------------------------------------------------------

def test_incast_result_properties():
    result = IncastResult("DynaQ", 8, 8, 12.0, 6.0, 1, 10)
    assert result.all_completed
    incomplete = IncastResult("DynaQ", 8, 7, None, 6.0, 1, 10)
    assert not incomplete.all_completed
    assert incomplete.query_completion_ms is None


# -- DynaQ edge cases ---------------------------------------------------------------------

def test_dynaq_packet_larger_than_total_buffer():
    from repro.core.dynaq import DynaQBuffer
    port = FakePort(buffer_bytes=5_000, num_queues=2)
    manager = DynaQBuffer()
    manager.attach(port)
    decision = manager.admit(make_packet(9_000), 0)
    assert not decision.accept
    assert manager.threshold_sum() == 5_000


def test_dynaq_two_queue_steal_direction():
    from repro.core.dynaq import DynaQBuffer
    port = FakePort(buffer_bytes=10_000, num_queues=2)
    manager = DynaQBuffer()
    manager.attach(port)
    # Queue 1 idle: queue 0 over threshold steals from it repeatedly.
    port.fill(0, 5_000)
    for _ in range(2):
        decision = manager.admit(make_packet(1_000), 0)
        assert decision.accept
        port.fill(0, 1_000)
    assert manager.thresholds[0] == 7_000
    assert manager.thresholds[1] == 3_000


# -- workload tail stats --------------------------------------------------------------------

def test_bytes_fraction_above_is_monotone():
    low = WEB_SEARCH.bytes_fraction_above(10_000)
    high = WEB_SEARCH.bytes_fraction_above(10_000_000)
    assert 0.0 <= high <= low <= 1.0


def test_bytes_fraction_above_extremes():
    assert WEB_SEARCH.bytes_fraction_above(0) == pytest.approx(1.0)
    assert WEB_SEARCH.bytes_fraction_above(10 ** 12) == 0.0


def test_truncated_at_exact_point():
    truncated = WEB_SEARCH.truncated(1_000_000)
    assert truncated.sizes[-1] == 1_000_000
    assert truncated.probs[-1] == 1.0
    # The body below the cut is untouched.
    assert truncated.cdf_at(50_000) == pytest.approx(
        WEB_SEARCH.cdf_at(50_000))


# -- port odds and ends -----------------------------------------------------------------------

def test_port_queue_weights_come_from_scheduler():
    from repro.net.port import EgressPort
    from repro.queueing.besteffort import BestEffortBuffer
    from repro.queueing.schedulers.drr import DRRScheduler
    from repro.sim.engine import Simulator
    port = EgressPort(
        Simulator(), "p", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=1000, scheduler=DRRScheduler([6000, 1500]),
        buffer_manager=BestEffortBuffer())
    assert port.queue_weights() == [6000, 1500]


def test_port_resize_mid_traffic_keeps_occupancy_consistent():
    from repro.net.port import EgressPort
    from repro.core.dynaq import DynaQBuffer
    from repro.queueing.schedulers.drr import DRRScheduler
    from repro.sim.engine import Simulator

    sim = Simulator()
    port = EgressPort(
        sim, "p", rate_bps=gbps(1), prop_delay_ns=0,
        buffer_bytes=20_000, scheduler=DRRScheduler([1500] * 2),
        buffer_manager=DynaQBuffer())

    class Sink:
        def receive(self, packet):
            pass

    port.connect(Sink())
    for _ in range(6):
        port.send(make_packet(1500))
    occupancy_before = port.total_bytes()
    port.resize_buffer(40_000)
    assert port.total_bytes() == occupancy_before
    assert port.buffer_manager.threshold_sum() == 40_000
    sim.run()
    assert port.total_bytes() == 0
