"""Integration tests: shortened versions of the paper's experiments.

These runs are scaled down (hundreds of milliseconds instead of tens of
seconds) but still long enough — thousands of RTTs — for the qualitative
claims of each figure to hold: DynaQ is fair and work-conserving,
BestEffort is unfair, PQL loses throughput when queues go idle.
"""

import pytest

from repro.experiments.runner import (
    buffer_factory,
    scheme,
    scheme_names,
    transport_for,
)
from repro.experiments.simulation import (
    SIM_10G,
    StaticSimResult,
    run_static_sim,
)
from repro.experiments.testbed import (
    DEFAULT_CONFIG,
    fair_sharing_stop_schedule,
    run_convergence,
    run_fct_experiment,
    run_motivation,
    run_protocol_mix,
    run_weighted_sharing,
)
from repro.sim.errors import ConfigurationError
from repro.sim.units import seconds
from repro.transport.dctcp import DCTCPSender
from repro.transport.tcp import TCPSender
from repro.workloads.datasets import WEB_SEARCH

GBPS = 1e9


# -- scheme registry ------------------------------------------------------------

def test_scheme_registry_complete():
    names = scheme_names()
    for expected in ("dynaq", "besteffort", "pql", "tcn", "pmsb",
                     "perqueue-ecn", "mqecn", "dt", "dynaq-ecn",
                     "tcn-drop", "dynaq-tournament"):
        assert expected in names


def test_scheme_lookup_case_insensitive():
    assert scheme("DynaQ").name == "DynaQ"
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        scheme("nonsense")


def test_buffer_factory_returns_fresh_instances():
    factory = buffer_factory("dynaq", rtt_ns=500_000)
    assert factory() is not factory()


def test_transport_pairing_follows_paper():
    assert transport_for("dynaq") is TCPSender
    assert transport_for("pmsb") is DCTCPSender
    assert transport_for("tcn") is DCTCPSender


# -- Fig. 3: convergence ---------------------------------------------------------

def test_convergence_dynaq_is_fair_despite_flow_imbalance():
    result = run_convergence("dynaq", duration_s=0.4,
                             sample_interval_s=0.1)
    q1 = result.mean_rate_bps(0, start_ns=seconds(0.1))
    q2 = result.mean_rate_bps(1, start_ns=seconds(0.1))
    assert q1 / GBPS > 0.35
    assert q2 / GBPS > 0.35
    assert result.mean_aggregate_bps() / GBPS > 0.9


def test_convergence_besteffort_is_unfair():
    result = run_convergence("besteffort", duration_s=0.4,
                             sample_interval_s=0.1)
    q1 = result.mean_rate_bps(0, start_ns=seconds(0.1))
    q2 = result.mean_rate_bps(1, start_ns=seconds(0.1))
    # Queue 2's 16 flows dominate the 2 flows of queue 1.
    assert q2 > 2 * q1


def test_convergence_queue_samples_collected():
    result = run_convergence("dynaq", duration_s=0.2,
                             sample_interval_s=0.1, queue_samples=500)
    assert len(result.queue_lengths.samples) == 500


# -- Fig. 1: motivation ------------------------------------------------------------

def test_motivation_besteffort_starves_queue1():
    result = run_motivation(duration_s=0.4, sample_interval_s=0.1,
                            queue_samples=200)
    q1 = result.mean_rate_bps(0, start_ns=seconds(0.1))
    q2 = result.mean_rate_bps(1, start_ns=seconds(0.1))
    assert q2 > 2 * q1  # fair share would be equal
    # Queue 2 dominates the sampled buffer occupancy too.
    assert (result.queue_lengths.mean_occupancy(1)
            > result.queue_lengths.mean_occupancy(0))


def test_motivation_dynaq_restores_fairness():
    result = run_motivation("dynaq", duration_s=0.4,
                            sample_interval_s=0.1)
    q1 = result.mean_rate_bps(0, start_ns=seconds(0.1))
    q2 = result.mean_rate_bps(1, start_ns=seconds(0.1))
    assert q1 == pytest.approx(q2, rel=0.35)


# -- Fig. 6: weighted sharing -------------------------------------------------------

def test_weighted_sharing_dynaq_respects_weights():
    result = run_weighted_sharing("dynaq", duration_s=0.4,
                                  sample_interval_s=0.1)
    shares = result.mean_shares(start_ns=seconds(0.1))
    ideal = [0.4, 0.3, 0.2, 0.1]
    for measured, expected in zip(shares, ideal):
        assert measured == pytest.approx(expected, abs=0.08)


def test_weighted_sharing_besteffort_violates_weights():
    result = run_weighted_sharing("besteffort", duration_s=0.4,
                                  sample_interval_s=0.1)
    shares = result.mean_shares(start_ns=seconds(0.1))
    # Queue 4 (weight 0.1, 16 flows) grabs far more than its share,
    # mirroring the paper's 0.35-vs-0.1 observation.
    assert shares[3] > 0.2


# -- Fig. 5 schedule helper -----------------------------------------------------------

def test_fair_sharing_stop_schedule_matches_paper():
    stops = fair_sharing_stop_schedule(5.0)
    assert stops == [seconds(25), seconds(20), seconds(15), seconds(10)]


# -- Fig. 7: protocol mix -------------------------------------------------------------

def test_protocol_mix_dynaq_fair_across_tcp_and_cubic():
    result = run_protocol_mix("dynaq", time_unit_s=0.08,
                              sample_interval_s=0.04)
    window_end = seconds(0.16)  # all four queues still active
    rates = [result.mean_rate_bps(q, end_ns=window_end)
             for q in range(4)]
    assert result.jain(range(4), end_ns=window_end) > 0.9
    assert sum(rates) / GBPS > 0.85


# -- Figs. 8-9: FCT ---------------------------------------------------------------

def test_fct_experiment_completes_all_flows():
    result = run_fct_experiment(
        "dynaq", load=0.4, num_flows=40,
        distribution=WEB_SEARCH.truncated(1_000_000), seed=3)
    assert result.completed == 40
    assert result.outstanding == 0
    assert result.summary["avg_overall_ms"] > 0


def test_fct_experiment_small_flows_fast_under_spq():
    result = run_fct_experiment(
        "dynaq", load=0.5, num_flows=60,
        distribution=WEB_SEARCH.truncated(1_000_000), seed=4)
    summary = result.summary
    # PIAS + SPQ gives small flows far better FCT than the average.
    assert summary["avg_small_ms"] < summary["avg_overall_ms"]


def test_fct_experiment_deterministic_for_seed():
    kwargs = dict(load=0.4, num_flows=25,
                  distribution=WEB_SEARCH.truncated(500_000), seed=11)
    a = run_fct_experiment("dynaq", **kwargs)
    b = run_fct_experiment("dynaq", **kwargs)
    assert a.summary == b.summary


def test_fct_experiment_ecn_scheme_uses_dctcp_and_marks():
    result = run_fct_experiment(
        "pmsb", load=0.6, num_flows=50,
        distribution=WEB_SEARCH.truncated(2_000_000), seed=5)
    assert result.completed == 50


# -- Figs. 10-12: static sims -----------------------------------------------------------

def small_static(scheme_name):
    return run_static_sim(
        scheme_name, config=SIM_10G, num_queues=4,
        senders_for_queue=lambda k: 2 * k, first_stop_ms=40,
        stop_step_ms=20, duration_ms=120, sample_interval_ms=10)


def test_static_sim_dynaq_fair_and_work_conserving():
    result = small_static("dynaq")
    assert result.mean_fairness(start_ns=10_000_000) > 0.9
    assert result.mean_aggregate_bps(start_ns=10_000_000) / GBPS > 9.0


def test_static_sim_pql_loses_throughput_when_queues_idle():
    dynaq = small_static("dynaq")
    pql = small_static("pql")
    # After every queue but #1 stopped (t > 100 ms), PQL caps queue 1's
    # buffer at B/4 < BDP and the link under-utilises relative to DynaQ.
    tail_start = 100_000_000
    assert (pql.mean_aggregate_bps(start_ns=tail_start)
            < dynaq.mean_aggregate_bps(start_ns=tail_start) * 0.97)


def test_static_sim_active_queue_bookkeeping():
    result = small_static("dynaq")
    assert result.active_queues_at(0) == [0, 1, 2, 3]
    assert result.active_queues_at(130_000_000) == [0]
    assert isinstance(result, StaticSimResult)
    assert len(result.fairness_series()) == len(result.samples)
