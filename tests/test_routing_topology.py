"""Unit + integration tests for forwarding, ECMP, and topology builders."""

import pytest

from repro.net.routing import ForwardingTable
from repro.net.topology import build_leaf_spine, build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.errors import RoutingError
from repro.sim.units import gbps, kilobytes, microseconds

from conftest import make_packet


class FakePortRec:
    def __init__(self, name):
        self.name = name
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)


def test_forwarding_single_route():
    table = ForwardingTable("s0")
    port = FakePortRec("p0")
    table.add_route("h1", port)
    packet = make_packet()
    packet_dst = packet.dst = "h1"
    assert table.lookup(packet) is port


def test_forwarding_missing_route_raises():
    table = ForwardingTable("s0")
    with pytest.raises(RoutingError):
        table.lookup(make_packet())


def test_ecmp_choice_is_per_flow_stable():
    table = ForwardingTable("s0")
    ports = [FakePortRec(f"p{i}") for i in range(4)]
    for port in ports:
        table.add_route("b", port)
    packet = make_packet(flow_id=42)
    first = table.lookup(packet)
    for _ in range(10):
        assert table.lookup(packet) is first


def test_ecmp_spreads_flows():
    table = ForwardingTable("s0")
    ports = [FakePortRec(f"p{i}") for i in range(4)]
    for port in ports:
        table.add_route("b", port)
    chosen = {table.lookup(make_packet(flow_id=i)).name
              for i in range(100)}
    assert len(chosen) == 4  # all paths used


def test_destinations_listing():
    table = ForwardingTable("s0")
    table.add_route("h2", FakePortRec("x"))
    table.add_route("h1", FakePortRec("y"))
    assert table.destinations() == ["h1", "h2"]


# -- topologies ------------------------------------------------------------

def star(num_hosts=3):
    return build_star(
        num_hosts=num_hosts, rate_bps=gbps(1), rtt_ns=microseconds(500),
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=BestEffortBuffer)


def test_star_structure():
    net = star(5)
    assert len(net.hosts) == 5
    assert len(net.switches) == 1
    assert len(net.switch("s0").ports) == 5


def test_star_end_to_end_delivery():
    net = star(3)
    packet = make_packet(1500)
    packet.src, packet.dst = "h1", "h2"
    net.host("h1").send_packet(packet)
    net.sim.run()
    assert net.host("h2").received_packets == 1


def test_star_rtt_matches_configuration():
    """A tiny packet's round trip should be close to the base RTT."""
    net = star(3)
    arrival = []
    packet = make_packet(40)
    packet.src, packet.dst = "h1", "h2"
    h2 = net.host("h2")
    real_receive = h2.receive
    h2.receive = lambda p: (arrival.append(net.sim.now), real_receive(p))
    # Ports cache peer.receive at connect() time (delivery fast path), so
    # swapping the method needs a re-connect to take effect.
    for port in net.switch("s0").port_list():
        if port.peer is h2:
            port.connect(h2)
    net.host("h1").send_packet(packet)
    net.sim.run()
    # One-way: 2 links x 125 us propagation + 2 tiny transmissions.
    assert arrival[0] == pytest.approx(250_000, rel=0.02)


def test_fresh_manager_and_scheduler_per_port():
    net = star(3)
    ports = net.switch("s0").port_list()
    managers = {id(port.buffer_manager) for port in ports}
    schedulers = {id(port.scheduler) for port in ports}
    assert len(managers) == len(ports)
    assert len(schedulers) == len(ports)


def leaf_spine(leaves=2, spines=2, hosts=2):
    return build_leaf_spine(
        num_leaves=leaves, num_spines=spines, hosts_per_leaf=hosts,
        rate_bps=gbps(10), rtt_ns=microseconds(85),
        buffer_bytes=kilobytes(192),
        scheduler_factory=lambda: DRRScheduler([1500] * 8),
        buffer_factory=BestEffortBuffer)


def test_leaf_spine_structure():
    net = leaf_spine(2, 3, 4)
    assert len(net.hosts) == 8
    assert len(net.switches) == 5
    leaf = net.switch("leaf0")
    # 4 downlinks + 3 uplinks.
    assert len(leaf.ports) == 7
    spine = net.switch("spine0")
    assert len(spine.ports) == 2


def test_leaf_spine_same_rack_delivery():
    net = leaf_spine()
    packet = make_packet(1500)
    packet.src, packet.dst = "h0_0", "h0_1"
    net.host("h0_0").send_packet(packet)
    net.sim.run()
    assert net.host("h0_1").received_packets == 1


def test_leaf_spine_cross_rack_delivery():
    net = leaf_spine()
    # An ACK probe: delivered to the host but generates no reply, so the
    # spine counters see exactly one packet.
    packet = make_packet(40, is_ack=True)
    packet.src, packet.dst = "h0_0", "h1_1"
    net.host("h0_0").send_packet(packet)
    net.sim.run()
    assert net.host("h1_1").received_packets == 1
    spine_hits = sum(net.switch(f"spine{i}").received_packets
                     for i in range(2))
    assert spine_hits == 1


def test_leaf_spine_ecmp_spreads_cross_rack_flows():
    net = leaf_spine(2, 4, 2)
    for flow_id in range(64):
        packet = make_packet(40, flow_id=flow_id, is_ack=True)
        packet.src, packet.dst = "h0_0", "h1_0"
        net.host("h0_0").send_packet(packet)
    net.sim.run()
    used = [net.switch(f"spine{i}").received_packets for i in range(4)]
    assert sum(used) == 64
    assert all(count > 0 for count in used)


def test_leaf_spine_all_pairs_reachable():
    net = leaf_spine(2, 2, 2)
    names = net.host_names()
    for src in names:
        for dst in names:
            if src == dst:
                continue
            packet = make_packet(40, is_ack=True)
            packet.src, packet.dst = src, dst
            net.host(src).send_packet(packet)
    net.sim.run()
    expected = len(names) - 1
    for name in names:
        assert net.host(name).received_packets == expected
