"""Tests for the traffic applications (iperf bulk + request/response)."""

import random

import pytest

from repro.apps.client_server import (
    RequestResponseApp,
    random_many_to_one_placement,
    random_pairs_placement,
)
from repro.apps.iperf import BULK_FLOW_BYTES, IperfApp
from repro.net.topology import build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.pias import PIASConfig
from repro.workloads.flowgen import FlowSpec


def make_net(num_hosts=4):
    return build_star(
        num_hosts=num_hosts, rate_bps=gbps(1),
        rtt_ns=microseconds(500), buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=BestEffortBuffer)


# -- IperfApp ----------------------------------------------------------------

def test_iperf_starts_n_flows():
    net = make_net()
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=3, service_class=1)
    app.start_at(0)
    net.sim.run(until=seconds(0.05))
    assert len(app.senders) == 3
    assert all(sender.started_at == 0 for sender in app.senders)
    assert app.total_acked_bytes() > 0


def test_iperf_flows_carry_service_class():
    net = make_net()
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=2, service_class=2)
    assert all(sender.flow.service_class == 2 for sender in app.senders)
    assert all(sender.flow.size == BULK_FLOW_BYTES
               for sender in app.senders)


def test_iperf_stop_aborts_flows():
    net = make_net()
    app = IperfApp(net.sim, net.host("h1"), destination="h0",
                   num_flows=2, service_class=0)
    app.start_at(0)
    app.stop_at(seconds(0.02))
    net.sim.run(until=seconds(0.05))
    assert all(sender.complete for sender in app.senders)


def test_iperf_validates_flow_count():
    net = make_net()
    with pytest.raises(ValueError):
        IperfApp(net.sim, net.host("h1"), destination="h0",
                 num_flows=0, service_class=0)


def test_iperf_unique_flow_ids():
    net = make_net()
    a = IperfApp(net.sim, net.host("h1"), destination="h0",
                 num_flows=2, service_class=0, flow_id_base=0)
    b = IperfApp(net.sim, net.host("h2"), destination="h0",
                 num_flows=2, service_class=1, flow_id_base=2)
    ids = [s.flow.flow_id for s in a.senders + b.senders]
    assert ids == [0, 1, 2, 3]


# -- placements --------------------------------------------------------------

def test_many_to_one_placement_ranges():
    rng = random.Random(1)
    placement = random_many_to_one_placement(
        ["h1", "h2"], "h0", num_service_classes=4, rng=rng)
    for index in range(50):
        server, client, service_class = placement(index)
        assert server in ("h1", "h2")
        assert client == "h0"
        assert 1 <= service_class <= 4


def test_random_pairs_placement_distinct_endpoints():
    rng = random.Random(2)
    placement = random_pairs_placement(
        ["a", "b", "c"], num_service_classes=2, rng=rng)
    for index in range(50):
        src, dst, service_class = placement(index)
        assert src != dst
        assert service_class in (1, 2)


def test_random_pairs_placement_with_fixed_classes():
    rng = random.Random(3)
    class_of_pair = {}
    hosts = ["a", "b"]
    for src in hosts:
        for dst in hosts:
            if src != dst:
                class_of_pair[(src, dst)] = 7
    placement = random_pairs_placement(
        hosts, num_service_classes=2, rng=rng,
        class_of_pair=class_of_pair)
    assert placement(0)[2] == 7


# -- RequestResponseApp ----------------------------------------------------------

def test_request_response_runs_flows_to_completion():
    net = make_net()
    specs = [FlowSpec(arrival_ns=i * 1_000_000, size_bytes=20_000)
             for i in range(5)]
    rng = random.Random(4)
    app = RequestResponseApp(
        net, specs=specs,
        placement=random_many_to_one_placement(
            ["h1", "h2", "h3"], "h0", 3, rng))
    net.sim.run(until=seconds(1))
    assert app.completed == 5
    assert app.outstanding == 0
    sizes = sorted(record.size_bytes for record in app.fct.records)
    assert sizes == [20_000] * 5


def test_request_response_respects_arrival_times():
    net = make_net()
    specs = [FlowSpec(arrival_ns=seconds(0.5), size_bytes=1_000)]
    rng = random.Random(5)
    app = RequestResponseApp(
        net, specs=specs,
        placement=random_many_to_one_placement(["h1"], "h0", 1, rng))
    net.sim.run(until=seconds(0.4))
    assert app.completed == 0
    net.sim.run(until=seconds(1))
    assert app.completed == 1


def test_request_response_applies_pias():
    net = make_net()
    specs = [FlowSpec(arrival_ns=0, size_bytes=200_000)]
    rng = random.Random(6)
    app = RequestResponseApp(
        net, specs=specs,
        placement=random_many_to_one_placement(["h1"], "h0", 3, rng),
        pias=PIASConfig(demotion_threshold=100_000))
    sender = app.senders[0]
    assert sender.flow.pias_threshold == 100_000
    assert sender.flow.class_for_offset(0) == 0
    assert sender.flow.class_for_offset(150_000) >= 1
