"""Differential tests: batched link advance vs per-packet transmission.

``PerfConfig.batched_link_advance`` lets the egress port commit several
back-to-back transmissions in one pass with a single completion event.
The contract is exact equivalence with per-packet execution: identical
delivery timeline, identical counters (suppressed events are credited
back), and identical behaviour under every mid-batch disturbance — an
off-period arrival, a link fault splitting the batch on the wire, a
weight reconfiguration, or a snapshot/restore of the running world.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynaq import DynaQBuffer
from repro.net.port import EgressPort
from repro.perf.config import PerfConfig, use_config
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator

from conftest import make_packet


class TimedSink:
    """Timing-sensitive receiver: logs each delivery with its instant."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def receive(self, packet):
        self.log.append((self.sim.now, packet.service_class,
                         packet.size, packet.flow_id))


class ManySink:
    """Opt-in coalesced receiver (the ``receive_many`` contract):
    declares delivery-time insensitivity, so it logs order only — in
    both entry points, since stragglers still arrive via ``receive``."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []

    def receive(self, packet):
        self.log.append((packet.service_class, packet.size,
                         packet.flow_id))

    def receive_many(self, packets):
        for packet in packets:
            self.receive(packet)


def _world(*, batched, sink_cls=TimedSink, buffer_bytes=30_000):
    cfg = PerfConfig(batched_link_advance=batched)
    with use_config(cfg):
        sim = Simulator()
        port = EgressPort(
            sim, "p", rate_bps=10 ** 9, prop_delay_ns=1_000,
            buffer_bytes=buffer_bytes,
            scheduler=DRRScheduler([1500] * 4),
            buffer_manager=DynaQBuffer())
        sink = sink_cls(sim)
        port.connect(sink)
    return sim, port, sink


def _counters(sim, port, sink):
    manager = port.buffer_manager
    return {
        "enqueued": port.enqueued_packets,
        "dropped": port.dropped_packets,
        "transmitted": port.transmitted_packets,
        "tx_bytes": port.transmitted_bytes,
        "inflight_losses": port.inflight_losses,
        "events": sim.events_executed,
        "steals": manager.threshold_moves,
        "protected_drops": manager.protected_drops,
        "log": tuple(sink.log),
    }


def _feed(sim, port, arrivals):
    for i, (time_ns, queue, size) in enumerate(arrivals):
        sim.at(time_ns, port.send,
               make_packet(size, flow_id=i, service_class=queue))


ARRIVALS = st.lists(
    st.tuples(st.integers(0, 4),        # gap, in 6 us steps
              st.integers(0, 3),        # service class
              st.integers(64, 3000)),   # size
    min_size=1, max_size=80)


def _materialise(steps):
    clock = 0
    arrivals = []
    for gap, queue, size in steps:
        clock += gap * 6_000
        arrivals.append((clock, queue, size))
    return arrivals


@settings(max_examples=30, deadline=None)
@given(steps=ARRIVALS)
def test_batched_matches_per_packet_on_random_traffic(steps):
    """Same arrivals → same per-packet delivery timeline and counters.

    The 6 us gap grid makes repeated gaps common, so the port's arrival
    predictor locks on and real batches form (gap 0 stacks same-instant
    arrivals; large gaps force drains and fresh trains)."""
    arrivals = _materialise(steps)
    results = []
    for batched in (False, True):
        sim, port, sink = _world(batched=batched)
        _feed(sim, port, arrivals)
        sim.run()
        assert port.total_bytes() == 0
        results.append(_counters(sim, port, sink))
    assert results[0] == results[1]


def _burst_train(bursts=10, k=4, period=100_000, size=1500):
    """``k`` same-instant arrivals every ``period``: each burst drains
    back to back (k x 12 us of wire time at 1 Gbps), so the batched port
    coalesces the run, while the inter-burst period gives the arrival
    predictor a stable bound."""
    return [(b * period, i % 2, size)
            for b in range(bursts) for i in range(k)]


def test_burst_train_actually_batches():
    """On a predictable burst train the batched port must coalesce:
    fewer real events scheduled, with the suppressed ones credited back
    so ``events_executed`` still matches per-packet execution."""
    scheduled = {}
    executed = {}
    for batched in (False, True):
        sim, port, sink = _world(batched=batched)
        _feed(sim, port, _burst_train())
        sim.run()
        scheduled[batched] = sim.events_scheduled
        executed[batched] = sim.events_executed
    assert scheduled[True] < scheduled[False]
    assert executed[True] == executed[False]


def test_mid_batch_arrival_unwinds_exactly():
    """An off-period arrival landing mid-batch rolls the uncommitted
    suffix back; admission then sees per-packet-exact state."""
    # Back-to-back burst at t=0 keeps the wire busy; the predictor sees
    # period 0 within the burst, then a lone straggler lands while a
    # drain batch is in flight.
    arrivals = _burst_train(bursts=4, k=4)
    arrivals.append((2 * 100_000 + 17_300, 3, 300))   # mid-drain straggler
    results = []
    for batched in (False, True):
        sim, port, sink = _world(batched=batched)
        _feed(sim, port, arrivals)
        sim.run()
        results.append(_counters(sim, port, sink))
    assert results[0] == results[1]
    assert results[0]["transmitted"] > 0


def test_link_down_mid_batch_splits_on_the_wire():
    """A fault while a batch is mid-pipe must lose exactly the packets
    per-packet execution loses: delivered prefix arrives, the rest are
    in-flight losses."""
    arrivals = _burst_train(bursts=8, k=4)
    results = []
    for batched in (False, True):
        sim, port, sink = _world(batched=batched)
        _feed(sim, port, arrivals)
        # Mid-drain, off the arrival grid, while transmissions are
        # queued back to back and at least one packet rides the wire.
        sim.at(3 * 100_000 + 17_300, port.set_link_down)
        sim.at(5 * 100_000 - 1, port.set_link_up)
        sim.run()
        results.append(_counters(sim, port, sink))
    assert results[0] == results[1]
    assert results[0]["inflight_losses"] > 0
    assert results[0]["dropped"] > results[0]["inflight_losses"]


def test_reconfigure_weights_mid_batch():
    """A scheduler reconfiguration mid-batch unwinds the uncommitted
    tail and reselects under the new weights, exactly like per-packet."""
    arrivals = _burst_train(bursts=6, k=4)
    results = []
    for batched in (False, True):
        sim, port, sink = _world(batched=batched)
        _feed(sim, port, arrivals)
        sim.at(2 * 100_000 + 17_300, port.reconfigure_weights,
               [300.0, 3000.0, 1500.0, 1500.0])
        sim.run()
        results.append(_counters(sim, port, sink))
    assert results[0] == results[1]


def test_receive_many_contract_keeps_counters_and_order():
    """A ``receive_many`` receiver gets whole batches in one call; the
    packet order and all counters still match per-packet execution."""
    arrivals = _burst_train(bursts=8, k=4)
    results = []
    for batched in (False, True):
        sim, port, sink = _world(batched=batched, sink_cls=ManySink)
        _feed(sim, port, arrivals)
        sim.run()
        results.append(_counters(sim, port, sink))
    assert results[0] == results[1]
    assert len(results[0]["log"]) == 32


def test_send_many_burst_equals_individual_sends():
    """``send_many`` (the burst entry point, with its drop-memo fast
    path) must make the same admit/drop choices as one ``send`` per
    packet — including under drop storms that exercise the memo."""
    # A tiny buffer forces sustained drops; repeated (queue, size) pairs
    # within each burst are what the memo caches.
    bursts = [[make_packet(1200, flow_id=b * 16 + i,
                           service_class=i % 4)
               for i in range(16)] for b in range(8)]
    results = []
    for use_burst in (False, True):
        sim, port, sink = _world(batched=True, buffer_bytes=6_000)
        for b, burst in enumerate(bursts):
            clones = [make_packet(p.size, flow_id=p.flow_id,
                                  service_class=p.service_class)
                      for p in burst]
            if use_burst:
                sim.at(b * 40_000, port.send_many, clones)
            else:
                for p in clones:
                    sim.at(b * 40_000, port.send, p)
        sim.run()
        counters = _counters(sim, port, sink)
        # The feeder itself differs (one burst event vs sixteen sends),
        # so the simulator event count is harness noise here; everything
        # the port decided must still be identical.
        del counters["events"]
        results.append(counters)
    assert results[0] == results[1]
    assert results[0]["dropped"] > 0


def test_snapshot_restore_mid_batch_resumes_identically():
    """Pickling the world while a batch is in flight and resuming the
    restored copy must finish with the per-packet-identical timeline."""
    arrivals = _burst_train(bursts=8, k=4)

    sim, port, sink = _world(batched=False)
    _feed(sim, port, arrivals)
    sim.run()
    reference = _counters(sim, port, sink)

    sim, port, sink = _world(batched=True)
    _feed(sim, port, arrivals)
    sim.run(until=3 * 100_000 + 17_300)   # mid-train, mid-drain
    sim, port, sink = pickle.loads(pickle.dumps((sim, port, sink)))
    sim.run()
    restored = _counters(sim, port, sink)
    assert restored == reference
