"""Lint: every schedule()/at() call site must be closure-free.

Snapshots pickle the live event heap, and pickle refuses lambdas and
local closures.  Named bound methods, module-level functions, and
``functools.partial`` over either all pickle fine — so the rule is
simply "no lambda (or locally nested ``def``) may ever reach the
scheduler".  This AST walk enforces it across the whole package, which
is what entitles ``SnapshotManager`` to pickle any world mid-flight.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

SCHEDULER_METHODS = {"schedule", "at"}


def _source_files():
    return sorted(SRC.rglob("*.py"))


def _is_scheduler_call(node):
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in SCHEDULER_METHODS)


def _local_function_names(tree):
    """Names of functions defined inside another function's body."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for child in ast.walk(node):
                if child is node:
                    continue
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    names.add(child.name)
    return names


def _violations(path):
    tree = ast.parse(path.read_text(), filename=str(path))
    local_defs = _local_function_names(tree)
    found = []
    for node in ast.walk(tree):
        if not _is_scheduler_call(node):
            continue
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Lambda):
                    found.append((node.lineno, "lambda"))
                elif (isinstance(sub, ast.Name)
                      and sub.id in local_defs):
                    found.append((node.lineno,
                                  f"nested function {sub.id!r}"))
    return found


def test_source_tree_is_nonempty():
    assert len(_source_files()) > 10  # the glob is looking at real code


@pytest.mark.parametrize("path", _source_files(),
                         ids=lambda p: str(p.relative_to(SRC)))
def test_no_closures_reach_the_scheduler(path):
    bad = _violations(path)
    assert not bad, (
        f"{path}: unpicklable callback(s) passed to the scheduler "
        f"(line, kind): {bad} — use a named bound method, a "
        f"module-level function, or functools.partial over one, so "
        f"snapshots can pickle the event heap")


def test_lint_actually_catches_lambdas(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def arm(sim):\n"
        "    def fire():\n"
        "        pass\n"
        "    sim.schedule(5, lambda: None)\n"
        "    sim.at(9, fire)\n")
    kinds = [kind for _, kind in _violations(bad)]
    assert kinds == ["lambda", "nested function 'fire'"]
