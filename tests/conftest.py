"""Shared test fixtures and fakes."""

from __future__ import annotations

from typing import List, Optional

import pytest

from repro.net.packet import Packet
from repro.sim.engine import Simulator


class FakePort:
    """In-memory stand-in for EgressPort's PortView/QueueView protocols.

    Lets buffer managers and schedulers be unit-tested without a network:
    tests manipulate queue occupancies directly and drive admission calls.
    """

    def __init__(self, *, buffer_bytes: int = 100_000, num_queues: int = 4,
                 weights: Optional[List[float]] = None,
                 link_rate_bps: int = 1_000_000_000) -> None:
        self.buffer_bytes = buffer_bytes
        self.num_queues = num_queues
        self.link_rate_bps = link_rate_bps
        self._weights = weights or [1.0] * num_queues
        self._queue_bytes = [0] * num_queues
        self._time = 0
        self.scheduler = None  # managers that need one can have it set

    # PortView ------------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return sum(self._queue_bytes)

    def queue_weights(self) -> List[float]:
        return list(self._weights)

    def now(self) -> int:
        return self._time

    # test helpers ----------------------------------------------------------

    def fill(self, index: int, amount: int) -> None:
        self._queue_bytes[index] += amount

    def drain(self, index: int, amount: int) -> None:
        self._queue_bytes[index] -= amount
        assert self._queue_bytes[index] >= 0

    def set_time(self, time_ns: int) -> None:
        self._time = time_ns


class ListQueueView:
    """QueueView over plain lists of packet sizes (ints)."""

    def __init__(self, queues: List[List[int]]) -> None:
        self.queues = queues

    def queue_empty(self, index: int) -> bool:
        return not self.queues[index]

    def head_size(self, index: int) -> int:
        return self.queues[index][0]

    def pop(self, index: int) -> int:
        return self.queues[index].pop(0)


def make_packet(size: int = 1500, *, flow_id: int = 0,
                service_class: int = 0, ecn: bool = False,
                is_ack: bool = False, seq: int = 0) -> Packet:
    """A throwaway packet for unit tests."""
    return Packet(flow_id=flow_id, src="a", dst="b", size=size, seq=seq,
                  end_seq=seq + max(size - 40, 0),
                  service_class=service_class, ecn_capable=ecn,
                  is_ack=is_ack)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def fake_port() -> FakePort:
    return FakePort()
