"""The ``repro serve`` daemon: protocol, admission, WAL replay, soak.

Three layers, cheapest first: pure-function tests (protocol frames,
backoff), in-process daemon tests (admission control and WAL replay
drive :class:`ServeDaemon` methods directly; request/response tests run
the daemon's event loop on a background thread), and subprocess drills
(SIGTERM through the CLI, and the exactly-once soak: ``--drill`` worker
kills plus a SIGKILL of the daemon itself mid-run, restart, and every
job must finish exactly once with payloads byte-identical to a serial
``parallel_map`` of the same specs).
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.errors import ServeError, SimulationError
from repro.experiments.fleet import (
    EVENT_DIED,
    EVENT_HEARTBEAT,
    EVENT_OK,
    WorkerFleet,
)
from repro.experiments.parallel import (
    JobSpec,
    job_key,
    parallel_map,
)
from repro.experiments.runner import retry_backoff
from repro.serve import JobLog, ServeClient, ServeConfig, ServeDaemon
from repro.serve.protocol import decode_frame, encode_frame

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


# -- worker-importable jobs ----------------------------------------------------

def slow_job(*, duration, seed):
    time.sleep(duration)
    return {"m": float(seed)}


def sick_job(*, seed):
    raise SimulationError("sick on every seed")


# -- protocol ------------------------------------------------------------------

def test_frame_roundtrip():
    message = {"op": "submit", "kind": "fct", "params": {"load": 0.3}}
    assert decode_frame(encode_frame(message)) == message


def test_garbage_frames_raise_serve_error():
    with pytest.raises(ServeError):
        decode_frame(b"not json\n")
    with pytest.raises(ServeError):
        decode_frame(b"[1, 2, 3]\n")  # an object is required


# -- retry backoff (satellite: deterministic jitter) ---------------------------

def test_retry_backoff_is_deterministic_and_jittered():
    first = retry_backoff("job-a", 3, base_s=0.1)
    assert first == retry_backoff("job-a", 3, base_s=0.1)
    assert first != retry_backoff("job-b", 3, base_s=0.1)  # jitter by key
    assert retry_backoff("job-a", 1, base_s=0.1) == 0.0  # first try free
    assert retry_backoff("job-a", 2, base_s=0.0) == 0.0  # disabled
    # Exponential envelope with jitter in [0.5, 1.5) of the nominal step.
    assert 0.05 <= retry_backoff("job-a", 2, base_s=0.1) < 0.15
    assert 0.1 <= retry_backoff("job-a", 3, base_s=0.1) < 0.3
    assert retry_backoff("job-a", 50, base_s=0.1) <= 30.0  # capped


# -- admission control (direct, no event loop) ---------------------------------

def _daemon(tmp_path, **overrides):
    defaults = dict(socket_path=str(tmp_path / "serve.sock"),
                    wal=str(tmp_path / "serve.wal.jsonl"))
    defaults.update(overrides)
    return ServeDaemon(ServeConfig(**defaults))


def _submit_request(label, client="anon"):
    return {"op": "submit", "kind": "callable",
            "params": {"target": "json:dumps",
                       "kwargs": {"obj": label}},
            "client": client}


def test_admission_rejects_unknown_kind_and_bad_params(tmp_path):
    daemon = _daemon(tmp_path)
    assert daemon._admit({"kind": "nope", "params": {}})["status"] == "error"
    assert daemon._admit({"kind": "fct", "params": 3})["status"] == "error"
    daemon._wal.close()


def test_admission_dedups_by_parameter_digest(tmp_path):
    daemon = _daemon(tmp_path)
    first = daemon._admit(_submit_request("x", client="alice"))
    again = daemon._admit(_submit_request("x", client="bob"))
    assert first["status"] == again["status"] == "accepted"
    assert first["key"] == again["key"]
    assert again.get("dedup") is True
    assert len(daemon._queue) == 1  # one job, not two
    daemon._wal.close()


def test_per_client_fair_share_limit(tmp_path):
    daemon = _daemon(tmp_path, max_per_client=2)
    assert daemon._admit(_submit_request("a", "carol"))["status"] == "accepted"
    assert daemon._admit(_submit_request("b", "carol"))["status"] == "accepted"
    refused = daemon._admit(_submit_request("c", "carol"))
    assert refused["status"] == "overloaded"
    assert "carol" in refused["reason"]
    # Another client is unaffected: the limit is per client, not global.
    assert daemon._admit(_submit_request("c", "dave"))["status"] == "accepted"
    daemon._wal.close()


def test_lqd_sheds_the_longest_backlog_not_the_submitter(tmp_path):
    daemon = _daemon(tmp_path, max_queue=3)
    for label in ("a1", "a2", "a3"):
        assert (daemon._admit(_submit_request(label, "alice"))["status"]
                == "accepted")
    # Queue full; bob's submit sheds alice's *newest* queued job.
    victim_key = daemon._queue[-1]
    response = daemon._admit(_submit_request("b1", "bob"))
    assert response["status"] == "accepted"
    assert daemon._jobs[victim_key].state == "shed"
    assert victim_key not in daemon._queue
    assert len(daemon._queue) == 3
    # Queue full again and alice *is* the longest backlog: shedding her
    # own oldest work to admit her newest helps nobody -> overloaded.
    refused = daemon._admit(_submit_request("a4", "alice"))
    assert refused["status"] == "overloaded"
    assert "longest backlog" in refused["reason"]
    # A shed job is retriable: resubmitting it goes through admission
    # again instead of replaying the shed verdict.
    daemon._queue.pop()  # make room
    readmit = daemon._admit(_submit_request("a3", "alice"))
    assert readmit["status"] == "accepted" and not readmit["cached"]
    daemon._wal.close()


# -- WAL replay ----------------------------------------------------------------

def test_wal_replay_requeues_unfinished_and_caches_terminal(tmp_path):
    done_params = {"target": "json:dumps", "kwargs": {"obj": "done"}}
    done_key = job_key("callable", done_params)
    pending_params = {"target": "json:dumps", "kwargs": {"obj": 1}}
    pending_key = job_key("callable", pending_params)
    log = JobLog(tmp_path / "serve.wal.jsonl")
    log.accepted(done_key, kind="callable", params=done_params,
                 seed=None, client="a")
    log.finished(done_key, payload='"done"', attempts=1, seed=None,
                 client="a")
    log.accepted(pending_key, kind="callable", params=pending_params,
                 seed=None, client="b")
    log.close()

    daemon = _daemon(tmp_path)
    done = daemon._jobs[done_key]
    assert done.state == "done"
    assert done.entry["payload"] == '"done"'
    pending = daemon._jobs[pending_key]
    assert pending.state == "queued"
    assert daemon._queue == [pending_key]
    # Exactly-once across restarts: resubmitting the finished job's
    # parameters hits the replayed cache instead of re-running.
    response = daemon._admit({"kind": "callable", "params": done_params})
    assert response == {"status": "accepted", "key": done_key,
                        "cached": True}
    daemon._wal.close()


def test_wal_survives_torn_tail(tmp_path):
    wal_path = tmp_path / "serve.wal.jsonl"
    log = JobLog(wal_path)
    log.accepted("k1", kind="callable", params={}, seed=None, client="a")
    log.close()
    with wal_path.open("a") as handle:
        handle.write('{"key": "k2", "status": "acce')  # SIGKILL mid-write
    reopened = JobLog(wal_path)
    unfinished, terminal = reopened.replay()
    reopened.close()
    assert set(unfinished) == {"k1"} and terminal == {}


# -- fleet heartbeats and eviction ---------------------------------------------

def _drain_fleet(fleet, *, until, deadline_s=30.0):
    events = []
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        events.extend(fleet.poll(0.25))
        if any(event.kind == until for event in events):
            return events
    raise AssertionError(f"no {until!r} event within {deadline_s}s: "
                         f"{[e.kind for e in events]}")


def test_workers_heartbeat_while_running():
    fleet = WorkerFleet(heartbeat_every_s=0.05)
    handle = fleet.launch("callable",
                          {"target": "test_serve:slow_job",
                           "kwargs": {"duration": 0.5, "seed": 1}})
    events = _drain_fleet(fleet, until=EVENT_OK)
    beats = [event for event in events
             if event.kind == EVENT_HEARTBEAT]
    assert len(beats) >= 2
    assert all(event.handle is handle for event in events)
    assert len(fleet) == 0  # the terminal event reaped the worker


def test_evicted_worker_surfaces_as_died():
    fleet = WorkerFleet()
    handle = fleet.launch("callable",
                          {"target": "test_serve:slow_job",
                           "kwargs": {"duration": 60.0, "seed": 1}})
    fleet.evict(handle)
    events = _drain_fleet(fleet, until=EVENT_DIED)
    (died,) = [event for event in events if event.kind == EVENT_DIED]
    assert died.handle is handle
    assert died.payload == -signal.SIGKILL
    assert len(fleet) == 0


# -- live daemon on a background thread ----------------------------------------

@contextmanager
def running_daemon(tmp_path, **overrides):
    daemon = _daemon(tmp_path, **overrides)
    box = {}

    def run():
        loop = asyncio.new_event_loop()
        box["loop"] = loop
        try:
            box["code"] = loop.run_until_complete(daemon.run())
        finally:
            loop.close()

    thread = threading.Thread(target=run)
    thread.start()
    sock = Path(daemon.config.socket_path)
    deadline = time.monotonic() + 15.0
    while not sock.exists():
        assert thread.is_alive() and time.monotonic() < deadline, \
            "daemon never opened its socket"
        time.sleep(0.02)
    try:
        yield daemon, box
    finally:
        if thread.is_alive():
            try:
                box["loop"].call_soon_threadsafe(daemon._begin_drain,
                                                 "TEST")
            except RuntimeError:
                pass  # loop already shut down between the checks
        thread.join(timeout=30.0)
        assert not thread.is_alive()


def test_submit_wait_runs_job_and_serves_cached_result(tmp_path):
    with running_daemon(tmp_path) as (daemon, box):
        client = ServeClient(daemon.config.socket_path)
        params = {"target": "json:dumps", "kwargs": {"obj": [1, 2]}}
        response = client.submit("callable", params, client="alice",
                                 wait=True)
        assert response["status"] == "ok"
        assert response["payload"] == "[1, 2]"
        assert response["attempts"] == 1
        # Resubmission never re-runs: the digest hits the cache.
        again = client.submit("callable", params, client="bob")
        assert again == {"status": "accepted", "key": response["key"],
                         "cached": True}
        assert client.result(response["key"])["payload"] == "[1, 2]"
        listed = client.jobs()["jobs"]
        assert [job["state"] for job in listed] == ["done"]
    assert box["code"] == 0


def test_simulation_errors_reseed_then_fail_with_budget(tmp_path):
    with running_daemon(tmp_path, retries=2, backoff_s=0.01) as (daemon, _):
        client = ServeClient(daemon.config.socket_path)
        response = client.submit(
            "callable",
            {"target": "test_serve:sick_job", "kwargs": {"seed": 1}},
            wait=True)
        assert response["status"] == "error"
        assert response["attempts"] == 3  # 1 try + 2 reseeded retries
        assert "sick" in response["error"]


def test_draining_daemon_refuses_new_work(tmp_path):
    # An idle draining daemon exits within one poll tick, so park a slow
    # job in the fleet to hold the socket open while we probe admission.
    with running_daemon(tmp_path, drain_timeout_s=30.0) as (daemon, box):
        client = ServeClient(daemon.config.socket_path)
        accepted = client.submit(
            "callable", {"target": "test_serve:slow_job",
                         "kwargs": {"duration": 4.0, "seed": 1}})
        assert accepted["status"] == "accepted"
        deadline = time.monotonic() + 15.0
        while client.status()["running"] == 0:
            assert time.monotonic() < deadline
            time.sleep(0.05)
        box["loop"].call_soon_threadsafe(daemon._begin_drain, "TEST")
        while not daemon._draining:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        response = client.submit("callable",
                                 {"target": "json:dumps",
                                  "kwargs": {"obj": 1}})
        assert response["status"] == "draining"
    # The drain let the in-flight job finish, then exited cleanly.
    assert box["code"] == 0
    assert not Path(daemon.config.socket_path).exists()
    assert daemon._jobs[accepted["key"]].state == "done"


# -- CLI: SIGTERM takes the clean interrupt path (satellite) -------------------

def _cli_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC
    env.setdefault("PYTHONHASHSEED", "0")
    return env


def test_sigterm_interrupts_cli_like_ctrl_c(tmp_path):
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "fct", "--schemes", "dynaq",
         "--loads", "0.3", "--flows", "400"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        cwd=tmp_path, env=_cli_env())
    time.sleep(1.5)  # let it get into the simulation
    process.send_signal(signal.SIGTERM)
    output, _ = process.communicate(timeout=60)
    assert process.returncode == 2, output
    assert "interrupted" in output


# -- the soak: drill kills + daemon SIGKILL, exactly once, identical bytes -----

SOAK_GRID = [{"scheme": scheme, "load": 0.3, "num_flows": 25,
              "workload": "web_search", "truncate_mb": 1.0, "seed": 1}
             for scheme in ("dynaq", "besteffort", "pql")] + \
            [{"scheme": scheme, "load": 0.5, "num_flows": 25,
              "workload": "web_search", "truncate_mb": 1.0, "seed": 1}
             for scheme in ("dynaq", "besteffort", "pql")]


def _start_soak_daemon(sock, wal, cwd):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
         "--wal", str(wal), "--jobs", "2", "--retries", "8",
         "--snapshot-every", "0.01", "--backoff", "0.02",
         "--drill", "--drill-interval", "0.3", "--drill-seed", "5",
         "--quiet"],
        cwd=cwd, env=_cli_env(),
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def test_soak_exactly_once_and_byte_identical_to_serial(tmp_path):
    sock = tmp_path / "serve.sock"
    wal = tmp_path / "serve.wal.jsonl"
    daemon = _start_soak_daemon(sock, wal, tmp_path)
    second = None
    try:
        deadline = time.monotonic() + 15.0
        while not sock.exists():
            assert daemon.poll() is None and time.monotonic() < deadline
            time.sleep(0.05)
        client = ServeClient(str(sock))
        keys = []
        for params in SOAK_GRID:
            response = client.submit("fct", params, seed=1, client="soak")
            assert response["status"] == "accepted", response
            keys.append(response["key"])

        # Mid-run, while drill kills are already flying, SIGKILL the
        # daemon itself: no drain, no goodbye, exactly what the WAL is
        # for.
        time.sleep(1.0)
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=10)

        second = _start_soak_daemon(sock, wal, tmp_path)
        outcomes = {}
        deadline = time.monotonic() + 300.0
        while len(outcomes) < len(keys):
            assert second.poll() is None, "restarted daemon died"
            assert time.monotonic() < deadline, \
                f"jobs unfinished: {len(outcomes)}/{len(keys)}"
            for key in keys:
                if key in outcomes:
                    continue
                try:
                    response = client.result(key)
                except ServeError:
                    break  # restart still booting; the file is stale
                if response["status"] in ("ok", "error", "shed"):
                    outcomes[key] = response
            time.sleep(0.25)
        assert all(outcome["status"] == "ok"
                   for outcome in outcomes.values()), outcomes

        # Exactly once: across both incarnations the WAL holds exactly
        # one terminal entry per job, every one of them successful.
        terminal = {}
        for line in wal.read_text().splitlines():
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from the SIGKILL
            if entry.get("status") in ("ok", "error", "shed"):
                terminal.setdefault(entry["key"], []).append(
                    entry["status"])
        assert {key: statuses for key, statuses in terminal.items()} \
            == {key: ["ok"] for key in keys}

        # Byte identity: the payloads the daemon computed under drill
        # kills, migration, and its own SIGKILL+restart equal a serial
        # parallel_map of the same specs.  Both sides store the encoded
        # job payload (WAL here, checkpoint there), so compare those in
        # canonical JSON.
        specs = [JobSpec(job_key("fct", params), "fct", params, seed=1)
                 for params in SOAK_GRID]
        ckpt = tmp_path / "serial.ckpt.jsonl"
        serial = parallel_map(specs, jobs=1, checkpoint=ckpt)
        assert all(outcome.ok for outcome in serial)
        reference = {}
        for line in ckpt.read_text().splitlines():
            entry = json.loads(line)
            if entry.get("status") == "ok":
                reference[entry["key"]] = entry["payload"]
        for spec in specs:
            served = outcomes[spec.key]["payload"]
            assert (json.dumps(served, sort_keys=True)
                    == json.dumps(reference[spec.key], sort_keys=True)), \
                spec.key
    finally:
        for process in (daemon, second):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait()
