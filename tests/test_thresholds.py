"""Unit tests for DynaQ threshold arithmetic (Eqs. 1-3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.thresholds import (
    extra_buffer,
    initial_thresholds,
    normalized_weights,
    satisfaction_thresholds,
    weighted_bdp,
)
from repro.sim.units import gbps, microseconds


def test_normalized_weights_sum_to_one():
    fractions = normalized_weights([4, 3, 2, 1])
    assert sum(fractions) == pytest.approx(1.0)
    assert fractions == pytest.approx([0.4, 0.3, 0.2, 0.1])


def test_normalized_weights_rejects_zero_sum():
    with pytest.raises(ValueError):
        normalized_weights([0, 0])


def test_initial_thresholds_equal_weights():
    thresholds = initial_thresholds(85_000, [1, 1, 1, 1])
    assert sum(thresholds) == 85_000
    assert thresholds == [21_250, 21_250, 21_250, 21_250]


def test_initial_thresholds_weighted():
    thresholds = initial_thresholds(100_000, [4, 3, 2, 1])
    assert thresholds == [40_000, 30_000, 20_000, 10_000]


def test_initial_thresholds_rounding_remainder_preserved():
    # 100 / 3 does not divide evenly; invariant sum(T) == B must hold.
    thresholds = initial_thresholds(100, [1, 1, 1])
    assert sum(thresholds) == 100


def test_satisfaction_equals_eq3():
    assert satisfaction_thresholds(85_000, [1, 1]) == [42_500, 42_500]


def test_weighted_bdp_testbed():
    # 1 Gbps x 500 us = 62.5 KB; equal halves are 31.25 KB.
    wbdp = weighted_bdp(gbps(1), microseconds(500), [1, 1])
    assert wbdp == [31_250, 31_250]


def test_satisfaction_exceeds_wbdp_when_buffer_exceeds_bdp():
    """The paper's argument: B > BDP implies S_i > WBDP_i."""
    buffer_bytes = 85_000  # > 62.5 KB BDP
    weights = [1, 2, 3]
    satisfaction = satisfaction_thresholds(buffer_bytes, weights)
    wbdp = weighted_bdp(gbps(1), microseconds(500), weights)
    assert all(s > w for s, w in zip(satisfaction, wbdp))


def test_extra_buffer():
    assert extra_buffer([10, 20], [15, 5]) == [-5, 15]


def test_extra_buffer_length_mismatch():
    with pytest.raises(ValueError):
        extra_buffer([1], [1, 2])


@given(
    st.integers(min_value=1_000, max_value=10_000_000),
    st.lists(st.floats(min_value=0.1, max_value=100.0,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=16),
)
def test_initial_thresholds_always_sum_to_buffer(buffer_bytes, weights):
    thresholds = initial_thresholds(buffer_bytes, weights)
    assert sum(thresholds) == buffer_bytes
    assert all(t >= 0 for t in thresholds)


@given(
    st.integers(min_value=1_000, max_value=10_000_000),
    st.lists(st.integers(min_value=1, max_value=100),
             min_size=1, max_size=16),
)
def test_satisfaction_monotone_in_weight(buffer_bytes, weights):
    satisfaction = satisfaction_thresholds(buffer_bytes, weights)
    ranked = sorted(zip(weights, satisfaction))
    values = [s for _, s in ranked]
    assert values == sorted(values)
