"""Tests for the pFabric related-work comparator."""

import pytest

from repro.extras.pfabric import (
    PFabricPort,
    build_pfabric_star,
    start_pfabric_flow,
)
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.units import gbps, microseconds, seconds
from repro.transport.base import Flow

RTT = microseconds(500)


class Sink:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def make_port(buffer_bytes=6_000, rate_bps=gbps(1)):
    sim = Simulator()
    port = PFabricPort(sim, "p0", rate_bps=rate_bps, prop_delay_ns=0,
                       buffer_bytes=buffer_bytes)
    sink = Sink()
    port.connect(sink)
    return sim, port, sink


def packet(priority, flow_id=1, size=1500, seq=0):
    p = Packet(flow_id=flow_id, src="a", dst="b", size=size,
               seq=seq, end_seq=seq + size - 40)
    p.priority = priority
    return p


# -- port mechanics ------------------------------------------------------------

def test_unconnected_port_rejected():
    sim = Simulator()
    port = PFabricPort(sim, "p", rate_bps=gbps(1), prop_delay_ns=0,
                       buffer_bytes=1000)
    with pytest.raises(ConfigurationError):
        port.send(packet(1))


def test_full_buffer_evicts_worst_priority():
    sim, port, sink = make_port(buffer_bytes=4_500)
    port.send(packet(100, flow_id=1))            # transmitting
    port.send(packet(500, flow_id=2))            # buffered (worst)
    port.send(packet(300, flow_id=3))
    port.send(packet(200, flow_id=4, seq=10))    # buffer full now
    # A better-priority arrival evicts flow 2's packet.
    port.send(packet(50, flow_id=5))
    assert port.evictions == 1
    sim.run()
    delivered = [p.flow_id for p in sink.packets]
    assert 2 not in delivered
    assert 5 in delivered


def test_worse_arrival_is_dropped_not_buffered():
    sim, port, sink = make_port(buffer_bytes=4_500)
    port.send(packet(10, flow_id=1))
    port.send(packet(20, flow_id=2))
    port.send(packet(30, flow_id=3))
    port.send(packet(40, flow_id=4))
    before = port.enqueued_packets
    port.send(packet(999, flow_id=5))
    assert port.enqueued_packets == before
    assert port.evictions == 0
    assert port.dropped_packets == 1


def test_dequeue_serves_best_priority_flow_in_order():
    sim, port, sink = make_port(buffer_bytes=100_000)
    port.send(packet(500, flow_id=9))  # goes to the wire first (idle)
    port.send(packet(300, flow_id=7, seq=0))
    port.send(packet(300, flow_id=7, seq=1460))
    port.send(packet(100, flow_id=8))
    sim.run()
    order = [(p.flow_id, p.seq) for p in sink.packets]
    assert order[0] == (9, 0)          # already committed to the wire
    assert order[1] == (8, 0)          # best priority next
    assert order[2:] == [(7, 0), (7, 1460)]  # then flow 7, in seq order


def test_intra_flow_order_preserved_despite_priorities():
    sim, port, sink = make_port(buffer_bytes=100_000)
    port.send(packet(1, flow_id=42, seq=0))
    # Later packets of the same flow have *better* priority (remaining
    # shrinks), but must not overtake earlier ones.
    port.send(packet(5, flow_id=42, seq=1460))
    port.send(packet(3, flow_id=42, seq=2920))
    sim.run()
    seqs = [p.seq for p in sink.packets]
    assert seqs == [0, 1460, 2920]


# -- end-to-end SRPT behaviour -----------------------------------------------------

def test_small_flow_preempts_elephant():
    net = build_pfabric_star(num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT)
    big = start_pfabric_flow(
        net, Flow(flow_id=1, src="h1", dst="h0", size=5_000_000))
    small = start_pfabric_flow(
        net, Flow(flow_id=2, src="h2", dst="h0", size=20_000,
                  start_time=seconds(0.005)))
    net.sim.run(until=seconds(3))
    assert big.complete and small.complete
    # The small flow finishes in ~1 RTT + transmission despite the
    # elephant: SRPT-like behaviour.
    assert small.fct_ns() < 3 * RTT + seconds(0.001)


def test_pfabric_has_no_service_isolation():
    """Two 'services' with equal rights: pFabric gives the link to the
    shorter flows regardless — the paper's §II-C point."""
    net = build_pfabric_star(num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT)
    long_service = start_pfabric_flow(
        net, Flow(flow_id=1, src="h1", dst="h0", size=4_000_000,
                  service_class=0))
    short_service = start_pfabric_flow(
        net, Flow(flow_id=2, src="h2", dst="h0", size=400_000,
                  service_class=1))
    net.sim.run(until=seconds(3))
    assert long_service.complete and short_service.complete
    # Strict SRPT: the short flow monopolises until done, so it finishes
    # in roughly its solo transmission time while the long one waits.
    assert short_service.fct_ns() < long_service.fct_ns() / 3


def test_pfabric_star_uses_shallow_buffers():
    net = build_pfabric_star(num_hosts=2, rate_bps=gbps(1), rtt_ns=RTT)
    port = net.switch("s0").ports["s0->h0"]
    assert port.buffer_bytes == 125_000  # 2 x 62.5 KB BDP
