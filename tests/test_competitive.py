"""Competitive-comparator suite: policies, adversaries, ratio harness.

Four layers:

1. hypothesis property tests — every drop-based policy, driven through
   the shared-buffer arena on random arrival schedules, never exceeds
   the buffer, never drops an admissible packet while space exists
   (greedy-admission policies), and conserves packets (arrivals ==
   delivered + dropped once the buffer drains);
2. the offline clairvoyant bound really is an upper bound (ratio >= 1
   on every policy x schedule hypothesis invents);
3. pinned regressions — the ``lqd-lower-bound`` adversary keeps LQD's
   measured ratio inside (1.2, 1.5], and LQD never exceeds its proven
   1.5 guarantee anywhere on the default grid;
4. differential tests — FAST and REFERENCE perf configs produce
   sha256-identical traces for each new policy, and ``repro
   competitive`` emits byte-identical reports serially and with
   ``--jobs 2``.
"""

import hashlib
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.competitive import (
    ADVERSARIES,
    CELL_BYTES,
    ArenaPort,
    adversary,
    adversary_names,
    clairvoyant_bound,
    generate_arrivals,
    run_arena,
    run_cell,
    run_competitive,
)
from repro.experiments.runner import scheme
from repro.experiments.testbed import run_fair_sharing
from repro.net.packet import Packet
from repro.perf.config import fast_mode, reference_mode
from repro.sim.errors import ConfigurationError
from repro.sim.trace import TOPIC_COMPETITIVE_ROUND, TraceBus
from repro.telemetry import JsonlSink, TraceRecorder

# Drop-based policies that can run in the arena (no ECN feedback loop).
ARENA_POLICIES = ("besteffort", "bshare", "dt", "fb", "lqd", "seg",
                  "dynaq", "dynaq-evict", "pql")

# Policies whose admission is greedy in the shared buffer: they must
# never reject while free space exists (threshold policies like FB/DT
# reject below the buffer limit by design, so they are excluded).
GREEDY_POLICIES = ("besteffort", "lqd", "seg")


# -- 1. policy invariants on random schedules ---------------------------------

schedule_strategy = st.lists(
    st.lists(st.integers(min_value=0, max_value=6),
             min_size=3, max_size=3),
    min_size=1, max_size=30)


def _drive(policy, arrivals, buffer_cells):
    """Arena slot loop with per-step invariant checks.

    Mirrors :func:`run_arena` but asserts after every admit that the
    occupancy never exceeds the shared buffer, and (for greedy
    policies) that no packet was rejected while it still fit.
    """
    num_queues = len(arrivals[0])
    manager = scheme(policy).make(rtt_ns=40_000)
    port = ArenaPort(num_queues, buffer_cells)
    manager.attach(port)
    greedy = policy in GREEDY_POLICIES
    offered = accepted = dropped = 0
    flow = 0
    for slot, row in enumerate(arrivals):
        port._now_ns = slot * 1_000
        for queue_index, count in enumerate(row):
            for _ in range(count):
                offered += 1
                flow += 1
                packet = Packet(flow, "adv", "sink", CELL_BYTES,
                                service_class=queue_index)
                had_room = (port.total_bytes() + packet.size
                            <= port.buffer_bytes)
                decision = manager.admit(packet, queue_index)
                if decision.accept:
                    accepted += 1
                    port.enqueue(packet, queue_index)
                    manager.on_enqueued(packet, queue_index)
                else:
                    dropped += 1
                assert port.total_bytes() <= port.buffer_bytes, (
                    f"{policy} overflowed the shared buffer")
                if greedy and had_room:
                    assert decision.accept, (
                        f"{policy} dropped with free space")
        for queue_index in range(num_queues):
            port.transmit(queue_index)
    # Every offered packet was either accepted or rejected; push-outs
    # then remove accepted packets again (checked via backlog): what is
    # still buffered is what was accepted minus pushed-out minus sent.
    assert accepted + dropped == offered
    assert port.total_bytes() % CELL_BYTES == 0
    return offered


@pytest.mark.parametrize("policy", ARENA_POLICIES)
@settings(max_examples=25, deadline=None)
@given(arrivals=schedule_strategy,
       buffer_cells=st.integers(min_value=4, max_value=24))
def test_policy_invariants_under_random_schedules(policy, arrivals,
                                                  buffer_cells):
    _drive(policy, arrivals, buffer_cells)


@pytest.mark.parametrize("policy", ARENA_POLICIES)
@settings(max_examples=15, deadline=None)
@given(arrivals=schedule_strategy,
       buffer_cells=st.integers(min_value=4, max_value=24))
def test_policy_conserves_packets(policy, arrivals, buffer_cells):
    """After the final drain: delivered + dropped == arrivals."""
    result = run_arena(policy, arrivals, buffer_cells=buffer_cells)
    assert result.arrivals == sum(sum(row) for row in arrivals)
    assert result.delivered + result.dropped == result.arrivals
    assert result.delivered >= 0 and result.dropped >= 0


# -- 2. the clairvoyant bound upper-bounds every online policy ----------------

@settings(max_examples=25, deadline=None)
@given(arrivals=schedule_strategy,
       buffer_cells=st.integers(min_value=4, max_value=24),
       policy=st.sampled_from(ARENA_POLICIES))
def test_bound_dominates_online_policies(arrivals, buffer_cells, policy):
    result = run_arena(policy, arrivals, buffer_cells=buffer_cells)
    bound = clairvoyant_bound(arrivals, buffer_cells)
    assert bound >= result.delivered, (
        f"{policy} beat the offline bound: {result.delivered} > {bound}")
    assert bound <= sum(sum(row) for row in arrivals)


def test_bound_is_tight_when_nothing_drops():
    # One cell per port per slot: everything is delivered, bound == it.
    arrivals = [[1, 1] for _ in range(10)]
    assert clairvoyant_bound(arrivals, 8) == 20
    result = run_arena("besteffort", arrivals, buffer_cells=8)
    assert result.delivered == 20 and result.dropped == 0


# -- 3. pinned competitive ratios ---------------------------------------------

def test_lqd_lower_bound_adversary_stays_pinned():
    """The canary: LQD x lqd-lower-bound lands in (1.2, 1.5].

    A softened bound, a rearranged arena, or a changed adversary would
    push the ratio toward 1.0 (harness lost its teeth) or above 1.5
    (LQD's proven guarantee 'broken', i.e. the harness is measuring
    something else).  Either direction must fail loudly.
    """
    cell = run_cell("lqd", "lqd-lower-bound", 32, num_queues=4,
                    rounds=1, seed=1)
    ratio = cell["ratios"][0]
    assert 1.0 <= ratio <= 1.5
    assert ratio > 1.2


def test_lqd_never_exceeds_its_guarantee_on_default_grid():
    for adversary_name in adversary_names():
        for buffer_cells in (16, 32):
            cell = run_cell("lqd", adversary_name, buffer_cells,
                            num_queues=4, rounds=2, seed=1)
            assert max(cell["ratios"]) <= 1.5, (
                f"lqd x {adversary_name} @ {buffer_cells}: "
                f"{cell['ratios']}")


def test_ratios_are_at_least_one_and_deterministic():
    for policy in ("dynaq", "fb", "besteffort"):
        first = run_cell(policy, "burst-flood", 16, rounds=2, seed=3)
        again = run_cell(policy, "burst-flood", 16, rounds=2, seed=3)
        assert first == again
        assert all(ratio >= 1.0 for ratio in first["ratios"])


def test_isolation_gap_shows_on_fill_drain():
    # The headline comparison: complete sharing (besteffort) collapses
    # on fill-drain while DynaQ and LQD stay near the offline bound —
    # the paper's isolation argument in competitive-ratio form.
    shared = run_cell("besteffort", "fill-drain", 32, rounds=1)
    dynaq = run_cell("dynaq", "fill-drain", 32, rounds=1)
    lqd = run_cell("lqd", "fill-drain", 32, rounds=1)
    assert shared["ratios"][0] > 1.5
    assert dynaq["ratios"][0] < 1.2
    assert lqd["ratios"][0] < 1.2


def test_unknown_adversary_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="unknown adversary"):
        adversary("nope")
    with pytest.raises(ConfigurationError, match="unknown scheme"):
        run_cell("nope", "random", 16)


def test_adversary_generators_are_deterministic():
    for name, spec in ADVERSARIES.items():
        first = generate_arrivals(name, num_queues=4, buffer_cells=16,
                                  seed=7)
        again = generate_arrivals(name, num_queues=4, buffer_cells=16,
                                  seed=7)
        assert first == again
        if spec.seeded:
            other = generate_arrivals(name, num_queues=4,
                                      buffer_cells=16, seed=8)
            assert first != other


def test_run_competitive_publishes_round_events():
    trace = TraceBus()
    seen = []
    trace.subscribe(TOPIC_COMPETITIVE_ROUND,
                    lambda **kw: seen.append(kw))
    report = run_competitive(["lqd"], ["burst-flood"], [16],
                             rounds=2, trace=trace)
    assert len(report.cells) == 1
    assert len(seen) == 2
    assert [event["time"] for event in seen] == [1, 2]
    assert all("ratio=" in event["detail"] for event in seen)


# -- 4. differential: FAST == REFERENCE, serial == parallel -------------------

def _traced_run(policy, tmp_path: Path, label: str) -> str:
    out = tmp_path / f"{label}.jsonl"
    trace = TraceBus()
    with TraceRecorder(trace, JsonlSink(out)):
        run_fair_sharing(policy, time_unit_s=0.02,
                         sample_interval_s=0.01, trace=trace)
    return hashlib.sha256(out.read_bytes()).hexdigest()


@pytest.mark.parametrize("policy", ["fb", "lqd", "seg", "bshare"])
def test_golden_trace_reference_equals_fast(policy, tmp_path):
    """The new policies leave no perf-config fingerprint in the trace."""
    with reference_mode():
        reference_hash = _traced_run(policy, tmp_path, "reference")
    with fast_mode():
        fast_hash = _traced_run(policy, tmp_path, "fast")
    assert reference_hash == fast_hash


def test_competitive_report_serial_equals_parallel(capsys, tmp_path):
    from repro.cli import main

    grid = ["competitive", "--policies", "lqd,dt",
            "--adversaries", "lqd-lower-bound,burst-flood",
            "--buffer-sizes", "16", "--rounds", "2"]
    serial_json = tmp_path / "serial.json"
    code = main(grid + ["--out", str(serial_json)])
    serial_out = capsys.readouterr().out
    assert code == 0
    parallel_json = tmp_path / "parallel.json"
    code = main(grid + ["--out", str(parallel_json), "--jobs", "2",
                        "--checkpoint", str(tmp_path / "ck.jsonl")])
    parallel_out = capsys.readouterr().out
    assert code == 0
    assert (serial_out.replace(str(serial_json), "X")
            == parallel_out.replace(str(parallel_json), "X"))
    assert serial_json.read_bytes() == parallel_json.read_bytes()
    # A resumed run replays the checkpoint to the same bytes.
    resumed_json = tmp_path / "resumed.json"
    code = main(grid + ["--out", str(resumed_json), "--jobs", "2",
                        "--checkpoint", str(tmp_path / "ck.jsonl"),
                        "--resume"])
    capsys.readouterr()
    assert code == 0
    assert resumed_json.read_bytes() == serial_json.read_bytes()


def test_cli_gates_on_lqd_limit(capsys):
    from repro.cli import main

    code = main(["competitive", "--policies", "lqd",
                 "--adversaries", "lqd-lower-bound",
                 "--buffer-sizes", "32", "--rounds", "1",
                 "--lqd-limit", "1.01"])
    out = capsys.readouterr().out
    assert code == 1
    assert "exceeded" in out


def test_cli_flags_dynaq_worst_adversary(capsys):
    from repro.cli import main

    code = main(["competitive", "--policies", "dynaq,lqd,fb",
                 "--adversaries",
                 "burst-flood,fill-drain,lqd-lower-bound",
                 "--buffer-sizes", "16", "--rounds", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "<- worst adversary" in out
    assert "lqd: all ratios <= 1.5" in out
