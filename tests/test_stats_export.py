"""Tests for multi-seed statistics and CSV/JSONL export."""

import csv

import pytest

from repro.metrics.export import (
    read_jsonl,
    write_fct_csv,
    write_jsonl,
    write_throughput_csv,
)
from repro.metrics.fct import FlowRecord
from repro.metrics.stats import (
    format_summary_table,
    repeat_with_seeds,
    summarize,
)
from repro.metrics.throughput import ThroughputSample


# -- summarize ----------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([2.0, 4.0, 6.0])
    assert summary.mean == 4.0
    assert summary.std == 2.0
    assert summary.count == 3
    assert summary.minimum == 2.0
    assert summary.maximum == 6.0
    assert summary.ci95 > 0


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.std == 0.0
    assert summary.ci95 == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_ci_uses_t_distribution_for_small_n():
    # n=2 -> t(1) = 12.706: much wider than the normal approximation.
    narrow = summarize([1.0] * 20 + [2.0] * 20)
    wide = summarize([1.0, 2.0])
    assert wide.ci95 > narrow.ci95


# -- repeat_with_seeds ----------------------------------------------------------

def test_repeat_with_seeds_aggregates_metrics():
    def run(seed):
        return {"throughput": float(seed), "drops": 2.0 * seed}

    summaries = repeat_with_seeds(run, seeds=[1, 2, 3])
    assert summaries["throughput"].mean == 2.0
    assert summaries["drops"].mean == 4.0


def test_repeat_with_seeds_skips_none_values():
    def run(seed):
        return {"large_fct": None if seed == 1 else 10.0}

    summaries = repeat_with_seeds(run, seeds=[1, 2, 3])
    assert summaries["large_fct"].count == 2


def test_repeat_with_seeds_requires_seeds():
    with pytest.raises(ValueError):
        repeat_with_seeds(lambda seed: {}, seeds=[])


def test_format_summary_table():
    table = format_summary_table(
        {"fct_ms": summarize([1.0, 2.0])}, title="T")
    assert "fct_ms" in table
    assert "1.500" in table


# -- export ---------------------------------------------------------------------

def test_write_throughput_csv(tmp_path):
    samples = [
        ThroughputSample(10 ** 9, (1e9, 2e9), 3e9),
        ThroughputSample(2 * 10 ** 9, (2e9, 1e9), 3e9),
    ]
    path = tmp_path / "tput.csv"
    assert write_throughput_csv(path, samples) == 2
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "q1_bps", "q2_bps", "aggregate_bps"]
    assert rows[1][0] == "1.0"
    assert rows[1][1] == "1000000000"


def test_write_throughput_csv_empty(tmp_path):
    path = tmp_path / "empty.csv"
    assert write_throughput_csv(path, []) == 0


def test_write_fct_csv(tmp_path):
    records = [FlowRecord(1, 50_000, 1_500_000, 2)]
    path = tmp_path / "fct.csv"
    assert write_fct_csv(path, records) == 1
    content = path.read_text()
    assert "flow_id" in content
    assert "1.5" in content  # 1.5 ms


def test_jsonl_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    path = tmp_path / "rows.jsonl"
    assert write_jsonl(path, rows) == 2
    assert read_jsonl(path) == rows
