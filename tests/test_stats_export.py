"""Tests for multi-seed statistics and CSV/JSONL export."""

import csv

import pytest

from repro.metrics.export import (
    read_jsonl,
    write_fct_csv,
    write_jsonl,
    write_sweep_csv,
    write_throughput_csv,
)
from repro.metrics.fct import FlowRecord
from repro.metrics.stats import (
    SeedFailure,
    format_summary_table,
    repeat_with_seeds,
    summarize,
)
from repro.metrics.throughput import ThroughputSample
from repro.sim.errors import SimulationError


# -- summarize ----------------------------------------------------------------

def test_summarize_basic():
    summary = summarize([2.0, 4.0, 6.0])
    assert summary.mean == 4.0
    assert summary.std == 2.0
    assert summary.count == 3
    assert summary.minimum == 2.0
    assert summary.maximum == 6.0
    assert summary.ci95 > 0


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.std == 0.0
    assert summary.ci95 == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_ci_uses_t_distribution_for_small_n():
    # n=2 -> t(1) = 12.706: much wider than the normal approximation.
    narrow = summarize([1.0] * 20 + [2.0] * 20)
    wide = summarize([1.0, 2.0])
    assert wide.ci95 > narrow.ci95


def test_ci_t_table_covers_medium_sample_sizes():
    # Regression: the table used to stop at df=10, silently falling back
    # to the normal 1.96 and understating the CI by up to ~12 % for the
    # 11 <= df <= 30 range (t(11) = 2.201).
    import math

    def ci_for(n, critical):
        values = [0.0, 1.0] * (n // 2) + ([0.5] if n % 2 else [])
        summary = summarize(values)
        return pytest.approx(
            critical * summary.std / math.sqrt(summary.count))

    assert summarize([0.0, 1.0] * 6).ci95 == ci_for(12, 2.201)   # df=11
    assert summarize([0.0, 1.0] * 10).ci95 == ci_for(20, 2.093)  # df=19
    assert summarize([0.0, 1.0] * 15 + [0.5]).ci95 \
        == ci_for(31, 2.042)                                     # df=30
    assert summarize([0.0, 1.0] * 16).ci95 == ci_for(32, 1.96)   # df=31


# -- repeat_with_seeds ----------------------------------------------------------

def test_repeat_with_seeds_aggregates_metrics():
    def run(seed):
        return {"throughput": float(seed), "drops": 2.0 * seed}

    summaries = repeat_with_seeds(run, seeds=[1, 2, 3])
    assert summaries["throughput"].mean == 2.0
    assert summaries["drops"].mean == 4.0


def test_repeat_with_seeds_skips_none_values():
    def run(seed):
        return {"large_fct": None if seed == 1 else 10.0}

    summaries = repeat_with_seeds(run, seeds=[1, 2, 3])
    assert summaries["large_fct"].count == 2


def test_repeat_with_seeds_requires_seeds():
    with pytest.raises(ValueError):
        repeat_with_seeds(lambda seed: {}, seeds=[])


def test_repeat_with_seeds_tolerates_failing_replications():
    def run(seed):
        if seed == 2:
            raise SimulationError("watchdog tripped")
        return {"throughput": float(seed)}

    summaries = repeat_with_seeds(run, seeds=[1, 2, 3])
    assert summaries["throughput"].count == 2
    assert summaries["throughput"].mean == 2.0
    assert summaries.failures == [SeedFailure(2, "watchdog tripped")]


def test_repeat_with_seeds_raises_when_every_seed_fails():
    def run(seed):
        raise SimulationError(f"dead at {seed}")

    with pytest.raises(SimulationError, match="all 2 replications"):
        repeat_with_seeds(run, seeds=[1, 2])


def test_format_summary_table():
    table = format_summary_table(
        {"fct_ms": summarize([1.0, 2.0])}, title="T")
    assert "fct_ms" in table
    assert "1.500" in table


# -- export ---------------------------------------------------------------------

def test_write_throughput_csv(tmp_path):
    samples = [
        ThroughputSample(10 ** 9, (1e9, 2e9), 3e9),
        ThroughputSample(2 * 10 ** 9, (2e9, 1e9), 3e9),
    ]
    path = tmp_path / "tput.csv"
    assert write_throughput_csv(path, samples) == 2
    with path.open() as handle:
        rows = list(csv.reader(handle))
    assert rows[0] == ["time_s", "q1_bps", "q2_bps", "aggregate_bps"]
    assert rows[1][0] == "1.0"
    assert rows[1][1] == "1000000000"


def test_write_throughput_csv_empty(tmp_path):
    path = tmp_path / "empty.csv"
    assert write_throughput_csv(path, []) == 0


def test_write_fct_csv(tmp_path):
    records = [FlowRecord(1, 50_000, 1_500_000, 2)]
    path = tmp_path / "fct.csv"
    assert write_fct_csv(path, records) == 1
    content = path.read_text()
    assert "flow_id" in content
    assert "1.5" in content  # 1.5 ms


def test_jsonl_roundtrip(tmp_path):
    rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
    path = tmp_path / "rows.jsonl"
    assert write_jsonl(path, rows) == 2
    assert read_jsonl(path) == rows


def test_write_sweep_csv_keeps_declared_order(tmp_path):
    records = [
        {"load": 0.3, "queues": 4, "failures": 1,
         "metrics": {"fct": summarize([1.0, 2.0])}},
        {"load": 0.5, "queues": 4, "extra": "x", "failures": 0,
         "metrics": {"fct": summarize([3.0]),
                     "drops": summarize([7.0])}},
    ]
    path = tmp_path / "sweep.csv"
    assert write_sweep_csv(path, records) == 2
    with path.open() as handle:
        rows = list(csv.reader(handle))
    # Declared order, union across records; metrics absent from a record
    # render as empty cells.
    assert rows[0] == ["load", "queues", "extra",
                       "fct_mean", "fct_ci95", "fct_n",
                       "drops_mean", "drops_ci95", "drops_n",
                       "failures"]
    assert rows[1][0] == "0.3"
    assert rows[1][3] == "1.5"
    assert rows[1][6:9] == ["", "", ""]
    assert rows[1][9] == "1"
    assert rows[2][2] == "x"


def test_write_sweep_csv_empty(tmp_path):
    assert write_sweep_csv(tmp_path / "empty.csv", []) == 0
