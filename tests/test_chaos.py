"""Hardened-run plumbing: resilient sweeps, chaos runs, CLI exit codes."""

import json
from types import SimpleNamespace

import pytest

from repro.cli import main
from repro.experiments.chaos import run_chaos, run_chaos_sweep
from repro.experiments.runner import RunOutcome, reseed, run_resilient
from repro.faults import FaultSchedule
from repro.sim.errors import SimulationError


def write_schedule(tmp_path, events, name="chaos-test"):
    path = tmp_path / "faults.json"
    path.write_text(json.dumps({"name": name, "events": events}))
    return path


TINY_EVENTS = [
    {"time_ms": 5, "kind": "stall", "target": "s0->h0", "duration_ms": 3},
    {"time_ms": 12, "kind": "reconfigure", "target": "s0->h0",
     "weights": [3000, 1500]},
]


# -- run_resilient ------------------------------------------------------------

def test_reseed_is_affine_and_stable():
    assert reseed(1, 1) == 1
    assert reseed(1, 2) == 1 + 7919
    assert reseed(40, 3) == 40 + 2 * 7919


def test_run_resilient_retries_then_succeeds():
    calls = []

    def run_one(name, seed):
        calls.append((name, seed))
        if len(calls) == 1:
            raise SimulationError("transient")
        return f"{name}:{seed}"

    outcomes = run_resilient(run_one, ["dynaq"], seed=5, retries=2)
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert outcome.ok
    assert outcome.attempts == 2
    assert outcome.seed == reseed(5, 2)
    assert calls == [("dynaq", 5), ("dynaq", 5 + 7919)]


def test_run_resilient_records_exhausted_failure_and_moves_on():
    def run_one(name, seed):
        if name == "bad":
            raise SimulationError("always broken")
        return name

    outcomes = run_resilient(run_one, ["bad", "good"], seed=1, retries=1)
    assert [outcome.scheme for outcome in outcomes] == ["bad", "good"]
    bad, good = outcomes
    assert not bad.ok
    assert bad.result is None
    assert bad.error == "always broken"
    assert bad.attempts == 2            # initial try + 1 retry
    assert good.ok and good.result == "good"


def test_run_resilient_reports_attempts():
    seen = []
    run_resilient(lambda name, seed: name, ["a", "b"], seed=3,
                  on_attempt=lambda *call: seen.append(call))
    assert seen == [("a", 1, 3), ("b", 1, 3)]


def test_run_resilient_does_not_catch_other_errors():
    def run_one(name, seed):
        raise ValueError("a bug, not a flaky run")

    with pytest.raises(ValueError):
        run_resilient(run_one, ["dynaq"])


# -- run_chaos ----------------------------------------------------------------

def test_run_chaos_clean_schedule(tmp_path):
    schedule = FaultSchedule.from_file(
        write_schedule(tmp_path, TINY_EVENTS))
    result = run_chaos("dynaq", schedule, num_queues=2, flows_per_queue=2,
                       duration_s=0.05, sample_interval_s=0.005)
    assert result.ok
    assert result.aborted is None
    assert result.injected == 2
    assert result.recovered == 1        # the stall auto-resumes
    assert result.violations == 0
    assert result.checks > 0            # the monitor saw threshold events
    assert result.result is not None and result.result.samples
    assert 0.0 <= result.degradation <= 1.0


def test_run_chaos_wall_budget_abort_keeps_partial_metrics(tmp_path):
    schedule = FaultSchedule.from_file(
        write_schedule(tmp_path, TINY_EVENTS))
    result = run_chaos("dynaq", schedule, num_queues=2, flows_per_queue=2,
                       duration_s=0.05, sample_interval_s=0.005,
                       wall_budget_s=1e-9)
    assert result.aborted is not None
    assert "wall-clock" in result.aborted
    assert not result.ok
    assert result.result is not None    # partial metrics survive the abort


def test_run_chaos_sweep_wraps_outcomes(tmp_path):
    schedule = FaultSchedule.from_file(
        write_schedule(tmp_path, TINY_EVENTS))
    outcomes = run_chaos_sweep(["dynaq"], schedule, num_queues=2,
                               flows_per_queue=2, duration_s=0.05,
                               sample_interval_s=0.005)
    assert len(outcomes) == 1
    assert isinstance(outcomes[0], RunOutcome)
    assert outcomes[0].ok
    assert outcomes[0].result.scheme == "DynaQ"


# -- chaos CLI ----------------------------------------------------------------

def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_chaos_cli_end_to_end(capsys, tmp_path):
    path = write_schedule(tmp_path, TINY_EVENTS)
    code, out = run_cli(capsys, "chaos", "--faults", str(path),
                        "--scheme", "dynaq", "--queues", "2",
                        "--flows-per-queue", "2", "--duration", "0.05")
    assert code == 0
    assert "chaos: schedule 'chaos-test' (2 events)" in out
    assert "DynaQ" in out
    assert "ok" in out


def test_example_linkflap_schedule_parses():
    schedule = FaultSchedule.from_file("examples/linkflap.json")
    assert schedule.name == "linkflap"
    assert len(schedule) == 3
    assert schedule.events[0].kind == "link_flap"


def test_chaos_cli_missing_schedule_exits_2(capsys):
    code, out = run_cli(capsys, "chaos", "--faults", "/no/such/file.json",
                        "--scheme", "dynaq")
    assert code == 2
    assert "error (ConfigurationError)" in out


def test_chaos_cli_bad_schedule_exits_2(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"events": [{"time_ms": 1, "kind": "warp-core-breach",'
                    ' "target": "s0->h0"}]}')
    code, out = run_cli(capsys, "chaos", "--faults", str(path))
    assert code == 2
    assert "error (ConfigurationError)" in out
    assert "warp-core-breach" in out


# -- hardened CLI error paths -------------------------------------------------

def test_cli_simulation_error_reports_partial_and_exits_2(
        capsys, monkeypatch, tmp_path):
    """A mid-sweep SimulationError: the schemes that finished are listed,
    the exit code is 2, and nothing escapes as a traceback."""
    fake = SimpleNamespace(scheme="FakeScheme", samples=[1, 2, 3])

    def flaky(name, **kwargs):
        if name == "besteffort":
            raise SimulationError("injected mid-sweep failure")
        return fake

    monkeypatch.setattr("repro.cli.run_convergence", flaky)
    code, out = run_cli(capsys, "convergence",
                        "--schemes", "dynaq,besteffort")
    assert code == 2
    assert "aborted after 1/2 schemes" in out
    assert "FakeScheme (3 samples)" in out
    assert "error (SimulationError)" in out


def test_cli_keyboard_interrupt_exits_2(capsys, monkeypatch):
    def interrupted(name, **kwargs):
        raise KeyboardInterrupt

    monkeypatch.setattr("repro.cli.run_convergence", interrupted)
    code, out = run_cli(capsys, "convergence", "--schemes", "dynaq")
    assert code == 2
    assert "aborted after 0/1 schemes" in out
    assert "interrupted" in out
