"""Tests for DynaQ's ECN mode (PMSB-style marking, §III-B3)."""

import pytest

from repro.core.ecn_mode import DynaQECNBuffer
from repro.net.topology import build_star
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.transport.dctcp import DCTCPSender

from conftest import FakePort, make_packet

RTT = microseconds(500)


def make_manager(port=None):
    port = port or FakePort(buffer_bytes=100_000, num_queues=4,
                            link_rate_bps=gbps(1))
    manager = DynaQECNBuffer(rtt_ns=RTT)
    manager.attach(port)
    return port, manager


def test_name_distinguishes_mode():
    _, manager = make_manager()
    assert manager.name == "DynaQ-ECN"


def test_inherits_pmsb_double_condition():
    port, manager = make_manager()
    packet = make_packet(1500, ecn=True)
    # Port over K (30 KB) and queue over K_i (7.5 KB): mark.
    port.fill(0, 25_000)
    port.fill(1, 10_000)
    decision = manager.admit(make_packet(1500, ecn=True), 0)
    assert decision.accept and decision.mark
    # Queue under K_i: selective blindness.
    decision = manager.admit(packet, 2)
    assert decision.accept and not decision.mark


def test_ecn_mode_does_not_adjust_thresholds():
    """Per §III-B3, with ECN enabled DynaQ only marks — there are no
    dynamic thresholds to maintain at all."""
    _, manager = make_manager()
    assert not hasattr(manager, "thresholds")


def test_end_to_end_with_dctcp():
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=lambda: DynaQECNBuffer(rtt_ns=RTT))
    senders = []
    for index, src in ((1, "h1"), (2, "h2")):
        flow = Flow(flow_id=index, src=src, dst="h0", size=1_000_000)
        sender = DCTCPSender(net.sim, net.host(src), flow)
        net.host(src).register_sender(sender)
        sender.start()
        senders.append(sender)
    net.sim.run(until=seconds(2))
    assert all(sender.complete for sender in senders)
    # Congestion was signalled by marks, not (only) drops.
    assert sum(sender.ecn_echoes for sender in senders) > 0
