"""Unit tests for the packet schedulers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.queueing.schedulers.base import Scheduler, validate_weights
from repro.queueing.schedulers.drr import DRRScheduler
from repro.queueing.schedulers.fifo import FIFOScheduler
from repro.queueing.schedulers.spq import SPQDRRScheduler, SPQScheduler
from repro.queueing.schedulers.wrr import WRRScheduler

from conftest import ListQueueView


def drain(scheduler, view, limit=100_000):
    """Dequeue everything, returning the byte count served per queue."""
    served = [0] * len(view.queues)
    for _ in range(limit):
        index = scheduler.select(view)
        if index is None:
            return served
        served[index] += view.pop(index)
    raise AssertionError("scheduler did not drain")


def fill(view, scheduler, queue, sizes):
    for size in sizes:
        view.queues[queue].append(size)
        scheduler.on_enqueue(queue)


# -- base -----------------------------------------------------------------

def test_validate_weights_rejects_empty_and_nonpositive():
    with pytest.raises(ValueError):
        validate_weights([])
    with pytest.raises(ValueError):
        validate_weights([1, 0])


def test_scheduler_base_needs_positive_queues():
    with pytest.raises(ValueError):
        Scheduler(0)


def test_default_weights_equal():
    assert Scheduler(3).weights == [1.0, 1.0, 1.0]


# -- FIFO -----------------------------------------------------------------

def test_fifo_serves_single_queue():
    scheduler = FIFOScheduler()
    view = ListQueueView([[100, 200]])
    assert scheduler.select(view) == 0
    view.pop(0)
    assert scheduler.select(view) == 0
    view.pop(0)
    assert scheduler.select(view) is None


# -- DRR ------------------------------------------------------------------

def test_drr_equal_quanta_splits_bytes_evenly():
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500] * 40)
    fill(view, scheduler, 1, [1500] * 40)
    served = drain(scheduler, view)
    assert served == [60_000, 60_000]


def test_drr_respects_weighted_quanta():
    scheduler = DRRScheduler([3000, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500] * 60)
    fill(view, scheduler, 1, [1500] * 60)
    # Serve the first 30 packets: ratio should be ~2:1.
    counts = [0, 0]
    for _ in range(30):
        index = scheduler.select(view)
        view.pop(index)
        counts[index] += 1
    assert counts[0] == pytest.approx(2 * counts[1], abs=2)


def test_drr_byte_fair_with_mixed_packet_sizes():
    """DRR (unlike WRR) stays fair when packet sizes differ."""
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [500] * 120)   # small packets
    fill(view, scheduler, 1, [1500] * 40)   # full MTU
    served_bytes = [0, 0]
    for _ in range(80):
        index = scheduler.select(view)
        served_bytes[index] += view.pop(index)
    assert served_bytes[0] == pytest.approx(served_bytes[1], rel=0.1)


def test_drr_skips_empty_queue():
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 1, [1500] * 3)
    served = drain(scheduler, view)
    assert served == [0, 4500]


def test_drr_all_empty_returns_none():
    scheduler = DRRScheduler([1500])
    assert scheduler.select(ListQueueView([[]])) is None


def test_drr_packet_larger_than_quantum_accumulates_deficit():
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [9000])  # jumbo frame, 6 quanta needed
    fill(view, scheduler, 1, [1500] * 4)
    served = drain(scheduler, view)
    assert served == [9000, 6000]


def test_drr_reactivated_queue_resets_deficit():
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500])
    drain(scheduler, view)
    fill(view, scheduler, 0, [1500])
    assert scheduler.select(view) == 0


def test_drr_weights_property():
    assert DRRScheduler([6000, 4500, 3000, 1500]).weights == [
        6000, 4500, 3000, 1500]


def test_drr_round_time_estimate_analytic_fallback():
    scheduler = DRRScheduler([1500, 1500])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500])
    fill(view, scheduler, 1, [1500])
    # 2 active queues x 1500 B at 1 Gbps = 24 us per round.
    estimate = scheduler.estimated_round_time_ns(10 ** 9)
    assert estimate == pytest.approx(24_000)


def test_drr_round_time_measured_with_clock():
    clock_value = [0]
    scheduler = DRRScheduler([1500, 1500])
    scheduler.bind_clock(lambda: clock_value[0])
    # Round tracking is lazy by default; its consumer (MQ-ECN) switches
    # it on at attach time, which this test stands in for.
    scheduler.enable_round_tracking()
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500] * 50)
    fill(view, scheduler, 1, [1500] * 50)
    for _ in range(60):
        clock_value[0] += 12_000  # 12 us per packet at 1 Gbps
        index = scheduler.select(view)
        view.pop(index)
    assert scheduler.round_time_ns > 0


# -- WRR ------------------------------------------------------------------

def test_wrr_equal_weights_round_robin():
    scheduler = WRRScheduler([1.0, 1.0])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500] * 10)
    fill(view, scheduler, 1, [1500] * 10)
    order = []
    for _ in range(6):
        index = scheduler.select(view)
        view.pop(index)
        order.append(index)
    assert sorted(order[:2]) == [0, 1]
    assert order.count(0) == 3
    assert order.count(1) == 3


def test_wrr_weighted_packet_counts():
    scheduler = WRRScheduler([3.0, 1.0])
    view = ListQueueView([[], []])
    fill(view, scheduler, 0, [1500] * 40)
    fill(view, scheduler, 1, [1500] * 40)
    counts = [0, 0]
    for _ in range(40):
        index = scheduler.select(view)
        view.pop(index)
        counts[index] += 1
    assert counts[0] == pytest.approx(30, abs=2)


def test_wrr_work_conserving_with_one_queue_active():
    scheduler = WRRScheduler([1.0, 1.0, 1.0])
    view = ListQueueView([[], [], []])
    fill(view, scheduler, 2, [1500] * 5)
    assert drain(scheduler, view) == [0, 0, 7500]


# -- SPQ ------------------------------------------------------------------

def test_spq_serves_highest_priority_first():
    scheduler = SPQScheduler(3)
    view = ListQueueView([[], [1500], [1500]])
    assert scheduler.select(view) == 1


def test_spq_all_empty():
    assert SPQScheduler(2).select(ListQueueView([[], []])) is None


def test_spq_weights_validation():
    with pytest.raises(ValueError):
        SPQScheduler(2, weights=[1.0])


def test_spqdrr_high_queue_preempts():
    scheduler = SPQDRRScheduler(1, [1500, 1500])
    view = ListQueueView([[], [], []])
    fill(view, scheduler, 1, [1500] * 4)
    fill(view, scheduler, 0, [100])
    assert scheduler.select(view) == 0


def test_spqdrr_low_queues_are_drr_fair():
    scheduler = SPQDRRScheduler(1, [1500, 1500])
    view = ListQueueView([[], [], []])
    fill(view, scheduler, 1, [1500] * 20)
    fill(view, scheduler, 2, [1500] * 20)
    served = [0, 0, 0]
    for _ in range(10):
        index = scheduler.select(view)
        served[index] += view.pop(index)
    assert served[0] == 0
    assert served[1] == served[2]


def test_spqdrr_needs_high_queue():
    with pytest.raises(ValueError):
        SPQDRRScheduler(0, [1500])


def test_spqdrr_weights_cover_all_queues():
    scheduler = SPQDRRScheduler(1, [1500, 3000])
    assert len(scheduler.weights) == 3


def test_spqdrr_on_enqueue_routes_to_drr():
    scheduler = SPQDRRScheduler(1, [1500, 1500])
    view = ListQueueView([[], [], []])
    fill(view, scheduler, 2, [1500])
    assert scheduler.select(view) == 2


# -- work-conservation property across all schedulers ----------------------

@given(st.lists(st.tuples(st.integers(0, 3), st.integers(64, 9000)),
                min_size=1, max_size=60))
def test_schedulers_are_work_conserving(contents):
    """If any queue is non-empty, select() returns a valid index."""
    for make in (lambda: DRRScheduler([1500] * 4),
                 lambda: WRRScheduler([1.0, 2.0, 3.0, 4.0]),
                 lambda: SPQScheduler(4),
                 lambda: SPQDRRScheduler(1, [1500] * 3)):
        scheduler = make()
        view = ListQueueView([[], [], [], []])
        for queue, size in contents:
            view.queues[queue].append(size)
            scheduler.on_enqueue(queue)
        total = sum(len(q) for q in view.queues)
        for _ in range(total):
            index = scheduler.select(view)
            assert index is not None
            assert view.queues[index], "selected an empty queue"
            view.pop(index)
        assert scheduler.select(view) is None
