"""Tests for the Vegas transport, WFQ scheduler, and sweep helper."""

import pytest

from repro.experiments.sweeps import grid_points, run_sweep, sweep_table
from repro.net.topology import build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.wfq import WFQScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.transport.vegas import VegasSender

from conftest import ListQueueView

RTT = microseconds(500)


def make_net(scheduler_factory=None):
    return build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=scheduler_factory
        or (lambda: WFQScheduler([1.0] * 4)),
        buffer_factory=BestEffortBuffer)


def start(net, flow_id, src, size, service_class=0, cls=VegasSender):
    flow = Flow(flow_id=flow_id, src=src, dst="h0", size=size,
                service_class=service_class)
    sender = cls(net.sim, net.host(src), flow)
    net.host(src).register_sender(sender)
    sender.start()
    return sender


# -- Vegas ----------------------------------------------------------------------

def test_vegas_completes_clean_path():
    net = make_net()
    sender = start(net, 1, "h1", 500_000)
    net.sim.run(until=seconds(2))
    assert sender.complete
    assert sender.base_rtt_ns is not None
    assert sender.base_rtt_ns >= RTT  # cannot beat the propagation floor


def test_vegas_keeps_standing_queue_small():
    """A lone Vegas flow converges to a few packets of backlog — its
    defining property versus loss-based TCP, which fills the buffer."""
    net = make_net()
    bottleneck = net.switch("s0").ports["s0->h0"]
    sender = start(net, 1, "h1", 10_000_000)
    peak = {"value": 0}
    original = bottleneck.send

    def watched(packet):
        original(packet)
        if net.sim.now > seconds(0.02):  # after convergence
            peak["value"] = max(peak["value"], bottleneck.total_bytes())

    bottleneck.send = watched
    net.sim.run(until=seconds(0.1))
    # Backlog stays within ~beta packets (plus a burst allowance).
    assert peak["value"] <= 12 * 1500


def test_vegas_two_flows_share_without_loss():
    net = make_net()
    a = start(net, 1, "h1", 1_000_000)
    b = start(net, 2, "h2", 1_000_000, service_class=1)
    net.sim.run(until=seconds(2))
    assert a.complete and b.complete
    assert a.retransmissions + b.retransmissions == 0  # no drops needed


# -- WFQ ------------------------------------------------------------------------

def test_wfq_equal_weights_byte_fair():
    scheduler = WFQScheduler([1.0, 1.0])
    view = ListQueueView([[1500] * 20, [1500] * 20])
    served = [0, 0]
    for _ in range(20):
        index = scheduler.select(view)
        served[index] += view.pop(index)
    assert served[0] == served[1]


def test_wfq_respects_weights():
    scheduler = WFQScheduler([3.0, 1.0])
    view = ListQueueView([[1500] * 40, [1500] * 40])
    served = [0, 0]
    for _ in range(40):
        index = scheduler.select(view)
        served[index] += view.pop(index)
    assert served[0] == pytest.approx(3 * served[1], rel=0.15)


def test_wfq_byte_fair_with_mixed_sizes():
    """WFQ (like DRR, unlike WRR) is fair in bytes, not packets."""
    scheduler = WFQScheduler([1.0, 1.0])
    view = ListQueueView([[500] * 120, [1500] * 40])
    served = [0, 0]
    for _ in range(100):
        index = scheduler.select(view)
        served[index] += view.pop(index)
    assert served[0] == pytest.approx(served[1], rel=0.15)


def test_wfq_work_conserving():
    scheduler = WFQScheduler([1.0, 1.0, 1.0])
    view = ListQueueView([[], [1500, 1500], []])
    assert scheduler.select(view) == 1
    view.pop(1)
    assert scheduler.select(view) == 1
    view.pop(1)
    assert scheduler.select(view) is None


def test_wfq_end_to_end():
    net = make_net(lambda: WFQScheduler([2.0, 1.0, 1.0, 1.0]))
    a = start(net, 1, "h1", 300_000, service_class=0)
    b = start(net, 2, "h2", 300_000, service_class=1)
    net.sim.run(until=seconds(2))
    assert a.complete and b.complete


def test_wfq_validation():
    with pytest.raises(ValueError):
        WFQScheduler([])


# -- sweeps -----------------------------------------------------------------------

def test_grid_points_cartesian():
    points = grid_points({"a": [1, 2], "b": ["x"]})
    assert points == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
    assert grid_points({}) == [{}]


def test_grid_points_keep_declaration_order():
    # Regression: parameter names used to be alphabetised, so a grid
    # declared {"load": ..., "buffer": ...} came back buffer-first.
    points = grid_points({"load": [0.3], "buffer": [100, 200]})
    assert [list(point) for point in points] \
        == [["load", "buffer"], ["load", "buffer"]]
    assert points == [{"load": 0.3, "buffer": 100},
                      {"load": 0.3, "buffer": 200}]


def test_run_sweep_aggregates_over_seeds():
    def experiment(*, load, seed):
        return {"fct": load * 10 + seed, "maybe": None}

    records = run_sweep(experiment, {"load": [0.1, 0.2]}, seeds=[1, 2])
    assert len(records) == 2
    first = records[0]
    assert first["load"] == 0.1
    assert first["metrics"]["fct"].mean == pytest.approx(2.5)
    assert "maybe" not in first["metrics"]


def test_run_sweep_requires_seeds():
    with pytest.raises(ValueError):
        run_sweep(lambda **kw: {}, {}, seeds=[])


def test_run_sweep_survives_a_failing_seed():
    from repro.sim.errors import SimulationError

    def experiment(*, load, seed):
        if seed == 2:
            raise SimulationError("boom")
        return {"fct": load * 10 + seed}

    records = run_sweep(experiment, {"load": [0.1]}, seeds=[1, 2, 3])
    (record,) = records
    assert record["failures"] == 1
    assert record["metrics"]["fct"].count == 2


def test_sweep_table_formats():
    records = run_sweep(lambda *, x, seed: {"m": x + seed},
                        {"x": [1]}, seeds=[1, 3])
    table = sweep_table(records, metric="m", title="T")
    assert "T" in table
    assert "3.000" in table  # mean of 2 and 4
    assert sweep_table([], metric="m", title="T") == "T"


def test_sweep_table_columns_are_declared_order_union():
    from repro.metrics.stats import summarize

    records = [
        {"load": 0.3, "metrics": {"m": summarize([1.0])}, "failures": 0},
        {"load": 0.5, "buffer": 100, "metrics": {}, "failures": 1},
    ]
    table = sweep_table(records, metric="m", title="T")
    header = table.splitlines()[1]
    # "load" before "buffer" (declaration order, not alphabetical), and
    # "buffer" present even though the first record lacks it.
    assert header.index("load") < header.index("buffer")
    missing_row = table.splitlines()[3]
    assert "-" in missing_row  # absent parameter and absent metric
