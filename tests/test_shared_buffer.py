"""Tests for the chip-wide shared-memory buffer pool (§II-C substrate)."""

import pytest

from repro.net.port import EgressPort
from repro.net.shared_buffer import SharedBufferPool, attach_pool
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.units import gbps

from conftest import make_packet


# -- pool accounting -----------------------------------------------------------

def test_pool_validation():
    with pytest.raises(ConfigurationError):
        SharedBufferPool(0)
    with pytest.raises(ConfigurationError):
        SharedBufferPool(1000, alpha=0)


def test_reserve_and_release():
    pool = SharedBufferPool(10_000)
    pool.register("p0")
    assert pool.try_reserve("p0", 4_000)
    assert pool.usage_of("p0") == 4_000
    assert pool.free_bytes == 6_000
    pool.release("p0", 4_000)
    assert pool.free_bytes == 10_000


def test_unregistered_port_rejected():
    pool = SharedBufferPool(10_000)
    with pytest.raises(ConfigurationError):
        pool.try_reserve("ghost", 100)


def test_over_release_rejected():
    pool = SharedBufferPool(10_000)
    pool.register("p0")
    pool.try_reserve("p0", 100)
    with pytest.raises(ConfigurationError):
        pool.release("p0", 200)


def test_dt_threshold_shrinks_as_pool_fills():
    pool = SharedBufferPool(10_000, alpha=1.0)
    pool.register("p0")
    pool.register("p1")
    assert pool.port_threshold() == 10_000
    pool.try_reserve("p0", 4_000)
    assert pool.port_threshold() == 6_000
    # p0 is over the new allowance -> further growth rejected.
    assert not pool.try_reserve("p0", 3_000)
    # p1 is far below -> allowed.
    assert pool.try_reserve("p1", 3_000)
    assert pool.rejections == 1


def test_dt_converges_to_equal_split_for_greedy_ports():
    """Two saturated ports under DT alpha=1 settle near capacity/3 each
    (each threshold = free = B - 2x => x = B/3): DT's classic fixed point."""
    pool = SharedBufferPool(30_000, alpha=1.0)
    pool.register("a")
    pool.register("b")
    # Greedy 100-byte reservations, alternating.
    for _ in range(400):
        pool.try_reserve("a", 100)
        pool.try_reserve("b", 100)
    assert pool.usage_of("a") == pytest.approx(10_000, abs=500)
    assert pool.usage_of("b") == pytest.approx(10_000, abs=500)


def test_capacity_is_hard_limit():
    pool = SharedBufferPool(1_000, alpha=10.0)
    pool.register("p0")
    assert pool.try_reserve("p0", 900)
    assert not pool.try_reserve("p0", 200)


# -- attach_pool on real ports ------------------------------------------------------

class Sink:
    def receive(self, packet):
        pass


def make_pooled_ports(pool, count=2, buffer_bytes=50_000):
    sim = Simulator()
    ports = []
    for index in range(count):
        port = EgressPort(
            sim, f"p{index}", rate_bps=gbps(1), prop_delay_ns=0,
            buffer_bytes=buffer_bytes,
            scheduler=DRRScheduler([1500] * 2),
            buffer_manager=BestEffortBuffer())
        port.connect(Sink())
        attach_pool(port, pool)
        ports.append(port)
    return sim, ports


def test_pool_tracks_port_buffering():
    pool = SharedBufferPool(100_000)
    sim, (port, _) = make_pooled_ports(pool)
    for _ in range(4):
        port.send(make_packet(1500))
    # One packet is in flight (its reservation released on dequeue),
    # three are buffered.
    assert pool.usage_of("p0") == 3 * 1500
    sim.run()
    assert pool.usage_of("p0") == 0
    assert pool.total_usage == 0


def test_pool_rejection_counts_as_port_drop():
    pool = SharedBufferPool(4_000, alpha=10.0)
    sim, (port, _) = make_pooled_ports(pool)
    for _ in range(6):
        port.send(make_packet(1500))
    assert port.dropped_packets >= 1
    assert pool.total_usage <= 4_000


def test_aggressive_port_cannot_take_whole_pool():
    """The §II-C per-port fairness property DT provides at chip level."""
    pool = SharedBufferPool(30_000, alpha=1.0)
    sim, (hog, meek) = make_pooled_ports(pool, buffer_bytes=30_000)
    # The hog fills up first...
    for _ in range(40):
        hog.send(make_packet(1500))
    hog_usage = pool.usage_of("p0")
    assert hog_usage < 20_000  # DT stopped it well short of the pool
    # ...and the meek port can still buffer afterwards.
    for _ in range(4):
        meek.send(make_packet(1500))
    assert pool.usage_of("p1") >= 3 * 1500


def test_scheme_drop_returns_reservation():
    pool = SharedBufferPool(100_000)
    sim, (port, _) = make_pooled_ports(pool, buffer_bytes=3_000)
    for _ in range(5):
        port.send(make_packet(1500))   # port's own 3 KB cap drops some
    assert pool.usage_of("p0") <= 3_000
