"""Unit tests for the multi-queue egress port."""

import pytest

from repro.core.dynaq import DynaQBuffer
from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.drr import DRRScheduler
from repro.queueing.schedulers.spq import SPQScheduler
from repro.queueing.tcn import TCNBuffer
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.trace import (
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TraceBus,
)
from repro.sim.units import microseconds

from conftest import make_packet


class SinkNode:
    """Records delivered packets with their arrival time."""

    def __init__(self, sim):
        self.sim = sim
        self.packets = []

    def receive(self, packet):
        self.packets.append((self.sim.now, packet))


def make_port(sim, *, rate_bps=10 ** 9, prop_delay_ns=1_000,
              buffer_bytes=85_000, scheduler=None, manager=None,
              trace=None):
    port = EgressPort(
        sim, "p0", rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
        buffer_bytes=buffer_bytes,
        scheduler=scheduler or DRRScheduler([1500] * 4),
        buffer_manager=manager or BestEffortBuffer(), trace=trace)
    sink = SinkNode(sim)
    port.connect(sink)
    return port, sink


def test_single_packet_latency():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(make_packet(1500))
    sim.run()
    # 12 us transmission + 1 us propagation.
    assert sink.packets[0][0] == 12_000 + 1_000


def test_unconnected_port_raises():
    sim = Simulator()
    port = EgressPort(
        sim, "p", rate_bps=10 ** 9, prop_delay_ns=0, buffer_bytes=1000,
        scheduler=DRRScheduler([1500]), buffer_manager=BestEffortBuffer())
    with pytest.raises(ConfigurationError):
        port.send(make_packet(100))


def test_bad_parameters_rejected():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        EgressPort(sim, "p", rate_bps=0, prop_delay_ns=0,
                   buffer_bytes=1000, scheduler=DRRScheduler([1500]),
                   buffer_manager=BestEffortBuffer())


def test_back_to_back_packets_serialize():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(make_packet(1500))
    port.send(make_packet(1500))
    sim.run()
    times = [t for t, _ in sink.packets]
    assert times == [13_000, 25_000]


def test_occupancy_accounting():
    sim = Simulator()
    port, _ = make_port(sim)
    port.send(make_packet(1500, service_class=0))
    port.send(make_packet(1500, service_class=1))
    # First packet dequeues immediately (port idle); second is buffered.
    assert port.total_bytes() == 1500
    sim.run()
    assert port.total_bytes() == 0
    assert port.queue_bytes(0) == 0
    assert port.queue_bytes(1) == 0


def test_classifier_clips_to_queue_count():
    sim = Simulator()
    port, sink = make_port(sim)
    port.send(make_packet(1500, service_class=99))
    sim.run()
    assert port.transmitted_packets == 1


def test_custom_classifier():
    sim = Simulator()
    port, _ = make_port(sim)
    port.set_classifier(lambda packet: 2)
    port.send(make_packet(1500, service_class=0))
    port.send(make_packet(1500, service_class=0))
    assert port.queue_bytes(2) == 1500  # second packet buffered in q2


def test_drop_counted_and_not_delivered():
    sim = Simulator()
    port, sink = make_port(sim, buffer_bytes=3_000)
    for _ in range(4):
        port.send(make_packet(1500))
    sim.run()
    # One in flight + two buffered; the fourth exceeded the 3 KB buffer.
    assert port.dropped_packets == 1
    assert len(sink.packets) == 3


def test_work_conservation_across_queues():
    sim = Simulator()
    port, sink = make_port(sim)
    for service_class in (0, 1, 2, 3):
        port.send(make_packet(1500, service_class=service_class))
    sim.run()
    assert len(sink.packets) == 4
    assert port.transmitted_bytes == 6_000


def test_spq_dequeue_order():
    sim = Simulator()
    port, sink = make_port(sim, scheduler=SPQScheduler(4))
    # Fill while the port is busy with a low-priority packet.
    port.send(make_packet(1500, service_class=3))
    port.send(make_packet(1500, service_class=2, flow_id=2))
    port.send(make_packet(1500, service_class=0, flow_id=1))
    sim.run()
    flow_order = [p.flow_id for _, p in sink.packets]
    assert flow_order == [0, 1, 2]


def test_trace_topics_published():
    sim = Simulator()
    trace = TraceBus()
    events = {"enq": 0, "deq": 0, "drop": 0}
    trace.subscribe(TOPIC_PACKET_ENQUEUE,
                    lambda **kw: events.__setitem__("enq", events["enq"] + 1))
    trace.subscribe(TOPIC_PACKET_DEQUEUE,
                    lambda **kw: events.__setitem__("deq", events["deq"] + 1))
    trace.subscribe(TOPIC_PACKET_DROP,
                    lambda **kw: events.__setitem__("drop", events["drop"] + 1))
    port, _ = make_port(sim, buffer_bytes=3_000, trace=trace)
    for _ in range(4):
        port.send(make_packet(1500))
    sim.run()
    assert events == {"enq": 3, "deq": 3, "drop": 1}


def test_ecn_mark_only_on_capable_packets():
    sim = Simulator()

    class AlwaysMark(BestEffortBuffer):
        def admit(self, packet, queue_index):
            decision = super().admit(packet, queue_index)
            decision.mark = True
            return decision

    port, sink = make_port(sim, manager=AlwaysMark())
    port.send(make_packet(1500, ecn=True))
    port.send(make_packet(1500, ecn=False, flow_id=1))
    sim.run()
    marked = {p.flow_id: p.ecn_ce for _, p in sink.packets}
    assert marked == {0: True, 1: False}


def test_tcn_dequeue_drop_wastes_transmission_slot():
    """The drop variant idles the wire for the dropped packet's slot."""
    sim = Simulator()
    manager = TCNBuffer(rtt_ns=microseconds(500), drop_variant=True)
    # 48 Mbps: one 1500 B packet occupies the wire for 250 us, so the
    # second packet's sojourn time exceeds the 240 us threshold.
    port, sink = make_port(sim, rate_bps=48_000_000, manager=manager)
    port.send(make_packet(1500, flow_id=0))
    port.send(make_packet(1500, flow_id=1))
    port.send(make_packet(1500, flow_id=2))
    sim.run()
    # Flows 1 and 2 aged past the threshold and were dropped at dequeue.
    assert manager.dequeue_drops == 2
    assert [p.flow_id for _, p in sink.packets] == [0]
    # The wasted slots still consumed wire time: the single delivered
    # packet plus nothing else, yet the port stayed "busy" three slots.
    assert port.dropped_packets == 2


def test_dynaq_port_integration_thresholds_move():
    sim = Simulator()
    manager = DynaQBuffer()
    port, sink = make_port(sim, manager=manager, buffer_bytes=12_000)
    # Queue 0's initial threshold is 3 KB; the third packet triggers a
    # threshold steal from an idle queue rather than a drop.
    for _ in range(5):
        port.send(make_packet(1500, service_class=0))
    assert manager.threshold_moves >= 1
    assert manager.threshold_sum() == 12_000
    sim.run()
    assert len(sink.packets) == 5


def test_packet_enqueued_at_stamped():
    sim = Simulator()
    port, _ = make_port(sim)
    packet = make_packet(1500)
    sim.schedule(7_000, port.send, packet)
    sim.run()
    assert packet.enqueued_at == 7_000


def test_tx_cache_stays_bounded_under_size_sweep():
    """A sweep over many distinct packet sizes must not grow the
    transmission-time memo without bound (it is cleared at the cap, not
    evicted, since real traffic uses a handful of sizes)."""
    from repro.net.port import _TX_CACHE_CAP

    sim = Simulator()
    port, sink = make_port(sim, buffer_bytes=10 ** 9)
    if port._tx_cache is None:
        pytest.skip("tx_time_cache disabled in active config")
    clock = 0
    for size in range(64, 64 + 4 * _TX_CACHE_CAP):
        clock += 100_000
        sim.at(clock, port.send, make_packet(size))
    sim.run()
    assert len(sink.packets) == 4 * _TX_CACHE_CAP
    assert len(port._tx_cache) <= _TX_CACHE_CAP
    # The cache still answers correctly after the clears.
    from repro.sim.units import transmission_time
    for size, tx_ns in port._tx_cache.items():
        assert tx_ns == transmission_time(size, port.link_rate_bps)
