"""Tests for the telemetry layer: recorder, flight recorder, timeline,
profiler, record schema, and the bundled session."""

import json

import pytest

from repro.core.dynaq import DynaQBuffer
from repro.metrics.export import (
    write_steal_matrix_csv,
    write_threshold_series_csv,
)
from repro.net.port import EgressPort
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.trace import (
    ALL_TOPICS,
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PARALLEL_JOB,
    TOPIC_QUEUE_SNAPSHOT,
    TOPIC_SNAPSHOT_LIFECYCLE,
    TOPIC_THRESHOLD_CHANGE,
    TOPIC_VICTIM_STEAL,
    TraceBus,
)
from repro.telemetry import (
    ANOMALY_DROP_BURST,
    ANOMALY_SIMULATION_ERROR,
    ANOMALY_THRESHOLD_INVARIANT,
    DEFAULT_TOPICS,
    FlightRecorder,
    JsonlSink,
    MemorySink,
    META_TOPIC_DUMP,
    REQUIRED_TOPIC_FIELDS,
    RunProfiler,
    TelemetrySession,
    ThresholdTimeline,
    TraceRecorder,
    normalize,
    validate_record,
    validate_trace_file,
)

from conftest import FakePort, make_packet

MTU = 1500


def dynaq_port(sim, trace, *, buffer_bytes=12_000, num_queues=4):
    """A real egress port with DynaQ, small enough to overflow quickly."""
    port = EgressPort(
        sim, "p0", rate_bps=10 ** 9, prop_delay_ns=0,
        buffer_bytes=buffer_bytes,
        scheduler=DRRScheduler([MTU] * num_queues),
        buffer_manager=DynaQBuffer(), trace=trace)

    class Sink:
        def receive(self, packet):
            pass

    port.connect(Sink())
    return port


def flood(sim, port, *, packets=40, queue=0):
    """Inject a burst far above what the port can drain."""
    for i in range(packets):
        sim.schedule(i, port.send, make_packet(MTU, flow_id=i % 3,
                                               service_class=queue))
    sim.run()


# -- TraceRecorder -----------------------------------------------------------

def test_recorder_jsonl_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    sim = Simulator()
    trace = TraceBus()
    with TraceRecorder(trace, JsonlSink(path)) as recorder:
        port = dynaq_port(sim, trace)
        flood(sim, port)
    assert recorder.records_written > 0

    count, errors = validate_trace_file(path)
    assert errors == []
    assert count == recorder.records_written

    records = [json.loads(line) for line in path.open()]
    topics = {record["topic"] for record in records}
    # Port lifecycle + DynaQ internals all present in one trace.
    assert TOPIC_PACKET_ENQUEUE in topics
    assert TOPIC_THRESHOLD_CHANGE in topics
    assert TOPIC_VICTIM_STEAL in topics
    # The baseline snapshot is first among the threshold records.
    baseline = next(r for r in records
                    if r["topic"] == TOPIC_THRESHOLD_CHANGE)
    assert baseline["victim"] == -1 and baseline["gainer"] == -1
    assert sum(baseline["threshold"]) == 12_000


def test_recorder_topic_filter():
    trace = TraceBus()
    sink = MemorySink()
    recorder = TraceRecorder(trace, sink, topics=[TOPIC_PACKET_DROP])
    trace.publish(TOPIC_PACKET_DROP, port="p", time=1,
                  packet=make_packet(), queue=0, detail="full",
                  queue_bytes=(0,))
    trace.publish(TOPIC_PACKET_ENQUEUE, port="p", time=2,
                  packet=make_packet(), queue=0, detail="",
                  queue_bytes=(MTU,))
    recorder.close()
    assert [record["topic"] for record in sink.records] == [TOPIC_PACKET_DROP]


def test_recorder_rejects_unknown_topic():
    with pytest.raises(ValueError, match="unknown trace topics"):
        TraceRecorder(TraceBus(), MemorySink(), topics=["packet.dorp"])


def test_recorder_time_window():
    trace = TraceBus()
    sink = MemorySink()
    recorder = TraceRecorder(trace, sink, topics=[TOPIC_PACKET_DROP],
                             start_ns=10, end_ns=20)
    for time in (5, 10, 15, 20, 25):
        trace.publish(TOPIC_PACKET_DROP, port="p", time=time,
                      packet=make_packet(), queue=0, detail="full",
                      queue_bytes=(0,))
    recorder.close()
    assert [record["time_ns"] for record in sink.records] == [10, 15, 20]
    assert recorder.records_written == 3
    assert recorder.records_skipped == 2


def test_recorder_close_unsubscribes_and_is_idempotent():
    trace = TraceBus()
    sink = MemorySink()
    recorder = TraceRecorder(trace, sink)
    recorder.close()
    recorder.close()
    trace.publish(TOPIC_PACKET_DROP, port="p", time=1,
                  packet=make_packet(), queue=0, detail="full",
                  queue_bytes=(0,))
    assert sink.records == []


# -- FlightRecorder ----------------------------------------------------------

def drop(trace, *, port="p0", time):
    trace.publish(TOPIC_PACKET_DROP, port=port, time=time,
                  packet=make_packet(), queue=0, detail="port buffer full",
                  queue_bytes=(0,))


def test_flight_recorder_dumps_on_drop_burst(tmp_path):
    path = tmp_path / "flight.jsonl"
    trace = TraceBus()
    recorder = FlightRecorder(trace, capacity=64, drop_burst_count=8,
                              drop_burst_window_ns=1_000, dump_path=path)
    # 7 slow drops: no burst (window exceeded by the time #8 arrives).
    for i in range(7):
        drop(trace, time=i * 10_000)
    assert recorder.anomalies == []
    # 8 drops inside one window: burst fires once.
    for i in range(8):
        drop(trace, time=100_000 + i)
    assert len(recorder.anomalies) == 1
    reason, port, _ = recorder.anomalies[0]
    assert reason == ANOMALY_DROP_BURST
    assert port == "p0"
    assert recorder.dumps_written == [path]

    lines = [json.loads(line) for line in path.open()]
    assert lines[0]["topic"] == META_TOPIC_DUMP
    assert lines[0]["detail"] == ANOMALY_DROP_BURST
    assert len(lines) == 1 + 15  # marker + every event retained
    count, errors = validate_trace_file(path)
    assert errors == [] and count == 16
    recorder.close()


def test_flight_recorder_one_dump_per_arm(tmp_path):
    trace = TraceBus()
    recorder = FlightRecorder(trace, drop_burst_count=2,
                              drop_burst_window_ns=1_000,
                              dump_path=tmp_path / "f.jsonl")
    for i in range(8):
        drop(trace, time=i)
    # 4 bursts detected, but only the first dumped.
    assert len(recorder.anomalies) == 4
    assert len(recorder.dumps_written) == 1
    recorder.rearm()
    for i in range(2):
        drop(trace, time=1_000_000 + i)
    assert len(recorder.dumps_written) == 2
    recorder.close()


def test_flight_recorder_ring_is_bounded():
    trace = TraceBus()
    recorder = FlightRecorder(trace, capacity=4, drop_burst_count=0)
    for i in range(10):
        drop(trace, time=i)
    ring = recorder.ring("p0")
    assert len(ring) == 4
    assert [record["time_ns"] for record in ring] == [6, 7, 8, 9]
    assert recorder.events_seen == 10
    assert recorder.ports() == ["p0"]
    recorder.close()


def test_flight_recorder_threshold_invariant():
    trace = TraceBus()
    recorder = FlightRecorder(trace, drop_burst_count=0)

    def publish_thresholds(thresholds, time):
        trace.publish(TOPIC_THRESHOLD_CHANGE, port="p0", time=time,
                      victim=1, gainer=0, size=MTU,
                      thresholds=tuple(thresholds))

    publish_thresholds([25_000] * 4, 0)         # baseline: sum = 100k
    publish_thresholds([26_500, 23_500, 25_000, 25_000], 10)  # still 100k
    assert recorder.anomalies == []
    publish_thresholds([26_500, 25_000, 25_000, 25_000], 20)  # leak!
    assert recorder.anomalies == [
        (ANOMALY_THRESHOLD_INVARIANT, "p0", 20)]
    recorder.close()


def test_flight_recorder_guard_dumps_on_simulation_error():
    trace = TraceBus()
    recorder = FlightRecorder(trace, drop_burst_count=0)
    drop(trace, time=5)
    with pytest.raises(SimulationError):
        with recorder.guard():
            raise SimulationError("boom")
    assert recorder.anomalies[0][0] == ANOMALY_SIMULATION_ERROR
    recorder.close()


def test_flight_recorder_rejects_bad_capacity():
    with pytest.raises(ValueError):
        FlightRecorder(TraceBus(), capacity=0)


# -- ThresholdTimeline -------------------------------------------------------

def test_timeline_collects_series_and_steals():
    trace = TraceBus()
    timeline = ThresholdTimeline(trace)
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager = DynaQBuffer(trace=trace, port_name="p0")
    manager.attach(port)  # publishes the baseline snapshot
    port.fill(0, 25_000)
    manager.admit(make_packet(MTU), 0)  # steal: q0 takes from a victim

    assert timeline.ports() == ["p0"]
    assert timeline.num_queues("p0") == 4
    series = timeline.series("p0")
    assert len(series) == 2
    assert series[0][1] == (25_000,) * 4
    assert series[1][1][0] == 25_000 + MTU
    assert timeline.threshold_series("p0", 0) == [
        (0, 25_000), (0, 25_000 + MTU)]
    assert timeline.satisfaction("p0") == (25_000,) * 4

    assert timeline.total_stolen_bytes("p0") == MTU
    assert timeline.steal_moves("p0") == 1
    assert timeline.steal_moves("p0", gainer=0) == 1
    assert timeline.steal_moves("p0", gainer=1) == 0
    matrix = timeline.steal_matrix("p0")
    assert sum(sum(row) for row in matrix) == MTU
    assert sum(matrix[0]) == 0  # the gainer stole, nobody stole from it
    timeline.close()


def test_timeline_csv_export(tmp_path):
    trace = TraceBus()
    timeline = ThresholdTimeline(trace)
    manager = DynaQBuffer(trace=trace, port_name="p0")
    port = FakePort(buffer_bytes=100_000, num_queues=4)
    manager.attach(port)
    port.fill(0, 25_000)
    manager.admit(make_packet(MTU), 0)

    series_path = tmp_path / "series.csv"
    rows = write_threshold_series_csv(series_path, timeline, "p0")
    assert rows == 2
    lines = series_path.read_text().splitlines()
    assert lines[0] == "time_s,T1_bytes,T2_bytes,T3_bytes,T4_bytes"
    assert len(lines) == 3

    matrix_path = tmp_path / "matrix.csv"
    size = write_steal_matrix_csv(matrix_path, timeline, "p0")
    assert size == 4
    lines = matrix_path.read_text().splitlines()
    assert lines[0].startswith("victim\\gainer,q1,q2,q3,q4")
    assert len(lines) == 5
    timeline.close()


def test_timeline_empty_port_exports_nothing(tmp_path):
    timeline = ThresholdTimeline(TraceBus())
    assert write_threshold_series_csv(tmp_path / "s.csv", timeline, "p") == 0
    assert write_steal_matrix_csv(tmp_path / "m.csv", timeline, "p") == 0


# -- RunProfiler -------------------------------------------------------------

def test_profiler_counters_monotonic():
    sim = Simulator()
    profiler = RunProfiler().attach(sim)
    seen = []

    def tick(n):
        seen.append((profiler.events, profiler.heap_high_water))
        if n < 5:
            sim.schedule(10, tick, n + 1)

    sim.schedule(1, tick, 0)
    sim.run()
    profiler.detach()
    # events counts every executed event and never decreases.
    assert [events for events, _ in seen] == list(range(6))
    assert profiler.events == sim.events_executed == 6
    # high-water mark only ratchets up.
    marks = [mark for _, mark in seen]
    assert all(b >= a for a, b in zip(marks, marks[1:]))
    assert profiler.callback_s >= 0.0
    assert profiler.wall_s >= 0.0


def test_profiler_buckets_by_qualname():
    sim = Simulator()
    profiler = RunProfiler().attach(sim)

    def alpha():
        pass

    def beta():
        pass

    for _ in range(3):
        sim.schedule(1, alpha)
    sim.schedule(2, beta)
    sim.run()
    stats = dict(profiler.top_callbacks())
    assert stats[alpha.__qualname__].count == 3
    assert stats[beta.__qualname__].count == 1
    assert stats[alpha.__qualname__].max_s >= 0.0
    assert stats[alpha.__qualname__].mean_us >= 0.0


def test_profiler_cancelled_ratio_and_summary():
    sim = Simulator()
    profiler = RunProfiler().attach(sim)
    events = [sim.schedule(i + 1, lambda: None) for i in range(4)]
    sim.cancel(events[0])
    sim.run()
    summary = profiler.summary()
    assert summary["events"] == 3
    assert summary["events_scheduled"] == 4
    assert summary["events_cancelled"] == 1
    assert profiler.cancelled_ratio == pytest.approx(0.25)
    assert summary["sim_time_ns"] == sim.now
    profiler.detach()
    assert sim.profiler is None


def test_profiler_untraced_sim_unaffected():
    # No profiler attached: the loop must not try to call one.
    sim = Simulator()
    sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_executed == 1


# -- record schema -----------------------------------------------------------

def test_normalize_threshold_records():
    baseline = normalize(TOPIC_THRESHOLD_CHANGE, dict(
        port="p0", time=0, victim=-1, gainer=-1, size=0,
        thresholds=(10, 10), satisfaction=(5, 5)))
    assert baseline["detail"] == "init"
    assert baseline["queue"] is None
    assert baseline["threshold"] == [10, 10]
    assert baseline["satisfaction"] == [5, 5]

    steal = normalize(TOPIC_VICTIM_STEAL, dict(
        port="p0", time=7, victim=2, gainer=0, size=MTU))
    assert steal["detail"] == f"q0 took {MTU}B from q2"
    assert steal["queue"] == 0
    assert validate_record(steal) == []


def test_validate_record_rejects_bad_shapes():
    good = normalize(TOPIC_PACKET_DROP, dict(
        port="p", time=3, packet=make_packet(), queue=1, detail="full",
        queue_bytes=(0, MTU)))
    assert validate_record(good) == []

    assert validate_record("not a dict")
    assert any("missing field" in e for e in validate_record({}))
    bad_topic = dict(good, topic="packet.dorp")
    assert any("unknown topic" in e for e in validate_record(bad_topic))
    bad_time = dict(good, time_ns="late")
    assert any("time_ns" in e for e in validate_record(bad_time))
    extra = dict(good, surprise=1)
    assert any("unknown fields" in e for e in validate_record(extra))


def test_validate_trace_file_flags_problems(tmp_path):
    path = tmp_path / "bad.jsonl"
    good = normalize(TOPIC_PACKET_DROP, dict(
        port="p", time=3, packet=make_packet(), queue=1, detail="full",
        queue_bytes=(0,)))
    path.write_text(json.dumps(good) + "\n"
                    + "{not json\n"
                    + json.dumps(dict(good, topic="bogus")) + "\n")
    count, errors = validate_trace_file(path)
    assert count == 3
    assert len(errors) == 2
    assert "invalid JSON" in errors[0]
    assert "unknown topic" in errors[1]


def test_validate_trace_file_error_cap_is_exact(tmp_path):
    # One empty record yields many "missing field" problems at once; the
    # cap must stop mid-record, never overshoot.
    path = tmp_path / "very_bad.jsonl"
    path.write_text("{}\n" * 5)
    count, errors = validate_trace_file(path, max_errors=3)
    assert count == 1  # stops at the line that hit the cap
    assert len(errors) == 4  # exactly max_errors + the truncation marker
    assert all("missing field" in e for e in errors[:3])
    assert errors[3] == "... (stopping after 3 problems)"


def test_required_topic_fields_enforced():
    job = normalize(TOPIC_PARALLEL_JOB, dict(
        port="executor", time=1, detail="done fct[dynaq@0.5]"))
    assert validate_record(job) == []
    blank = dict(job, detail="")
    assert any("non-empty 'detail'" in e for e in validate_record(blank))

    reconf = normalize(TOPIC_DYNAQ_RECONFIGURE, dict(
        port="p0", time=2, thresholds=(10, 10), satisfaction=(4, 4)))
    assert validate_record(reconf) == []
    for missing in ("threshold", "satisfaction"):
        broken = dict(reconf, **{missing: None})
        assert any(f"non-empty {missing!r}" in e
                   for e in validate_record(broken))


def test_normalize_snapshot_lifecycle_record():
    record = normalize(TOPIC_SNAPSHOT_LIFECYCLE, dict(
        port="world", time=9, detail="save", path="/tmp/x.snap", saves=2))
    assert record["path"] == "/tmp/x.snap"
    assert record["saves"] == 2
    assert validate_record(record) == []
    pathless = dict(record, path="")
    assert any("non-empty 'path'" in e for e in validate_record(pathless))


def test_normalize_queue_snapshot_record():
    record = normalize(TOPIC_QUEUE_SNAPSHOT, dict(
        port="p0", time=5, queue=1, detail="threshold-cross",
        occupancy=900, limit=800, composition={3: 600, 4: 300}))
    # Flow-id keys are stringified so the record JSON-roundtrips exactly.
    assert record["composition"] == {"3": 600, "4": 300}
    assert record["occupancy"] == 900
    assert record["limit"] == 800
    assert validate_record(record) == []
    bad = dict(record, composition={3: 600})
    assert any("composition" in e for e in validate_record(bad))
    missing = dict(record, queue=None)
    assert any("non-empty 'queue'" in e for e in validate_record(missing))


def test_default_topics_exclude_snapshot_lifecycle():
    # Lifecycle events depend on snapshot paths/cadence, which differ
    # between a kill/restore pair and an uninterrupted run, so the
    # recorder only captures them on explicit opt-in.
    assert TOPIC_SNAPSHOT_LIFECYCLE in ALL_TOPICS
    assert TOPIC_SNAPSHOT_LIFECYCLE not in DEFAULT_TOPICS
    assert set(DEFAULT_TOPICS) == set(ALL_TOPICS) - {TOPIC_SNAPSHOT_LIFECYCLE}
    assert set(REQUIRED_TOPIC_FIELDS) <= set(ALL_TOPICS)


# -- TelemetrySession --------------------------------------------------------

def test_session_inert_without_flags():
    session = TelemetrySession()
    assert not session.active
    assert not session.trace.has_subscribers(TOPIC_PACKET_DROP)
    session.close()


def test_session_wires_collectors(tmp_path):
    session = TelemetrySession(trace_out=tmp_path / "t.jsonl",
                               flight_dump=tmp_path / "f.jsonl",
                               timeline=True)
    assert session.active
    assert session.recorder is not None
    assert session.flight is not None
    assert session.timeline is not None
    with session:
        sim = Simulator()
        port = dynaq_port(sim, session.trace)
        flood(sim, port, packets=10)
    assert session.recorder.records_written > 0
    assert (tmp_path / "t.jsonl").exists()
    session.close()  # idempotent


def test_session_dumps_flight_on_simulation_error(tmp_path):
    path = tmp_path / "f.jsonl"
    with pytest.raises(SimulationError):
        with TelemetrySession(flight_dump=path) as session:
            drop(session.trace, time=1)
            raise SimulationError("boom")
    lines = [json.loads(line) for line in path.open()]
    assert lines[0]["detail"] == ANOMALY_SIMULATION_ERROR
    assert len(lines) == 2


def test_all_topics_cover_port_and_dynaq():
    assert TOPIC_THRESHOLD_CHANGE in ALL_TOPICS
    assert TOPIC_VICTIM_STEAL in ALL_TOPICS
    assert TOPIC_PACKET_DROP in ALL_TOPICS
