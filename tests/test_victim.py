"""Unit tests for victim-queue selection (linear argmax vs tournament)."""

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.core.victim import (
    linear_victim,
    max_idx,
    tournament_depth,
    tournament_victim,
)


def test_linear_picks_largest():
    assert linear_victim([1, 9, 3, 4]) == 1


def test_linear_excludes_arriving_queue():
    assert linear_victim([1, 9, 3, 4], exclude=1) == 3


def test_linear_tie_breaks_to_lowest_index():
    assert linear_victim([5, 7, 7, 2]) == 1


def test_linear_handles_negative_extras():
    # Extra buffer can be negative (T_i < S_i); largest still wins.
    assert linear_victim([-10, -3, -7]) == 1


def test_linear_all_negative_with_exclusion():
    # Regression: a best-value sentinel of 0 would return None here
    # because no candidate beats 0; the true argmax is index 2.
    assert linear_victim([-5, -9, -1, -4], exclude=3) == 2


def test_linear_mixed_sign_prefers_positive():
    assert linear_victim([-2, 0, 3, -8]) == 2
    # And with the positive queue excluded, zero beats the negatives.
    assert linear_victim([-2, 0, 3, -8], exclude=2) == 1


def test_all_implementations_agree_on_all_negative():
    extra = [-7, -1, -4, -1]
    for exclude in [None, 0, 1, 2, 3]:
        expected = linear_victim(extra, exclude)
        assert tournament_victim(extra, exclude) == expected


def test_linear_single_queue_excluded_returns_none():
    assert linear_victim([5], exclude=0) is None


def test_max_idx_prefers_left_on_tie():
    assert max_idx([3, 3], 0, 1) == 0
    assert max_idx([3, 4], 0, 1) == 1


def test_tournament_matches_paper_example():
    # 4 queues: MaxIdx(MaxIdx(0,1), MaxIdx(2,3)).
    extra = [10, 40, 30, 20]
    assert tournament_victim(extra) == 1


def test_tournament_excludes():
    assert tournament_victim([10, 40, 30, 20], exclude=1) == 2


def test_tournament_odd_number_of_queues():
    assert tournament_victim([1, 2, 9]) == 2


def test_tournament_all_excluded_returns_none():
    assert tournament_victim([5], exclude=0) is None


def test_exhaustive_equivalence_small():
    """Linear and tournament agree on every 4-queue permutation."""
    for extra in itertools.permutations([1, 2, 3, 4]):
        for exclude in [None, 0, 1, 2, 3]:
            assert (linear_victim(list(extra), exclude)
                    == tournament_victim(list(extra), exclude))


def test_exhaustive_equivalence_with_ties():
    for extra in itertools.product([0, 1, 2], repeat=4):
        for exclude in [None, 0, 3]:
            assert (linear_victim(list(extra), exclude)
                    == tournament_victim(list(extra), exclude))


@given(st.lists(st.integers(min_value=-10**6, max_value=10**6),
                min_size=1, max_size=16),
       st.integers(min_value=0, max_value=15))
def test_property_equivalence(extra, exclude_raw):
    exclude = exclude_raw if exclude_raw < len(extra) else None
    assert (linear_victim(extra, exclude)
            == tournament_victim(extra, exclude))


def test_tournament_depth_values():
    assert tournament_depth(1) == 0
    assert tournament_depth(2) == 1
    assert tournament_depth(4) == 2
    assert tournament_depth(8) == 3  # the paper's "log 8 = 3 cycles"
    assert tournament_depth(5) == 3
