"""Differential tests: fast path == reference path, bit for bit.

Three layers of evidence that the perf layer (``repro.perf``) changes
*speed* and nothing else:

1. the three victim-search implementations (linear argmax, hardware
   tournament, incremental top-2 tracker) agree on every update/query
   interleaving hypothesis can invent, ties and exclusions included;
2. a fig05-style end-to-end run produces a **sha256-identical** JSONL
   trace under ``reference_mode()`` and ``fast_mode()`` — every drop,
   enqueue, dequeue, threshold steal at the same simulated nanosecond
   with the same payload;
3. the throughput meter's batched-counter backend emits the same sample
   series as the per-packet subscriber backend, and the bench suite's
   operation counters agree across modes by construction
   (``run_suite`` raises ``BenchError`` otherwise — exercised here on a
   tiny scale).
"""

import hashlib
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.victim import (
    IncrementalVictim,
    linear_victim,
    tournament_victim,
)
from repro.experiments.testbed import run_fair_sharing
from repro.metrics.throughput import PortThroughputMeter
from repro.perf.bench import run_suite
from repro.perf.config import fast_mode, reference_mode
from repro.sim.trace import TraceBus
from repro.telemetry import JsonlSink, TraceRecorder

# -- 1. victim-search equivalence under point updates -------------------------

values_strategy = st.integers(min_value=-(10 ** 6), max_value=10 ** 6)


@given(st.lists(values_strategy, min_size=1, max_size=12),
       st.lists(st.tuples(st.integers(min_value=0, max_value=11),
                          values_strategy),
                max_size=40),
       st.integers(min_value=0, max_value=12))
def test_incremental_tracks_linear_and_tournament(initial, updates,
                                                  exclude_raw):
    """The tracker equals both searches after every point update."""
    tracker = IncrementalVictim(initial)
    vector = list(initial)
    exclude = exclude_raw if exclude_raw < len(vector) else None

    def check():
        expected = linear_victim(vector, exclude)
        assert tracker.query(exclude) == expected
        assert tournament_victim(vector, exclude) == expected
        # And with no exclusion, for good measure.
        assert tracker.query(None) == linear_victim(vector, None)

    check()
    for index_raw, value in updates:
        index = index_raw % len(vector)
        vector[index] = value
        tracker.update(index, value)
        check()


@given(st.integers(min_value=1, max_value=8), st.data())
def test_incremental_with_heavy_ties(size, data):
    """All-equal and near-equal vectors stress the tie-breaking order."""
    tracker = IncrementalVictim([0] * size)
    vector = [0] * size
    for _ in range(20):
        index = data.draw(st.integers(min_value=0, max_value=size - 1))
        value = data.draw(st.integers(min_value=-2, max_value=2))
        vector[index] = value
        tracker.update(index, value)
        for exclude in [None] + list(range(size)):
            assert tracker.query(exclude) == linear_victim(vector, exclude)


def test_incremental_reset_resyncs():
    tracker = IncrementalVictim([5, 1, 3])
    assert tracker.query() == 0
    tracker.reset([1, 9, 2, 9])
    assert tracker.query() == 1          # tie breaks to lower index
    assert tracker.query(exclude=1) == 3
    assert tracker.as_list() == [1, 9, 2, 9]


def test_incremental_single_queue():
    tracker = IncrementalVictim([7])
    assert tracker.query(exclude=0) is None
    tracker.update(0, -3)
    assert tracker.query() == 0


# -- 2. golden-trace hash: reference vs fast end to end -----------------------


def _traced_fig05_run(tmp_path: Path, label: str) -> str:
    """Small fig. 5 run with a full trace recording; returns sha256."""
    out = tmp_path / f"{label}.jsonl"
    trace = TraceBus()
    with TraceRecorder(trace, JsonlSink(out)):
        run_fair_sharing("dynaq", time_unit_s=0.02,
                         sample_interval_s=0.01, trace=trace)
    return hashlib.sha256(out.read_bytes()).hexdigest()


def test_golden_trace_hash_reference_equals_fast(tmp_path):
    """The optimised datapath must leave no fingerprint in the trace."""
    with reference_mode():
        reference_hash = _traced_fig05_run(tmp_path, "reference")
    with fast_mode():
        fast_hash = _traced_fig05_run(tmp_path, "fast")
    assert reference_hash == fast_hash


def test_golden_trace_hash_across_scheduler_and_advance(
        tmp_path, monkeypatch):
    """The engine-level switches compose without a trace fingerprint:
    (heap, calendar) x (per-packet, batched) all produce the identical
    sha256.  A low ``REPRO_CALENDAR_WARMUP`` forces the calendar to
    engage even on this small run."""
    from repro.perf.config import PerfConfig, use_config

    monkeypatch.setenv("REPRO_CALENDAR_WARMUP", "8")
    hashes = {}
    for calendar in (False, True):
        for batched in (False, True):
            config = PerfConfig(calendar_queue=calendar,
                                batched_link_advance=batched)
            with use_config(config):
                hashes[(calendar, batched)] = _traced_fig05_run(
                    tmp_path, f"cal{calendar}-batch{batched}")
    assert len(set(hashes.values())) == 1, hashes


# -- 3. meter backends and bench counters -------------------------------------


def _metered_run(batched: bool):
    from repro.perf.bench import _replay

    # The meter compares its two backends inside one config, so pin the
    # backend explicitly and reuse the bench replay machinery.
    import repro.perf.bench as bench_mod
    from repro.net.packet import Packet
    from repro.net.port import EgressPort
    from repro.queueing.schedulers.drr import DRRScheduler
    from repro.sim.engine import Simulator
    from repro.experiments.runner import buffer_factory

    sim = Simulator()
    trace = TraceBus()
    port = EgressPort(
        sim, "m->sink", rate_bps=10 ** 9, prop_delay_ns=5000,
        buffer_bytes=85_000,
        scheduler=DRRScheduler([1500.0] * 4),
        buffer_manager=buffer_factory("dynaq", rtt_ns=500_000)(),
        trace=trace)

    class Sink:
        def receive(self, packet):
            pass

    port.connect(Sink())
    meter = PortThroughputMeter(sim, port, 200_000, batched=batched)
    for i in range(400):
        sim.at((i + 1) * 7_500, port.send,
               Packet(i, "m", "sink", 1500, service_class=i % 4))
    sim.run(until=5_000_000)
    return [(s.time_ns, s.per_queue_bps) for s in meter.samples]


def test_meter_backends_sample_identically():
    assert _metered_run(batched=True) == _metered_run(batched=False)


def test_bench_suite_op_counters_agree_across_modes():
    """A tiny full-suite run: ``run_suite`` itself asserts ref == fast
    per bench (raising BenchError on drift), so completing is the test."""
    report = run_suite(quick=True, scale=0.1, repeats=1)
    assert len(report["benches"]) == 9
    for bench in report["benches"]:
        assert bench["ops_equal"]
        assert bench["reference"]["ops"] == bench["fast"]["ops"]
