"""Tests for the QJump related-work comparator."""

import pytest

from repro.extras.qjump import QJumpConfig, QJumpPacer, install_qjump
from repro.net.topology import build_star
from repro.queueing.besteffort import BestEffortBuffer
from repro.queueing.schedulers.spq import SPQScheduler
from repro.sim.errors import ConfigurationError
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.transport.tcp import TCPSender


def qjump_net(factors=(16.0, 4.0, 1.0)):
    net = build_star(
        num_hosts=4, rate_bps=gbps(1), rtt_ns=microseconds(500),
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: SPQScheduler(len(factors)),
        buffer_factory=BestEffortBuffer)
    config = QJumpConfig(factors)
    pacers = install_qjump(net.hosts.values(), config)
    return net, pacers


def start_flow(net, flow_id, src, size, level):
    flow = Flow(flow_id=flow_id, src=src, dst="h0", size=size,
                service_class=level)
    sender = TCPSender(net.sim, net.host(src), flow)
    net.host(src).register_sender(sender)
    sender.start()
    return sender


def test_config_validation():
    with pytest.raises(ConfigurationError):
        QJumpConfig([])
    with pytest.raises(ConfigurationError):
        QJumpConfig([0.5])


def test_install_requires_nic():
    from repro.net.host import Host
    from repro.sim.engine import Simulator
    host = Host(Simulator(), "x")
    with pytest.raises(ConfigurationError):
        install_qjump([host], QJumpConfig([1.0]))


def test_top_level_is_rate_limited():
    """A level-0 bulk transfer is throttled to C/f0 — the QJump trade."""
    net, pacers = qjump_net(factors=(10.0, 1.0))
    sender = start_flow(net, 1, "h1", 1_000_000, level=0)
    net.sim.run(until=seconds(0.5))
    assert sender.complete
    # 1 MB at 100 Mbps is 80 ms (plus pacing granularity); far slower
    # than the 8 ms an unpaced 1 Gbps transfer would take.
    assert sender.fct_ns() > seconds(0.05)
    assert pacers["h1"].delayed_packets > 0


def test_bottom_level_is_unrestricted():
    net, pacers = qjump_net(factors=(10.0, 1.0))
    sender = start_flow(net, 1, "h1", 1_000_000, level=1)
    net.sim.run(until=seconds(0.5))
    assert sender.complete
    # Line-rate pacing only (f=1): slow start + 8 ms of wire time, far
    # below the ~80 ms a level-0 transfer needs at C/10.
    assert sender.fct_ns() < seconds(0.03)


def test_paced_packets_are_delayed_not_dropped():
    net, pacers = qjump_net(factors=(50.0, 1.0))
    sender = start_flow(net, 1, "h1", 200_000, level=0)
    net.sim.run(until=seconds(2))
    assert sender.complete
    assert sender.retransmissions == 0  # pacing never loses packets
    receiver = net.host("h0").receivers[1]
    assert receiver.next_expected == 200_000


def test_high_level_latency_immune_to_bulk():
    """The QJump promise: level-0 mice see ~no queueing from level-1
    elephants, because SPQ + source pacing bound the queue ahead."""
    net, _ = qjump_net(factors=(16.0, 1.0))
    start_flow(net, 1, "h1", 50_000_000, level=1)  # bulk elephant
    net.sim.run(until=seconds(0.05))               # let it fill the port
    mouse = start_flow(net, 2, "h2", 3_000, level=0)
    net.sim.run(until=seconds(1))
    assert mouse.complete
    # ~1 RTT + pacing of 3 packets at C/16 (~0.6 ms) — but no RTO and no
    # multi-ms queueing behind the elephant.
    assert mouse.fct_ns() < seconds(0.005)


def test_acks_bypass_pacing():
    net, pacers = qjump_net(factors=(50.0, 1.0))
    sender = start_flow(net, 1, "h1", 30_000, level=0)
    net.sim.run(until=seconds(2))
    assert sender.complete
    # h0 sent ACKs for every data packet but its pacer delayed none.
    assert pacers["h0"].delayed_packets == 0
