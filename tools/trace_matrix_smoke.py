#!/usr/bin/env python
"""Trace-identity gate for the engine-level perf switches.

Runs the fig. 5 fair-sharing workload with a full JSONL trace under all
four (event scheduler x link advance) combinations —
(heap, calendar) x (per-packet, batched) — and requires one sha256
across the lot.  The calendar warmup is forced low so the calendar
actually engages on this small run (it normally waits for event
density); see docs/performance.md.

Exit code: 0 when all four hashes match, 1 on any divergence.  Used by
the ``bench-smoke`` CI job.
"""

import argparse
import hashlib
import itertools
import os
import sys
from pathlib import Path

# Engage the calendar early on the smoke-sized run; must be set before
# repro.sim.engine is imported (the default is read at import time).
os.environ.setdefault("REPRO_CALENDAR_WARMUP", "64")

from repro.experiments.testbed import run_fair_sharing  # noqa: E402
from repro.perf.config import PerfConfig, use_config    # noqa: E402
from repro.sim.trace import TraceBus                    # noqa: E402
from repro.telemetry import JsonlSink, TraceRecorder    # noqa: E402


def traced_run(out: Path, *, calendar: bool, batched: bool,
               time_unit_s: float) -> str:
    config = PerfConfig(calendar_queue=calendar,
                        batched_link_advance=batched)
    with use_config(config):
        trace = TraceBus()
        with TraceRecorder(trace, JsonlSink(out)):
            run_fair_sharing("dynaq", time_unit_s=time_unit_s,
                             sample_interval_s=0.01, trace=trace)
    return hashlib.sha256(out.read_bytes()).hexdigest()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="trace-matrix",
                        help="directory for the four trace files")
    parser.add_argument("--time-unit", type=float, default=0.05,
                        help="fig. 5 time unit in seconds")
    args = parser.parse_args(argv)

    workdir = Path(args.workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    hashes = {}
    for calendar, batched in itertools.product((False, True), repeat=2):
        label = (f"{'calendar' if calendar else 'heap'}-"
                 f"{'batched' if batched else 'perpacket'}")
        out = workdir / f"fig05-{label}.jsonl"
        digest = traced_run(out, calendar=calendar, batched=batched,
                            time_unit_s=args.time_unit)
        hashes[label] = digest
        print(f"{label:24s} {digest}")
    if len(set(hashes.values())) != 1:
        print("FAIL: trace hash divergence across engine switches")
        return 1
    print("all four combinations sha256-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
