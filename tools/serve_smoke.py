#!/usr/bin/env python
"""Smoke-test the ``repro serve`` daemon end to end.

Drives the real CLI as subprocesses, the way an operator would:

1. start a daemon with ``--drill`` (a random live worker is SIGKILLed
   on a cadence) and mid-sim autosaves on;
2. submit a small fct grid through the unix socket;
3. wait for every job to finish despite the drill kills;
4. SIGTERM the daemon and require a clean drain: exit code 0 within
   the deadline, socket removed, trace file schema-valid.

Artifacts (daemon log, WAL, trace) are written to ``--workdir`` and
kept on failure so CI can upload them as a triage bundle.  Exit code:
0 pass, 1 fail.  Used by ``make serve-smoke`` and the ``serve-smoke``
CI job; the heavier exactly-once/byte-identity drills live in
``tests/test_serve.py``.
"""

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.serve import STATUS_OK, ServeClient, TERMINAL_STATUSES
from repro.telemetry import validate_trace_file

GRID = [{"scheme": scheme, "load": load, "num_flows": 30,
         "workload": "web_search", "truncate_mb": 1.0, "seed": 1}
        for scheme in ("dynaq", "besteffort") for load in (0.3, 0.5)]


def fail(message, log_path=None):
    print(f"serve-smoke: FAIL: {message}")
    if log_path and Path(log_path).exists():
        print(f"--- daemon log ({log_path}) ---")
        sys.stdout.write(Path(log_path).read_text())
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--workdir", default="serve-smoke-artifacts",
                        help="artifact directory (kept on failure)")
    parser.add_argument("--timeout", type=float, default=240.0,
                        help="overall deadline for the job grid")
    args = parser.parse_args()

    work = Path(args.workdir)
    work.mkdir(parents=True, exist_ok=True)
    sock = work / "serve.sock"
    wal = work / "serve.wal.jsonl"
    trace = work / "serve.trace.jsonl"
    log = work / "daemon.log"
    for path in (sock, wal, trace, log):
        path.unlink(missing_ok=True)
    for stale in (work / (wal.name + ".autosaves")).glob("*.snap"):
        stale.unlink()

    daemon_cmd = [
        sys.executable, "-m", "repro", "serve",
        "--socket", str(sock), "--wal", str(wal),
        "--jobs", "2", "--retries", "8",
        "--snapshot-every", "0.01",
        "--drill", "--drill-interval", "0.4", "--drill-seed", "7",
        "--heartbeat", "0.2", "--heartbeat-timeout", "10",
        "--backoff", "0.05", "--drain-timeout", "20",
        "--trace-out", str(trace),
    ]
    print("serve-smoke: starting daemon:", " ".join(daemon_cmd))
    with log.open("w") as log_handle:
        daemon = subprocess.Popen(daemon_cmd, stdout=log_handle,
                                  stderr=subprocess.STDOUT)
    try:
        deadline = time.monotonic() + 15.0
        while not sock.exists():
            if daemon.poll() is not None or time.monotonic() > deadline:
                return fail("daemon never opened its socket", log)
            time.sleep(0.1)

        client = ServeClient(str(sock))
        keys = []
        for params in GRID:
            response = client.submit("fct", params, seed=1,
                                     client="smoke")
            if response.get("status") != "accepted":
                return fail(f"submit refused: {response}", log)
            keys.append(response["key"])
        print(f"serve-smoke: submitted {len(keys)} fct jobs")

        outcomes = {}
        deadline = time.monotonic() + args.timeout
        while len(outcomes) < len(keys):
            if daemon.poll() is not None:
                return fail("daemon died mid-run", log)
            if time.monotonic() > deadline:
                return fail(f"jobs not finished after {args.timeout}s "
                            f"({len(outcomes)}/{len(keys)})", log)
            for key in keys:
                if key in outcomes:
                    continue
                response = client.result(key)
                if response.get("status") in TERMINAL_STATUSES:
                    outcomes[key] = response
                    print(f"serve-smoke: {key} -> "
                          f"{response['status']}"
                          f"[{response.get('attempts')}]")
            time.sleep(0.5)

        bad = [key for key, response in outcomes.items()
               if response.get("status") != STATUS_OK]
        if bad:
            return fail(f"jobs did not succeed: {bad}", log)

        log_text = log.read_text()
        if "drill" not in log_text:
            return fail("the drill never killed a worker; the smoke "
                        "proved nothing", log)
        migrations = log_text.count("migrated[") + log_text.count(
            "retried[")
        print(f"serve-smoke: drill kills survived, "
              f"{migrations} relaunch(es)")

        print("serve-smoke: SIGTERM, expecting a clean drain")
        daemon.send_signal(signal.SIGTERM)
        try:
            code = daemon.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            return fail("daemon did not drain within 30s", log)
        if code != 0:
            return fail(f"drain exited {code}, want 0", log)
        if sock.exists():
            return fail("socket not removed after drain", log)

        count, errors = validate_trace_file(trace)
        if errors:
            return fail(f"trace schema errors: {errors[:3]}", log)
        print(f"serve-smoke: trace valid ({count} records)")
        print("serve-smoke: PASS")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
