# Developer entry points.  Everything runs offline with the stdlib
# toolchain; PYTHONPATH=src replaces an editable install.

PY := PYTHONPATH=src python

.PHONY: test bench bench-quick perf-tier figures chaos

test:            ## tier-1 suite (must always be green)
	$(PY) -m pytest -x -q

bench:           ## full microbenchmark suite -> BENCH_<date>.json
	$(PY) -m repro bench

bench-quick:     ## CI smoke: quick suite vs the committed baseline
	$(PY) -m repro bench --quick \
	    --baseline benchmarks/perf/baseline.json --budget 0.25

perf-tier:       ## opt-in perf regression tier (ops + speedup floors)
	$(PY) -m pytest -q benchmarks/perf/

figures:         ## regenerate the paper-figure benchmarks
	$(PY) -m pytest -q benchmarks/ --ignore=benchmarks/perf

chaos:           ## fault-injection smoke (sum(T) == B under link flaps)
	$(PY) -m repro chaos --faults examples/linkflap.json \
	    --scheme dynaq --wall-budget 600
