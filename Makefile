# Developer entry points.  Everything runs offline with the stdlib
# toolchain; PYTHONPATH=src replaces an editable install.

PY := PYTHONPATH=src python

.PHONY: test bench bench-quick perf-tier figures chaos sweep-smoke snapshot-smoke diagnose-smoke serve-smoke competitive-smoke soak-smoke

test:            ## tier-1 suite (must always be green)
	$(PY) -m pytest -x -q

bench:           ## full microbenchmark suite -> BENCH_<date>.json
	$(PY) -m repro bench

bench-quick:     ## CI smoke: quick suite vs the committed baseline
	$(PY) -m repro bench --quick \
	    --baseline benchmarks/perf/baseline.json --budget 0.25

perf-tier:       ## opt-in perf regression tier (ops + speedup floors)
	$(PY) -m pytest -q benchmarks/perf/

figures:         ## regenerate the paper-figure benchmarks
	$(PY) -m pytest -q benchmarks/ --ignore=benchmarks/perf

chaos:           ## fault-injection smoke (sum(T) == B under link flaps)
	$(PY) -m repro chaos --faults examples/linkflap.json \
	    --scheme dynaq --wall-budget 600

sweep-smoke:     ## parallel-executor determinism: serial == --jobs 2 == --resume
	$(PY) -m repro fct --schemes dynaq,pql --loads 0.3 --flows 60 \
	    > /tmp/repro-sweep-serial.out
	$(PY) -m repro fct --schemes dynaq,pql --loads 0.3 --flows 60 \
	    --jobs 2 > /tmp/repro-sweep-parallel.out
	$(PY) -m repro fct --schemes dynaq,pql --loads 0.3 --flows 60 \
	    --jobs 2 --resume > /tmp/repro-sweep-resumed.out
	diff /tmp/repro-sweep-serial.out /tmp/repro-sweep-parallel.out
	diff /tmp/repro-sweep-parallel.out /tmp/repro-sweep-resumed.out
	rm -f repro-fct.checkpoint.jsonl
	@echo "sweep-smoke: serial, parallel, and resumed output identical"

snapshot-smoke:  ## kill a run at an autosave, restore, require identical trace bytes
	$(PY) -m repro fair-sharing --schemes dynaq --time-unit 0.03 \
	    --trace-out /tmp/repro-snap-full.jsonl \
	    --snapshot-every 0.01 --snapshot-out /tmp/repro-snap-ref.snap
	$(PY) -m repro fair-sharing --schemes dynaq --time-unit 0.03 \
	    --trace-out /tmp/repro-snap-killed.jsonl \
	    --snapshot-every 0.01 --snapshot-out /tmp/repro-snap.snap \
	    --snapshot-kill-after 2; test $$? -eq 3
	$(PY) -m repro fair-sharing --schemes dynaq --time-unit 0.03 \
	    --restore /tmp/repro-snap.snap
	cmp /tmp/repro-snap-full.jsonl /tmp/repro-snap-killed.jsonl
	rm -f /tmp/repro-snap-full.jsonl /tmp/repro-snap-killed.jsonl \
	    /tmp/repro-snap-ref.snap /tmp/repro-snap.snap
	@echo "snapshot-smoke: killed+restored trace is byte-identical"

competitive-smoke: ## adversarial ratio grid; fails if LQD exceeds 1.5
	$(PY) -m repro competitive --buffer-sizes 16,32 --rounds 2 \
	    --out /tmp/repro-competitive.json
	$(PY) -m repro competitive --buffer-sizes 16,32 --rounds 2 \
	    --out /tmp/repro-competitive-par.json --jobs 2
	cmp /tmp/repro-competitive.json /tmp/repro-competitive-par.json
	rm -f /tmp/repro-competitive.json /tmp/repro-competitive-par.json \
	    repro-competitive.checkpoint.jsonl
	@echo "competitive-smoke: LQD within 1.5, serial == --jobs 2"

soak-smoke:      ## chaos soak: clean run exits 0; --drill must minimize to a bundle
	$(PY) -m repro soak --seed 1 --iterations 6 --jobs 2 \
	    --out /tmp/repro-soak-verdicts.jsonl
	$(PY) -m repro soak --seed 1 --iterations 2 --drill \
	    --triage-dir /tmp/repro-soak-triage; test $$? -eq 1
	test -n "$$(ls -d /tmp/repro-soak-triage/bundle-*/)"
	$(PY) -m repro soak \
	    --replay /tmp/repro-soak-triage/bundle-*/minimal.json; \
	    test $$? -eq 1
	rm -rf /tmp/repro-soak-triage /tmp/repro-soak-verdicts.jsonl \
	    repro-soak.checkpoint.jsonl
	@echo "soak-smoke: clean soak green, drill minimized and replayed"

serve-smoke:     ## daemon under drill kills: jobs finish, SIGTERM drains clean
	$(PY) tools/serve_smoke.py --workdir serve-smoke-artifacts
	rm -rf serve-smoke-artifacts

diagnose-smoke:  ## capture queue-diagnosis sketches, query them, gate the overhead
	$(PY) -m repro fair-sharing --schemes dynaq --time-unit 0.03 \
	    --diagnose-out /tmp/repro-diag.json
	$(PY) -m repro diagnose /tmp/repro-diag.json
	$(PY) -m repro diagnose /tmp/repro-diag.json \
	    --port 's0->h0' --window 0:10000000
	rm -f /tmp/repro-diag.json
	$(PY) -m repro bench --quick \
	    --baseline benchmarks/perf/baseline.json --budget 0.25
	@echo "diagnose-smoke: sketch capture, query, and overhead gate all green"
