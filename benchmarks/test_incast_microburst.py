"""Incast microbursts — the BarberQ discussion of §II-C, quantified.

16 workers answer an aggregation query simultaneously into one loaded
1 GbE port (elephants occupy the DRR queues; responses ride the SPQ
queue).  The metric that matters is *query completion time* (QCT): the
slowest worker's FCT, i.e. how long the aggregator stalls.

Expected shapes:
* BestEffort — the loaded port has no room for the burst; many workers
  pay RTOs and QCT explodes;
* plain DynaQ — much better, but its threshold exchange cannot reclaim
  buffer that elephants already occupy, so some burst packets still find
  the port physically full (see EXPERIMENTS.md note 3);
* PQL — the SPQ queue's reserved quota shields the burst;
* DynaQ-Evict (our extension) — evicts the over-threshold elephants'
  tails and matches or beats PQL while keeping DynaQ's work conservation.
"""

from repro.experiments.incast import incast_sweep

from conftest import run_once, scaled

SCHEMES = ["besteffort", "pql", "dynaq", "dynaq-evict"]
WORKER_COUNTS = [8, 16]
HORIZON_S = scaled(2.5, minimum=2.5)


def run_all():
    return incast_sweep(SCHEMES, WORKER_COUNTS, horizon_s=HORIZON_S)


def test_incast_microburst(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print("Incast query-completion time (ms), loaded port")
    print("scheme".ljust(14) + "".join(
        f"{count} workers".rjust(13) for count in WORKER_COUNTS)
        + "timeouts".rjust(10))
    for name in SCHEMES:
        row = results[name]
        line = row[0].scheme.ljust(14)
        for result in row:
            value = (f"{result.query_completion_ms:.1f}"
                     if result.query_completion_ms is not None else "-")
            line += value.rjust(13)
        line += str(sum(result.timeouts for result in row)).rjust(10)
        print(line)

    for name in SCHEMES:
        for result in results[name]:
            assert result.all_completed, f"{name} lost workers"

    heavy = {name: results[name][-1] for name in SCHEMES}
    # BestEffort QCT is the catastrophe case.
    assert (heavy["besteffort"].query_completion_ms
            > 2 * heavy["dynaq"].query_completion_ms)
    # The eviction extension repairs DynaQ's full-port corner.
    assert (heavy["dynaq-evict"].query_completion_ms
            < heavy["dynaq"].query_completion_ms)
    assert (heavy["dynaq-evict"].timeouts <= heavy["dynaq"].timeouts)
