"""Fig. 3 — throughput convergence of two active DRR queues.

Queue 1 has 2 flows, queue 2 has 16; equal DRR quanta.  The paper's
finding: DynaQ is the only scheme whose two queues converge to the fair
0.5/0.5 Gbps split; BestEffort diverges badly; PQL sits in between.
"""

from repro.experiments.report import timeseries_table
from repro.experiments.testbed import run_convergence
from repro.sim.units import seconds

from conftest import run_once, scaled

DURATION_S = scaled(0.6)
SCHEMES = ["dynaq", "besteffort", "pql"]


def run_all():
    return [run_convergence(name, duration_s=DURATION_S,
                            sample_interval_s=DURATION_S / 10)
            for name in SCHEMES]


def unfairness(result):
    warmup = seconds(DURATION_S * 0.25)
    q1 = result.mean_rate_bps(0, start_ns=warmup)
    q2 = result.mean_rate_bps(1, start_ns=warmup)
    return abs(q1 - q2) / max(q1 + q2, 1.0)


def test_fig03_convergence(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(timeseries_table(results, title="Fig.3 throughput convergence "
                                          "(2 vs 16 flows)", queues=[0, 1]))
    by_name = dict(zip(SCHEMES, results))
    # DynaQ is near-perfectly fair; BestEffort is far off; DynaQ beats
    # BestEffort and is at least as fair as PQL (up to noise).
    assert unfairness(by_name["dynaq"]) < 0.15
    assert unfairness(by_name["besteffort"]) > 0.4
    assert unfairness(by_name["dynaq"]) < unfairness(by_name["besteffort"])
    # Everyone keeps the link busy in this all-active scenario.
    for result in results:
        assert result.mean_aggregate_bps() > 0.9e9
