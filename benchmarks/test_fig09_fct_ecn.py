"""Fig. 9 — FCT vs ECN-based schemes (TCN, PMSB, Per-Queue ECN).

The ECN schemes run with DCTCP end hosts (they require ECN transports —
the very dependency the paper attacks); DynaQ runs with plain TCP.
MQ-ECN is absent for the same reason as in the paper: its round-based
threshold is undefined under the SPQ scheduler of this experiment.

Paper shapes: mixed results for overall/large flows with DynaQ generally
ahead at mid/high loads; Per-Queue ECN is the worst of the ECN schemes
(its per-queue thresholds are tiny); all schemes complete their flows.
"""

from repro.experiments.report import fct_absolute_table, fct_matrix
from repro.experiments.testbed import fct_load_sweep
from repro.workloads.datasets import WEB_SEARCH

from conftest import run_once, scaled_flows

SCHEMES = ["dynaq", "tcn", "pmsb", "perqueue-ecn"]
LOADS = [0.3, 0.5, 0.7]
NUM_FLOWS = scaled_flows(220)
DISTRIBUTION = WEB_SEARCH.truncated(12_000_000)


def run_sweep():
    return fct_load_sweep(
        SCHEMES, LOADS, num_flows=NUM_FLOWS,
        distribution=DISTRIBUTION, seed=42, drain_timeout_s=30.0)


def test_fig09_fct_ecn(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    for metric, label in [
            ("avg_overall_ms", "avg FCT, overall flows"),
            ("avg_large_ms", "avg FCT, large flows (>10MB)"),
            ("avg_small_ms", "avg FCT, small flows (<=100KB)"),
            ("p99_small_ms", "99th-pct FCT, small flows")]:
        print(fct_matrix(results, metric=metric,
                         title=f"Fig.9 {label} (normalised to DynaQ)"))
        print()
    print(fct_absolute_table(results, title="Fig.9 absolute FCTs (ms)"))

    for scheme_results in results.values():
        for result in scheme_results:
            assert result.outstanding == 0
            # SPQ acceleration holds for every scheme.
            assert (result.summary["avg_small_ms"]
                    < result.summary["avg_overall_ms"])

    # Shape 1 (the paper's headline): DynaQ beats every ECN scheme for
    # small flows, average and 99th percentile, at every load — and the
    # tail gap is largest at LOW load (paper: 12.23x/12.63x vs PMSB /
    # Per-Queue ECN at 30 %; we see the same blow-up).
    for row in range(len(LOADS)):
        small_avg = {name: results[name][row].summary["avg_small_ms"]
                     for name in SCHEMES}
        small_p99 = {name: results[name][row].summary["p99_small_ms"]
                     for name in SCHEMES}
        assert small_avg["dynaq"] == min(small_avg.values())
        assert small_p99["dynaq"] == min(small_p99.values())
    low_load_gap = (results["perqueue-ecn"][0].summary["p99_small_ms"]
                    / results["dynaq"][0].summary["p99_small_ms"])
    assert low_load_gap > 3.0

    # Shape 2: overall results are mixed (paper: 0.74x-1.99x); DynaQ
    # stays within a small factor of the best scheme at every load.
    for row in range(len(LOADS)):
        overall = {name: results[name][row].summary["avg_overall_ms"]
                   for name in SCHEMES}
        assert overall["dynaq"] < 2.5 * min(overall.values())
