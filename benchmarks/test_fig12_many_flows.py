"""Fig. 12 — robustness to traffic dynamics: exponentially many flows.

The paper's extreme case at 100 Gbps: queue k has 2^(3+k) single-flow
senders (16..2048, 4080 flows total).  The bench scales the exponent down
(2^(k+1): 4..512 senders, 1020 flows at REPRO_BENCH_SCALE>=4) while
keeping the exponential fan-in shape that stresses buffer admission.

Paper shapes: DynaQ stays robust (high fairness, full utilisation);
BestEffort's fairness collapses while the flow-heavy queues dominate;
PQL still fails work conservation at the tail.
"""

from repro.experiments.report import fairness_table
from repro.experiments.simulation import SIM_100G, run_static_sim

from conftest import SCALE, run_once, scaled

SCHEMES = ["dynaq", "besteffort", "pql"]
FIRST_STOP_MS = scaled(30.0)
STOP_STEP_MS = scaled(8.0)
DURATION_MS = FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(15.0)
SAMPLE_MS = scaled(3.0)
EXPONENT_BASE = 3 if SCALE >= 4 else 1   # paper: 2^(3+k)


def senders_for_queue(k: int) -> int:
    return 2 ** (EXPONENT_BASE + k)


def run_all():
    return {
        name: run_static_sim(
            name, config=SIM_100G, num_queues=8,
            senders_for_queue=senders_for_queue,
            first_stop_ms=FIRST_STOP_MS, stop_step_ms=STOP_STEP_MS,
            duration_ms=DURATION_MS, sample_interval_ms=SAMPLE_MS)
        for name in SCHEMES
    }


def test_fig12_many_flows(benchmark):
    results = run_once(benchmark, run_all)
    total_flows = sum(senders_for_queue(k) for k in range(1, 9))
    print()
    print(f"(total flows: {total_flows}, queue 8 alone: "
          f"{senders_for_queue(8)})")
    print(fairness_table(
        {name: result.fairness_series() for name, result in results.items()},
        title="Fig.12(a) Jain fairness under extreme flow counts (100G)"))
    print()
    print("Fig.12(b) aggregate throughput (Gbps)")
    for name, result in results.items():
        series = [f"{value / 1e9:.0f}" for value in result.aggregate_series()]
        print(f"{name:<12}{' '.join(series)}")

    warmup_ns = int(SAMPLE_MS * 2e6)
    dynaq = results["dynaq"]
    best = results["besteffort"]
    pql = results["pql"]

    # DynaQ is robust to the extreme scenario.
    assert dynaq.mean_fairness(start_ns=warmup_ns) > 0.9
    assert dynaq.mean_aggregate_bps(start_ns=warmup_ns) > 85e9

    # BestEffort's fairness drops well below DynaQ's while all queues are
    # active (paper: 0.24 for the first 200 ms).
    active_end = int(FIRST_STOP_MS * 1e6)
    assert (best.mean_fairness(start_ns=warmup_ns, end_ns=active_end)
            < dynaq.mean_fairness(start_ns=warmup_ns,
                                  end_ns=active_end) - 0.02)

    # PQL still fails work conservation at the tail (paper: <94.5 Gbps).
    tail_ns = int((FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(3.0)) * 1e6)
    assert (pql.mean_aggregate_bps(start_ns=tail_ns)
            < 0.95 * dynaq.mean_aggregate_bps(start_ns=tail_ns))
