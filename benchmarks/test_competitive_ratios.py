"""Competitive ratios: DynaQ vs the proven-guarantee comparators.

A results axis the paper never measured: empirical competitive ratios
(clairvoyant bound / delivered) on adversarial arrival patterns, for
DynaQ next to Longest-Queue-Drop (proven 1.5-competitive,
arXiv:1207.1141), FB (arXiv:2105.10553), and complete sharing.  The
shape assertions mirror docs/competitive.md: the isolating policies
stay below 1.5 everywhere, complete sharing collapses on fill-drain,
and LQD's proven guarantee holds.
"""

from repro.experiments.competitive import run_cell

from conftest import run_once, scaled

SCHEMES = ["dynaq", "lqd", "fb", "besteffort"]
ADVERSARIES = ["burst-flood", "fill-drain", "lqd-lower-bound", "random"]
BUFFER_CELLS = max(int(scaled(32)), 8)


def run_all():
    return {
        (policy, adversary): run_cell(
            policy, adversary, BUFFER_CELLS, num_queues=4, rounds=3,
            seed=1)
        for policy in SCHEMES
        for adversary in ADVERSARIES
    }


def test_competitive_ratios(benchmark):
    cells = run_once(benchmark, run_all)
    print()
    print(f"empirical competitive ratios (B={BUFFER_CELLS} cells, "
          "worst round of 3)")
    header = "policy".ljust(12) + "".join(
        name.rjust(17) for name in ADVERSARIES)
    print(header)
    worst = {}
    for policy in SCHEMES:
        row = policy.ljust(12)
        for adversary in ADVERSARIES:
            ratio = max(cells[(policy, adversary)]["ratios"])
            worst[(policy, adversary)] = ratio
            row += f"{ratio:.3f}".rjust(17)
        print(row)

    # LQD honours its proven guarantee on every adversary.
    for adversary in ADVERSARIES:
        assert worst[("lqd", adversary)] <= 1.5
    # The lower-bound construction has teeth: LQD measurably above 1.2.
    assert worst[("lqd", "lqd-lower-bound")] > 1.2
    # DynaQ's isolation also bounds its worst case on this grid.
    for adversary in ("burst-flood", "fill-drain", "random"):
        assert worst[("dynaq", adversary)] < 1.2
    # Complete sharing collapses where isolation matters most.
    assert worst[("besteffort", "fill-drain")] > 1.5
    assert (worst[("besteffort", "fill-drain")]
            > worst[("dynaq", "fill-drain")] + 0.5)
