"""Fig. 6 — bandwidth sharing with queue weights 4:3:2:1.

DRR quanta 6/4.5/3/1.5 KB; queue k still carries 2^k flows, so the flow
count runs *against* the weights (queue 4: most flows, smallest weight).
Paper shapes: DynaQ and PQL track the ideal 0.4/0.3/0.2/0.1 shares;
BestEffort hands queue 4 ~0.35 instead of its 0.1.
"""

from repro.experiments.report import share_table
from repro.experiments.testbed import run_weighted_sharing
from repro.sim.units import seconds

from conftest import run_once, scaled

DURATION_S = scaled(0.5)
SCHEMES = ["dynaq", "besteffort", "pql"]
IDEAL = [0.4, 0.3, 0.2, 0.1]


def run_all():
    return {
        name: run_weighted_sharing(name, duration_s=DURATION_S,
                                   sample_interval_s=DURATION_S / 10)
        for name in SCHEMES
    }


def test_fig06_weighted_sharing(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(share_table(list(results.values()),
                      title="Fig.6 throughput shares, weights 4:3:2:1",
                      ideal=IDEAL))
    warmup = seconds(DURATION_S * 0.2)
    dynaq_shares = results["dynaq"].mean_shares(start_ns=warmup)
    best_shares = results["besteffort"].mean_shares(start_ns=warmup)
    pql_shares = results["pql"].mean_shares(start_ns=warmup)

    # DynaQ and PQL respect the weights.
    for measured, ideal in zip(dynaq_shares, IDEAL):
        assert abs(measured - ideal) < 0.07
    for measured, ideal in zip(pql_shares, IDEAL):
        assert abs(measured - ideal) < 0.07
    # BestEffort lets the 16-flow queue take far more than its 0.1.
    assert best_shares[3] > 0.17
    assert best_shares[0] < 0.35
