"""Tier-2 smoke: the telemetry pipeline end-to-end through the real CLI.

Spawns ``python -m repro convergence --trace-out ...`` as a subprocess
(the same invocation a user types), then schema-checks the emitted JSONL
with ``repro trace-validate`` and asserts the DynaQ topics are present.
Also profiles the same scenario in-process to keep an events/sec figure
in the benchmark record.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.runner import run_scenario
from repro.sim.engine import Simulator
from repro.telemetry import RunProfiler

from conftest import run_once, scaled

REPO_ROOT = Path(__file__).resolve().parent.parent
DURATION_S = scaled(0.1)


def _repro(*argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv], env=env,
        capture_output=True, text=True, timeout=600)


def test_convergence_trace_out_cli_smoke(benchmark, tmp_path):
    trace_path = tmp_path / "trace.jsonl"

    def run():
        return _repro("convergence", "--schemes", "dynaq",
                      "--duration", f"{DURATION_S}",
                      "--trace-out", str(trace_path))

    proc = run_once(benchmark, run)
    assert proc.returncode == 0, proc.stderr
    assert f"wrote {trace_path}" in proc.stdout

    topics = set()
    count = 0
    with trace_path.open() as handle:
        for line in handle:
            topics.add(json.loads(line)["topic"])
            count += 1
    print(f"trace: {count} records, topics {sorted(topics)}")
    assert count > 1_000
    assert "dynaq.threshold" in topics
    assert "dynaq.steal" in topics
    assert "packet.enqueue" in topics

    check = _repro("trace-validate", str(trace_path))
    assert check.returncode == 0, check.stdout
    assert "OK" in check.stdout


def test_profiler_convergence_smoke(benchmark):
    sim = Simulator()
    profiler = RunProfiler().attach(sim)

    def run():
        run_scenario("convergence", "dynaq", duration_s=DURATION_S, sim=sim)
        return profiler

    run_once(benchmark, run)
    profiler.detach()
    summary = profiler.summary()
    print(f"profiled {summary['events']} events at "
          f"{summary['events_per_sec']:,.0f} events/sec, "
          f"heap high-water {summary['heap_high_water']}")
    assert summary["events"] > 1_000
    assert summary["events_per_sec"] > 0
    assert profiler.top_callbacks()
