"""Fig. 2 — the four production flow-size distributions.

Prints each workload's CDF at the paper's reference sizes plus the
heavy-tail statistics quoted in §V ("roughly 50 % of [data-mining] flows
are 1 KB while 90 % of bytes are from flows larger than 100 MB").
"""

from repro.workloads.datasets import workload, workload_names

from conftest import run_once

REFERENCE_SIZES = [1_000, 10_000, 100_000, 1_000_000, 10_000_000,
                   100_000_000]


def build_table():
    rows = []
    for name in workload_names():
        cdf = workload(name)
        rows.append({
            "name": name,
            "cdf": [cdf.cdf_at(size) for size in REFERENCE_SIZES],
            "mean_kb": cdf.mean_bytes() / 1e3,
            "bytes_above_100mb": cdf.bytes_fraction_above(100_000_000),
        })
    return rows


def test_fig02_workload_cdfs(benchmark):
    rows = run_once(benchmark, build_table)
    print()
    header = "workload".ljust(14) + "".join(
        f"<={size // 1000}KB".rjust(10) for size in REFERENCE_SIZES)
    print("Fig.2 flow-size CDFs")
    print(header + "mean(KB)".rjust(12))
    for row in rows:
        line = row["name"].ljust(14)
        line += "".join(f"{value:.2f}".rjust(10) for value in row["cdf"])
        line += f"{row['mean_kb']:.0f}".rjust(12)
        print(line)

    by_name = {row["name"]: row for row in rows}
    # ~50 % of data-mining flows are about 1 KB.
    assert 0.40 <= by_name["data_mining"]["cdf"][0] <= 0.60
    # The data-mining byte volume is dominated by >100 MB elephants.
    assert by_name["data_mining"]["bytes_above_100mb"] > 0.5
    # All four distributions are heavy-tailed (mean >> median bucket).
    for row in rows:
        assert row["cdf"][0] < 1.0
        assert row["mean_kb"] > 1.0
