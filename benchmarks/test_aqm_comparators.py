"""Extended comparators: classic AQM (RED/WRED, CoDel) vs DynaQ.

Beyond the paper's comparison set: RED is the classic AQM all the ECN
schemes descend from, CoDel is TCN's sojourn-time ancestor.  Both mark
per-queue with *static* policy parameters, so neither can express the
work-conserving weighted isolation DynaQ targets — this bench shows the
two concrete symptoms:

1. convergence scenario (2 vs 16 flows): RED/CoDel mark both queues by
   their own occupancy only, which does not equalise the shares;
2. FCT scenario: both remain usable congestion controllers (completion,
   small-flow acceleration), establishing them as fair baselines rather
   than straw men.
"""

from repro.experiments.testbed import run_convergence, run_fct_experiment
from repro.sim.units import seconds
from repro.workloads.datasets import WEB_SEARCH

from conftest import run_once, scaled, scaled_flows

DURATION_S = scaled(0.5)
SCHEMES = ["dynaq", "red", "codel"]
NUM_FLOWS = scaled_flows(120)


def run_all():
    convergence = {
        name: run_convergence(name, duration_s=DURATION_S,
                              sample_interval_s=DURATION_S / 10)
        for name in SCHEMES
    }
    fct = {
        name: run_fct_experiment(
            name, load=0.5, num_flows=NUM_FLOWS,
            distribution=WEB_SEARCH.truncated(5_000_000), seed=9)
        for name in SCHEMES
    }
    return convergence, fct


def test_aqm_comparators(benchmark):
    convergence, fct = run_once(benchmark, run_all)
    warmup = seconds(DURATION_S * 0.25)
    print()
    print("AQM comparators, 2-vs-16-flow convergence (Gbps)")
    for name, result in convergence.items():
        q1 = result.mean_rate_bps(0, start_ns=warmup) / 1e9
        q2 = result.mean_rate_bps(1, start_ns=warmup) / 1e9
        print(f"  {result.scheme:<10} q1={q1:.2f} q2={q2:.2f}")
    print("AQM comparators, web-search FCT at load 0.5 (ms)")
    for name, result in fct.items():
        summary = result.summary
        print(f"  {result.scheme:<10} overall={summary['avg_overall_ms']:.1f}"
              f" small={summary['avg_small_ms']:.2f}"
              f" p99small={summary['p99_small_ms']:.2f}"
              f" done={result.completed}")

    def unfairness(result):
        q1 = result.mean_rate_bps(0, start_ns=warmup)
        q2 = result.mean_rate_bps(1, start_ns=warmup)
        return abs(q1 - q2) / max(q1 + q2, 1.0)

    # DynaQ is the fairest; the AQMs don't beat it.
    assert unfairness(convergence["dynaq"]) < 0.15
    for name in ("red", "codel"):
        assert unfairness(convergence[name]) >= (
            unfairness(convergence["dynaq"]) - 0.05)
        # And they remain functional (full utilisation, completion).
        assert convergence[name].mean_aggregate_bps() > 0.85e9
        assert fct[name].outstanding == 0
        assert (fct[name].summary["avg_small_ms"]
                < fct[name].summary["avg_overall_ms"])
