"""Opt-in perf regression tier (``pytest benchmarks/perf/``).

Not part of tier-1 (``testpaths = tests``): timing assertions, however
generous, do not belong in the always-green suite.  This tier splits the
committed-baseline check (:mod:`repro.perf.baseline`) into its two
halves so a failure says *what* regressed:

* **determinism** — the quick suite's operation counters must equal the
  committed ``baseline.json`` bit-for-bit on any machine.  This half is
  exact and would be tier-1-safe; it lives here only to keep the bench
  harness out of the fast test path.
* **speed** — each bench's fast-vs-reference speedup must stay above the
  baseline's floored ``min_speedup`` minus a generous budget.  The
  default 40% budget (wider than the CI gate's 25%) tolerates loaded
  laptops; override with ``REPRO_PERF_BUDGET``.

Speedups are *ratios of two runs in the same process*, so they transfer
across machines; absolute seconds are never asserted.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.perf import baseline as baseline_mod
from repro.perf.bench import run_suite

BASELINE_PATH = Path(__file__).with_name("baseline.json")
BUDGET = float(os.environ.get("REPRO_PERF_BUDGET", "0.40"))


@pytest.fixture(scope="module")
def quick_report():
    return run_suite(quick=True, repeats=3)


@pytest.fixture(scope="module")
def committed_baseline():
    return json.loads(BASELINE_PATH.read_text())


def test_baseline_file_is_current_schema(committed_baseline):
    assert committed_baseline["schema"] == "repro.bench-baseline/1"
    assert committed_baseline["quick"] is True
    assert len(committed_baseline["benches"]) == 8


def test_ops_match_committed_baseline(quick_report, committed_baseline):
    """Machine-independent half: exact op-counter equality."""
    by_name = {b["name"]: b for b in quick_report["benches"]}
    mismatches = []
    for name, expected in committed_baseline["benches"].items():
        bench = by_name.get(name)
        if bench is None:
            mismatches.append(f"{name}: missing")
        elif bench["fast"]["ops"] != expected["ops"]:
            mismatches.append(
                f"{name}: {bench['fast']['ops']} != {expected['ops']}")
    assert not mismatches, "\n".join(mismatches)


def test_speedups_within_budget(quick_report, committed_baseline):
    """Timing half: floored speedup ratios with a generous budget."""
    violations = baseline_mod.compare(
        quick_report, committed_baseline, budget=BUDGET)
    assert not violations, "\n".join(violations)


def test_fig05_traced_speedup_floor(quick_report):
    """The headline number: the traced fig. 5 workload must stay at
    least 2x faster than the in-run reference baseline.  Min-of-3
    repeats already strips scheduler noise; 1.5 here (not 2.0) leaves
    the same headroom the budgeted check above gets."""
    by_name = {b["name"]: b for b in quick_report["benches"]}
    assert by_name["fig05_traced"]["speedup"] >= 1.5
