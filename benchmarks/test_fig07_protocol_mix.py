"""Fig. 7 — protocol independence: 2 TCP queues vs 2 CUBIC queues.

Same staggered-stop scenario as Fig. 5, but the senders of queues 3-4 run
CUBIC while queues 1-2 stay on TCP (Reno).  A protocol-independent scheme
must keep the shares fair across the protocol boundary and keep the
aggregate at line rate.
"""

from repro.experiments.report import timeseries_table
from repro.experiments.testbed import run_protocol_mix
from repro.sim.units import seconds

from conftest import run_once, scaled

TIME_UNIT_S = scaled(0.12)
SCHEMES = ["dynaq", "besteffort"]


def run_all():
    return {
        name: run_protocol_mix(name, time_unit_s=TIME_UNIT_S,
                               sample_interval_s=TIME_UNIT_S / 4)
        for name in SCHEMES
    }


def test_fig07_protocol_mix(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(timeseries_table(list(results.values()),
                           title="Fig.7 TCP (q1-2) vs CUBIC (q3-4)",
                           queues=[0, 1, 2, 3]))
    dynaq = results["dynaq"]
    start, end = seconds(TIME_UNIT_S * 0.5), seconds(TIME_UNIT_S * 2)
    # All four queues active: fair sharing despite the protocol split.
    assert dynaq.jain([0, 1, 2, 3], start, end) > 0.9
    # The CUBIC pair does not beat the TCP pair by more than ~20 %.
    tcp_pair = sum(dynaq.mean_rate_bps(q, start, end) for q in (0, 1))
    cubic_pair = sum(dynaq.mean_rate_bps(q, start, end) for q in (2, 3))
    assert 0.75 < cubic_pair / tcp_pair < 1.35
    # Work conservation throughout the active phases.
    assert dynaq.mean_aggregate_bps(
        seconds(TIME_UNIT_S * 0.3), seconds(TIME_UNIT_S * 5)) > 0.9e9
