"""Fig. 8 — FCT vs non-ECN schemes (BestEffort, PQL) with SPQ/DRR + PIAS.

Web-search flows at 30-80 % load; FCT broken down into overall, large,
small-average, and small-99th-percentile, all normalised by DynaQ.

Paper shapes: DynaQ beats PQL clearly for overall/large flows (PQL's
per-queue quota throttles elephants, up to 1.95x); BestEffort is mixed
for large flows (0.83-1.02x — elephants love an unfair buffer) but loses
on small flows, badly so at the 99th percentile under high load.
"""

from repro.experiments.report import fct_absolute_table, fct_matrix
from repro.experiments.testbed import fct_load_sweep
from repro.workloads.datasets import WEB_SEARCH

from conftest import run_once, scaled_flows

SCHEMES = ["dynaq", "besteffort", "pql"]
LOADS = [0.3, 0.5, 0.7]
NUM_FLOWS = scaled_flows(220)
# Clip the 30 MB tail so a bench run completes in minutes; 12 MB keeps
# the >10 MB "large flow" class populated and the body of the
# distribution (and thus the small/large flow mix) unchanged.
DISTRIBUTION = WEB_SEARCH.truncated(12_000_000)


def run_sweep():
    return fct_load_sweep(
        SCHEMES, LOADS, num_flows=NUM_FLOWS,
        distribution=DISTRIBUTION, seed=42, drain_timeout_s=30.0)


def test_fig08_fct_non_ecn(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    for metric, label in [
            ("avg_overall_ms", "avg FCT, overall flows"),
            ("avg_large_ms", "avg FCT, large flows (>10MB)"),
            ("avg_small_ms", "avg FCT, small flows (<=100KB)"),
            ("p99_small_ms", "99th-pct FCT, small flows")]:
        print(fct_matrix(results, metric=metric,
                         title=f"Fig.8 {label} (normalised to DynaQ)"))
        print()
    print(fct_absolute_table(results, title="Fig.8 absolute FCTs (ms)"))

    # Every flow completed under every scheme.
    for scheme_results in results.values():
        for result in scheme_results:
            assert result.outstanding == 0

    # Shape: PQL's overall FCT is worse than DynaQ's (the paper reports
    # up to 1.80x).  We assert it at the low/mid loads where the run is
    # statistically stable; at 0.7 the handful of elephants in a scaled
    # run dominates the mean and either scheme can "win" by lottery.
    for row, load in enumerate(LOADS):
        if load > 0.5:
            continue
        ratio = (results["pql"][row].summary["avg_overall_ms"]
                 / results["dynaq"][row].summary["avg_overall_ms"])
        assert ratio > 1.0, f"PQL should trail DynaQ at load {load}"

    # Shape: BestEffort's small-flow tail blows up under load (paper:
    # 8.40x at 60 % load; we see the same multi-x blow-up at 0.5).
    mid = LOADS.index(0.5)
    tail_ratio = (results["besteffort"][mid].summary["p99_small_ms"]
                  / results["dynaq"][mid].summary["p99_small_ms"])
    assert tail_ratio > 1.5

    # Shape: small flows ride the SPQ queue, so their average FCT is far
    # below the overall average for every scheme.
    for scheme_results in results.values():
        for result in scheme_results:
            assert (result.summary["avg_small_ms"]
                    < result.summary["avg_overall_ms"])

    # Note (EXPERIMENTS.md): the paper's small-flow ordering (DynaQ beats
    # PQL by 1.08-1.14x) does not reproduce at this operating point —
    # with our smooth transports the elephants keep the 85 KB port near
    # full and DynaQ (which reserves no quota and never evicts) loses a
    # few small bursts to full-buffer drops while PQL's static quota
    # shields them.  We assert only that DynaQ's small flows stay within
    # an RTO-scale factor of the best scheme.
    for row in range(len(LOADS)):
        small = {name: results[name][row].summary["avg_small_ms"]
                 for name in SCHEMES}
        assert small["dynaq"] < 10 * min(small.values())
