"""Benchmark-harness helpers.

Every ``benchmarks/test_figXX_*.py`` module regenerates one figure of the
paper: it runs the corresponding experiment (scaled down so the whole
suite finishes in minutes — the paper's multi-second horizons are purely
for human-scale plots; the dynamics converge after a few thousand RTTs),
prints the same rows/series the figure plots, and asserts the *shape* of
the result (who wins, roughly by how much).

Set ``REPRO_BENCH_SCALE`` (default 1.0) to stretch horizons / flow counts
toward the paper's full parameters, e.g.::

    REPRO_BENCH_SCALE=10 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(value: float, minimum: float = 0.0) -> float:
    """Scale a duration/count knob by REPRO_BENCH_SCALE."""
    return max(value * SCALE, minimum)


def scaled_flows(base: int) -> int:
    """Scale a flow count, keeping at least the base tenth."""
    return max(int(base * SCALE), base // 10, 20)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
