"""Fig. 1 — motivation: violated fair sharing by unfair buffer occupancy.

Paper setup: best-effort buffer, DRR with equal weights, 4 senders with
8 flows each; 3 senders share service queue 2 and 1 sender feeds queue 1.
Despite equal DRR weights, queue 1 cannot hold its weighted BDP of buffer
and its throughput collapses.  We print the per-queue throughput and mean
buffer occupancy, and run DynaQ on the same scenario for contrast.
"""

from repro.experiments.report import throughput_table
from repro.experiments.testbed import run_motivation
from repro.sim.units import seconds

from conftest import run_once, scaled

DURATION_S = scaled(0.6)
WARMUP_NS = seconds(DURATION_S * 0.25)


def run_pair():
    best = run_motivation("besteffort", duration_s=DURATION_S,
                          sample_interval_s=DURATION_S / 8,
                          queue_samples=1000)
    dynaq = run_motivation("dynaq", duration_s=DURATION_S,
                           sample_interval_s=DURATION_S / 8,
                           queue_samples=1000)
    return best, dynaq


def test_fig01_motivation(benchmark):
    best, dynaq = run_once(benchmark, run_pair)
    print()
    print(throughput_table([best, dynaq],
                           title="Fig.1 per-queue throughput (Gbps), "
                                 "queue2 backed by 3 senders"))
    print("Fig.1(b) mean queue occupancy (KB): "
          f"BestEffort q1={best.queue_lengths.mean_occupancy(0) / 1e3:.1f} "
          f"q2={best.queue_lengths.mean_occupancy(1) / 1e3:.1f} | "
          f"DynaQ q1={dynaq.queue_lengths.mean_occupancy(0) / 1e3:.1f} "
          f"q2={dynaq.queue_lengths.mean_occupancy(1) / 1e3:.1f}")

    # Shape assertions (paper: queue 1 starved under best effort).
    q1_best = best.mean_rate_bps(0, start_ns=WARMUP_NS)
    q2_best = best.mean_rate_bps(1, start_ns=WARMUP_NS)
    assert q2_best > 2 * q1_best
    # Queue 2 dominates the buffer.
    assert (best.queue_lengths.mean_occupancy(1)
            > 2 * best.queue_lengths.mean_occupancy(0))
    # DynaQ fixes it.
    q1_dynaq = dynaq.mean_rate_bps(0, start_ns=WARMUP_NS)
    q2_dynaq = dynaq.mean_rate_bps(1, start_ns=WARMUP_NS)
    assert 0.7 < q1_dynaq / q2_dynaq < 1.4
