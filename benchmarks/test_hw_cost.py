"""§IV-A — hardware cost of Algorithm 1 (the paper's in-text table).

Recomputes the clock-cycle budget per line of Algorithm 1 and the
relative overhead against the Broadcom Trident 3 per-packet budget, and
micro-benchmarks the two victim-search implementations to confirm the
tournament's O(log M) comparison count.
"""

import random

from repro.core.hardware import algorithm1_cycles, cost_table, relative_overhead
from repro.core.victim import linear_victim, tournament_victim

from conftest import run_once


def run_model():
    return cost_table()


def test_hw_cost_table(benchmark):
    rows = run_once(benchmark, run_model)
    print()
    print("Sec.IV-A Algorithm 1 clock-cycle budget")
    print("queues".rjust(7) + "line1".rjust(7) + "line2".rjust(7)
          + "line3".rjust(7) + "l6-7".rjust(7) + "total".rjust(7)
          + "T3 overhead".rjust(13))
    for row in rows:
        print(str(row["queues"]).rjust(7)
              + str(row["line1_cycles"]).rjust(7)
              + str(row["line2_cycles"]).rjust(7)
              + str(row["line3_cycles"]).rjust(7)
              + str(row["lines6_7_cycles"]).rjust(7)
              + str(row["total_cycles"]).rjust(7)
              + f"{row['trident3_overhead_pct']:.2f}%".rjust(13))

    eight = [row for row in rows if row["queues"] == 8][0]
    assert eight["total_cycles"] == 7                    # the paper's 7 cycles
    assert round(eight["trident3_overhead_pct"], 2) == 0.88
    assert algorithm1_cycles(4).victim_search == 2       # log2(4)
    assert relative_overhead(4) < relative_overhead(8)


def test_victim_search_microbench(benchmark):
    rng = random.Random(1)
    inputs = [[rng.randrange(-10 ** 6, 10 ** 6) for _ in range(8)]
              for _ in range(2_000)]

    def run_both():
        mismatches = 0
        for extra in inputs:
            if linear_victim(extra, 0) != tournament_victim(extra, 0):
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert mismatches == 0
