"""Ablations for DynaQ's design choices (DESIGN.md experiment index).

1. **Satisfaction threshold** — the paper argues (§III-B2) that
   ``S_i = WBDP_i`` is *not* enough: threshold fluctuation then robs
   queues of their fair share, which is why Eq. 3 uses the larger
   ``B * w_i / sum(w)``.  We run the convergence scenario with the WBDP
   override and compare fairness.
2. **Victim search** — linear argmax vs the loop-free tournament must be
   behaviourally identical end-to-end (identical packet traces).
3. **DT comparator** — the classic dynamic-threshold algorithm adapts to
   active-queue count but cannot express *weights*; under 4:3:2:1 DRR
   quanta its buffer split fights the scheduler.
"""

from repro.core.dynaq import DynaQBuffer
from repro.core.thresholds import weighted_bdp
from repro.experiments.testbed import (
    DEFAULT_CONFIG,
    run_convergence,
    run_weighted_sharing,
)
from repro.sim.units import seconds

from conftest import run_once, scaled

DURATION_S = scaled(0.5)


def wbdp_buffer_factory():
    override = weighted_bdp(DEFAULT_CONFIG.rate_bps, DEFAULT_CONFIG.rtt_ns,
                            [1.0] * 4)
    return DynaQBuffer(satisfaction_override=override)


def run_satisfaction_ablation():
    import repro.experiments.runner as runner_module
    # Temporarily register the ablated scheme.
    from repro.experiments.runner import _SCHEMES, SchemeSpec
    _SCHEMES["dynaq-wbdp"] = SchemeSpec(
        "DynaQ(S=WBDP)", lambda *, rtt_ns: wbdp_buffer_factory(),
        "tcp", False)
    try:
        default = run_convergence("dynaq", duration_s=DURATION_S,
                                  sample_interval_s=DURATION_S / 10)
        ablated = run_convergence("dynaq-wbdp", duration_s=DURATION_S,
                                  sample_interval_s=DURATION_S / 10)
    finally:
        del _SCHEMES["dynaq-wbdp"]
    return default, ablated


def unfairness(result):
    warmup = seconds(DURATION_S * 0.25)
    q1 = result.mean_rate_bps(0, start_ns=warmup)
    q2 = result.mean_rate_bps(1, start_ns=warmup)
    return abs(q1 - q2) / max(q1 + q2, 1.0)


def test_ablation_satisfaction_threshold(benchmark):
    default, ablated = run_once(benchmark, run_satisfaction_ablation)
    print()
    print("Ablation: satisfaction threshold choice (2 vs 16 flows)")
    print(f"  S_i = B*w/sum(w) (Eq.3): unfairness "
          f"{unfairness(default):.3f}, agg "
          f"{default.mean_aggregate_bps() / 1e9:.2f} Gbps")
    print(f"  S_i = WBDP_i          : unfairness "
          f"{unfairness(ablated):.3f}, agg "
          f"{ablated.mean_aggregate_bps() / 1e9:.2f} Gbps")
    # Eq.3 keeps the scheme fair.  The paper observed the WBDP variant
    # breaking fair sharing on their testbed (threshold fluctuation with
    # no headroom); in this smooth-transport model the 2-queue scenario
    # is benign for both variants, so the comparison above is reported
    # rather than asserted — the hard requirements are Eq.3's fairness
    # and work conservation for both.
    assert unfairness(default) < 0.15
    assert default.mean_aggregate_bps() > 0.9e9
    assert ablated.mean_aggregate_bps() > 0.9e9


def run_victim_ablation():
    linear = run_convergence("dynaq", duration_s=DURATION_S / 2,
                             sample_interval_s=DURATION_S / 10)
    tournament = run_convergence("dynaq-tournament",
                                 duration_s=DURATION_S / 2,
                                 sample_interval_s=DURATION_S / 10)
    return linear, tournament


def test_ablation_victim_search_equivalence(benchmark):
    linear, tournament = run_once(benchmark, run_victim_ablation)
    print()
    print("Ablation: victim search implementation")
    for result in (linear, tournament):
        rates = [result.mean_rate_bps(q) / 1e9 for q in (0, 1)]
        print(f"  {result.scheme:<20} q1={rates[0]:.4f} q2={rates[1]:.4f}")
    # Same seed, same deterministic kernel, semantically equal search:
    # the two runs must produce *identical* sample series.
    assert [s.per_queue_bps for s in linear.samples] == [
        s.per_queue_bps for s in tournament.samples]


def run_dt_comparison():
    dynaq = run_weighted_sharing("dynaq", duration_s=DURATION_S,
                                 sample_interval_s=DURATION_S / 10)
    dt = run_weighted_sharing("dt", duration_s=DURATION_S,
                              sample_interval_s=DURATION_S / 10)
    return dynaq, dt


def test_ablation_dynamic_threshold_has_no_weights(benchmark):
    dynaq, dt = run_once(benchmark, run_dt_comparison)
    ideal = [0.4, 0.3, 0.2, 0.1]
    warmup = seconds(DURATION_S * 0.2)
    print()
    print("Ablation: DynaQ vs Choudhury-Hahne DT, weights 4:3:2:1")
    print(f"  ideal : {ideal}")
    print(f"  DynaQ : "
          f"{[round(s, 3) for s in dynaq.mean_shares(start_ns=warmup)]}")
    print(f"  DT    : "
          f"{[round(s, 3) for s in dt.mean_shares(start_ns=warmup)]}")
    dynaq_err = sum(abs(m - i) for m, i in
                    zip(dynaq.mean_shares(start_ns=warmup), ideal))
    dt_err = sum(abs(m - i) for m, i in
                 zip(dt.mean_shares(start_ns=warmup), ideal))
    # DynaQ tracks the weighted shares at least as well as DT.
    assert dynaq_err <= dt_err + 0.05
