"""Protocol independence, stress version: four different transports.

Fig. 7 uses TCP and CUBIC because the authors could not obtain the
emerging protocols' code.  Our substrate can go further: four service
queues carry TCP (Reno), CUBIC, **Vegas** (delay-based — the stand-in
for DX/TIMELY, §II-B's motivating protocol family), and TCP again, with
*asymmetric* flow counts stacked against the meek queues (2/4/2/16).

Claim under test: DynaQ equalises the queues regardless of how each
transport probes for bandwidth — including a delay-based protocol that
never wants to see a drop — while BestEffort hands the link to the
flow-heavy loss-based queue.
"""

from repro.experiments.testbed import DEFAULT_CONFIG, _bulk_throughput_run
from repro.sim.units import seconds

from conftest import run_once, scaled

DURATION_S = scaled(0.5)
PROTOCOLS = ["tcp", "cubic", "vegas", "tcp"]
FLOWS = [2, 4, 2, 16]
SCHEMES = ["dynaq", "besteffort"]


def run_all():
    return {
        name: _bulk_throughput_run(
            name, flows_per_queue=FLOWS, quanta=[1500.0] * 4,
            stop_times_ns=None, duration_ns=seconds(DURATION_S),
            sample_interval_ns=seconds(DURATION_S / 10),
            config=DEFAULT_CONFIG, protocols=PROTOCOLS)
        for name in SCHEMES
    }


def test_protocol_zoo(benchmark):
    results = run_once(benchmark, run_all)
    warmup = seconds(DURATION_S * 0.25)
    print()
    print("Four transports, flow counts 2/4/2/16 (Gbps per queue)")
    print("scheme".ljust(12) + "".join(
        f"{protocol}x{flows}".rjust(10)
        for protocol, flows in zip(PROTOCOLS, FLOWS)))
    for name, result in results.items():
        rates = [result.mean_rate_bps(q, warmup) / 1e9 for q in range(4)]
        print(result.scheme.ljust(12)
              + "".join(f"{rate:.2f}".rjust(10) for rate in rates))

    dynaq = results["dynaq"]
    best = results["besteffort"]
    # DynaQ: near-equal shares across all four transports.
    assert dynaq.jain(range(4), warmup) > 0.93
    # The delay-based queue holds its fair quarter under DynaQ.
    vegas_dynaq = dynaq.mean_rate_bps(2, warmup)
    assert vegas_dynaq > 0.2e9
    # BestEffort: the 16-flow loss-based queue out-earns the 2-flow
    # queues (directional, as in Fig. 5's regime).
    best_rates = [best.mean_rate_bps(q, warmup) for q in range(4)]
    assert best_rates[3] > 1.15 * min(best_rates[0], best_rates[2])
    # Work conservation everywhere.
    for result in results.values():
        assert result.mean_aggregate_bps(warmup) > 0.9e9
