"""Fig. 11 — bandwidth sharing on 100 Gbps links (Trident 3, jumbo frames).

Same scenario as Fig. 10 at 100 Gbps with 9 KB jumbo frames and a 1 MB
port buffer.  Paper shapes: identical tendency to 10 G — DynaQ preserves
both weighted fair sharing and work conservation at high link speed,
PQL loses significant throughput once queue 1 is alone.
"""

from repro.experiments.report import fairness_table
from repro.experiments.simulation import SIM_100G, run_static_sim

from conftest import run_once, scaled

SCHEMES = ["dynaq", "besteffort", "pql"]
FIRST_STOP_MS = scaled(30.0)
STOP_STEP_MS = scaled(8.0)
DURATION_MS = FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(15.0)
SAMPLE_MS = scaled(3.0)


def run_all():
    return {
        name: run_static_sim(
            name, config=SIM_100G, num_queues=8,
            senders_for_queue=lambda k: 2 * k,
            first_stop_ms=FIRST_STOP_MS, stop_step_ms=STOP_STEP_MS,
            duration_ms=DURATION_MS, sample_interval_ms=SAMPLE_MS)
        for name in SCHEMES
    }


def test_fig11_static_100g(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(fairness_table(
        {name: result.fairness_series() for name, result in results.items()},
        title="Fig.11(a) Jain fairness between active queues (100G)"))
    print()
    print("Fig.11(b) aggregate throughput (Gbps)")
    for name, result in results.items():
        series = [f"{value / 1e9:.0f}" for value in result.aggregate_series()]
        print(f"{name:<12}{' '.join(series)}")

    warmup_ns = int(SAMPLE_MS * 2e6)
    dynaq = results["dynaq"]
    pql = results["pql"]

    assert dynaq.mean_fairness(start_ns=warmup_ns) > 0.95
    assert dynaq.mean_aggregate_bps(start_ns=warmup_ns) > 90e9

    tail_ns = int((FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(3.0)) * 1e6)
    dynaq_tail = dynaq.mean_aggregate_bps(start_ns=tail_ns)
    pql_tail = pql.mean_aggregate_bps(start_ns=tail_ns)
    print(f"tail aggregate: DynaQ {dynaq_tail / 1e9:.1f} Gbps, "
          f"PQL {pql_tail / 1e9:.1f} Gbps")
    # Paper: PQL stays below 94.5 Gbps when few queues are active, DynaQ
    # does not lose throughput at the transitions.
    assert dynaq_tail > 90e9
    assert pql_tail < 0.95 * dynaq_tail
