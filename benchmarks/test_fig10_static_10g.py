"""Fig. 10 — bandwidth sharing on 10 Gbps links (Trident+ rack).

8 WRR queues with equal weights; queue k fed by 2k single-flow senders;
queues 2..8 stop in order after the first stop time.  Plotted series:
Jain's fairness index between active queues and aggregate throughput.

Paper shapes: DynaQ and PQL hold a near-optimal fairness index while
BestEffort fluctuates; only DynaQ keeps the aggregate at line rate once
queues go idle — PQL collapses to ~8.5 Gbps when queue 1 is alone
(its quota B/8 = 24 KB is far below the 105 KB BDP).
"""

from repro.experiments.report import fairness_table
from repro.experiments.simulation import SIM_10G, run_static_sim

from conftest import run_once, scaled

SCHEMES = ["dynaq", "besteffort", "pql"]
FIRST_STOP_MS = scaled(50.0)
STOP_STEP_MS = scaled(12.0)
DURATION_MS = FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(25.0)
SAMPLE_MS = scaled(5.0)


def run_all():
    return {
        name: run_static_sim(
            name, config=SIM_10G, num_queues=8,
            senders_for_queue=lambda k: 2 * k,
            first_stop_ms=FIRST_STOP_MS, stop_step_ms=STOP_STEP_MS,
            duration_ms=DURATION_MS, sample_interval_ms=SAMPLE_MS)
        for name in SCHEMES
    }


def test_fig10_static_10g(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(fairness_table(
        {name: result.fairness_series() for name, result in results.items()},
        title="Fig.10(a) Jain fairness between active queues (10G)"))
    print()
    print("Fig.10(b) aggregate throughput (Gbps)")
    for name, result in results.items():
        series = [f"{v / 1e9:.1f}" for v in result.aggregate_series()]
        print(f"{name:<12}{' '.join(series)}")

    warmup_ns = int(SAMPLE_MS * 2e6)
    dynaq = results["dynaq"]
    pql = results["pql"]
    best = results["besteffort"]

    # DynaQ: near-optimal fairness and full utilisation throughout.
    assert dynaq.mean_fairness(start_ns=warmup_ns) > 0.95
    assert dynaq.mean_aggregate_bps(start_ns=warmup_ns) > 9.2e9

    # PQL: fair but not work-conserving — aggregate collapses once only
    # queue 1 remains (paper: ~8.5 Gbps after the last stop).
    tail_ns = int((FIRST_STOP_MS + 7 * STOP_STEP_MS + scaled(5.0)) * 1e6)
    assert pql.mean_fairness(start_ns=warmup_ns) > 0.9
    pql_tail = pql.mean_aggregate_bps(start_ns=tail_ns)
    dynaq_tail = dynaq.mean_aggregate_bps(start_ns=tail_ns)
    print(f"tail aggregate: DynaQ {dynaq_tail / 1e9:.2f} Gbps, "
          f"PQL {pql_tail / 1e9:.2f} Gbps")
    assert dynaq_tail > 9.2e9
    assert pql_tail < 0.95 * dynaq_tail

    # BestEffort: fairness dips below the isolating schemes at some point.
    assert (min(best.fairness_series())
            < min(dynaq.fairness_series()) - 0.005)
