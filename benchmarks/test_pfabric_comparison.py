"""pFabric vs DynaQ — the §II-C distinction, measured.

pFabric minimises small-flow FCT via fabric-wide SRPT (remaining-size
priorities, priority eviction, shallow buffers); DynaQ isolates
operator-defined service queues.  The two goals are orthogonal, which is
exactly why the paper excludes pFabric from its comparison set.  This
bench makes the orthogonality concrete:

1. *Latency race* — small flows under an elephant: pFabric's preemption
   wins outright; DynaQ+SPQ/PIAS gets close.
2. *Isolation race* — two equal-weight services, one running short
   flows: pFabric hands the link to the short flows (SRPT doesn't know
   about weights); DynaQ splits it per policy.
"""

from repro.apps.iperf import IperfApp
from repro.experiments.runner import buffer_factory
from repro.extras.pfabric import build_pfabric_star, start_pfabric_flow
from repro.metrics.throughput import PortThroughputMeter
from repro.net.topology import build_star
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds
from repro.transport.base import Flow
from repro.transport.tcp import TCPSender

from conftest import run_once, scaled

RTT = microseconds(500)
DURATION_S = scaled(0.4)


def latency_race():
    """One elephant + 8 staggered 20 KB mice into the same sink."""
    results = {}

    # pFabric fabric.
    net = build_pfabric_star(num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT)
    mice = []
    start_pfabric_flow(
        net, Flow(flow_id=1, src="h1", dst="h0", size=10_000_000))
    for index in range(8):
        mice.append(start_pfabric_flow(
            net, Flow(flow_id=10 + index, src="h2", dst="h0",
                      size=20_000,
                      start_time=seconds(0.01 * (index + 1)))))
    net.sim.run(until=seconds(2))
    results["pFabric"] = [m.fct_ns() / 1e6 for m in mice if m.complete]

    # DynaQ rack with SPQ: mice ride class 0.
    from repro.queueing.schedulers.spq import SPQDRRScheduler
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: SPQDRRScheduler(1, [1500] * 4),
        buffer_factory=buffer_factory("dynaq", rtt_ns=RTT))
    flow = Flow(flow_id=1, src="h1", dst="h0", size=10_000_000,
                service_class=1)
    elephant = TCPSender(net.sim, net.host("h1"), flow)
    net.host("h1").register_sender(elephant)
    elephant.start()
    mice = []
    for index in range(8):
        mouse_flow = Flow(flow_id=10 + index, src="h2", dst="h0",
                          size=20_000, service_class=0)
        mouse = TCPSender(net.sim, net.host("h2"), mouse_flow)
        net.host("h2").register_sender(mouse)
        net.sim.at(seconds(0.01 * (index + 1)), mouse.start)
        mice.append(mouse)
    net.sim.run(until=seconds(2))
    results["DynaQ+SPQ"] = [m.fct_ns() / 1e6 for m in mice if m.complete]
    return results


def isolation_race():
    """Service A: one long-lived bulk app; service B: short-flow barrage.

    Equal DRR weights => policy says 50/50.  Returns service-A
    throughput share under DynaQ and under pFabric.
    """
    shares = {}

    # DynaQ rack.
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500, 1500]),
        buffer_factory=buffer_factory("dynaq", rtt_ns=RTT))
    meter = PortThroughputMeter(net.sim, net.switch("s0").ports["s0->h0"],
                                seconds(DURATION_S / 8))
    IperfApp(net.sim, net.host("h1"), destination="h0", num_flows=2,
             service_class=0).start_at(0)
    IperfApp(net.sim, net.host("h2"), destination="h0", num_flows=16,
             service_class=1, flow_id_base=100).start_at(0)
    net.sim.run(until=seconds(DURATION_S))
    a = meter.mean_rate_bps(0, start_ns=seconds(DURATION_S / 4))
    b = meter.mean_rate_bps(1, start_ns=seconds(DURATION_S / 4))
    shares["DynaQ"] = a / max(a + b, 1.0)

    # pFabric fabric: same offered traffic, no queues to respect.  Use
    # finite but large "bulk" flows so remaining-size priorities exist.
    net = build_pfabric_star(num_hosts=3, rate_bps=gbps(1), rtt_ns=RTT)
    service_a = [start_pfabric_flow(
        net, Flow(flow_id=index, src="h1", dst="h0", size=20_000_000,
                  service_class=0))
        for index in range(2)]
    service_b = [start_pfabric_flow(
        net, Flow(flow_id=100 + index, src="h2", dst="h0",
                  size=1_000_000, service_class=1))
        for index in range(16)]
    # Measure while BOTH services have demand: 16 MB of short flows keep
    # service B active for >= 128 ms at 1 Gbps, so sample at 80 ms.
    net.sim.run(until=seconds(0.08))
    a_bytes = sum(sender.high_ack for sender in service_a)
    b_bytes = sum(sender.high_ack for sender in service_b)
    shares["pFabric"] = a_bytes / max(a_bytes + b_bytes, 1)
    return shares


def run_all():
    return latency_race(), isolation_race()


def test_pfabric_comparison(benchmark):
    latency, isolation = run_once(benchmark, run_all)
    print()
    print("Small-flow FCT under an elephant (ms):")
    for name, fcts in latency.items():
        mean = sum(fcts) / len(fcts)
        print(f"  {name:<12} n={len(fcts)} mean={mean:.2f} "
              f"max={max(fcts):.2f}")
    print("Service-A throughput share (policy says 0.50):")
    for name, share in isolation.items():
        print(f"  {name:<12} {share:.2f}")

    # Latency: both complete all mice; pFabric is at least competitive.
    assert len(latency["pFabric"]) == 8
    assert len(latency["DynaQ+SPQ"]) == 8
    pfabric_mean = sum(latency["pFabric"]) / 8
    dynaq_mean = sum(latency["DynaQ+SPQ"]) / 8
    assert pfabric_mean < 5.0          # SRPT mice are ~RTT-fast
    assert dynaq_mean < 5.0            # SPQ+DynaQ keeps up

    # Isolation: DynaQ honours the 50/50 policy; pFabric starves the
    # bulk service while short flows exist.
    assert abs(isolation["DynaQ"] - 0.5) < 0.12
    assert isolation["pFabric"] < 0.35
