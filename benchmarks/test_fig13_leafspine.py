"""Fig. 13 — dynamic flows on a leaf-spine fabric with ECMP.

The paper: 12 leaves x 12 spines x 12 hosts, SPQ(1)/DRR(7), the four
production workloads split across 7 services, loads 30-80 %.  The bench
runs a scaled fabric (4x4x4 by default) with proportionally fewer flows;
``REPRO_BENCH_SCALE>=3`` restores the full 12x12x12 fabric.

Paper shapes: the three schemes are close here (10 G links relax the
pressure): DynaQ-vs-BestEffort gaps within 0.98-1.01x overall, and PQL
at most marginally better on small-flow tails (0.98x).  We assert
completion plus those near-parity envelopes.
"""

from repro.experiments.report import fct_absolute_table, fct_matrix
from repro.experiments.simulation import LeafSpineConfig, run_leafspine_fct
from repro.workloads.datasets import workload, workload_names

from conftest import SCALE, run_once, scaled_flows

SCHEMES = ["dynaq", "besteffort", "pql"]
LOADS = [0.3, 0.6]
NUM_FLOWS = scaled_flows(200)

if SCALE >= 3:
    CONFIG = LeafSpineConfig()  # the paper's 12 x 12 x 12
else:
    CONFIG = LeafSpineConfig(num_leaves=4, num_spines=4, hosts_per_leaf=4)

# Tail-clipped copies of all four workloads keep the bench bounded while
# preserving each distribution's body.
DISTRIBUTIONS = [workload(name).truncated(12_000_000)
                 for name in workload_names()]


def run_sweep():
    results = {}
    for name in SCHEMES:
        results[name] = [
            run_leafspine_fct(name, load=load, num_flows=NUM_FLOWS,
                              config=CONFIG, distributions=DISTRIBUTIONS,
                              seed=7, drain_timeout_s=30.0)
            for load in LOADS
        ]
    return results


def test_fig13_leafspine(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print(fct_matrix(results, metric="avg_overall_ms",
                     title="Fig.13(a) avg FCT overall (normalised)"))
    print()
    print(fct_matrix(results, metric="p99_small_ms",
                     title="Fig.13(b) 99th-pct FCT small (normalised)"))
    print()
    print(fct_absolute_table(results, title="Fig.13 absolute FCTs (ms)"))

    for scheme_results in results.values():
        for result in scheme_results:
            assert result.outstanding == 0

    # Near-parity envelope: at 10 G fabric scale the schemes are close
    # (paper: 0.98x-1.01x overall).  At this reduced flow count the
    # variance is dominated by a handful of elephants per service, so the
    # band is generous; REPRO_BENCH_SCALE>=3 tightens the statistics.
    for row in range(len(LOADS)):
        overall = {name: results[name][row].summary["avg_overall_ms"]
                   for name in SCHEMES}
        best = min(overall.values())
        assert overall["dynaq"] < 2.0 * best
        # Small flows stay sub-millisecond under every scheme (SPQ+PIAS
        # works across the fabric).
        for name in SCHEMES:
            assert results[name][row].summary["avg_small_ms"] < 1.0
