"""Buffer-size sensitivity: where PQL's work-conservation failure begins.

The paper argues PQL cannot be fixed by provisioning ("we do not have
enough buffers to reserve a buffer size as much as the BDP for all
service queues", §II-C).  This ablation sweeps the port buffer size and
measures a lone queue's achievable throughput under PQL vs DynaQ: PQL
needs ``M x BDP`` of buffer before a single active queue can fill the
pipe, while DynaQ fills it from ``~1 x BDP`` — an M-fold SRAM saving,
which is the paper's economic argument in one curve.

Setup: 4 equal-weight queues configured, but only queue 1 active (one
sender, 2 flows) — the regime after every other service went idle.
"""

from repro.apps.iperf import IperfApp
from repro.experiments.runner import buffer_factory
from repro.metrics.throughput import PortThroughputMeter
from repro.net.topology import build_star
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import bandwidth_delay_product, gbps, microseconds, seconds

from conftest import run_once, scaled

RATE = gbps(10)
RTT = microseconds(84)
BDP = bandwidth_delay_product(RATE, RTT)      # 105 KB
BUFFER_MULTIPLES = [0.5, 1.0, 2.0, 4.0]
DURATION_S = scaled(0.06)
SCHEMES = ["dynaq", "pql"]


def run_point(scheme_name, buffer_bytes):
    # Two senders (one flow each) feed queue 1, as in Fig. 10's tail
    # phase — fan-in makes the switch egress the bottleneck that has to
    # hold a standing queue for the pipe to stay full.
    net = build_star(
        num_hosts=3, rate_bps=RATE, rtt_ns=RTT,
        buffer_bytes=buffer_bytes,
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=buffer_factory(scheme_name, rtt_ns=RTT))
    meter = PortThroughputMeter(
        net.sim, net.switch("s0").ports["s0->h0"],
        seconds(DURATION_S / 6))
    for index in (1, 2):
        app = IperfApp(net.sim, net.host(f"h{index}"), destination="h0",
                       num_flows=1, service_class=0,
                       flow_id_base=index, min_rto_ns=5_000_000)
        app.start_at(0)
    net.sim.run(until=seconds(DURATION_S))
    return meter.mean_aggregate_bps(start_ns=seconds(DURATION_S / 3))


def run_sweep():
    return {
        name: [run_point(name, int(BDP * multiple))
               for multiple in BUFFER_MULTIPLES]
        for name in SCHEMES
    }


def test_buffer_sensitivity(benchmark):
    results = run_once(benchmark, run_sweep)
    print()
    print("Lone-active-queue throughput (Gbps) vs port buffer (x BDP), "
          "4 queues configured")
    print("scheme".ljust(10) + "".join(
        f"{multiple}xBDP".rjust(10) for multiple in BUFFER_MULTIPLES))
    for name, series in results.items():
        print(name.ljust(10) + "".join(
            f"{value / 1e9:.2f}".rjust(10) for value in series))

    # DynaQ fills the pipe from ~1x BDP (the lone queue takes it all).
    dynaq = dict(zip(BUFFER_MULTIPLES, results["dynaq"]))
    pql = dict(zip(BUFFER_MULTIPLES, results["pql"]))
    assert dynaq[1.0] > 0.9 * RATE
    assert dynaq[2.0] > 0.95 * RATE
    # PQL's quota is buffer/4: it needs ~4x BDP for the same result.
    assert pql[1.0] < 0.9 * RATE
    assert pql[4.0] > 0.9 * RATE
    # And at every buffer size, PQL never beats DynaQ.
    for multiple in BUFFER_MULTIPLES:
        assert pql[multiple] <= dynaq[multiple] * 1.02
