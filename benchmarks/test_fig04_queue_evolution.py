"""Fig. 4 — queue-length evolution of the two active DRR queues.

Same run as Fig. 3, but the plotted quantity is per-queue buffer
occupancy sampled on every enqueue/dequeue (1 K sequential samples).
Paper shapes: BestEffort lets queue 2 dominate the port buffer; PQL caps
both queues at the reserved quota (B/4 = 21.25 KB); DynaQ's occupancies
move with the dynamic thresholds and both queues hold useful buffer.
"""

from repro.experiments.testbed import run_convergence

from conftest import run_once, scaled

DURATION_S = scaled(0.4)
SCHEMES = ["dynaq", "besteffort", "pql"]
PQL_QUOTA = 85_000 / 4


def run_all():
    return {
        name: run_convergence(name, duration_s=DURATION_S,
                              sample_interval_s=DURATION_S / 4,
                              queue_samples=1000)
        for name in SCHEMES
    }


def test_fig04_queue_evolution(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print("Fig.4 queue occupancy over 1K enqueue/dequeue samples (KB)")
    print("scheme".ljust(14) + "q1 mean".rjust(9) + "q1 peak".rjust(9)
          + "q2 mean".rjust(9) + "q2 peak".rjust(9))
    for name, result in results.items():
        lengths = result.queue_lengths
        print(name.ljust(14)
              + f"{lengths.mean_occupancy(0) / 1e3:.1f}".rjust(9)
              + f"{lengths.peak_occupancy(0) / 1e3:.1f}".rjust(9)
              + f"{lengths.mean_occupancy(1) / 1e3:.1f}".rjust(9)
              + f"{lengths.peak_occupancy(1) / 1e3:.1f}".rjust(9))

    best = results["besteffort"].queue_lengths
    pql = results["pql"].queue_lengths
    dynaq = results["dynaq"].queue_lengths
    # BestEffort: queue 2 dominates the buffer.
    assert best.mean_occupancy(1) > 2 * best.mean_occupancy(0)
    # PQL: both queues capped at the reserved quota.
    assert pql.peak_occupancy(0) <= PQL_QUOTA
    assert pql.peak_occupancy(1) <= PQL_QUOTA
    # DynaQ: queues can exceed the static quota (dynamic thresholds) and
    # queue 1 holds materially more buffer than under best effort.
    assert (max(dynaq.peak_occupancy(0), dynaq.peak_occupancy(1))
            > PQL_QUOTA)
    assert dynaq.mean_occupancy(0) > best.mean_occupancy(0)
