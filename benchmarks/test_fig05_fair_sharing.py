"""Fig. 5 — fair sharing + work conservation as queues go inactive.

Queue k carries 2^k flows; from 2 time units onward queues 4, 3, 2, 1
stop in turn.  Paper shapes: BestEffort never shares fairly; PQL is fair
while all queues are active but its aggregate throughput collapses as
queues go idle (0.78 Gbps with one active queue); DynaQ is fair *and*
keeps the aggregate at line rate throughout.
"""

from repro.experiments.report import timeseries_table
from repro.experiments.testbed import run_fair_sharing
from repro.sim.units import seconds

from conftest import run_once, scaled

TIME_UNIT_S = scaled(0.12)
SCHEMES = ["dynaq", "besteffort", "pql"]


def run_all():
    return {
        name: run_fair_sharing(name, time_unit_s=TIME_UNIT_S,
                               sample_interval_s=TIME_UNIT_S / 4)
        for name in SCHEMES
    }


def window(unit_multiple_start, unit_multiple_end):
    return (seconds(TIME_UNIT_S * unit_multiple_start),
            seconds(TIME_UNIT_S * unit_multiple_end))


def test_fig05_fair_sharing(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print(timeseries_table(list(results.values()),
                           title="Fig.5 bandwidth sharing, queues stop at "
                                 "2/3/4/5 time units", queues=[0, 1, 2, 3]))

    # Phase A: all queues active (0.5..2 units) -> DynaQ near-perfectly fair.
    start, end = window(0.5, 2)
    dynaq = results["dynaq"]
    best = results["besteffort"]
    pql = results["pql"]
    assert dynaq.jain([0, 1, 2, 3], start, end) > 0.95

    # BestEffort favours flow-heavy queues.  Our smooth per-packet-ACK
    # transport understates the testbed's burst-driven unfairness (see
    # EXPERIMENTS.md), so assert the *direction*: in the 3-active-queue
    # phase, queue 3 (8 flows) outearns queue 1 (2 flows) and DynaQ's
    # worst-served queue does better than BestEffort's.
    start, end = window(2.1, 3)
    best_rates = [best.mean_rate_bps(q, start, end) for q in range(3)]
    dynaq_rates = [dynaq.mean_rate_bps(q, start, end) for q in range(3)]
    assert best_rates[2] > 1.08 * best_rates[0]
    assert min(dynaq_rates) > min(best_rates)

    # Phase B: only queue 1 active (units 4..5, the paper's 20-25 s) ->
    # DynaQ stays work-conserving near line rate; PQL can do no better.
    # At this 1 GbE operating point (quota 21.25 KB vs 62.5 KB BDP, two
    # desynchronised flows) our smooth transport keeps PQL's pipe just
    # barely full, so the paper's 0.78 Gbps collapse shows up only as
    # "never above DynaQ"; the full collapse reproduces at 10/100 Gbps
    # (Figs. 10-12 benches), where quota/BDP is far smaller.
    start, end = window(4.1, 5)
    dynaq_tail = dynaq.mean_aggregate_bps(start, end)
    pql_tail = pql.mean_aggregate_bps(start, end)
    print(f"tail aggregate (1 active queue): DynaQ "
          f"{dynaq_tail / 1e9:.2f} Gbps vs PQL {pql_tail / 1e9:.2f} Gbps")
    assert dynaq_tail > 0.9e9
    assert pql_tail <= dynaq_tail * 1.01
