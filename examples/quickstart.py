#!/usr/bin/env python3
"""Quickstart: see DynaQ isolate two service queues in ~20 lines.

Scenario (paper Fig. 3): two tenants share a 1 GbE switch port with two
DRR queues of equal weight.  Tenant A runs 2 flows, tenant B runs 16.
Under the default best-effort buffer, tenant B's flow count lets it
monopolise the port buffer and tenant A starves; with DynaQ both tenants
get their fair half.

Run:  python examples/quickstart.py
"""

from repro.experiments.testbed import run_convergence


def main() -> None:
    print("2 flows (queue 1) vs 16 flows (queue 2) on a 1 GbE port\n")
    print(f"{'scheme':<14}{'queue 1':>10}{'queue 2':>10}{'aggregate':>11}")
    for scheme in ("besteffort", "pql", "dynaq"):
        result = run_convergence(scheme, duration_s=0.5,
                                 sample_interval_s=0.1)
        q1 = result.mean_rate_bps(0) / 1e9
        q2 = result.mean_rate_bps(1) / 1e9
        agg = result.mean_aggregate_bps() / 1e9
        print(f"{result.scheme:<14}{q1:>9.2f}G{q2:>9.2f}G{agg:>10.2f}G")
    print("\nDynaQ shares the bandwidth ~50/50 regardless of flow counts;"
          "\nBestEffort hands the link to whoever has more flows.")


if __name__ == "__main__":
    main()
