#!/usr/bin/env python3
"""Partition/aggregate incast: who survives a synchronized fan-in burst?

A search aggregator fans a query out to 16 workers; their responses
arrive at the aggregator's downlink simultaneously while bulk traffic
keeps the port's service queues loaded.  The aggregator stalls until the
*last* worker answers, so the metric is query completion time (QCT).

This exercises the repo's incast harness and the DynaQ-Evict extension
(BarberQ-style tail eviction) that repairs plain DynaQ's full-port
corner.

Run:  python examples/incast_aggregation.py [workers]
"""

import sys

from repro.experiments.incast import run_incast


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(f"{workers}-worker incast into a loaded 1 GbE port\n")
    print(f"{'scheme':<14}{'QCT':>10}{'mean FCT':>11}"
          f"{'timeouts':>10}{'drops':>8}")
    for scheme in ("besteffort", "pql", "dynaq", "dynaq-evict"):
        result = run_incast(scheme, num_workers=workers, horizon_s=3.0)
        qct = (f"{result.query_completion_ms:.1f}ms"
               if result.query_completion_ms is not None else "-")
        print(f"{result.scheme:<14}{qct:>10}"
              f"{result.mean_fct_ms:>9.1f}ms"
              f"{result.timeouts:>10}{result.drops_at_bottleneck:>8}")
    print("\nQCT is the slowest worker's FCT — one retransmission "
          "timeout anywhere stalls the whole query.")


if __name__ == "__main__":
    main()
