#!/usr/bin/env python3
"""Extending the library: plug in your own buffer-management scheme.

The :class:`~repro.queueing.base.BufferManager` interface is three hooks
(``admit``, ``on_enqueued``, ``on_dequeue``); anything implementing it
drops into every topology and experiment.  As a demonstration we build
"HalfRES" — a naive scheme that reserves half of each queue's fair share
as a floor and best-efforts the rest — and race it against DynaQ on the
Fig. 3 convergence scenario.

Run:  python examples/custom_scheme.py
"""

from repro.apps.iperf import IperfApp
from repro.core.dynaq import DynaQBuffer
from repro.metrics.throughput import PortThroughputMeter
from repro.net.topology import build_star
from repro.queueing.base import BufferManager, Decision
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds


class HalfReservedBuffer(BufferManager):
    """Reserve w_i/sum(w)/2 per queue; share the other half best-effort.

    A queue may always use its reserved floor.  Beyond the floor, a
    packet is admitted only while the *unreserved* pool has room.
    """

    name = "HalfRES"

    def attach(self, port) -> None:
        super().attach(port)
        weights = port.queue_weights()
        total = sum(weights)
        self.floors = [int(port.buffer_bytes * w / total / 2)
                       for w in weights]
        self.pool = port.buffer_bytes - sum(self.floors)

    def _pool_used(self) -> int:
        used = 0
        for queue in range(self.port.num_queues):
            over = self.port.queue_bytes(queue) - self.floors[queue]
            if over > 0:
                used += over
        return used

    def admit(self, packet, queue_index) -> Decision:
        occupancy = self.port.queue_bytes(queue_index)
        if occupancy + packet.size <= self.floors[queue_index]:
            return Decision.accepted()
        if self._pool_used() + packet.size <= self.pool:
            drop = self._port_tail_drop(packet)
            return drop if drop is not None else Decision.accepted()
        self.drops += 1
        return Decision.dropped("pool exhausted")


def race(make_manager, label: str) -> None:
    net = build_star(
        num_hosts=3, rate_bps=gbps(1), rtt_ns=microseconds(500),
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler([1500] * 4),
        buffer_factory=make_manager)
    bottleneck = net.switch("s0").ports["s0->h0"]
    meter = PortThroughputMeter(net.sim, bottleneck, seconds(0.1))
    IperfApp(net.sim, net.host("h1"), destination="h0", num_flows=2,
             service_class=0, flow_id_base=0).start_at(0)
    IperfApp(net.sim, net.host("h2"), destination="h0", num_flows=16,
             service_class=1, flow_id_base=100).start_at(0)
    net.sim.run(until=seconds(0.5))
    q1 = meter.mean_rate_bps(0, start_ns=seconds(0.1)) / 1e9
    q2 = meter.mean_rate_bps(1, start_ns=seconds(0.1)) / 1e9
    print(f"{label:<12} q1={q1:.2f}G  q2={q2:.2f}G  "
          f"unfairness={abs(q1 - q2) / (q1 + q2):.3f}")


def main() -> None:
    print("custom scheme vs DynaQ on the 2-vs-16-flow scenario\n")
    race(HalfReservedBuffer, "HalfRES")
    race(DynaQBuffer, "DynaQ")
    print("\nHalfRES improves on best effort but its shared pool is still "
          "first-come-first-served;\nDynaQ's per-packet threshold exchange "
          "tracks the fair share exactly.")


if __name__ == "__main__":
    main()
