#!/usr/bin/env python3
"""Fabric-scale demo: DynaQ on a leaf-spine data center with ECMP.

Builds a small leaf-spine fabric (3 leaves x 3 spines x 3 hosts per
leaf), classifies communication pairs into 3 services backed by
different production workloads (web search, cache, hadoop), and runs a
Poisson request mix at 50 % load with PIAS + SPQ/DRR on every port.

Run:  python examples/leaf_spine_fabric.py
"""

from repro.experiments.simulation import LeafSpineConfig, run_leafspine_fct
from repro.workloads.datasets import CACHE, HADOOP, WEB_SEARCH

CONFIG = LeafSpineConfig(num_leaves=3, num_spines=3, hosts_per_leaf=3)
DISTRIBUTIONS = [WEB_SEARCH.truncated(5_000_000),
                 CACHE.truncated(5_000_000),
                 HADOOP.truncated(5_000_000)]


def main() -> None:
    print("3x3 leaf-spine, 27 hosts, 3 services "
          "(web search / cache / hadoop), load 0.5\n")
    print(f"{'scheme':<13}{'overall':>10}{'small avg':>11}"
          f"{'small p99':>11}{'done':>6}")
    for scheme in ("besteffort", "pql", "dynaq"):
        result = run_leafspine_fct(
            scheme, load=0.5, num_flows=120, num_service_queues=3,
            config=CONFIG, distributions=DISTRIBUTIONS, seed=13)
        summary = result.summary
        print(f"{result.scheme:<13}"
              f"{summary['avg_overall_ms']:>8.2f}ms"
              f"{summary['avg_small_ms']:>9.2f}ms"
              f"{summary['p99_small_ms']:>9.2f}ms"
              f"{result.completed:>6}")
    print("\nEvery switch port (leaf downlinks, uplinks, spine ports) "
          "runs the same scheme;\nECMP spreads each flow over the spines "
          "by stable flow hash.")


if __name__ == "__main__":
    main()
