#!/usr/bin/env python3
"""Multi-tenant SLA scenario: weighted service queues (gold/silver/bronze).

A data-center operator sells three service tiers and maps them to DRR
queues with weights 5:3:1 (quanta 7.5/4.5/1.5 KB).  Awkwardly, the bronze
tenant runs far more concurrent flows than gold.  This script builds the
scenario from the public API directly — topology, apps, meter — rather
than through the experiment presets, and reports how well each buffer
scheme honours the SLA weights.

Run:  python examples/weighted_tenants.py
"""

from repro.apps.iperf import IperfApp
from repro.experiments.runner import buffer_factory
from repro.metrics.fairness import throughput_shares, weighted_jain_index
from repro.metrics.throughput import PortThroughputMeter
from repro.net.topology import build_star
from repro.queueing.schedulers.drr import DRRScheduler
from repro.sim.units import gbps, kilobytes, microseconds, seconds

WEIGHTS = [5.0, 3.0, 1.0]          # gold, silver, bronze
FLOWS = [2, 4, 24]                 # bronze has 12x gold's flow count
TIERS = ["gold", "silver", "bronze"]
RTT_NS = microseconds(500)
DURATION = seconds(0.5)


def run(scheme: str):
    net = build_star(
        num_hosts=4, rate_bps=gbps(1), rtt_ns=RTT_NS,
        buffer_bytes=kilobytes(85),
        scheduler_factory=lambda: DRRScheduler(
            [1500 * weight for weight in WEIGHTS]),
        buffer_factory=buffer_factory(scheme, rtt_ns=RTT_NS))
    bottleneck = net.switch("s0").ports["s0->h0"]
    meter = PortThroughputMeter(net.sim, bottleneck, seconds(0.1))
    flow_id = 0
    for queue, flows in enumerate(FLOWS):
        app = IperfApp(net.sim, net.host(f"h{queue + 1}"),
                       destination="h0", num_flows=flows,
                       service_class=queue, flow_id_base=flow_id)
        flow_id += flows
        app.start_at(0)
    net.sim.run(until=DURATION)
    rates = [meter.mean_rate_bps(queue, start_ns=seconds(0.1))
             for queue in range(3)]
    return rates


def main() -> None:
    ideal = throughput_shares(WEIGHTS)
    print("SLA weights 5:3:1; flow counts "
          + ":".join(str(count) for count in FLOWS) + "\n")
    print(f"{'scheme':<14}" + "".join(f"{tier:>10}" for tier in TIERS)
          + f"{'wJain':>8}")
    print(f"{'(ideal)':<14}" + "".join(f"{share:>10.2f}" for share in ideal))
    for scheme in ("besteffort", "pql", "dynaq"):
        rates = run(scheme)
        shares = throughput_shares(rates)
        score = weighted_jain_index(rates, WEIGHTS)
        print(f"{scheme:<14}"
              + "".join(f"{share:>10.2f}" for share in shares)
              + f"{score:>8.3f}")
    print("\nweighted Jain = 1.0 means the tiers receive exactly their "
          "SLA ratios.")


if __name__ == "__main__":
    main()
