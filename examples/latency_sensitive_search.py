#!/usr/bin/env python3
"""Web-search latency scenario: small-flow FCT under mixed traffic.

The paper's motivating workload: a search tier issues many small
(<=100 KB) request/response flows while bulk traffic (index updates, data
backup) shares the same switch ports.  The switch runs SPQ over DRR with
two-level PIAS so every flow's first 100 KB rides the high-priority
queue.  We sweep the offered load and report the average and tail FCT of
the small flows under each buffer-management scheme.

Run:  python examples/latency_sensitive_search.py [num_flows]
"""

import sys

from repro.experiments.testbed import run_fct_experiment
from repro.workloads.datasets import WEB_SEARCH


def main() -> None:
    num_flows = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    distribution = WEB_SEARCH.truncated(5_000_000)
    loads = [0.3, 0.6]
    schemes = ["besteffort", "pql", "dynaq"]

    print(f"web-search workload, {num_flows} flows, SPQ(1)/DRR(4) + PIAS\n")
    header = (f"{'scheme':<13}{'load':>6}{'small avg':>11}"
              f"{'small p99':>11}{'overall':>10}")
    print(header)
    for load in loads:
        for scheme in schemes:
            result = run_fct_experiment(
                scheme, load=load, num_flows=num_flows,
                distribution=distribution, seed=21)
            summary = result.summary
            print(f"{result.scheme:<13}{load:>6.1f}"
                  f"{summary['avg_small_ms']:>9.2f}ms"
                  f"{summary['p99_small_ms']:>9.2f}ms"
                  f"{summary['avg_overall_ms']:>8.1f}ms")
        print()
    print("Small flows finish in ~1-2 ms thanks to the strict-priority "
          "queue;\nthe buffer scheme decides how often bursts hit a full "
          "port and pay an RTO.")


if __name__ == "__main__":
    main()
