"""Network substrate: packets, multi-queue ports, switches, hosts, topologies."""

from .host import Host
from .packet import ACK_BYTES, HEADER_BYTES, JUMBO_MTU_BYTES, MTU_BYTES, Packet
from .port import EgressPort
from .routing import ForwardingTable
from .shared_buffer import SharedBufferPool, attach_pool
from .switch import Switch
from .tokenbucket import TokenBucket, shape_port
from .validate import ValidationIssue, assert_valid, validate_network
from .topology import Network, build_leaf_spine, build_star

__all__ = [
    "Host",
    "ACK_BYTES",
    "HEADER_BYTES",
    "JUMBO_MTU_BYTES",
    "MTU_BYTES",
    "Packet",
    "EgressPort",
    "ForwardingTable",
    "SharedBufferPool",
    "attach_pool",
    "Switch",
    "TokenBucket",
    "shape_port",
    "ValidationIssue",
    "assert_valid",
    "validate_network",
    "Network",
    "build_leaf_spine",
    "build_star",
]
