"""Packet model.

A single packet class serves data segments and ACKs.  Fields mirror the
header bits the paper's mechanisms read:

* ``service_class`` — the DSCP-derived traffic class; the egress-port
  classifier maps it to a service queue index.  PIAS demotion rewrites it
  per-packet (first 100 KB of a flow ride the high-priority class).
* ``ecn_capable`` / ``ecn_ce`` — the two ECN bits: ECT and CE.  ECN-based
  schemes (TCN, MQ-ECN, PMSB, Per-Queue ECN, DynaQ's ECN mode) set CE;
  DCTCP receivers echo it back via ``ece`` on ACKs.
"""

from __future__ import annotations

from typing import Optional

# Wire sizes, in bytes.  The testbed uses a 1500 B MTU; the 100 Gbps
# simulations enable jumbo frames (9000 B), as in the paper.
HEADER_BYTES = 40      # IPv4 + TCP headers, no options
MTU_BYTES = 1500
JUMBO_MTU_BYTES = 9000
ACK_BYTES = HEADER_BYTES


class Packet:
    """One simulated packet (data segment or ACK)."""

    __slots__ = (
        "flow_id", "src", "dst", "size", "seq", "end_seq",
        "service_class", "priority", "ecn_capable", "ecn_ce",
        "is_ack", "ack_seq", "ece", "ts_echo",
        "retransmitted", "created_at", "enqueued_at", "corrupted",
    )

    def __init__(self, flow_id: int, src: str, dst: str, size: int, *,
                 seq: int = 0, end_seq: int = 0, service_class: int = 0,
                 ecn_capable: bool = False, is_ack: bool = False,
                 ack_seq: int = 0, created_at: int = 0) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size                  # total wire size, bytes
        self.seq = seq                    # first payload byte offset
        self.end_seq = end_seq            # one past last payload byte
        self.service_class = service_class
        self.priority = 0                 # pFabric priority (lower wins)
        self.ecn_capable = ecn_capable
        self.ecn_ce = False               # CE codepoint (set by switches)
        self.is_ack = is_ack
        self.ack_seq = ack_seq            # cumulative ACK (ACKs only)
        self.ece = False                  # ECN-echo flag (ACKs only)
        self.ts_echo: Optional[int] = None  # echoed send timestamp (ACKs)
        self.retransmitted = False
        self.created_at = created_at
        self.enqueued_at = 0              # set by the port at enqueue time
        self.corrupted = False            # set by a corruption fault in flight

    # Re-initialising a recycled packet must reset *every* slot so pooled
    # objects never leak stale fields (ecn_ce, corrupted, ts_echo, ...);
    # __init__ assigns all of them, so reset simply delegates.  Keeping
    # the alias explicit lets PacketPool and the pooling tests state the
    # invariant in one place (see repro.perf.pool).
    reset = __init__

    @property
    def payload(self) -> int:
        """Payload bytes carried (0 for pure ACKs)."""
        return self.end_seq - self.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return (f"<{kind} flow={self.flow_id} {self.src}->{self.dst} "
                f"seq={self.seq}:{self.end_seq} size={self.size} "
                f"cls={self.service_class}>")
