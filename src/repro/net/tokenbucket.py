"""Token-bucket rate shaping.

The paper's qdisc prototype shapes egress to 99.5 % of NIC capacity so
that queues build in the qdisc (where DynaQ runs) rather than invisibly
in NIC drivers (§IV-B).  The same primitive implements QJump-style
per-class rate limits.

:class:`TokenBucket` is the pure policy object (integer-nanosecond
arithmetic, no event-loop coupling); :func:`shape_port` wraps an
:class:`~repro.net.port.EgressPort` so its effective line rate becomes
``fraction x`` the physical rate, by stretching each packet's
transmission slot — exactly what a shaper in front of a NIC does to the
ACK clock.
"""

from __future__ import annotations

from ..sim.units import SECOND


class TokenBucket:
    """Classic token bucket: ``rate_bps`` sustained, ``burst_bytes`` deep."""

    def __init__(self, rate_bps: int, burst_bytes: int) -> None:
        if rate_bps <= 0 or burst_bytes <= 0:
            raise ValueError(
                f"rate and burst must be positive: {rate_bps}, {burst_bytes}")
        self.rate_bps = rate_bps
        self.burst_bytes = burst_bytes
        self._tokens = float(burst_bytes)
        self._last_refill_ns = 0

    def _refill(self, now_ns: int) -> None:
        if now_ns < self._last_refill_ns:
            raise ValueError("time moved backwards")
        elapsed = now_ns - self._last_refill_ns
        self._tokens = min(
            self.burst_bytes,
            self._tokens + elapsed * self.rate_bps / (8 * SECOND))
        self._last_refill_ns = now_ns

    def tokens_at(self, now_ns: int) -> float:
        """Available tokens (bytes) at ``now_ns`` (refills as a side effect)."""
        self._refill(now_ns)
        return self._tokens

    def try_consume(self, now_ns: int, size_bytes: int) -> bool:
        """Take ``size_bytes`` tokens if available."""
        self._refill(now_ns)
        if self._tokens >= size_bytes:
            self._tokens -= size_bytes
            return True
        return False

    def next_available_ns(self, now_ns: int, size_bytes: int) -> int:
        """Earliest time at which ``size_bytes`` tokens will exist."""
        self._refill(now_ns)
        deficit = size_bytes - self._tokens
        if deficit <= 0:
            return now_ns
        wait = -(-int(deficit * 8 * SECOND) // self.rate_bps)  # ceil
        return now_ns + wait


def shape_port(port, fraction: float = 0.995) -> None:
    """Shape an egress port to ``fraction`` of its physical rate.

    Implemented the way the paper's prototype does it: the scheduler
    still picks packets normally, but each transmission occupies the
    wire for ``1/fraction`` of its physical time, so sustained
    throughput converges to ``fraction x rate`` while per-packet
    latency is essentially unchanged.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    # Transmission time is computed from link_rate_bps at dequeue; scale
    # the rate the port *believes* it has.  Propagation is untouched.
    # set_link_rate also invalidates the port's memoised per-size
    # transmission times.
    port.set_link_rate(int(port.link_rate_bps * fraction))
    port.shaped_fraction = fraction
