"""Chip-wide shared-memory buffering across ports.

The paper's related-work discussion (§II-C) covers switches whose ports
draw from one on-chip SRAM pool, managed by the Choudhury-Hahne dynamic
threshold (DT) algorithm *across ports*: a port may buffer up to
``alpha * (chip_buffer - total_occupancy)``.  The paper's critique is
twofold: (a) even a large per-port allowance cannot make *queues* share
fairly, and (b) an aggressive port can take buffer that other ports
need, harming per-port fairness.

:class:`SharedBufferPool` models the chip pool; ports join it and their
admission then checks three levels: the scheme's own per-queue logic,
the port-level DT allowance, and the physical pool.  This lets the
repo reproduce the §II-C argument experimentally (see
``benchmarks/test_shared_buffer.py``) and lets DynaQ run *on top of* a
shared-memory chip, which is how it would deploy in practice.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.errors import ConfigurationError


class SharedBufferPool:
    """One switch chip's packet memory, shared by its egress ports."""

    def __init__(self, capacity_bytes: int, *, alpha: float = 1.0) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"pool capacity must be positive, got {capacity_bytes}")
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {alpha}")
        self.capacity_bytes = capacity_bytes
        self.alpha = alpha
        self._port_usage: Dict[str, int] = {}
        self.rejections = 0

    # -- membership ---------------------------------------------------------------

    def register(self, port_name: str) -> None:
        """Add a port to the pool (idempotent)."""
        self._port_usage.setdefault(port_name, 0)

    def port_names(self) -> List[str]:
        return sorted(self._port_usage)

    # -- accounting ----------------------------------------------------------------

    @property
    def total_usage(self) -> int:
        return sum(self._port_usage.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.total_usage

    def usage_of(self, port_name: str) -> int:
        return self._port_usage[port_name]

    def port_threshold(self) -> float:
        """The DT allowance currently applied to every port."""
        return self.alpha * max(self.free_bytes, 0)

    # -- admission ------------------------------------------------------------------

    def try_reserve(self, port_name: str, size: int) -> bool:
        """Reserve ``size`` bytes for a port if DT and capacity allow."""
        if port_name not in self._port_usage:
            raise ConfigurationError(
                f"port {port_name!r} is not registered with this pool")
        if size <= 0:
            raise ConfigurationError(f"size must be positive, got {size}")
        usage = self._port_usage[port_name]
        if usage + size > self.port_threshold():
            self.rejections += 1
            return False
        if self.total_usage + size > self.capacity_bytes:
            self.rejections += 1
            return False
        self._port_usage[port_name] = usage + size
        return True

    def release(self, port_name: str, size: int) -> None:
        """Return ``size`` bytes to the pool."""
        usage = self._port_usage[port_name]
        if size > usage:
            raise ConfigurationError(
                f"port {port_name!r} releasing {size} > usage {usage}")
        self._port_usage[port_name] = usage - size


def attach_pool(port, pool: SharedBufferPool) -> None:
    """Make an :class:`~repro.net.port.EgressPort` draw from ``pool``.

    Wraps the port's datapath so that every enqueue reserves pool memory
    (a DT rejection is accounted as a drop with reason ``"chip pool"``)
    and every dequeue/eviction releases it.  The port's own
    ``buffer_bytes`` remains a hard per-port cap, as in real chips where
    per-port accounting limits exist alongside the pool.
    """
    pool.register(port.name)
    original_send = port.send
    original_transmit = port._transmit_next
    original_evict = port.evict_tail

    def pooled_send(packet) -> None:
        queue_index = port._classifier(packet)
        if not pool.try_reserve(port.name, packet.size):
            port.dropped_packets += 1
            from ..sim.trace import TOPIC_PACKET_DROP
            port._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          "chip pool")
            return
        before = port.enqueued_packets
        original_send(packet)
        if port.enqueued_packets == before:
            # The port's own scheme dropped it; return the reservation.
            pool.release(port.name, packet.size)

    def pooled_transmit() -> None:
        buffered_before = port.total_bytes()
        original_transmit()
        freed = buffered_before - port.total_bytes()
        if freed > 0:
            pool.release(port.name, freed)

    def pooled_evict(queue_index: int):
        packet = original_evict(queue_index)
        if packet is not None:
            pool.release(port.name, packet.size)
        return packet

    port.send = pooled_send
    port._transmit_next = pooled_transmit
    # The port caches its transmit-completion callback at construction
    # (fast path schedules _transmit_next directly); re-point it at the
    # wrapper so completions release pool memory too.
    port._tx_complete = pooled_transmit
    port.evict_tail = pooled_evict
