"""Topology validation.

Misbuilt topologies fail in confusing ways (a missing route surfaces as
an RTO storm half a simulated second in).  ``validate_network`` checks a
built :class:`~repro.net.topology.Network` *before* traffic flows and
returns a list of human-readable problems:

* every host has a NIC and the NIC is connected;
* every switch egress port is connected to something;
* every switch can forward to every host (except hosts directly behind
  none of its ports — a switch must either route or not exist on the
  path, so we require full reachability tables, which both builders
  produce);
* scheduler queue counts are consistent across a switch's ports (mixed
  queue counts are legal for the library but almost always a bug in an
  experiment, so they are reported as warnings).
"""

from __future__ import annotations

from typing import List

from .topology import Network


class ValidationIssue:
    """One problem found in a network, with severity."""

    __slots__ = ("severity", "message")

    ERROR = "error"
    WARNING = "warning"

    def __init__(self, severity: str, message: str) -> None:
        self.severity = severity
        self.message = message

    def __repr__(self) -> str:
        return f"[{self.severity}] {self.message}"

    def __eq__(self, other) -> bool:
        return (isinstance(other, ValidationIssue)
                and (self.severity, self.message)
                == (other.severity, other.message))


def validate_network(net: Network) -> List[ValidationIssue]:
    """Check wiring and routing; returns an empty list when healthy."""
    issues: List[ValidationIssue] = []
    host_names = set(net.hosts)

    for name, host in net.hosts.items():
        if host.nic is None:
            issues.append(ValidationIssue(
                ValidationIssue.ERROR, f"host {name} has no NIC"))
        elif host.nic.peer is None:
            issues.append(ValidationIssue(
                ValidationIssue.ERROR,
                f"host {name}'s NIC is not connected"))

    for switch_name, switch in net.switches.items():
        queue_counts = set()
        for port in switch.port_list():
            if port.peer is None:
                issues.append(ValidationIssue(
                    ValidationIssue.ERROR,
                    f"{switch_name} port {port.name} is not connected"))
            queue_counts.add(port.num_queues)
            weights = port.queue_weights()
            if not weights or any(weight <= 0 for weight in weights):
                # Zero/negative weights poison every weight-derived
                # quantity (DRR quanta, DynaQ S_i) the first time a
                # packet arrives; catch them while the stack trace still
                # points at configuration.
                issues.append(ValidationIssue(
                    ValidationIssue.ERROR,
                    f"{switch_name} port {port.name} has non-positive "
                    f"scheduler weights {weights}"))
        if len(queue_counts) > 1:
            issues.append(ValidationIssue(
                ValidationIssue.WARNING,
                f"{switch_name} mixes queue counts {sorted(queue_counts)}"))
        reachable = set(switch.table.destinations())
        missing = host_names - reachable
        for destination in sorted(missing):
            issues.append(ValidationIssue(
                ValidationIssue.ERROR,
                f"{switch_name} has no route to {destination}"))
    return issues


def assert_valid(net: Network) -> None:
    """Raise ``ValueError`` listing every error-severity issue."""
    errors = [issue for issue in validate_network(net)
              if issue.severity == ValidationIssue.ERROR]
    if errors:
        details = "\n".join(str(issue) for issue in errors)
        raise ValueError(f"invalid network:\n{details}")
