"""Switch node: forwarding + per-port buffering.

A switch owns one :class:`~repro.net.port.EgressPort` per output link plus
a forwarding table.  Receiving a packet is a table lookup followed by an
egress-port ``send`` — all buffering, scheduling, and the buffer-management
scheme under test live in the port.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.engine import Simulator
from .packet import Packet
from .port import EgressPort
from .routing import ForwardingTable


class Switch:
    """An output-queued switch."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: Dict[str, EgressPort] = {}
        self.table = ForwardingTable(name)
        self.received_packets = 0

    def add_port(self, port: EgressPort) -> EgressPort:
        """Register an egress port (keyed by its name)."""
        self.ports[port.name] = port
        return self.ports[port.name]

    def add_route(self, destination: str, port: EgressPort) -> None:
        """Forward packets for ``destination`` out of ``port``."""
        if port.name not in self.ports:
            self.add_port(port)
        self.table.add_route(destination, port)

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet to the proper egress port."""
        self.received_packets += 1
        self.table.lookup(packet).send(packet)

    def port_list(self) -> List[EgressPort]:
        """All egress ports, in insertion order."""
        return list(self.ports.values())
