"""Multi-queue egress port.

The egress port is where everything in the paper happens: packets arriving
for an output link are classified into one of M service queues, pass the
buffer manager's admission check (DynaQ / BestEffort / PQL / ECN schemes),
and are later pulled by a work-conserving packet scheduler (DRR / WRR /
SPQ) when the link is free.

One object models the port buffer, the service queues, the scheduler
binding, and the link (rate + propagation delay) to the downstream node.
It implements both observation protocols:

* :class:`~repro.queueing.base.PortView` for buffer managers, and
* :class:`~repro.queueing.schedulers.base.QueueView` for schedulers.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..perf.config import active_config
from ..queueing.base import BufferManager
from ..queueing.schedulers.base import Scheduler
from ..queueing.schedulers.drr import DRRScheduler
from ..sim.engine import Event, Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PACKET_MARK,
    TOPIC_QUEUE_SNAPSHOT,
    TraceBus,
)
from ..sim.units import transmission_time
from .packet import Packet

Classifier = Callable[[Packet], int]

#: Topics a port publishes per packet; the fast publish path caches one
#: "anyone listening?" flag per entry against the bus version.
_PORT_TOPICS = (TOPIC_PACKET_DROP, TOPIC_PACKET_ENQUEUE,
                TOPIC_PACKET_DEQUEUE, TOPIC_PACKET_MARK)

#: Size cap for the per-size transmission-time memo.  Real traffic uses a
#: handful of sizes; a randomized-size workload in a long-lived serve
#: daemon must not grow the dict without bound, so on hitting the cap the
#: memo is cleared and rebuilt from the working set (results are pure
#: functions of (size, rate), so clearing never changes an answer).
_TX_CACHE_CAP = 512

#: Batched link advance: initial / maximum run length.  The cap adapts —
#: doubling on a fully committed batch, shrinking to the committed length
#: on a mispredicted unwind — so steady drains grow long batches while
#: the arrival predictor (not the cap) bounds batches on arrival-heavy
#: phases.
_BATCH_CAP_START = 16
_BATCH_CAP_MAX = 64


class EgressPort:
    """One output port of a host NIC or switch."""

    def __init__(self, sim: Simulator, name: str, *, rate_bps: int,
                 prop_delay_ns: int, buffer_bytes: int,
                 scheduler: Scheduler, buffer_manager: BufferManager,
                 classifier: Optional[Classifier] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if rate_bps <= 0 or buffer_bytes <= 0 or prop_delay_ns < 0:
            raise ConfigurationError(
                f"bad port parameters for {name}: rate={rate_bps}, "
                f"buffer={buffer_bytes}, prop={prop_delay_ns}")
        self.sim = sim
        self.name = name
        self.link_rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.buffer_manager = buffer_manager
        self.num_queues = scheduler.num_queues
        self._classifier = classifier or self._default_classifier
        self.trace = trace
        self.peer = None  # downstream node, set by connect()

        self._queues: List[Deque[Packet]] = [
            deque() for _ in range(self.num_queues)]
        self._queue_bytes: List[int] = [0] * self.num_queues
        self._total_bytes = 0
        self._busy = False

        # Fault-injection state (see repro.faults): a downed link drops
        # arrivals and in-flight packets, a stalled port stops draining,
        # and a positive corruption rate flips packets to checksum-fail.
        self.link_up = True
        self.stalled = False
        self.corrupt_rate = 0.0
        self._corrupt_rng = None
        # In-flight deliveries as (event, generation) pairs: with event
        # pooling the simulator recycles executed events, so a retained
        # handle is only trustworthy while its generation matches (see
        # repro.sim.engine's module docstring).
        self._in_flight: Deque[Tuple[Event, int]] = deque()
        # Batched link advance state (eligibility is computed further
        # down, once the hooks it depends on are known; the slot itself
        # must exist before any unwind-checking method can run).  The
        # arrival tracker predicts the next arrival burst from the gap
        # between the last two distinct arrival timestamps; batches stop
        # extending before the predicted time, which turns almost every
        # unwind into the cheap everything-already-committed case.
        self._batch = None
        self._batch_cap = _BATCH_CAP_START
        self._last_arrival_ns = 0
        self._arrival_period = 0

        # Counters for experiments and assertions.
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.inflight_losses = 0
        self.corrupted_packets = 0
        # Conservation breakdown: packets that left a queue *without*
        # being transmitted.  Together with the buffered packets these
        # close the port-local conservation equation audited by the
        # soak invariant engine (see audit_conservation):
        #   enqueued == transmitted + buffered + evicted + dequeue_drops
        self.evicted_packets = 0
        self.dequeue_drops = 0
        # Batched per-queue transmit counters: stat collectors read these
        # on sample boundaries instead of subscribing to every
        # packet.dequeue event (see PortThroughputMeter).
        self.queue_tx_bytes: List[int] = [0] * self.num_queues

        # Publish-path selection (construction-time, never per packet):
        # the fast path caches per-topic subscriber flags, refreshed by a
        # bus watcher on every (un)subscribe, plus one all-silent flag
        # (_quiet) that the hot call sites test inline; the reference
        # path is the original lazy-lambda emit on every publish.
        self._topic_live: Dict[str, bool] = {}
        self._quiet = False
        if active_config().lazy_trace:
            self._publish = self._publish_cached
            if trace is None:
                self._quiet = True
            else:
                trace.add_watcher(self._refresh_topic_flags)
                self._refresh_topic_flags()
        # Memoised transmission_time per packet size (fast path): real
        # traffic uses a handful of sizes (MTU, ACK), so the per-packet
        # ceil division collapses to a dict hit.  None = compute fresh.
        self._tx_cache: Optional[Dict[int, int]] = (
            {} if active_config().tx_time_cache else None)
        # Construction-time call elision (fast path): skip buffer-manager
        # hooks that are provably the base-class no-ops, inline the
        # default classifier, and let a DRR scheduler read the queue
        # deques directly instead of through per-packet protocol calls.
        inline = active_config().inline_hot_calls
        manager_cls = type(buffer_manager)
        self._on_enqueued = (
            None if inline and manager_cls.on_enqueued
            is BufferManager.on_enqueued else buffer_manager.on_enqueued)
        self._on_dequeue = (
            None if inline and manager_cls.on_dequeue
            is BufferManager.on_dequeue else buffer_manager.on_dequeue)
        self._inline_classify = inline and classifier is None
        # Inline-admission fast path: when the manager publishes the
        # contract list (see BufferManager.inline_admit_thresholds),
        # send()/send_many() accept under-threshold packets without the
        # admit() call.  The manager reference is pinned here; the list
        # itself is re-read per packet/burst because managers may
        # replace it wholesale (DynaQ reinitialize).
        self._fast_admit = buffer_manager if inline else None
        if inline:
            bind_queues = getattr(scheduler, "bind_queues", None)
            if bind_queues is not None:
                bind_queues(self._queues)
        # Per-packet in-flight tracking vs heap scan on (rare) link-down:
        # see set_link_down.
        self._scan_inflight = active_config().heap_scan_inflight
        # Opt-in queue diagnosis (PrintQueue-style sketches, see
        # repro.diagnosis): constructed only under the queue_diagnosis
        # switch, so the default datapath pays one `is not None` test
        # per hook site and nothing else.  The import stays lazy to keep
        # the diagnosis package out of the core import graph.
        self._sketch = None
        if active_config().queue_diagnosis:
            from ..diagnosis.sketch import PortDiagnosisSketch
            self._sketch = PortDiagnosisSketch(name)
        self._deliver = None  # cached peer.receive, set by connect()
        # Receivers that implement receive_many(packets) declare their
        # state is insensitive to intra-batch delivery timing; batched
        # link advance then coalesces a batch's deliveries into ONE
        # event at the last packet's delivery time (see _deliver_batch).
        # The bound method is cached so the link-down heap scan can
        # match pending batch deliveries by callback identity, exactly
        # like _deliver.
        self._deliver_many = None
        self._deliver_batch_cb = self._deliver_batch
        # Per-build scratch (at most one batch is live at a time): the
        # replay-anchor containers and the queue-index list are reused
        # across builds.  packets/departs are NOT reusable — pending
        # delivery events keep referencing them after the next build
        # starts.
        self._scratch_state = ([], deque(), [])
        self._scratch_qidx = []
        # Geometric lookahead for the arrival-prediction bound while the
        # source is silent (see _extend_batch).
        self._extrap_streak = 1
        # Burst-local drop memo (send_many): per-queue last repeat-pure
        # dropped size + decision.  Valid only within one send_many call
        # and only between accepts/unwinds; _memo_zeros resets it.
        self._drop_memo_sizes = [0] * self.num_queues
        self._drop_memo_decs: List[Optional[object]] = (
            [None] * self.num_queues)
        self._memo_zeros = [0] * self.num_queues
        # Transmit-completion callback, bound once: the fast path skips
        # the _on_transmit_complete indirection (one Python call per
        # packet) and hands the scheduler _transmit_next directly.
        self._tx_complete = (self._transmit_next if inline
                             else self._on_transmit_complete)
        # Batched link advance (see docs/performance.md): commit a run of
        # back-to-back transmissions in one pass, schedule one completion
        # event instead of N transmit-completes, and unwind to the
        # per-packet boundary when anything lands mid-batch.  Statically
        # eligible only when every per-packet dequeue side effect is
        # provably absent: plain DRR (whose selection we can snapshot and
        # replay), no dequeue hook, no diagnosis sketch.  Tracing,
        # corruption, and round tracking are re-checked per batch attempt
        # because they can change mid-run.
        self._lazy_pub = active_config().lazy_trace
        self._batch_ok = (active_config().batched_link_advance
                          and type(scheduler) is DRRScheduler
                          and self._on_dequeue is None
                          and self._sketch is None)
        # Inline-DRR fast path (construction-time type pin, like
        # _batch_ok): send() and _transmit_next() replicate
        # on_enqueue/select against the scheduler's own state
        # containers, skipping a Python call per packet.  The container
        # identities are stable for the port's lifetime — replay and
        # reconfiguration mutate them in place.
        self._drr = ((scheduler._deficits, scheduler._active,
                      scheduler._in_active)
                     if inline and type(scheduler) is DRRScheduler
                     else None)

        bind_clock = getattr(scheduler, "bind_clock", None)
        if bind_clock is not None:
            # Bound method, not a lambda: the scheduler retains the clock
            # for the run's lifetime and lambdas would break snapshots.
            bind_clock(self.now)
        if trace is not None:
            buffer_manager.bind_trace(trace, name)
        buffer_manager.attach(self)

    # -- wiring -----------------------------------------------------------------

    def connect(self, peer) -> None:
        """Attach the downstream node (anything with ``receive(packet)``)."""
        self.peer = peer
        # One bound method per port, reused for every delivery: saves the
        # per-packet attribute chain + bound-method allocation, and gives
        # the heap-scan fault path a unique identity to match on.
        self._deliver = peer.receive
        # Opt-in coalesced delivery (see _deliver_batch): a receiver
        # exposing receive_many(packets) accepts a whole batch in one
        # call at the last packet's delivery time.
        self._deliver_many = getattr(peer, "receive_many", None)

    def _default_classifier(self, packet: Packet) -> int:
        return min(packet.service_class, self.num_queues - 1)

    def set_classifier(self, classifier: Optional[Classifier]) -> None:
        """Swap the packet classifier at runtime (``None`` restores the
        default service-class mapping).

        The supported way to change classification after construction:
        it also turns off the inlined default-classifier fast path so
        the new function is actually consulted.
        """
        if self._batch is not None:
            self._unwind_batch()
        self._classifier = classifier or self._default_classifier
        self._inline_classify = (classifier is None
                                 and active_config().inline_hot_calls)

    # -- PortView protocol ---------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return self._total_bytes

    def queue_weights(self) -> List[float]:
        return self.scheduler.weights

    def now(self) -> int:
        return self.sim.now

    # -- QueueView protocol ----------------------------------------------------------

    def queue_empty(self, index: int) -> bool:
        return not self._queues[index]

    def head_size(self, index: int) -> int:
        return self._queues[index][0].size

    # -- datapath ----------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this port (classification + admission)."""
        now = self.sim.now
        batch = self._batch
        if batch is not None and batch[3][-2] >= now:
            # An arrival lands mid-batch with transmissions not yet
            # started (starts[-1] = departs[-2]): fall back to the
            # per-packet boundary *before* classification/admission so
            # occupancy, scheduler state, and counters are
            # per-packet-exact for every decision below.  A fully
            # committed batch is already exact and stays untouched.
            self._unwind_batch()
        if now != self._last_arrival_ns:
            self._arrival_period = now - self._last_arrival_ns
            self._last_arrival_ns = now
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        if self._inline_classify:
            service_class = packet.service_class
            last = self.num_queues - 1
            queue_index = service_class if service_class < last else last
        else:
            queue_index = self._classifier(packet)
        quiet = self._quiet
        sketch = self._sketch
        if not self.link_up:
            self.dropped_packets += 1
            if sketch is not None:
                self._sketch_drop(packet, queue_index, "link down")
            if not quiet:
                self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                              "link down")
            return
        size = packet.size
        fadmit = self._fast_admit
        thresholds = (fadmit.inline_admit_thresholds
                      if fadmit is not None else None)
        if (thresholds is None
                or self._queue_bytes[queue_index] + size
                > thresholds[queue_index]
                or self._total_bytes + size > self.buffer_bytes):
            decision = self.buffer_manager.admit(packet, queue_index)
            if not decision.accept:
                self.dropped_packets += 1
                if sketch is not None:
                    self._sketch_drop(packet, queue_index,
                                      decision.reason)
                if not quiet:
                    self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                                  decision.reason)
                return
            if decision.mark and packet.ecn_capable:
                packet.ecn_ce = True
                if not quiet:
                    self._publish(TOPIC_PACKET_MARK, packet, queue_index,
                                  "enqueue")
        packet.enqueued_at = now
        self._queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += size
        self._total_bytes += size
        self.enqueued_packets += 1
        drr = self._drr
        if drr is not None:
            # Inline replica of DRRScheduler.on_enqueue: activate an
            # idle queue with zero deficit.
            if not drr[2][queue_index]:
                drr[2][queue_index] = True
                drr[0][queue_index] = 0.0
                drr[1].append(queue_index)
        else:
            self.scheduler.on_enqueue(queue_index)
        on_enqueued = self._on_enqueued
        if on_enqueued is not None:
            on_enqueued(packet, queue_index)
        if sketch is not None:
            self._sketch_enqueue(packet, queue_index)
        if not quiet:
            self._publish(TOPIC_PACKET_ENQUEUE, packet, queue_index, "")
        if not self._busy:
            self._transmit_next()

    def send_many(self, packets: List[Packet]) -> None:
        """Offer a burst of packets arriving at the same timestamp.

        Semantically identical to calling :meth:`send` once per packet;
        bulk drivers (the bench feeders, trace replayers) use it so the
        per-arrival Python call overhead is paid once per burst.  Only
        loop-invariant state is hoisted — the clock (no events can run
        while the loop spins), classification mode, trace quiescence and
        the admission entry point; anything a per-packet side effect can
        change (link state, batch liveness, port busyness) is re-checked
        per packet exactly as :meth:`send` would.  Keep the loop body in
        lockstep with send().
        """
        now = self.sim.now
        if now != self._last_arrival_ns:
            self._arrival_period = now - self._last_arrival_ns
            self._last_arrival_ns = now
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        inline_classify = self._inline_classify
        classifier = self._classifier
        last = self.num_queues - 1
        quiet = self._quiet
        sketch = self._sketch
        admit = self.buffer_manager.admit
        queues = self._queues
        queue_bytes = self._queue_bytes
        drr = self._drr
        on_enqueued = self._on_enqueued
        # Inline-admission contract: the list identity can only change
        # through external reconfiguration, never from inside this loop
        # (admit() mutates thresholds in place), so one fetch per burst
        # is exact.
        fadmit = self._fast_admit
        thresholds = (fadmit.inline_admit_thresholds
                      if fadmit is not None else None)
        buffer_bytes = self.buffer_bytes
        # Drop memo (the repeat-pure contract; see BufferManager): within
        # this burst, a (queue, size) that just drop-pure-failed fails
        # identically until an accept or unwind mutates port or manager
        # state — so drop storms pay one admit() per queue, not one per
        # packet.
        pure_drops = (fadmit.pure_drop_decisions
                      if fadmit is not None else ())
        memo_sizes = self._drop_memo_sizes if pure_drops else None
        memo_decs = self._drop_memo_decs
        memo_zeros = self._memo_zeros
        memo_live = False
        if memo_sizes is not None:
            # Stale entries from the previous burst must never be
            # trusted once this burst stores its first memo.
            memo_sizes[:] = memo_zeros
        for packet in packets:
            batch = self._batch
            if batch is not None and batch[3][-2] >= now:
                self._unwind_batch()
                if memo_live:
                    memo_sizes[:] = memo_zeros
                    memo_live = False
            if inline_classify:
                service_class = packet.service_class
                queue_index = (service_class if service_class < last
                               else last)
            else:
                queue_index = classifier(packet)
            if not self.link_up:
                self.dropped_packets += 1
                if sketch is not None:
                    self._sketch_drop(packet, queue_index, "link down")
                if not quiet:
                    self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                                  "link down")
                continue
            size = packet.size
            if (thresholds is None
                    or queue_bytes[queue_index] + size
                    > thresholds[queue_index]
                    or self._total_bytes + size > buffer_bytes):
                if memo_live and memo_sizes[queue_index] == size:
                    decision = memo_decs[queue_index]
                    fadmit.repeat_drop(decision)
                else:
                    decision = admit(packet, queue_index)
                    if (memo_sizes is not None
                            and decision in pure_drops):
                        memo_sizes[queue_index] = size
                        memo_decs[queue_index] = decision
                        memo_live = True
                if not decision.accept:
                    self.dropped_packets += 1
                    if sketch is not None:
                        self._sketch_drop(packet, queue_index,
                                          decision.reason)
                    if not quiet:
                        self._publish(TOPIC_PACKET_DROP, packet,
                                      queue_index, decision.reason)
                    continue
                if decision.mark and packet.ecn_capable:
                    packet.ecn_ce = True
                    if not quiet:
                        self._publish(TOPIC_PACKET_MARK, packet,
                                      queue_index, "enqueue")
                if memo_live:
                    # This accept (and any steal inside it) mutated
                    # state memoised drops depend on.
                    memo_sizes[:] = memo_zeros
                    memo_live = False
            elif memo_live:
                # Inline-admit accept: mutates occupancy too.
                memo_sizes[:] = memo_zeros
                memo_live = False
            packet.enqueued_at = now
            queues[queue_index].append(packet)
            queue_bytes[queue_index] += size
            self._total_bytes += size
            self.enqueued_packets += 1
            if drr is not None:
                if not drr[2][queue_index]:
                    drr[2][queue_index] = True
                    drr[0][queue_index] = 0.0
                    drr[1].append(queue_index)
            else:
                self.scheduler.on_enqueue(queue_index)
            if on_enqueued is not None:
                on_enqueued(packet, queue_index)
            if sketch is not None:
                self._sketch_enqueue(packet, queue_index)
            if not quiet:
                self._publish(TOPIC_PACKET_ENQUEUE, packet, queue_index,
                              "")
            if not self._busy:
                self._transmit_next()

    def _transmit_next(self) -> None:
        if self.stalled or not self.link_up:
            # Drain stall or downed link: park the port.  set_link_up() /
            # resume() restart the transmit loop.
            self._busy = False
            return
        sim = self.sim
        scheduler = self.scheduler
        drr = self._drr
        if drr is not None and not scheduler._track_rounds:
            # Inline replica of DRRScheduler.select (round tracking
            # re-checked per call — MQ-ECN can enable it mid-run).
            deficits, active, in_active = drr
            queues = self._queues
            quanta = scheduler.quanta
            queue_index = None
            while active:
                qi = active[0]
                q = queues[qi]
                if q:
                    d = deficits[qi]
                    head_size = q[0].size
                    if d >= head_size:
                        deficits[qi] = d - head_size
                        queue_index = qi
                        break
                    deficits[qi] = d + quanta[qi]
                    active.rotate(-1)
                else:
                    active.popleft()
                    in_active[qi] = False
                    deficits[qi] = 0.0
        else:
            queue_index = scheduler.select(self)
        if queue_index is None:
            self._busy = False
            return
        packet = self._queues[queue_index].popleft()
        size = packet.size
        self._queue_bytes[queue_index] -= size
        self._total_bytes -= size
        on_dequeue = self._on_dequeue
        # None means the manager's hook is the base-class unconditional
        # accept (construction-time check), so the decision dance below
        # can be skipped entirely.
        decision = None if on_dequeue is None else on_dequeue(
            packet, queue_index)
        cache = self._tx_cache
        if cache is not None:
            tx_ns = cache.get(size)
            if tx_ns is None:
                tx_ns = transmission_time(size, self.link_rate_bps)
                if len(cache) >= _TX_CACHE_CAP:
                    cache.clear()
                cache[size] = tx_ns
        else:
            tx_ns = transmission_time(size, self.link_rate_bps)
        self._busy = True
        quiet = self._quiet
        sketch = self._sketch
        if decision is not None:
            if not decision.accept:
                # Dequeue-time drop (TCN drop variant): the scheduling
                # slot is already committed, so the wire idles for the
                # packet's transmission time — the very pathology §II-C
                # describes.
                self.dropped_packets += 1
                self.dequeue_drops += 1
                if sketch is not None:
                    # The packet *did* queue (delay attribution stands)
                    # and then dropped at the head.
                    self._sketch_dequeue(packet, queue_index)
                    self._sketch_drop(packet, queue_index, decision.reason)
                if not quiet:
                    self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                                  decision.reason)
                self.sim.schedule(tx_ns, self._tx_complete)
                return
            if decision.mark and packet.ecn_capable:
                packet.ecn_ce = True
                if not quiet:
                    self._publish(TOPIC_PACKET_MARK, packet, queue_index,
                                  "dequeue")
        if sketch is not None:
            self._sketch_dequeue(packet, queue_index)
        if not quiet:
            self._publish(TOPIC_PACKET_DEQUEUE, packet, queue_index, "")
        self.transmitted_packets += 1
        self.transmitted_bytes += size
        self.queue_tx_bytes[queue_index] += size
        if (self.corrupt_rate > 0.0 and self._corrupt_rng is not None
                and self._corrupt_rng.random() < self.corrupt_rate):
            packet.corrupted = True
            self.corrupted_packets += 1
        # Batch eligibility is decided per attempt: tracing of dequeues,
        # corruption, and round tracking can all change mid-run.  The
        # unwind anchor is taken inside _extend_batch (after this first,
        # already-performed select), and only once a second packet is
        # known to join.
        if (self._batch_ok and sim._running
                and self.corrupt_rate == 0.0
                and not scheduler._track_rounds
                and (self._quiet or self.trace is None
                     or (self._lazy_pub and not
                         self._topic_live.get(TOPIC_PACKET_DEQUEUE)))
                and self._extend_batch(packet, queue_index, tx_ns)):
            return
        if sim.pooling:
            # Fused inline of the two schedule() calls (the same pattern
            # as the batch finalize in _extend_batch), sharing one round
            # of free-list/seq bookkeeping.  Completion first: its seq
            # must stay below the delivery's so a zero-prop-delay tie
            # keeps completion-before-delivery order.
            comp_time = sim.now + tx_ns
            free = sim._free
            seq = sim._seq
            cal = sim._cal
            cb = self._tx_complete
            if free:
                comp = free.pop()
                comp.time = comp_time
                comp.seq = seq
                comp.callback = cb
                comp.args = ()
                comp.cancelled = False
                comp.gen += 1
                sim.events_reused += 1
            else:
                comp = Event(comp_time, seq, cb, ())
            dtime = comp_time + self.prop_delay_ns
            dseq = seq + 1
            cb = self._deliver
            if free:
                delivery = free.pop()
                delivery.time = dtime
                delivery.seq = dseq
                delivery.callback = cb
                delivery.args = (packet,)
                delivery.cancelled = False
                delivery.gen += 1
                sim.events_reused += 1
            else:
                delivery = Event(dtime, dseq, cb, (packet,))
            sim._seq = dseq + 1
            sim._live += 2
            if cal is not None:
                cal.push((comp_time, seq, comp))
                cal.push((dtime, dseq, delivery))
            else:
                heap = sim._heap
                heappush(heap, (comp_time, seq, comp))
                heappush(heap, (dtime, dseq, delivery))
                if len(heap) >= sim._cal_trigger:
                    sim._engage_calendar()
        else:
            sim.schedule(tx_ns, self._tx_complete)
            delivery = sim.schedule(tx_ns + self.prop_delay_ns,
                                    self._deliver, packet)
        if not self._scan_inflight:
            self._track_in_flight(delivery)

    def _on_transmit_complete(self) -> None:
        self._transmit_next()

    # -- batched link advance ------------------------------------------------------

    def _extend_batch(self, first: Packet, first_q: int,
                      tx_first: int) -> bool:
        """Try to grow the just-committed transmission of ``first`` into a
        batch by driving the *real* scheduler forward.

        Each extension step calls ``scheduler.select()`` — so deficit
        grants, rotations, and retirements evolve exactly as the
        per-packet path would evolve them — and eagerly commits the
        chosen packet: pops it, applies the transmit counters, and
        records its departure time.  One batch-completion event replaces
        the per-packet transmit-completes; the suppressed events are
        credited back on completion so ``events_executed`` matches the
        per-packet path.  The scheduler snapshot anchoring
        :meth:`_replay_prefix` is taken *after* ``first``'s select (which
        the caller already performed) and only once a second packet is
        known to join, so failed builds cost no allocations.

        Two rules keep the common case cheap:

        * every stop decision that *can* be made before ``select()`` is
          made before it (empty active list, empty head queue, predicted
          arrival, cap) — once select runs, its packet is committed, so
          a finished build never holds scheduler mutations beyond its
          last committed packet and an all-committed unwind needs no
          replay;
        * extension stops once the next transmission would *start* at or
          after ``_last_arrival_ns + _arrival_period``, the predicted
          next arrival burst.  The bound is start-based: a packet whose
          transmission starts before the arrival is on the wire when the
          burst lands on the per-packet path too, and the arrival-time
          keep-alive check (all starts < now) keeps such a batch
          committed.  On periodic workloads (every bench feeder) the
          prediction is exact and batches tile the inter-arrival window,
          tail slot included.  The bound is advisory only — an early
          arrival still lands mid-batch — since the unwind path keeps
          mispredictions correct.

        Returns ``False`` — with all state per-packet-correct — when no
        second packet can join (then the caller schedules the normal
        per-packet events for ``first``).
        """
        scheduler = self.scheduler
        active = scheduler._active
        if not active:
            return False
        queues = self._queues
        sim = self.sim
        now = sim.now
        horizon = sim._run_until
        end = now + tx_first
        if horizon is not None and end > horizon:
            # The clock will stop before this transmission completes;
            # stay per-packet so no state is committed past the horizon.
            return False
        period = self._arrival_period
        if period > 0:
            bound = self._last_arrival_ns + period
            if bound <= now:
                # The predicted arrival never came (the source paused or
                # finished); extrapolate along the period grid so the
                # bound stays ahead of the clock.  The lookahead doubles
                # on each consecutive arrival-less build — a draining
                # port grows its batches geometrically instead of
                # re-building every period — and an actual arrival
                # resets it.  Advisory only: if the source resumes
                # mid-batch, the arrival-time unwind restores
                # per-packet-exact state.
                streak = self._extrap_streak
                bound += ((now - bound) // period + streak) * period
                if streak < 64:
                    self._extrap_streak = streak + streak
            else:
                self._extrap_streak = 1
            if horizon is not None and horizon < bound:
                bound = horizon
        else:
            bound = horizon
        if bound is not None and end >= bound:
            # The second packet would start at or after the predicted
            # arrival.  The bound is start-based, not departure-based: a
            # packet whose transmission *starts* before the arrival is
            # exactly what the per-packet path would have on the wire
            # when the burst lands, and the arrival-time keep-alive check
            # (starts[-1] = departs[-2] < now) keeps such a batch
            # committed — so the window-tail packet joins its batch
            # instead of falling back to per-packet events.
            return False
        ni = active[0]
        nq = queues[ni]
        if not nq:
            # The head queue emptied (``first`` itself usually drained
            # it).  Probe — mutation-free — for any non-empty active
            # queue: with none, there is no second packet and the build
            # fails without touching scheduler state.
            for qi in active:
                if queues[qi]:
                    break
            else:
                return False
        # A second packet will join: snapshot the post-first-select
        # scheduler state into the reusable scratch containers as the
        # replay anchor.  Taken *before* the leading retirement walk
        # below — those retirements belong to the second select, and
        # :meth:`_replay_prefix` re-runs real ``select()`` calls, which
        # repeat them.
        deficits_l = scheduler._deficits
        in_active_l = scheduler._in_active
        sched_state = self._scratch_state
        a_def, a_act, a_ia = sched_state
        a_def[:] = deficits_l
        a_act.clear()
        a_act.extend(active)
        a_ia[:] = in_active_l
        if not nq:
            # Leading retirements, exactly as the next select would
            # perform them; the probe above guarantees a non-empty
            # active queue stops the walk before ``active`` drains.
            while True:
                active.popleft()
                in_active_l[ni] = False
                deficits_l[ni] = 0.0
                ni = active[0]
                nq = queues[ni]
                if nq:
                    break
        cache = self._tx_cache
        rate = self.link_rate_bps
        head = nq[0].size
        if cache is not None:
            tx_head = cache.get(head)
            if tx_head is None:
                tx_head = transmission_time(head, rate)
                if len(cache) >= _TX_CACHE_CAP:
                    cache.clear()
                cache[head] = tx_head
        else:
            tx_head = transmission_time(head, rate)
        quanta = scheduler.quanta
        queue_bytes = self._queue_bytes
        qtx = self.queue_tx_bytes
        cap = self._batch_cap
        packets = [first]
        qidx = self._scratch_qidx
        qidx.clear()
        qidx.append(first_q)
        departs = [end]
        add_pkt = packets.append
        add_q = qidx.append
        add_dep = departs.append
        t = end
        count = 1
        batch_bytes = 0
        while True:
            # Inline replica of DRRScheduler.select — _batch_ok pins the
            # scheduler type and the caller re-checks round tracking per
            # attempt: retire empty heads, grant-and-rotate until the
            # head deficit covers the head packet.  Mutates exactly the
            # state select() would, saving a Python call per commit.
            while True:
                qi = active[0]
                queue = queues[qi]
                if queue:
                    d = deficits_l[qi]
                    size = queue[0].size
                    if d >= size:
                        deficits_l[qi] = d - size
                        break
                    deficits_l[qi] = d + quanta[qi]
                    active.rotate(-1)
                else:
                    # Retire.  Some other active queue is non-empty (the
                    # pre-checked head is, and nothing pops it while the
                    # replica walks), so active never drains here.
                    active.popleft()
                    in_active_l[qi] = False
                    deficits_l[qi] = 0.0
            pkt = queue[0]
            if size == head:
                tx_ns = tx_head
            elif cache is not None:
                tx_ns = cache.get(size)
                if tx_ns is None:
                    tx_ns = transmission_time(size, rate)
                    if len(cache) >= _TX_CACHE_CAP:
                        cache.clear()
                    cache[size] = tx_ns
            else:
                tx_ns = transmission_time(size, rate)
            depart = t + tx_ns
            if horizon is not None and depart > horizon:
                # This candidate must stay queued, but its select()
                # already advanced the scheduler — rebuild the
                # committed-prefix state wholesale.
                self._replay_prefix(sched_state, packets, qidx, count)
                break
            queue.popleft()
            queue_bytes[qi] -= size
            qtx[qi] += size
            batch_bytes += size
            add_pkt(pkt)
            add_q(qi)
            add_dep(depart)
            t = depart
            count += 1
            # Mutation-free pre-checks for the next candidate.
            if count >= cap or not active:
                break
            if bound is not None and t >= bound:
                # Next start would land on/after the predicted arrival
                # (start-based bound; see the prologue comment).
                break
            ni = active[0]
            nq = queues[ni]
            if not nq:
                break
            head = nq[0].size
            if head != size:
                if cache is not None:
                    tx_head = cache.get(head)
                    if tx_head is None:
                        tx_head = transmission_time(head, rate)
                        if len(cache) >= _TX_CACHE_CAP:
                            cache.clear()
                        cache[head] = tx_head
                else:
                    tx_head = transmission_time(head, rate)
            else:
                tx_head = tx_ns
        if count == 1:
            # The only candidate hit the horizon; the replay above
            # restored per-packet-exact state.
            return False
        self._total_bytes -= batch_bytes
        self.transmitted_packets += count - 1
        self.transmitted_bytes += batch_bytes
        prop = self.prop_delay_ns
        last_delivery = departs[-1] + prop
        if (self._deliver_many is not None
                and (horizon is None or last_delivery <= horizon)):
            # Timing-insensitive receiver (the receive_many contract):
            # one delivery event at the LAST packet's delivery time
            # replaces the whole per-packet chain, and the suppressed
            # deliveries are credited when it fires.  Guarded by the
            # horizon so packets the per-packet path would deliver
            # before `until` are never deferred past it.
            comp_time = departs[-1]
            if sim._cal is None and sim._triples:
                # Fused inline of sim.at for the batch's two events
                # (pooled triple-heap mode): one block allocates or
                # reuses both and shares the seq/heap bookkeeping.
                # Delivery first — its seq must stay below the
                # completion's so a zero-prop-delay tie keeps the
                # delivery-before-completion order the two sim.at calls
                # produced.
                free = sim._free
                seq = sim._seq
                heap = sim._heap
                push = heappush
                cb = self._deliver_batch_cb
                if free:
                    deliveries = free.pop()
                    deliveries.time = last_delivery
                    deliveries.seq = seq
                    deliveries.callback = cb
                    deliveries.args = (packets, departs)
                    deliveries.cancelled = False
                    deliveries.gen += 1
                    sim.events_reused += 1
                else:
                    deliveries = Event(last_delivery, seq, cb,
                                       (packets, departs))
                push(heap, (last_delivery, seq, deliveries))
                seq += 1
                cb = self._batch_complete
                if free:
                    comp = free.pop()
                    comp.time = comp_time
                    comp.seq = seq
                    comp.callback = cb
                    comp.args = ()
                    comp.cancelled = False
                    comp.gen += 1
                    sim.events_reused += 1
                else:
                    comp = Event(comp_time, seq, cb, ())
                push(heap, (comp_time, seq, comp))
                sim._seq = seq + 1
                sim._live += 2
                if len(heap) >= sim._cal_trigger:
                    sim._engage_calendar()
            else:
                deliveries = sim.at(last_delivery, self._deliver_batch_cb,
                                    packets, departs)
                comp = sim.at(comp_time, self._batch_complete)
            if not self._scan_inflight:
                self._track_in_flight(deliveries)
            self._batch = (sched_state, packets, qidx, departs,
                           deliveries, comp)
            return True
        else:
            deliveries = sim.at_many(
                [depart + prop for depart in departs], self._deliver,
                packets)
            if not self._scan_inflight:
                track = self._track_in_flight
                for ev in deliveries:
                    track(ev)
        # Scheduled after every delivery, so at a shared timestamp the
        # completion runs last — the order the per-packet path produces.
        comp = sim.at(departs[-1], self._batch_complete)
        self._batch = (sched_state, packets, qidx, departs, deliveries,
                       comp)
        return True

    def _deliver_batch(self, packets: List[Packet],
                       departs: List[int]) -> None:
        """The single delivery event of a batch (receive_many receivers).

        Hands the whole batch to the receiver in transmission order and
        credits the suppressed per-packet delivery events.  ``departs``
        rides along in the event args so the fault path can split a
        still-pending batch into already-delivered and lost halves by
        each packet's per-packet delivery time
        (see :meth:`_split_batch_delivery`).
        """
        self._deliver_many(packets)
        self.sim.events_executed += len(packets) - 1

    def _split_batch_delivery(self, bev: Event) -> None:
        """Resolve one pending batched-delivery event at link-down time.

        Per-packet execution would have delivered every packet whose
        delivery time is already past and lost the rest on the wire;
        reproduce exactly that: past packets go to the receiver now
        (credited, since their events were coalesced away) and the rest
        are accounted as in-flight losses.  Ties at ``now`` count as
        still pending, matching a delivery event scheduled before the
        fault event at the same timestamp.
        """
        packets, departs = bev.args
        sim = self.sim
        sim.cancel(bev)
        now = sim.now
        prop = self.prop_delay_ns
        deliver = self._deliver
        late = 0
        for i, packet in enumerate(packets):
            if departs[i] + prop < now:
                deliver(packet)
                late += 1
            else:
                self.dropped_packets += 1
                self.inflight_losses += 1
                self._publish(TOPIC_PACKET_DROP, packet, None,
                              "lost in flight")
        if late:
            sim.credit_events(late)

    def _replay_prefix(self, sched_state, packets, qidx, keep: int) -> None:
        """Restore the scheduler to ``sched_state`` (the snapshot taken
        just after the batch's first select), give the extension packets
        back to their queues, then re-run selections ``2..keep`` —
        re-popping those packets — so the scheduler and queues are
        *exactly* what per-packet execution produces after ``keep``
        transmissions.

        Replaying the real ``select()`` (instead of arithmetically
        reversing deficit updates) is what makes the rollback exact:
        float deficit math is replayed forward, never inverted, and every
        rotation/retirement lands in per-packet order.  Byte totals and
        transmit counters are *not* touched here; callers adjust them for
        the non-kept suffix only, since the kept prefix's counters are
        already correct.
        """
        scheduler = self.scheduler
        scheduler._deficits[:] = sched_state[0]
        active = scheduler._active
        active.clear()
        active.extend(sched_state[1])
        scheduler._in_active[:] = sched_state[2]
        queues = self._queues
        # The anchor postdates the first packet's select, so packet 0
        # stays popped and the replay re-runs selections 2..keep.
        for i in range(len(packets) - 1, 0, -1):
            queues[qidx[i]].appendleft(packets[i])
        for _ in range(keep - 1):
            qi = scheduler.select(self)
            queues[qi].popleft()

    def _batch_complete(self) -> None:
        """The single completion event of a fully committed batch."""
        batch = self._batch
        self._batch = None
        if batch is not None:
            n = len(batch[1])
            self.sim.credit_events(n - 1)  # the suppressed tx-completes
            cap = self._batch_cap
            if n >= cap and cap < _BATCH_CAP_MAX:
                self._batch_cap = cap * 2
        self._transmit_next()

    def _unwind_batch(self) -> None:
        """Fall back from a committed batch to the per-packet boundary.

        Packets whose transmission started strictly before ``now`` are
        *committed* — their counters and delivery events stand, exactly
        as if the per-packet path had transmitted them.  Everything from
        the first packet starting at or after ``now`` is undone: delivery
        events cancelled, packets returned to their queues, counters and
        byte totals restored, and the scheduler replayed to the committed
        prefix.  The in-flight packet (the last committed one) gets its
        per-packet transmit-complete back, so the port continues packet
        by packet — and may start a fresh batch from there.
        """
        batch = self._batch
        if batch is None:
            return
        sim = self.sim
        now = sim.now
        departs = batch[3]
        if departs[-2] < now:
            # Fully committed (``starts[-1] = departs[-2]``): every
            # transmission started strictly before now, so counters,
            # occupancy, and scheduler state are already exactly what
            # per-packet execution shows at this timestamp — and the
            # build never leaves scheduler mutations past its last
            # commit.  The only residual difference is event plumbing
            # (one pending batch-completion instead of one
            # transmit-complete at the same time), which no datapath
            # state depends on.  Keep the batch; the completion will fire
            # and credit the suppressed events.
            return
        self._batch = None
        sched_state, packets, qidx, departs, deliveries, comp = batch
        n = len(packets)
        c = 1  # packet 0 started at batch time, strictly in the past
        # starts[i] = departs[i - 1]; the early-out above guarantees
        # departs[n - 2] >= now, so this stops at c <= n - 1.
        while departs[c - 1] < now:
            c += 1
        # Suffix deliveries have not fired (their departures are in the
        # future), so their events are guaranteed un-recycled and a plain
        # cancel is safe.
        cancel = sim.cancel
        queue_bytes = self._queue_bytes
        qtx = self.queue_tx_bytes
        undone = 0
        per_packet = type(deliveries) is list
        for i in range(n - 1, c - 1, -1):
            size = packets[i].size
            queue_bytes[qidx[i]] += size
            qtx[qidx[i]] -= size
            undone += size
            if per_packet:
                cancel(deliveries[i])
        if not per_packet:
            # Coalesced delivery (receive_many receiver): replace the one
            # batch event with the committed prefix's per-packet
            # deliveries — packets whose delivery time already passed go
            # to the receiver immediately (credited; their events were
            # coalesced away), the rest are rescheduled individually.
            cancel(deliveries)
            prop = self.prop_delay_ns
            deliver = self._deliver
            track = None if self._scan_inflight else self._track_in_flight
            late = 0
            for i in range(c):
                when = departs[i] + prop
                if when < now:
                    deliver(packets[i])
                    late += 1
                else:
                    ev = sim.at(when, deliver, packets[i])
                    if track is not None:
                        track(ev)
            if late:
                sim.credit_events(late)
        self._total_bytes += undone
        self.transmitted_packets -= n - c
        self.transmitted_bytes -= undone
        self._replay_prefix(sched_state, packets, qidx, c)
        cancel(comp)
        # The committed tail packet is on the wire; finish it per-packet.
        sim.at(departs[c - 1], self._tx_complete)
        sim.credit_events(c - 1)  # tx-completes of fully departed packets
        # The arrival predictor mispredicted; shrink the cap toward the
        # length that did commit.
        self._batch_cap = c if c >= 2 else 2

    def sync_batched_advance(self) -> None:
        """Make externally visible state per-packet-exact *right now*.

        Samplers that read port counters mid-run outside the arrival path
        (:class:`~repro.metrics.throughput.PortThroughputMeter`'s batched
        backend) call this at sample boundaries; a batch with
        transmissions still ahead of the clock is unwound to the
        committed prefix (a fully committed one is already exact), after
        which every counter equals what per-packet execution would show
        at this timestamp.
        """
        if self._batch is not None:
            self._unwind_batch()

    def evict_tail(self, queue_index: int):
        """Remove and return the tail packet of a queue (or ``None``).

        Exists for eviction-based buffer managers (the BarberQ-style
        DynaQ extension): dropping an already-buffered packet of an
        over-threshold queue to admit a more deserving arrival.  The
        evicted packet is accounted as a drop.
        """
        if self._batch is not None:
            self._unwind_batch()
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.pop()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        self.dropped_packets += 1
        self.evicted_packets += 1
        if self._sketch is not None:
            snapshot = self._sketch.record_evict(
                self.sim.now, queue_index, packet.flow_id, packet.size,
                self._queue_bytes[queue_index],
                self._sketch_limit(queue_index))
            if snapshot is not None:
                self._sketch_publish(snapshot)
        self._publish(TOPIC_PACKET_DROP, packet, queue_index, "evicted")
        return packet

    # -- cold-path auditing --------------------------------------------------------

    def audit_conservation(self) -> List[str]:
        """Cross-check occupancy and conservation counters (cold path).

        Returns a list of human-readable problems, empty when the port
        is consistent.  Checks, in order: per-queue byte accounting,
        total-occupancy accounting, the ``total <= B`` bound, per-queue
        FIFO order (packets leave in arrival order, so ``enqueued_at``
        must be non-decreasing front to back), and the packet
        conservation equation
        ``enqueued == transmitted + buffered + evicted + dequeue_drops``.

        Only the soak invariant engine calls this, on its own cadence —
        never the datapath — so it may force an in-flight transmit batch
        back to the per-packet boundary to make the counters exact.
        """
        if self._batch is not None:
            self._unwind_batch()
        problems: List[str] = []
        buffered = 0
        for index, queue in enumerate(self._queues):
            actual = sum(packet.size for packet in queue)
            buffered += len(queue)
            if actual != self._queue_bytes[index]:
                problems.append(
                    f"queue {index}: occupancy counter says "
                    f"{self._queue_bytes[index]}B but the deque holds "
                    f"{actual}B")
            last_arrival = None
            for packet in queue:
                if (last_arrival is not None
                        and packet.enqueued_at < last_arrival):
                    problems.append(
                        f"queue {index}: FIFO order violated "
                        f"(enqueued_at {packet.enqueued_at} behind "
                        f"{last_arrival})")
                    break
                last_arrival = packet.enqueued_at
        if sum(self._queue_bytes) != self._total_bytes:
            problems.append(
                f"total occupancy counter {self._total_bytes}B != "
                f"sum of queue counters {sum(self._queue_bytes)}B")
        if self._total_bytes > self.buffer_bytes:
            problems.append(
                f"occupancy {self._total_bytes}B exceeds the buffer "
                f"({self.buffer_bytes}B)")
        accounted = (self.transmitted_packets + buffered
                     + self.evicted_packets + self.dequeue_drops)
        if self.enqueued_packets != accounted:
            problems.append(
                f"conservation: enqueued {self.enqueued_packets} != "
                f"transmitted {self.transmitted_packets} + buffered "
                f"{buffered} + evicted {self.evicted_packets} + "
                f"dequeue drops {self.dequeue_drops}")
        return problems

    # -- operator actions ----------------------------------------------------------

    def resize_buffer(self, new_buffer_bytes: int) -> None:
        """Change the port buffer size at runtime (paper §III-B3).

        The paper notes that resizing breaks DynaQ's ``sum(T) == B``
        equality and prescribes re-running the threshold initialisation;
        any buffer manager exposing ``reinitialize()`` gets exactly that.
        Shrinking below the current occupancy is allowed — the buffer
        drains naturally because admission checks use the new size.
        """
        if new_buffer_bytes <= 0:
            raise ConfigurationError(
                f"port {self.name}: buffer must be positive, "
                f"got {new_buffer_bytes}")
        if self._batch is not None:
            self._unwind_batch()
        self.buffer_bytes = new_buffer_bytes
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    def set_link_rate(self, rate_bps: int) -> None:
        """Change the link rate at runtime (shaping, §V prototype).

        Invalidates the memoised per-size transmission times; in-flight
        transmissions keep the duration they were scheduled with, which
        matches how a real shaper only affects subsequent packets.
        """
        if rate_bps <= 0:
            raise ConfigurationError(
                f"port {self.name}: rate must be positive, got {rate_bps}")
        if self._batch is not None:
            # Un-started transmissions go back to their queues and will
            # be re-committed at the new rate; the packet on the wire
            # keeps the duration it was scheduled with, as below.
            self._unwind_batch()
        self.link_rate_bps = rate_bps
        if self._tx_cache is not None:
            self._tx_cache.clear()

    def reconfigure_weights(self, weights: Sequence[float]) -> None:
        """Change the scheduler weights at runtime (operator action).

        Forwards to the scheduler's ``set_weights`` and then lets the
        buffer manager re-derive its weight-dependent state: DynaQ's
        ``reconfigure`` re-normalises ``T_i``/``S_i`` so ``sum(T) == B``
        holds across the transition; managers without a dedicated
        reconfigure path fall back to ``reinitialize``.
        """
        if self._batch is not None:
            self._unwind_batch()
        self.scheduler.set_weights(weights)
        reconfigure = getattr(self.buffer_manager, "reconfigure", None)
        if reconfigure is not None:
            reconfigure()
            return
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    # -- fault hooks (driven by repro.faults.FaultController) ---------------------

    def set_link_down(self) -> None:
        """Take the link down: drop in-flight packets, refuse arrivals.

        Packets already on the wire (transmitted but not yet received)
        are lost — their delivery events are cancelled and accounted as
        drops, which is what makes a flap visible to transports as loss
        rather than as a silent pause.
        """
        if not self.link_up:
            return
        if self._batch is not None:
            # Un-started packets return to their queues (per-packet never
            # transmitted them); the committed ones stay on the wire and
            # are lost just below, exactly as per-packet execution loses
            # them.
            self._unwind_batch()
        self.link_up = False
        if self._scan_inflight:
            # Coalesced batch deliveries first (a batch still mid-pipe —
            # possibly one whose completion already fired): split each
            # into delivered and lost halves at per-packet times.
            for bev in self.sim.pending_events_for(self._deliver_batch_cb):
                self._split_batch_delivery(bev)
            # Fast-path bookkeeping trade: nothing was recorded per
            # packet, so find the wire's contents by scanning the event
            # heap for this port's delivery callback.  The scan returns
            # events in schedule order — the same order the tracking
            # deque would yield — so the published drop sequence is
            # identical across modes.
            for delivery in self.sim.pending_events_for(self._deliver):
                packet = delivery.args[0]
                self.sim.cancel(delivery)
                self.dropped_packets += 1
                self.inflight_losses += 1
                self._publish(TOPIC_PACKET_DROP, packet, None,
                              "lost in flight")
            return
        deliver_batch = self._deliver_batch_cb
        while self._in_flight:
            delivery, gen = self._in_flight.popleft()
            if delivery.gen != gen or delivery.cancelled:
                continue  # already delivered (and possibly recycled)
            if delivery.callback is deliver_batch:
                self._split_batch_delivery(delivery)
                continue
            packet = delivery.args[0]
            self.sim.cancel_versioned(delivery, gen)
            self.dropped_packets += 1
            self.inflight_losses += 1
            self._publish(TOPIC_PACKET_DROP, packet, None, "lost in flight")

    def set_link_up(self) -> None:
        """Bring the link back; resume draining queued packets."""
        if self.link_up:
            return
        self.link_up = True
        if not self._busy:
            self._transmit_next()

    def stall(self) -> None:
        """Pause the scheduler (drain stall): queued packets sit still.

        Unlike a downed link, arrivals are still admitted and buffered,
        so a stall fills the port buffer and exercises admission-control
        behaviour under sustained occupancy.
        """
        if self._batch is not None:
            self._unwind_batch()
        self.stalled = True

    def resume(self) -> None:
        """Resume draining after a :meth:`stall`."""
        if not self.stalled:
            return
        self.stalled = False
        if not self._busy:
            self._transmit_next()

    def set_corruption(self, rate: float, rng=None) -> None:
        """Corrupt a fraction of departing packets (checksum-drop later).

        Corrupted packets traverse the wire normally but fail the
        checksum at the end host and are discarded there, so the sender
        sees loss only via missing ACKs.  ``rate = 0`` clears the fault.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"corruption rate must be in [0, 1], got {rate}")
        if self._batch is not None:
            self._unwind_batch()
        self.corrupt_rate = rate
        if rng is not None:
            self._corrupt_rng = rng
        if rate > 0.0 and self._corrupt_rng is None:
            raise ConfigurationError(
                f"port {self.name}: corruption needs an rng for "
                "deterministic replay")

    def _track_in_flight(self, delivery: Event) -> None:
        """Remember a scheduled delivery so link-down can lose it.

        Executed events are marked cancelled by the simulator (and may
        then be recycled under event pooling), so pruning entries whose
        event is dead or whose generation moved on keeps the deque
        bounded by the propagation-delay pipe depth without a separate
        completion callback.
        """
        in_flight = self._in_flight
        while in_flight:
            head, gen = in_flight[0]
            if head.cancelled or head.gen != gen:
                in_flight.popleft()
            else:
                break
        in_flight.append((delivery, delivery.gen))

    # -- queue diagnosis (opt-in, self._sketch is None by default) ---------------

    def _sketch_limit(self, queue_index: int) -> Optional[int]:
        """The queue's current dropping threshold, for managers that
        have one (DynaQ's ``T_i``); ``None`` disables crossing
        detection for threshold-less schemes."""
        thresholds = getattr(self.buffer_manager, "thresholds", None)
        if thresholds is None:
            return None
        return thresholds[queue_index]

    def _sketch_enqueue(self, packet: Packet, queue_index: int) -> None:
        snapshot = self._sketch.record_enqueue(
            self.sim.now, queue_index, packet.flow_id, packet.size,
            self._queue_bytes[queue_index], self._sketch_limit(queue_index))
        if snapshot is not None:
            self._sketch_publish(snapshot)

    def _sketch_dequeue(self, packet: Packet, queue_index: int) -> None:
        now = self.sim.now
        self._sketch.record_dequeue(
            now, queue_index, packet.flow_id, packet.size,
            now - packet.enqueued_at, self._queue_bytes[queue_index],
            self._sketch_limit(queue_index))

    def _sketch_drop(self, packet: Packet, queue_index: int,
                     reason: str) -> None:
        snapshot = self._sketch.record_drop(
            self.sim.now, queue_index, packet.flow_id, packet.size,
            reason, self._queue_bytes[queue_index],
            self._sketch_limit(queue_index))
        if snapshot is not None:
            self._sketch_publish(snapshot)

    def _sketch_publish(self, snapshot: dict) -> None:
        """Mirror a threshold-cross/drop snapshot onto the trace bus.

        Uses the lazy ``emit`` path in both perf modes — the topic is
        silent in almost every run, and identical gating on both sides
        keeps FAST and REFERENCE traces byte-identical with the
        diagnosis switch on.
        """
        trace = self.trace
        if trace is not None:
            trace.emit(TOPIC_QUEUE_SNAPSHOT, lambda: dict(
                port=self.name, time=snapshot["time_ns"],
                queue=snapshot["queue"], detail=snapshot["detail"],
                occupancy=snapshot["occupancy"], limit=snapshot["limit"],
                composition=dict(snapshot["composition"])))

    # -- tracing -----------------------------------------------------------------

    def _publish(self, topic: str, packet: Packet,
                 queue_index: Optional[int], detail: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(topic, lambda: dict(
                port=self.name, time=self.sim.now, packet=packet,
                queue=queue_index, detail=detail,
                queue_bytes=tuple(self._queue_bytes)))

    def _refresh_topic_flags(self) -> None:
        """Recompute the per-topic liveness flags (bus watcher target).

        Runs on every (un)subscribe, never per packet, so the per-publish
        fast path below — and the ``_quiet`` test inlined at the hot call
        sites — needs no version bookkeeping at all.
        """
        if self._batch is not None:
            # A mid-run subscribe may make packet.dequeue audible: undo
            # the speculative commits so those packets publish live.
            self._unwind_batch()
        has = self.trace.has_subscribers
        self._topic_live = {t: has(t) for t in _PORT_TOPICS}
        self._quiet = not any(self._topic_live.values())

    def _publish_cached(self, topic: str, packet: Packet,
                        queue_index: Optional[int], detail: str) -> None:
        """Fast-path publish: watcher-maintained per-topic liveness flags.

        Semantically identical to :meth:`_publish` — same topics, same
        payload dict — but a publish to a silent topic costs one dict
        lookup instead of allocating the payload closure, and mid-run
        (un)subscribes are pushed into the flags by the bus watcher.
        """
        if self._topic_live.get(topic):
            trace = self.trace
            trace.publish(topic, port=self.name, time=self.sim.now,
                          packet=packet, queue=queue_index, detail=detail,
                          queue_bytes=tuple(self._queue_bytes))
