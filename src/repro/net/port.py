"""Multi-queue egress port.

The egress port is where everything in the paper happens: packets arriving
for an output link are classified into one of M service queues, pass the
buffer manager's admission check (DynaQ / BestEffort / PQL / ECN schemes),
and are later pulled by a work-conserving packet scheduler (DRR / WRR /
SPQ) when the link is free.

One object models the port buffer, the service queues, the scheduler
binding, and the link (rate + propagation delay) to the downstream node.
It implements both observation protocols:

* :class:`~repro.queueing.base.PortView` for buffer managers, and
* :class:`~repro.queueing.schedulers.base.QueueView` for schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from ..queueing.base import BufferManager
from ..queueing.schedulers.base import Scheduler
from ..sim.engine import Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PACKET_MARK,
    TraceBus,
)
from ..sim.units import transmission_time
from .packet import Packet

Classifier = Callable[[Packet], int]


class EgressPort:
    """One output port of a host NIC or switch."""

    def __init__(self, sim: Simulator, name: str, *, rate_bps: int,
                 prop_delay_ns: int, buffer_bytes: int,
                 scheduler: Scheduler, buffer_manager: BufferManager,
                 classifier: Optional[Classifier] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if rate_bps <= 0 or buffer_bytes <= 0 or prop_delay_ns < 0:
            raise ConfigurationError(
                f"bad port parameters for {name}: rate={rate_bps}, "
                f"buffer={buffer_bytes}, prop={prop_delay_ns}")
        self.sim = sim
        self.name = name
        self.link_rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.buffer_manager = buffer_manager
        self.num_queues = scheduler.num_queues
        self._classifier = classifier or self._default_classifier
        self.trace = trace
        self.peer = None  # downstream node, set by connect()

        self._queues: List[Deque[Packet]] = [
            deque() for _ in range(self.num_queues)]
        self._queue_bytes: List[int] = [0] * self.num_queues
        self._total_bytes = 0
        self._busy = False

        # Counters for experiments and assertions.
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0

        bind_clock = getattr(scheduler, "bind_clock", None)
        if bind_clock is not None:
            bind_clock(lambda: self.sim.now)
        if trace is not None:
            buffer_manager.bind_trace(trace, name)
        buffer_manager.attach(self)

    # -- wiring -----------------------------------------------------------------

    def connect(self, peer) -> None:
        """Attach the downstream node (anything with ``receive(packet)``)."""
        self.peer = peer

    def _default_classifier(self, packet: Packet) -> int:
        return min(packet.service_class, self.num_queues - 1)

    # -- PortView protocol ---------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return self._total_bytes

    def queue_weights(self) -> List[float]:
        return self.scheduler.weights

    def now(self) -> int:
        return self.sim.now

    # -- QueueView protocol ----------------------------------------------------------

    def queue_empty(self, index: int) -> bool:
        return not self._queues[index]

    def head_size(self, index: int) -> int:
        return self._queues[index][0].size

    # -- datapath ----------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this port (classification + admission)."""
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        queue_index = self._classifier(packet)
        decision = self.buffer_manager.admit(packet, queue_index)
        if not decision.accept:
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          decision.reason)
            return
        if decision.mark and packet.ecn_capable:
            packet.ecn_ce = True
            self._publish(TOPIC_PACKET_MARK, packet, queue_index, "enqueue")
        packet.enqueued_at = self.sim.now
        self._queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += packet.size
        self._total_bytes += packet.size
        self.enqueued_packets += 1
        self.scheduler.on_enqueue(queue_index)
        self.buffer_manager.on_enqueued(packet, queue_index)
        self._publish(TOPIC_PACKET_ENQUEUE, packet, queue_index, "")
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        queue_index = self.scheduler.select(self)
        if queue_index is None:
            self._busy = False
            return
        packet = self._queues[queue_index].popleft()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        decision = self.buffer_manager.on_dequeue(packet, queue_index)
        tx_ns = transmission_time(packet.size, self.link_rate_bps)
        self._busy = True
        if not decision.accept:
            # Dequeue-time drop (TCN drop variant): the scheduling slot is
            # already committed, so the wire idles for the packet's
            # transmission time — the very pathology §II-C describes.
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          decision.reason)
            self.sim.schedule(tx_ns, self._on_transmit_complete)
            return
        if decision.mark and packet.ecn_capable:
            packet.ecn_ce = True
            self._publish(TOPIC_PACKET_MARK, packet, queue_index, "dequeue")
        self._publish(TOPIC_PACKET_DEQUEUE, packet, queue_index, "")
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size
        self.sim.schedule(tx_ns, self._on_transmit_complete)
        self.sim.schedule(tx_ns + self.prop_delay_ns,
                          self.peer.receive, packet)

    def _on_transmit_complete(self) -> None:
        self._transmit_next()

    def evict_tail(self, queue_index: int):
        """Remove and return the tail packet of a queue (or ``None``).

        Exists for eviction-based buffer managers (the BarberQ-style
        DynaQ extension): dropping an already-buffered packet of an
        over-threshold queue to admit a more deserving arrival.  The
        evicted packet is accounted as a drop.
        """
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.pop()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        self.dropped_packets += 1
        self._publish(TOPIC_PACKET_DROP, packet, queue_index, "evicted")
        return packet

    # -- operator actions ----------------------------------------------------------

    def resize_buffer(self, new_buffer_bytes: int) -> None:
        """Change the port buffer size at runtime (paper §III-B3).

        The paper notes that resizing breaks DynaQ's ``sum(T) == B``
        equality and prescribes re-running the threshold initialisation;
        any buffer manager exposing ``reinitialize()`` gets exactly that.
        Shrinking below the current occupancy is allowed — the buffer
        drains naturally because admission checks use the new size.
        """
        if new_buffer_bytes <= 0:
            raise ConfigurationError(
                f"port {self.name}: buffer must be positive, "
                f"got {new_buffer_bytes}")
        self.buffer_bytes = new_buffer_bytes
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    # -- tracing -----------------------------------------------------------------

    def _publish(self, topic: str, packet: Packet, queue_index: int,
                 detail: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(topic, lambda: dict(
                port=self.name, time=self.sim.now, packet=packet,
                queue=queue_index, detail=detail,
                queue_bytes=tuple(self._queue_bytes)))
