"""Multi-queue egress port.

The egress port is where everything in the paper happens: packets arriving
for an output link are classified into one of M service queues, pass the
buffer manager's admission check (DynaQ / BestEffort / PQL / ECN schemes),
and are later pulled by a work-conserving packet scheduler (DRR / WRR /
SPQ) when the link is free.

One object models the port buffer, the service queues, the scheduler
binding, and the link (rate + propagation delay) to the downstream node.
It implements both observation protocols:

* :class:`~repro.queueing.base.PortView` for buffer managers, and
* :class:`~repro.queueing.schedulers.base.QueueView` for schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from ..queueing.base import BufferManager
from ..queueing.schedulers.base import Scheduler
from ..sim.engine import Event, Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PACKET_MARK,
    TraceBus,
)
from ..sim.units import transmission_time
from .packet import Packet

Classifier = Callable[[Packet], int]


class EgressPort:
    """One output port of a host NIC or switch."""

    def __init__(self, sim: Simulator, name: str, *, rate_bps: int,
                 prop_delay_ns: int, buffer_bytes: int,
                 scheduler: Scheduler, buffer_manager: BufferManager,
                 classifier: Optional[Classifier] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if rate_bps <= 0 or buffer_bytes <= 0 or prop_delay_ns < 0:
            raise ConfigurationError(
                f"bad port parameters for {name}: rate={rate_bps}, "
                f"buffer={buffer_bytes}, prop={prop_delay_ns}")
        self.sim = sim
        self.name = name
        self.link_rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.buffer_manager = buffer_manager
        self.num_queues = scheduler.num_queues
        self._classifier = classifier or self._default_classifier
        self.trace = trace
        self.peer = None  # downstream node, set by connect()

        self._queues: List[Deque[Packet]] = [
            deque() for _ in range(self.num_queues)]
        self._queue_bytes: List[int] = [0] * self.num_queues
        self._total_bytes = 0
        self._busy = False

        # Fault-injection state (see repro.faults): a downed link drops
        # arrivals and in-flight packets, a stalled port stops draining,
        # and a positive corruption rate flips packets to checksum-fail.
        self.link_up = True
        self.stalled = False
        self.corrupt_rate = 0.0
        self._corrupt_rng = None
        self._in_flight: Deque[Event] = deque()

        # Counters for experiments and assertions.
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.inflight_losses = 0
        self.corrupted_packets = 0

        bind_clock = getattr(scheduler, "bind_clock", None)
        if bind_clock is not None:
            bind_clock(lambda: self.sim.now)
        if trace is not None:
            buffer_manager.bind_trace(trace, name)
        buffer_manager.attach(self)

    # -- wiring -----------------------------------------------------------------

    def connect(self, peer) -> None:
        """Attach the downstream node (anything with ``receive(packet)``)."""
        self.peer = peer

    def _default_classifier(self, packet: Packet) -> int:
        return min(packet.service_class, self.num_queues - 1)

    # -- PortView protocol ---------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return self._total_bytes

    def queue_weights(self) -> List[float]:
        return self.scheduler.weights

    def now(self) -> int:
        return self.sim.now

    # -- QueueView protocol ----------------------------------------------------------

    def queue_empty(self, index: int) -> bool:
        return not self._queues[index]

    def head_size(self, index: int) -> int:
        return self._queues[index][0].size

    # -- datapath ----------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this port (classification + admission)."""
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        queue_index = self._classifier(packet)
        if not self.link_up:
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          "link down")
            return
        decision = self.buffer_manager.admit(packet, queue_index)
        if not decision.accept:
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          decision.reason)
            return
        if decision.mark and packet.ecn_capable:
            packet.ecn_ce = True
            self._publish(TOPIC_PACKET_MARK, packet, queue_index, "enqueue")
        packet.enqueued_at = self.sim.now
        self._queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += packet.size
        self._total_bytes += packet.size
        self.enqueued_packets += 1
        self.scheduler.on_enqueue(queue_index)
        self.buffer_manager.on_enqueued(packet, queue_index)
        self._publish(TOPIC_PACKET_ENQUEUE, packet, queue_index, "")
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if self.stalled or not self.link_up:
            # Drain stall or downed link: park the port.  set_link_up() /
            # resume() restart the transmit loop.
            self._busy = False
            return
        queue_index = self.scheduler.select(self)
        if queue_index is None:
            self._busy = False
            return
        packet = self._queues[queue_index].popleft()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        decision = self.buffer_manager.on_dequeue(packet, queue_index)
        tx_ns = transmission_time(packet.size, self.link_rate_bps)
        self._busy = True
        if not decision.accept:
            # Dequeue-time drop (TCN drop variant): the scheduling slot is
            # already committed, so the wire idles for the packet's
            # transmission time — the very pathology §II-C describes.
            self.dropped_packets += 1
            self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                          decision.reason)
            self.sim.schedule(tx_ns, self._on_transmit_complete)
            return
        if decision.mark and packet.ecn_capable:
            packet.ecn_ce = True
            self._publish(TOPIC_PACKET_MARK, packet, queue_index, "dequeue")
        self._publish(TOPIC_PACKET_DEQUEUE, packet, queue_index, "")
        self.transmitted_packets += 1
        self.transmitted_bytes += packet.size
        if (self.corrupt_rate > 0.0 and self._corrupt_rng is not None
                and self._corrupt_rng.random() < self.corrupt_rate):
            packet.corrupted = True
            self.corrupted_packets += 1
        self.sim.schedule(tx_ns, self._on_transmit_complete)
        delivery = self.sim.schedule(tx_ns + self.prop_delay_ns,
                                     self.peer.receive, packet)
        self._track_in_flight(delivery)

    def _on_transmit_complete(self) -> None:
        self._transmit_next()

    def evict_tail(self, queue_index: int):
        """Remove and return the tail packet of a queue (or ``None``).

        Exists for eviction-based buffer managers (the BarberQ-style
        DynaQ extension): dropping an already-buffered packet of an
        over-threshold queue to admit a more deserving arrival.  The
        evicted packet is accounted as a drop.
        """
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.pop()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        self.dropped_packets += 1
        self._publish(TOPIC_PACKET_DROP, packet, queue_index, "evicted")
        return packet

    # -- operator actions ----------------------------------------------------------

    def resize_buffer(self, new_buffer_bytes: int) -> None:
        """Change the port buffer size at runtime (paper §III-B3).

        The paper notes that resizing breaks DynaQ's ``sum(T) == B``
        equality and prescribes re-running the threshold initialisation;
        any buffer manager exposing ``reinitialize()`` gets exactly that.
        Shrinking below the current occupancy is allowed — the buffer
        drains naturally because admission checks use the new size.
        """
        if new_buffer_bytes <= 0:
            raise ConfigurationError(
                f"port {self.name}: buffer must be positive, "
                f"got {new_buffer_bytes}")
        self.buffer_bytes = new_buffer_bytes
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    def reconfigure_weights(self, weights: Sequence[float]) -> None:
        """Change the scheduler weights at runtime (operator action).

        Forwards to the scheduler's ``set_weights`` and then lets the
        buffer manager re-derive its weight-dependent state: DynaQ's
        ``reconfigure`` re-normalises ``T_i``/``S_i`` so ``sum(T) == B``
        holds across the transition; managers without a dedicated
        reconfigure path fall back to ``reinitialize``.
        """
        self.scheduler.set_weights(weights)
        reconfigure = getattr(self.buffer_manager, "reconfigure", None)
        if reconfigure is not None:
            reconfigure()
            return
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    # -- fault hooks (driven by repro.faults.FaultController) ---------------------

    def set_link_down(self) -> None:
        """Take the link down: drop in-flight packets, refuse arrivals.

        Packets already on the wire (transmitted but not yet received)
        are lost — their delivery events are cancelled and accounted as
        drops, which is what makes a flap visible to transports as loss
        rather than as a silent pause.
        """
        if not self.link_up:
            return
        self.link_up = False
        while self._in_flight:
            delivery = self._in_flight.popleft()
            if delivery.cancelled:  # already delivered
                continue
            self.sim.cancel(delivery)
            packet = delivery.args[0]
            self.dropped_packets += 1
            self.inflight_losses += 1
            self._publish(TOPIC_PACKET_DROP, packet, None, "lost in flight")

    def set_link_up(self) -> None:
        """Bring the link back; resume draining queued packets."""
        if self.link_up:
            return
        self.link_up = True
        if not self._busy:
            self._transmit_next()

    def stall(self) -> None:
        """Pause the scheduler (drain stall): queued packets sit still.

        Unlike a downed link, arrivals are still admitted and buffered,
        so a stall fills the port buffer and exercises admission-control
        behaviour under sustained occupancy.
        """
        self.stalled = True

    def resume(self) -> None:
        """Resume draining after a :meth:`stall`."""
        if not self.stalled:
            return
        self.stalled = False
        if not self._busy:
            self._transmit_next()

    def set_corruption(self, rate: float, rng=None) -> None:
        """Corrupt a fraction of departing packets (checksum-drop later).

        Corrupted packets traverse the wire normally but fail the
        checksum at the end host and are discarded there, so the sender
        sees loss only via missing ACKs.  ``rate = 0`` clears the fault.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"corruption rate must be in [0, 1], got {rate}")
        self.corrupt_rate = rate
        if rng is not None:
            self._corrupt_rng = rng
        if rate > 0.0 and self._corrupt_rng is None:
            raise ConfigurationError(
                f"port {self.name}: corruption needs an rng for "
                "deterministic replay")

    def _track_in_flight(self, delivery: Event) -> None:
        """Remember a scheduled delivery so link-down can lose it.

        Executed events are marked cancelled by the simulator, so pruning
        the head of the deque keeps it bounded by the propagation-delay
        pipe depth without a separate completion callback.
        """
        in_flight = self._in_flight
        while in_flight and in_flight[0].cancelled:
            in_flight.popleft()
        in_flight.append(delivery)

    # -- tracing -----------------------------------------------------------------

    def _publish(self, topic: str, packet: Packet,
                 queue_index: Optional[int], detail: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(topic, lambda: dict(
                port=self.name, time=self.sim.now, packet=packet,
                queue=queue_index, detail=detail,
                queue_bytes=tuple(self._queue_bytes)))
