"""Multi-queue egress port.

The egress port is where everything in the paper happens: packets arriving
for an output link are classified into one of M service queues, pass the
buffer manager's admission check (DynaQ / BestEffort / PQL / ECN schemes),
and are later pulled by a work-conserving packet scheduler (DRR / WRR /
SPQ) when the link is free.

One object models the port buffer, the service queues, the scheduler
binding, and the link (rate + propagation delay) to the downstream node.
It implements both observation protocols:

* :class:`~repro.queueing.base.PortView` for buffer managers, and
* :class:`~repro.queueing.schedulers.base.QueueView` for schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..perf.config import active_config
from ..queueing.base import BufferManager
from ..queueing.schedulers.base import Scheduler
from ..sim.engine import Event, Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_PACKET_DEQUEUE,
    TOPIC_PACKET_DROP,
    TOPIC_PACKET_ENQUEUE,
    TOPIC_PACKET_MARK,
    TOPIC_QUEUE_SNAPSHOT,
    TraceBus,
)
from ..sim.units import transmission_time
from .packet import Packet

Classifier = Callable[[Packet], int]

#: Topics a port publishes per packet; the fast publish path caches one
#: "anyone listening?" flag per entry against the bus version.
_PORT_TOPICS = (TOPIC_PACKET_DROP, TOPIC_PACKET_ENQUEUE,
                TOPIC_PACKET_DEQUEUE, TOPIC_PACKET_MARK)


class EgressPort:
    """One output port of a host NIC or switch."""

    def __init__(self, sim: Simulator, name: str, *, rate_bps: int,
                 prop_delay_ns: int, buffer_bytes: int,
                 scheduler: Scheduler, buffer_manager: BufferManager,
                 classifier: Optional[Classifier] = None,
                 trace: Optional[TraceBus] = None) -> None:
        if rate_bps <= 0 or buffer_bytes <= 0 or prop_delay_ns < 0:
            raise ConfigurationError(
                f"bad port parameters for {name}: rate={rate_bps}, "
                f"buffer={buffer_bytes}, prop={prop_delay_ns}")
        self.sim = sim
        self.name = name
        self.link_rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.buffer_manager = buffer_manager
        self.num_queues = scheduler.num_queues
        self._classifier = classifier or self._default_classifier
        self.trace = trace
        self.peer = None  # downstream node, set by connect()

        self._queues: List[Deque[Packet]] = [
            deque() for _ in range(self.num_queues)]
        self._queue_bytes: List[int] = [0] * self.num_queues
        self._total_bytes = 0
        self._busy = False

        # Fault-injection state (see repro.faults): a downed link drops
        # arrivals and in-flight packets, a stalled port stops draining,
        # and a positive corruption rate flips packets to checksum-fail.
        self.link_up = True
        self.stalled = False
        self.corrupt_rate = 0.0
        self._corrupt_rng = None
        # In-flight deliveries as (event, generation) pairs: with event
        # pooling the simulator recycles executed events, so a retained
        # handle is only trustworthy while its generation matches (see
        # repro.sim.engine's module docstring).
        self._in_flight: Deque[Tuple[Event, int]] = deque()

        # Counters for experiments and assertions.
        self.enqueued_packets = 0
        self.dropped_packets = 0
        self.transmitted_packets = 0
        self.transmitted_bytes = 0
        self.inflight_losses = 0
        self.corrupted_packets = 0
        # Batched per-queue transmit counters: stat collectors read these
        # on sample boundaries instead of subscribing to every
        # packet.dequeue event (see PortThroughputMeter).
        self.queue_tx_bytes: List[int] = [0] * self.num_queues

        # Publish-path selection (construction-time, never per packet):
        # the fast path caches per-topic subscriber flags, refreshed by a
        # bus watcher on every (un)subscribe, plus one all-silent flag
        # (_quiet) that the hot call sites test inline; the reference
        # path is the original lazy-lambda emit on every publish.
        self._topic_live: Dict[str, bool] = {}
        self._quiet = False
        if active_config().lazy_trace:
            self._publish = self._publish_cached
            if trace is None:
                self._quiet = True
            else:
                trace.add_watcher(self._refresh_topic_flags)
                self._refresh_topic_flags()
        # Memoised transmission_time per packet size (fast path): real
        # traffic uses a handful of sizes (MTU, ACK), so the per-packet
        # ceil division collapses to a dict hit.  None = compute fresh.
        self._tx_cache: Optional[Dict[int, int]] = (
            {} if active_config().tx_time_cache else None)
        # Construction-time call elision (fast path): skip buffer-manager
        # hooks that are provably the base-class no-ops, inline the
        # default classifier, and let a DRR scheduler read the queue
        # deques directly instead of through per-packet protocol calls.
        inline = active_config().inline_hot_calls
        manager_cls = type(buffer_manager)
        self._on_enqueued = (
            None if inline and manager_cls.on_enqueued
            is BufferManager.on_enqueued else buffer_manager.on_enqueued)
        self._on_dequeue = (
            None if inline and manager_cls.on_dequeue
            is BufferManager.on_dequeue else buffer_manager.on_dequeue)
        self._inline_classify = inline and classifier is None
        if inline:
            bind_queues = getattr(scheduler, "bind_queues", None)
            if bind_queues is not None:
                bind_queues(self._queues)
        # Per-packet in-flight tracking vs heap scan on (rare) link-down:
        # see set_link_down.
        self._scan_inflight = active_config().heap_scan_inflight
        # Opt-in queue diagnosis (PrintQueue-style sketches, see
        # repro.diagnosis): constructed only under the queue_diagnosis
        # switch, so the default datapath pays one `is not None` test
        # per hook site and nothing else.  The import stays lazy to keep
        # the diagnosis package out of the core import graph.
        self._sketch = None
        if active_config().queue_diagnosis:
            from ..diagnosis.sketch import PortDiagnosisSketch
            self._sketch = PortDiagnosisSketch(name)
        self._deliver = None  # cached peer.receive, set by connect()
        # Transmit-completion callback, bound once: the fast path skips
        # the _on_transmit_complete indirection (one Python call per
        # packet) and hands the scheduler _transmit_next directly.
        self._tx_complete = (self._transmit_next if inline
                             else self._on_transmit_complete)

        bind_clock = getattr(scheduler, "bind_clock", None)
        if bind_clock is not None:
            # Bound method, not a lambda: the scheduler retains the clock
            # for the run's lifetime and lambdas would break snapshots.
            bind_clock(self.now)
        if trace is not None:
            buffer_manager.bind_trace(trace, name)
        buffer_manager.attach(self)

    # -- wiring -----------------------------------------------------------------

    def connect(self, peer) -> None:
        """Attach the downstream node (anything with ``receive(packet)``)."""
        self.peer = peer
        # One bound method per port, reused for every delivery: saves the
        # per-packet attribute chain + bound-method allocation, and gives
        # the heap-scan fault path a unique identity to match on.
        self._deliver = peer.receive

    def _default_classifier(self, packet: Packet) -> int:
        return min(packet.service_class, self.num_queues - 1)

    def set_classifier(self, classifier: Optional[Classifier]) -> None:
        """Swap the packet classifier at runtime (``None`` restores the
        default service-class mapping).

        The supported way to change classification after construction:
        it also turns off the inlined default-classifier fast path so
        the new function is actually consulted.
        """
        self._classifier = classifier or self._default_classifier
        self._inline_classify = (classifier is None
                                 and active_config().inline_hot_calls)

    # -- PortView protocol ---------------------------------------------------------

    def queue_bytes(self, index: int) -> int:
        return self._queue_bytes[index]

    def total_bytes(self) -> int:
        return self._total_bytes

    def queue_weights(self) -> List[float]:
        return self.scheduler.weights

    def now(self) -> int:
        return self.sim.now

    # -- QueueView protocol ----------------------------------------------------------

    def queue_empty(self, index: int) -> bool:
        return not self._queues[index]

    def head_size(self, index: int) -> int:
        return self._queues[index][0].size

    # -- datapath ----------------------------------------------------------------

    def send(self, packet: Packet) -> None:
        """Offer ``packet`` to this port (classification + admission)."""
        if self.peer is None:
            raise ConfigurationError(f"port {self.name} is not connected")
        if self._inline_classify:
            service_class = packet.service_class
            last = self.num_queues - 1
            queue_index = service_class if service_class < last else last
        else:
            queue_index = self._classifier(packet)
        quiet = self._quiet
        sketch = self._sketch
        if not self.link_up:
            self.dropped_packets += 1
            if sketch is not None:
                self._sketch_drop(packet, queue_index, "link down")
            if not quiet:
                self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                              "link down")
            return
        decision = self.buffer_manager.admit(packet, queue_index)
        if not decision.accept:
            self.dropped_packets += 1
            if sketch is not None:
                self._sketch_drop(packet, queue_index, decision.reason)
            if not quiet:
                self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                              decision.reason)
            return
        if decision.mark and packet.ecn_capable:
            packet.ecn_ce = True
            if not quiet:
                self._publish(TOPIC_PACKET_MARK, packet, queue_index,
                              "enqueue")
        packet.enqueued_at = self.sim.now
        self._queues[queue_index].append(packet)
        self._queue_bytes[queue_index] += packet.size
        self._total_bytes += packet.size
        self.enqueued_packets += 1
        self.scheduler.on_enqueue(queue_index)
        on_enqueued = self._on_enqueued
        if on_enqueued is not None:
            on_enqueued(packet, queue_index)
        if sketch is not None:
            self._sketch_enqueue(packet, queue_index)
        if not quiet:
            self._publish(TOPIC_PACKET_ENQUEUE, packet, queue_index, "")
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        if self.stalled or not self.link_up:
            # Drain stall or downed link: park the port.  set_link_up() /
            # resume() restart the transmit loop.
            self._busy = False
            return
        queue_index = self.scheduler.select(self)
        if queue_index is None:
            self._busy = False
            return
        packet = self._queues[queue_index].popleft()
        size = packet.size
        self._queue_bytes[queue_index] -= size
        self._total_bytes -= size
        on_dequeue = self._on_dequeue
        # None means the manager's hook is the base-class unconditional
        # accept (construction-time check), so the decision dance below
        # can be skipped entirely.
        decision = None if on_dequeue is None else on_dequeue(
            packet, queue_index)
        cache = self._tx_cache
        if cache is not None:
            tx_ns = cache.get(size)
            if tx_ns is None:
                tx_ns = transmission_time(size, self.link_rate_bps)
                cache[size] = tx_ns
        else:
            tx_ns = transmission_time(size, self.link_rate_bps)
        self._busy = True
        quiet = self._quiet
        sketch = self._sketch
        if decision is not None:
            if not decision.accept:
                # Dequeue-time drop (TCN drop variant): the scheduling
                # slot is already committed, so the wire idles for the
                # packet's transmission time — the very pathology §II-C
                # describes.
                self.dropped_packets += 1
                if sketch is not None:
                    # The packet *did* queue (delay attribution stands)
                    # and then dropped at the head.
                    self._sketch_dequeue(packet, queue_index)
                    self._sketch_drop(packet, queue_index, decision.reason)
                if not quiet:
                    self._publish(TOPIC_PACKET_DROP, packet, queue_index,
                                  decision.reason)
                self.sim.schedule(tx_ns, self._tx_complete)
                return
            if decision.mark and packet.ecn_capable:
                packet.ecn_ce = True
                if not quiet:
                    self._publish(TOPIC_PACKET_MARK, packet, queue_index,
                                  "dequeue")
        if sketch is not None:
            self._sketch_dequeue(packet, queue_index)
        if not quiet:
            self._publish(TOPIC_PACKET_DEQUEUE, packet, queue_index, "")
        self.transmitted_packets += 1
        self.transmitted_bytes += size
        self.queue_tx_bytes[queue_index] += size
        if (self.corrupt_rate > 0.0 and self._corrupt_rng is not None
                and self._corrupt_rng.random() < self.corrupt_rate):
            packet.corrupted = True
            self.corrupted_packets += 1
        sim = self.sim
        sim.schedule(tx_ns, self._tx_complete)
        delivery = sim.schedule(tx_ns + self.prop_delay_ns,
                                self._deliver, packet)
        if not self._scan_inflight:
            self._track_in_flight(delivery)

    def _on_transmit_complete(self) -> None:
        self._transmit_next()

    def evict_tail(self, queue_index: int):
        """Remove and return the tail packet of a queue (or ``None``).

        Exists for eviction-based buffer managers (the BarberQ-style
        DynaQ extension): dropping an already-buffered packet of an
        over-threshold queue to admit a more deserving arrival.  The
        evicted packet is accounted as a drop.
        """
        queue = self._queues[queue_index]
        if not queue:
            return None
        packet = queue.pop()
        self._queue_bytes[queue_index] -= packet.size
        self._total_bytes -= packet.size
        self.dropped_packets += 1
        if self._sketch is not None:
            snapshot = self._sketch.record_evict(
                self.sim.now, queue_index, packet.flow_id, packet.size,
                self._queue_bytes[queue_index],
                self._sketch_limit(queue_index))
            if snapshot is not None:
                self._sketch_publish(snapshot)
        self._publish(TOPIC_PACKET_DROP, packet, queue_index, "evicted")
        return packet

    # -- operator actions ----------------------------------------------------------

    def resize_buffer(self, new_buffer_bytes: int) -> None:
        """Change the port buffer size at runtime (paper §III-B3).

        The paper notes that resizing breaks DynaQ's ``sum(T) == B``
        equality and prescribes re-running the threshold initialisation;
        any buffer manager exposing ``reinitialize()`` gets exactly that.
        Shrinking below the current occupancy is allowed — the buffer
        drains naturally because admission checks use the new size.
        """
        if new_buffer_bytes <= 0:
            raise ConfigurationError(
                f"port {self.name}: buffer must be positive, "
                f"got {new_buffer_bytes}")
        self.buffer_bytes = new_buffer_bytes
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    def set_link_rate(self, rate_bps: int) -> None:
        """Change the link rate at runtime (shaping, §V prototype).

        Invalidates the memoised per-size transmission times; in-flight
        transmissions keep the duration they were scheduled with, which
        matches how a real shaper only affects subsequent packets.
        """
        if rate_bps <= 0:
            raise ConfigurationError(
                f"port {self.name}: rate must be positive, got {rate_bps}")
        self.link_rate_bps = rate_bps
        if self._tx_cache is not None:
            self._tx_cache.clear()

    def reconfigure_weights(self, weights: Sequence[float]) -> None:
        """Change the scheduler weights at runtime (operator action).

        Forwards to the scheduler's ``set_weights`` and then lets the
        buffer manager re-derive its weight-dependent state: DynaQ's
        ``reconfigure`` re-normalises ``T_i``/``S_i`` so ``sum(T) == B``
        holds across the transition; managers without a dedicated
        reconfigure path fall back to ``reinitialize``.
        """
        self.scheduler.set_weights(weights)
        reconfigure = getattr(self.buffer_manager, "reconfigure", None)
        if reconfigure is not None:
            reconfigure()
            return
        reinitialize = getattr(self.buffer_manager, "reinitialize", None)
        if reinitialize is not None:
            reinitialize()

    # -- fault hooks (driven by repro.faults.FaultController) ---------------------

    def set_link_down(self) -> None:
        """Take the link down: drop in-flight packets, refuse arrivals.

        Packets already on the wire (transmitted but not yet received)
        are lost — their delivery events are cancelled and accounted as
        drops, which is what makes a flap visible to transports as loss
        rather than as a silent pause.
        """
        if not self.link_up:
            return
        self.link_up = False
        if self._scan_inflight:
            # Fast-path bookkeeping trade: nothing was recorded per
            # packet, so find the wire's contents by scanning the event
            # heap for this port's delivery callback.  The scan returns
            # events in schedule order — the same order the tracking
            # deque would yield — so the published drop sequence is
            # identical across modes.
            for delivery in self.sim.pending_events_for(self._deliver):
                packet = delivery.args[0]
                self.sim.cancel(delivery)
                self.dropped_packets += 1
                self.inflight_losses += 1
                self._publish(TOPIC_PACKET_DROP, packet, None,
                              "lost in flight")
            return
        while self._in_flight:
            delivery, gen = self._in_flight.popleft()
            if delivery.gen != gen or delivery.cancelled:
                continue  # already delivered (and possibly recycled)
            packet = delivery.args[0]
            self.sim.cancel_versioned(delivery, gen)
            self.dropped_packets += 1
            self.inflight_losses += 1
            self._publish(TOPIC_PACKET_DROP, packet, None, "lost in flight")

    def set_link_up(self) -> None:
        """Bring the link back; resume draining queued packets."""
        if self.link_up:
            return
        self.link_up = True
        if not self._busy:
            self._transmit_next()

    def stall(self) -> None:
        """Pause the scheduler (drain stall): queued packets sit still.

        Unlike a downed link, arrivals are still admitted and buffered,
        so a stall fills the port buffer and exercises admission-control
        behaviour under sustained occupancy.
        """
        self.stalled = True

    def resume(self) -> None:
        """Resume draining after a :meth:`stall`."""
        if not self.stalled:
            return
        self.stalled = False
        if not self._busy:
            self._transmit_next()

    def set_corruption(self, rate: float, rng=None) -> None:
        """Corrupt a fraction of departing packets (checksum-drop later).

        Corrupted packets traverse the wire normally but fail the
        checksum at the end host and are discarded there, so the sender
        sees loss only via missing ACKs.  ``rate = 0`` clears the fault.
        """
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"corruption rate must be in [0, 1], got {rate}")
        self.corrupt_rate = rate
        if rng is not None:
            self._corrupt_rng = rng
        if rate > 0.0 and self._corrupt_rng is None:
            raise ConfigurationError(
                f"port {self.name}: corruption needs an rng for "
                "deterministic replay")

    def _track_in_flight(self, delivery: Event) -> None:
        """Remember a scheduled delivery so link-down can lose it.

        Executed events are marked cancelled by the simulator (and may
        then be recycled under event pooling), so pruning entries whose
        event is dead or whose generation moved on keeps the deque
        bounded by the propagation-delay pipe depth without a separate
        completion callback.
        """
        in_flight = self._in_flight
        while in_flight:
            head, gen = in_flight[0]
            if head.cancelled or head.gen != gen:
                in_flight.popleft()
            else:
                break
        in_flight.append((delivery, delivery.gen))

    # -- queue diagnosis (opt-in, self._sketch is None by default) ---------------

    def _sketch_limit(self, queue_index: int) -> Optional[int]:
        """The queue's current dropping threshold, for managers that
        have one (DynaQ's ``T_i``); ``None`` disables crossing
        detection for threshold-less schemes."""
        thresholds = getattr(self.buffer_manager, "thresholds", None)
        if thresholds is None:
            return None
        return thresholds[queue_index]

    def _sketch_enqueue(self, packet: Packet, queue_index: int) -> None:
        snapshot = self._sketch.record_enqueue(
            self.sim.now, queue_index, packet.flow_id, packet.size,
            self._queue_bytes[queue_index], self._sketch_limit(queue_index))
        if snapshot is not None:
            self._sketch_publish(snapshot)

    def _sketch_dequeue(self, packet: Packet, queue_index: int) -> None:
        now = self.sim.now
        self._sketch.record_dequeue(
            now, queue_index, packet.flow_id, packet.size,
            now - packet.enqueued_at, self._queue_bytes[queue_index],
            self._sketch_limit(queue_index))

    def _sketch_drop(self, packet: Packet, queue_index: int,
                     reason: str) -> None:
        snapshot = self._sketch.record_drop(
            self.sim.now, queue_index, packet.flow_id, packet.size,
            reason, self._queue_bytes[queue_index],
            self._sketch_limit(queue_index))
        if snapshot is not None:
            self._sketch_publish(snapshot)

    def _sketch_publish(self, snapshot: dict) -> None:
        """Mirror a threshold-cross/drop snapshot onto the trace bus.

        Uses the lazy ``emit`` path in both perf modes — the topic is
        silent in almost every run, and identical gating on both sides
        keeps FAST and REFERENCE traces byte-identical with the
        diagnosis switch on.
        """
        trace = self.trace
        if trace is not None:
            trace.emit(TOPIC_QUEUE_SNAPSHOT, lambda: dict(
                port=self.name, time=snapshot["time_ns"],
                queue=snapshot["queue"], detail=snapshot["detail"],
                occupancy=snapshot["occupancy"], limit=snapshot["limit"],
                composition=dict(snapshot["composition"])))

    # -- tracing -----------------------------------------------------------------

    def _publish(self, topic: str, packet: Packet,
                 queue_index: Optional[int], detail: str) -> None:
        trace = self.trace
        if trace is not None:
            trace.emit(topic, lambda: dict(
                port=self.name, time=self.sim.now, packet=packet,
                queue=queue_index, detail=detail,
                queue_bytes=tuple(self._queue_bytes)))

    def _refresh_topic_flags(self) -> None:
        """Recompute the per-topic liveness flags (bus watcher target).

        Runs on every (un)subscribe, never per packet, so the per-publish
        fast path below — and the ``_quiet`` test inlined at the hot call
        sites — needs no version bookkeeping at all.
        """
        has = self.trace.has_subscribers
        self._topic_live = {t: has(t) for t in _PORT_TOPICS}
        self._quiet = not any(self._topic_live.values())

    def _publish_cached(self, topic: str, packet: Packet,
                        queue_index: Optional[int], detail: str) -> None:
        """Fast-path publish: watcher-maintained per-topic liveness flags.

        Semantically identical to :meth:`_publish` — same topics, same
        payload dict — but a publish to a silent topic costs one dict
        lookup instead of allocating the payload closure, and mid-run
        (un)subscribes are pushed into the flags by the bus watcher.
        """
        if self._topic_live.get(topic):
            trace = self.trace
            trace.publish(topic, port=self.name, time=self.sim.now,
                          packet=packet, queue=queue_index, detail=detail,
                          queue_bytes=tuple(self._queue_bytes))
