"""End host: transport endpoints behind one NIC uplink.

A host owns a single egress port (its NIC) toward the first-hop switch and
dispatches arriving packets to transport endpoints: ACKs go to the sender
of the matching flow, data packets to a receiver endpoint created on
demand.  The NIC port is a plain FIFO with a generous buffer by default —
in every experiment of the paper the contended resource is the *switch*
egress port, and modelling NIC-driver buffering beyond pacing-at-line-rate
would only blur that (the paper's qdisc prototype rate-limits to 99.5 % of
NIC capacity for the same reason).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..queueing.besteffort import BestEffortBuffer
from ..queueing.schedulers.fifo import FIFOScheduler
from ..sim.engine import Simulator
from ..sim.errors import ConfigurationError
from ..sim.trace import TraceBus
from ..sim.units import kilobytes
from ..transport.base import FlowReceiver, TransportSender
from .packet import Packet
from .port import EgressPort

DEFAULT_NIC_BUFFER = kilobytes(512)


class Host:
    """A server with one NIC."""

    def __init__(self, sim: Simulator, name: str,
                 trace: Optional[TraceBus] = None,
                 delayed_ack: bool = False) -> None:
        self.sim = sim
        self.name = name
        self.trace = trace
        self.delayed_ack = delayed_ack
        self.nic: Optional[EgressPort] = None
        self.senders: Dict[int, TransportSender] = {}
        self.receivers: Dict[int, FlowReceiver] = {}
        self.alive = True
        self.received_packets = 0
        self.received_bytes = 0
        self.dropped_while_down = 0
        self.checksum_drops = 0
        self.crashes = 0

    # -- wiring -----------------------------------------------------------------

    def attach_nic(self, *, rate_bps: int, prop_delay_ns: int,
                   buffer_bytes: int = DEFAULT_NIC_BUFFER) -> EgressPort:
        """Create the host's uplink port (connected later by the topology)."""
        self.nic = EgressPort(
            self.sim, f"{self.name}.nic", rate_bps=rate_bps,
            prop_delay_ns=prop_delay_ns, buffer_bytes=buffer_bytes,
            scheduler=FIFOScheduler(), buffer_manager=BestEffortBuffer(),
            trace=self.trace)
        return self.nic

    def register_sender(self, sender: TransportSender) -> None:
        """Bind a transport sender so its ACKs find their way back."""
        flow_id = sender.flow.flow_id
        if flow_id in self.senders:
            raise ConfigurationError(
                f"{self.name}: duplicate sender for flow {flow_id}")
        self.senders[flow_id] = sender

    # -- datapath ----------------------------------------------------------------

    def send_packet(self, packet: Packet) -> None:
        """Transmit a packet out of the NIC (transports call this)."""
        if self.nic is None:
            raise ConfigurationError(f"{self.name} has no NIC attached")
        if not self.alive:
            return
        self.nic.send(packet)

    def receive(self, packet: Packet) -> None:
        """Deliver an arriving packet to the right endpoint."""
        if not self.alive:
            self.dropped_while_down += 1
            return
        if packet.corrupted:
            # Checksum failure: the NIC discards the frame silently; the
            # sender only learns via the missing ACK (loss recovery).
            self.checksum_drops += 1
            return
        self.received_packets += 1
        self.received_bytes += packet.size
        if packet.is_ack:
            sender = self.senders.get(packet.flow_id)
            if sender is not None:
                sender.on_ack(packet)
            return
        receiver = self.receivers.get(packet.flow_id)
        if receiver is None:
            receiver = FlowReceiver(self.sim, self, packet.flow_id,
                                    delayed_ack=self.delayed_ack)
            self.receivers[packet.flow_id] = receiver
        receiver.on_data(packet)

    # -- fault hooks (driven by repro.faults.FaultController) ---------------------

    def crash(self) -> None:
        """Take the host down: stop all transports, drop arrivals.

        Sender transports are suspended (their RTO timers cancelled) and
        incoming packets are discarded, so peers talking *to* this host
        lose their ACK clock and walk the RFC 6298 exponential-backoff
        path until :meth:`restart`.  Receiver reassembly state survives
        the crash (modelling a fast reboot that restores connection
        state), which is what lets in-progress flows complete after the
        restart instead of hanging forever.
        """
        if not self.alive:
            return
        self.alive = False
        self.crashes += 1
        for sender in self.senders.values():
            sender.on_host_down()
        for receiver in self.receivers.values():
            receiver.on_host_down()

    def restart(self) -> None:
        """Bring a crashed host back; transports reset and resume.

        Each incomplete sender restarts from its last cumulative ACK with
        a one-segment window — the transport-state reset of a reboot —
        and re-arms its retransmission timer.
        """
        if self.alive:
            return
        self.alive = True
        for sender in self.senders.values():
            sender.restart_after_crash()
