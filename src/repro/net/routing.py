"""Forwarding tables and ECMP.

Switches forward by destination host name.  An entry maps a destination to
one **or more** candidate egress ports; with several candidates the switch
picks one by hashing the flow five-tuple surrogate ``(flow_id, src, dst)``
with a per-switch salt — Equal-Cost Multi-Path exactly as the leaf-spine
simulations use it.  The hash is the process-independent
:func:`~repro.sim.randomness.stable_hash`, so path choices reproduce across
runs.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.errors import RoutingError
from ..sim.randomness import stable_hash
from .packet import Packet


class ForwardingTable:
    """Destination-keyed next-hop table with ECMP groups."""

    def __init__(self, switch_name: str) -> None:
        self.switch_name = switch_name
        self._routes: Dict[str, List] = {}

    def add_route(self, destination: str, port) -> None:
        """Append ``port`` to the ECMP group for ``destination``."""
        self._routes.setdefault(destination, []).append(port)

    def lookup(self, packet: Packet):
        """Pick the egress port for ``packet`` (ECMP by flow hash)."""
        ports = self._routes.get(packet.dst)
        if not ports:
            raise RoutingError(
                f"{self.switch_name}: no route to {packet.dst!r}")
        if len(ports) == 1:
            return ports[0]
        index = stable_hash(self.switch_name, packet.flow_id,
                            packet.src, packet.dst) % len(ports)
        return ports[index]

    def destinations(self) -> List[str]:
        """All destinations this table can forward to (for validation)."""
        return sorted(self._routes)
