"""Topology builders: star (rack) and leaf-spine fabrics.

Both builders take *factories* for schedulers and buffer managers because
every switch egress port needs its own instances (DynaQ thresholds, DRR
deficits, and so on are per-port state).  Propagation delays are derived
from the experiment's base RTT: a star path crosses 4 links per round trip
and a leaf-spine path crosses 8, so each link gets ``rtt/4`` or ``rtt/8``
respectively — reproducing the paper's 500 us (testbed), 84/40 us (10/100
Gbps rack), and 85.2 us (leaf-spine) base RTTs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..queueing.base import BufferManager
from ..queueing.schedulers.base import Scheduler
from ..sim.engine import Simulator
from ..sim.trace import TraceBus
from .host import Host
from .port import EgressPort
from .switch import Switch

SchedulerFactory = Callable[[], Scheduler]
BufferFactory = Callable[[], BufferManager]


class Network:
    """A built topology: simulator, hosts, switches, and the trace bus."""

    def __init__(self, sim: Simulator, trace: TraceBus) -> None:
        self.sim = sim
        self.trace = trace
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, Switch] = {}

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> Switch:
        return self.switches[name]

    def host_names(self) -> List[str]:
        return sorted(self.hosts)


def _make_port(sim: Simulator, name: str, *, rate_bps: int,
               prop_delay_ns: int, buffer_bytes: int,
               scheduler_factory: SchedulerFactory,
               buffer_factory: BufferFactory,
               trace: TraceBus) -> EgressPort:
    return EgressPort(
        sim, name, rate_bps=rate_bps, prop_delay_ns=prop_delay_ns,
        buffer_bytes=buffer_bytes, scheduler=scheduler_factory(),
        buffer_manager=buffer_factory(), trace=trace)


def build_star(*, num_hosts: int, rate_bps: int, rtt_ns: int,
               buffer_bytes: int, scheduler_factory: SchedulerFactory,
               buffer_factory: BufferFactory,
               sim: Optional[Simulator] = None,
               trace: Optional[TraceBus] = None) -> Network:
    """A rack: ``num_hosts`` servers around one switch.

    This is the paper's testbed shape (5 servers on a server-emulated
    switch) and the static-flow simulation shape ("a star topology to
    emulate a compute rack").  Host names are ``h0..h{n-1}``.
    """
    sim = sim or Simulator()
    trace = trace or TraceBus()
    net = Network(sim, trace)
    switch = Switch(sim, "s0")
    net.switches["s0"] = switch
    link_prop = rtt_ns // 4
    for index in range(num_hosts):
        name = f"h{index}"
        host = Host(sim, name, trace=trace)
        host.attach_nic(rate_bps=rate_bps, prop_delay_ns=link_prop)
        host.nic.connect(switch)
        port = _make_port(
            sim, f"s0->{name}", rate_bps=rate_bps, prop_delay_ns=link_prop,
            buffer_bytes=buffer_bytes, scheduler_factory=scheduler_factory,
            buffer_factory=buffer_factory, trace=trace)
        port.connect(host)
        switch.add_route(name, port)
        net.hosts[name] = host
    return net


def build_leaf_spine(*, num_leaves: int, num_spines: int,
                     hosts_per_leaf: int, rate_bps: int, rtt_ns: int,
                     buffer_bytes: int,
                     scheduler_factory: SchedulerFactory,
                     buffer_factory: BufferFactory,
                     sim: Optional[Simulator] = None,
                     trace: Optional[TraceBus] = None) -> Network:
    """A non-blocking leaf-spine fabric with ECMP.

    The paper's large-scale setup: 12 leaves x 12 spines, 12 x 10 Gbps
    downlinks and uplinks per leaf (144 hosts total).  Cross-rack packets
    take host -> leaf -> spine -> leaf -> host; ECMP spreads flows over
    the spines by stable flow hash.  Host names are ``h{leaf}_{index}``.
    """
    sim = sim or Simulator()
    trace = trace or TraceBus()
    net = Network(sim, trace)
    link_prop = rtt_ns // 8
    leaves = [Switch(sim, f"leaf{i}") for i in range(num_leaves)]
    spines = [Switch(sim, f"spine{i}") for i in range(num_spines)]
    for switch in leaves + spines:
        net.switches[switch.name] = switch

    host_leaf: Dict[str, int] = {}
    for leaf_index, leaf in enumerate(leaves):
        for host_index in range(hosts_per_leaf):
            name = f"h{leaf_index}_{host_index}"
            host = Host(sim, name, trace=trace)
            host.attach_nic(rate_bps=rate_bps, prop_delay_ns=link_prop)
            host.nic.connect(leaf)
            down = _make_port(
                sim, f"{leaf.name}->{name}", rate_bps=rate_bps,
                prop_delay_ns=link_prop, buffer_bytes=buffer_bytes,
                scheduler_factory=scheduler_factory,
                buffer_factory=buffer_factory, trace=trace)
            down.connect(host)
            leaf.add_route(name, down)
            net.hosts[name] = host
            host_leaf[name] = leaf_index

    # Leaf uplinks: every leaf reaches every spine; remote destinations are
    # ECMP-spread across all uplinks.  Spine downlinks reach each leaf.
    for leaf_index, leaf in enumerate(leaves):
        uplinks = []
        for spine in spines:
            up = _make_port(
                sim, f"{leaf.name}->{spine.name}", rate_bps=rate_bps,
                prop_delay_ns=link_prop, buffer_bytes=buffer_bytes,
                scheduler_factory=scheduler_factory,
                buffer_factory=buffer_factory, trace=trace)
            up.connect(spine)
            leaf.add_port(up)
            uplinks.append(up)
        for name, home_leaf in host_leaf.items():
            if home_leaf != leaf_index:
                for up in uplinks:
                    leaf.table.add_route(name, up)

    for spine in spines:
        for leaf_index, leaf in enumerate(leaves):
            down = _make_port(
                sim, f"{spine.name}->{leaf.name}", rate_bps=rate_bps,
                prop_delay_ns=link_prop, buffer_bytes=buffer_bytes,
                scheduler_factory=scheduler_factory,
                buffer_factory=buffer_factory, trace=trace)
            down.connect(leaf)
            spine.add_port(down)
            for name, home_leaf in host_leaf.items():
                if home_leaf == leaf_index:
                    spine.table.add_route(name, down)
    return net
