"""Canonical exception hierarchy and CLI exit-code contract.

A single root (:class:`ReproError`) lets callers catch everything raised
by this library without masking unrelated bugs.  This module is the one
authoritative home of the taxonomy; :mod:`repro.sim.errors` and
``repro.perf.bench`` re-export the names they historically defined so
existing imports keep working.

CLI exit codes
--------------
``repro`` subcommands map outcomes onto process exit codes as follows:

==== =====================================================================
code meaning
==== =====================================================================
0    success — the run completed and every gate passed
1    the run completed but a gate failed: chaos invariant violations or
     watchdog aborts, sweep points that exhausted their retries, bench
     op-counter drift or budget misses
2    the run itself failed or was interrupted: any :class:`ReproError`
     (bad configuration, simulation misuse, snapshot corruption) or
     Ctrl-C; partial results may have been printed
3    a snapshot kill-drill halted the run on purpose
     (``--snapshot-kill-after``); the autosave on disk is ready for
     ``--restore``
==== =====================================================================

Worker processes spawned by :mod:`repro.experiments.parallel` use
:data:`WORKER_DRILL_EXIT` (43) when a kill-drill fires inside a worker,
so the parent can tell an intentional drill death from a real crash in
its logs (both are retried the same way: restore from the autosave).

The service tier maps onto the same contract: ``repro serve`` exits 0
on a clean drain (SIGTERM) and 2 on a :class:`ServeError` or any other
:class:`ReproError`; ``repro submit`` exits 0 when the job was accepted
(or already finished), 1 when the daemon refused it (overloaded /
draining) or the job itself failed, and 2 on connection or protocol
errors.  SIGTERM anywhere in the CLI takes the same clean
partial-result path as Ctrl-C (exit 2).  See ``docs/serving.md``.
"""

from __future__ import annotations

#: Exit-code constants documented above.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_ERROR = 2
EXIT_DRILL = 3

#: ``os._exit`` status used by parallel workers when a snapshot
#: kill-drill fires mid-job (see module docstring).
WORKER_DRILL_EXIT = 43

EXIT_CODES = {
    EXIT_OK: "success, all gates passed",
    EXIT_FAILURE: "completed with failed gates (violations, failed "
                  "points, bench drift)",
    EXIT_ERROR: "ReproError or interrupt; partial results at best",
    EXIT_DRILL: "snapshot kill-drill halt; autosave ready for --restore",
}


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """The event loop was used incorrectly (e.g. scheduling in the past)."""


class WatchdogTimeout(SimulationError):
    """A scenario exceeded its wall-clock or simulated-time budget.

    Raised by :class:`repro.faults.ScenarioWatchdog` after it has stopped
    the event loop; catching :class:`SimulationError` therefore also
    covers watchdog aborts (the CLI and the flight recorder rely on
    this).
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment, device, or scheme was configured inconsistently.

    Also a :class:`ValueError`: configuration mistakes are bad values, and
    the double parentage lets old call sites that catch ``ValueError``
    keep working while new code catches the precise type (or
    :class:`ReproError` for anything raised by this library).
    """


class RoutingError(ReproError):
    """No route exists for a packet, or a forwarding table is malformed."""


class TransportError(ReproError):
    """A transport connection was driven through an invalid state change."""


class BenchError(ReproError, RuntimeError):
    """A bench's reference and fast runs disagreed on an op counter.

    Also a :class:`RuntimeError` because it predates this module and old
    call sites catch it as one.
    """


class SnapshotError(ReproError):
    """A snapshot file could not be written, read, or resumed."""


class SnapshotIntegrityError(SnapshotError):
    """A snapshot's payload hash did not match its header.

    The file was truncated or corrupted after it was written; restoring
    from it would silently diverge, so loading refuses instead.
    """


class ServeError(ReproError):
    """The serving tier failed: bad socket, dead daemon, protocol skew.

    Raised by the ``repro serve`` daemon and its clients for transport
    and protocol problems (a socket nobody listens on, a malformed
    frame, a connection that died mid-request).  *Service* refusals —
    overloaded, draining, unknown job — are not errors: they are
    explicit protocol responses, because shedding load is the daemon
    working as designed.
    """


class SnapshotHalt(ReproError):
    """A snapshot kill-drill stopped the run after its Nth autosave.

    Control flow, not a failure: raised by ``run_world`` when
    ``SnapshotPolicy.halt_after_saves`` is reached so drills and the
    differential tests can interrupt a run at a deterministic point.
    The CLI maps it to exit code :data:`EXIT_DRILL`; parallel workers
    turn it into an ``os._exit(WORKER_DRILL_EXIT)`` hard death so the
    executor's crash-recovery path is exercised for real.
    """

    def __init__(self, path: str, saves: int) -> None:
        super().__init__(
            f"snapshot drill: halted after {saves} save(s); "
            f"restore from {path}")
        self.path = path
        self.saves = saves


__all__ = [
    "EXIT_OK", "EXIT_FAILURE", "EXIT_ERROR", "EXIT_DRILL",
    "WORKER_DRILL_EXIT", "EXIT_CODES",
    "ReproError", "SimulationError", "WatchdogTimeout",
    "ConfigurationError", "RoutingError", "TransportError",
    "BenchError", "ServeError", "SnapshotError",
    "SnapshotIntegrityError", "SnapshotHalt",
]
