"""Reading and writing the diagnosis artifact (``*.diag.json``).

One JSON document per ``--diagnose-out`` invocation: schema tag, the
window width, and one sketch dump per contributing port.  The file is
written with sorted keys and no incidental whitespace variation, so two
runs that produced the same sketches produce byte-identical files —
the determinism tests compare these bytes directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import ConfigurationError

PathLike = Union[str, Path]

DIAGNOSIS_SCHEMA = "repro.diagnosis/1"


def write_diagnosis(path: PathLike, capture,
                    meta: Dict[str, Any] = None) -> Dict[str, Any]:
    """Write ``capture`` (a DiagnosisCapture or a prepared dict) to
    ``path``; returns the document written."""
    document = capture if isinstance(capture, dict) else capture.as_dict()
    if meta:
        document = dict(document)
        document["meta"] = meta
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True,
                  separators=(",", ":"))
        handle.write("\n")
    return document


def load_diagnosis(path: PathLike) -> Dict[str, Any]:
    """Load and sanity-check one diagnosis document."""
    try:
        with Path(path).open(encoding="utf-8") as handle:
            document = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON ({exc})")
    if (not isinstance(document, dict)
            or document.get("schema") != DIAGNOSIS_SCHEMA):
        raise ConfigurationError(
            f"{path}: not a diagnosis dump (expected schema "
            f"{DIAGNOSIS_SCHEMA!r}, got "
            f"{document.get('schema') if isinstance(document, dict) else type(document).__name__!r})")
    if not isinstance(document.get("ports"), dict):
        raise ConfigurationError(f"{path}: malformed dump: no ports table")
    return document
