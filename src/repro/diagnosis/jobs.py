"""Module-level diagnosis jobs for the parallel executor.

The CLI's ``--diagnose-out`` is a single-serial-run tool (one process,
one capture), but diagnosis itself parallelises cleanly: each sweep
point runs with the switch on inside its own capture and returns the
JSON-able capture dict.  These targets are module-level functions so the
``"callable"`` job kind can name them (``repro.diagnosis.jobs:...``) and
workers re-import them — see ``docs/parallel.md``.  The determinism
tests drive them through :func:`~repro.experiments.parallel.parallel_map`
with ``--jobs N`` and assert the returned dumps are byte-identical to a
serial run.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..perf.config import active_config, use_config
from .capture import capture_diagnosis
from .sketch import SketchSettings


def _settings(window_ns: Optional[int]) -> Optional[SketchSettings]:
    return (SketchSettings(window_ns=window_ns)
            if window_ns is not None else None)


def fair_sharing_diagnosis_job(*, scheme: str, time_unit_s: float = 0.02,
                               window_ns: Optional[int] = None
                               ) -> Dict[str, Any]:
    """Run a (scaled) fig. 5 fair-sharing point and return its dump."""
    from ..experiments.testbed import run_fair_sharing

    with use_config(active_config().clone(queue_diagnosis=True)):
        with capture_diagnosis(_settings(window_ns)) as capture:
            run_fair_sharing(scheme, time_unit_s=time_unit_s,
                             sample_interval_s=time_unit_s / 4)
    return capture.as_dict()


def fct_diagnosis_job(*, scheme: str, load: float, num_flows: int = 60,
                      workload: str = "web_search",
                      truncate_mb: float = 1.0, seed: int = 1,
                      window_ns: Optional[int] = None) -> Dict[str, Any]:
    """Run one (scheme, load) FCT point and return its diagnosis dump."""
    from ..experiments.testbed import run_fct_experiment
    from ..workloads.datasets import workload as load_workload

    distribution = load_workload(workload)
    if truncate_mb:
        distribution = distribution.truncated(int(truncate_mb * 1_000_000))
    with use_config(active_config().clone(queue_diagnosis=True)):
        with capture_diagnosis(_settings(window_ns)) as capture:
            run_fct_experiment(scheme, load=load, num_flows=num_flows,
                               distribution=distribution, seed=seed)
    return capture.as_dict()
