"""Data-plane diagnosis sketches (the PrintQueue idea, in simulation).

One :class:`PortDiagnosisSketch` per egress port, fed directly by the
port's enqueue/dequeue/drop hook sites — *not* by a bus subscription, so
it works without any tracing attached, costs nothing to silent topics,
and rides inside world snapshots as plain picklable state.  It keeps:

* a **time-window ring** of per-queue flow-composition registers:
  window ``w`` covers ``[w*window_ns, (w+1)*window_ns)`` and records how
  many bytes each flow *enqueued* into each service queue during the
  window.  Overwritten ring slots spill into an archive dict, so the
  offline query layer can cover the whole run while the hot path stays
  O(1) per packet;
* a **live composition** per queue (bytes of each flow currently
  buffered): incremented on enqueue, decremented on dequeue/eviction —
  this is what a threshold-crossing snapshot freezes;
* a **per-flow delay table** attributing queueing delay to flows:
  packet count, total/max delay, and the enqueue/dequeue instants and
  queue of the worst packet (the victim interval culprit queries use);
* **drop aggregation** per (queue, flow, reason);
* bounded **snapshots**: the queue's flow composition at the instant it
  crossed its DynaQ threshold (rising edge) or took a drop (at most one
  drop snapshot per queue per window).

Everything is integer arithmetic over the deterministic event stream,
so FAST and REFERENCE runs produce byte-identical sketch dumps — the
``fig05_diagnosed`` bench and ``tests/test_diagnosis.py`` enforce it.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple


class SketchSettings:
    """Sizing knobs for :class:`PortDiagnosisSketch`.

    Parameters
    ----------
    window_ns:
        Width of one composition window (default 1 ms of simulated
        time — a handful of RTTs on the 500 us testbed).
    ring_slots:
        Live ring slots before a window spills to the archive.
    max_snapshots:
        Threshold-cross / drop snapshots retained per port (newest win).
    """

    __slots__ = ("window_ns", "ring_slots", "max_snapshots")

    def __init__(self, *, window_ns: int = 1_000_000,
                 ring_slots: int = 256,
                 max_snapshots: int = 512) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        if ring_slots <= 0:
            raise ValueError(f"ring_slots must be positive, got {ring_slots}")
        if max_snapshots <= 0:
            raise ValueError(
                f"max_snapshots must be positive, got {max_snapshots}")
        self.window_ns = window_ns
        self.ring_slots = ring_slots
        self.max_snapshots = max_snapshots


DEFAULT_SETTINGS = SketchSettings()

_active_settings: SketchSettings = DEFAULT_SETTINGS


def active_settings() -> SketchSettings:
    """Settings newly constructed sketches pick up."""
    return _active_settings


def set_settings(settings: SketchSettings) -> SketchSettings:
    """Install ``settings`` globally; returns the previous value."""
    global _active_settings
    previous = _active_settings
    _active_settings = settings
    return previous


class PortDiagnosisSketch:
    """Per-port queue-diagnosis state, updated by the port's hot path."""

    __slots__ = ("port", "window_ns", "snapshots", "updates",
                 "snapshots_taken", "_ring", "_archive", "_live", "_over",
                 "_flows", "_drops", "_drop_snap_window")

    def __init__(self, port: str,
                 settings: Optional[SketchSettings] = None) -> None:
        settings = settings if settings is not None else active_settings()
        self.port = port
        self.window_ns = settings.window_ns
        #: Retained snapshots, oldest evicted first.
        self.snapshots: Deque[Dict[str, Any]] = deque(
            maxlen=settings.max_snapshots)
        #: Hook invocations (enqueue + dequeue + drop + evict) — part of
        #: the bench op counters, so FAST and REFERENCE must agree.
        self.updates = 0
        #: Monotonic snapshot count (unlike ``len(snapshots)``, never
        #: loses evictions).
        self.snapshots_taken = 0
        # Ring slot = [window_id, {queue: {flow: bytes}}]; a slot whose
        # window moved on spills into the archive keyed by window id.
        self._ring: List[Optional[List[Any]]] = [None] * settings.ring_slots
        self._archive: Dict[int, Dict[int, Dict[int, int]]] = {}
        self._live: Dict[int, Dict[int, int]] = {}
        self._over: Dict[int, bool] = {}
        # flow -> [packets, total_delay_ns, max_delay_ns,
        #          max_enqueued_ns, max_dequeued_ns, max_queue]
        self._flows: Dict[int, List[int]] = {}
        # (queue, flow, reason) -> [count, bytes]; queue None for drops
        # that never reached a queue (downed link).
        self._drops: Dict[Tuple[Optional[int], int, str], List[int]] = {}
        self._drop_snap_window: Dict[int, int] = {}

    # -- hot-path updates ------------------------------------------------------

    def record_enqueue(self, now: int, queue: int, flow: int, size: int,
                       occupancy: int,
                       limit: Optional[int]) -> Optional[Dict[str, Any]]:
        """Account an admitted packet; returns a snapshot on a rising
        threshold crossing (occupancy moved above ``limit``)."""
        self.updates += 1
        window_id = now // self.window_ns
        index = window_id % len(self._ring)
        slot = self._ring[index]
        if slot is None or slot[0] != window_id:
            if slot is not None:
                self._archive[slot[0]] = slot[1]
            slot = self._ring[index] = [window_id, {}]
        per_queue = slot[1]
        window_flows = per_queue.get(queue)
        if window_flows is None:
            window_flows = per_queue[queue] = {}
        window_flows[flow] = window_flows.get(flow, 0) + size
        live = self._live.get(queue)
        if live is None:
            live = self._live[queue] = {}
        live[flow] = live.get(flow, 0) + size
        if limit is not None:
            if occupancy > limit:
                if not self._over.get(queue):
                    self._over[queue] = True
                    return self._take_snapshot(now, queue, "threshold-cross",
                                               occupancy, limit)
            elif self._over.get(queue):
                # The threshold moved up underneath us (a steal in this
                # queue's favour): re-arm the rising-edge detector.
                self._over[queue] = False
        return None

    def record_dequeue(self, now: int, queue: int, flow: int, size: int,
                       delay_ns: int, occupancy: int,
                       limit: Optional[int]) -> None:
        """Account a packet leaving the queue head (served or dropped at
        dequeue time) and attribute its queueing delay to its flow."""
        self.updates += 1
        live = self._live.get(queue)
        if live is not None:
            remaining = live.get(flow, 0) - size
            if remaining > 0:
                live[flow] = remaining
            else:
                live.pop(flow, None)
        stats = self._flows.get(flow)
        if stats is None:
            stats = self._flows[flow] = [0, 0, -1, 0, 0, 0]
        stats[0] += 1
        stats[1] += delay_ns
        if delay_ns > stats[2]:
            stats[2] = delay_ns
            stats[3] = now - delay_ns
            stats[4] = now
            stats[5] = queue
        if (limit is not None and occupancy <= limit
                and self._over.get(queue)):
            self._over[queue] = False

    def record_drop(self, now: int, queue: Optional[int], flow: int,
                    size: int, reason: str, occupancy: int,
                    limit: Optional[int]) -> Optional[Dict[str, Any]]:
        """Account a drop; returns a composition snapshot for the first
        drop a queue takes in each window."""
        self.updates += 1
        key = (queue, flow, reason)
        entry = self._drops.get(key)
        if entry is None:
            self._drops[key] = [1, size]
        else:
            entry[0] += 1
            entry[1] += size
        if queue is None:
            return None
        window_id = now // self.window_ns
        if self._drop_snap_window.get(queue) == window_id:
            return None
        self._drop_snap_window[queue] = window_id
        return self._take_snapshot(now, queue, f"drop:{reason}",
                                   occupancy, limit)

    def record_evict(self, now: int, queue: int, flow: int, size: int,
                     occupancy: int,
                     limit: Optional[int]) -> Optional[Dict[str, Any]]:
        """Account a tail eviction: the packet leaves the live
        composition *and* counts as a drop (reason ``evicted``)."""
        live = self._live.get(queue)
        if live is not None:
            remaining = live.get(flow, 0) - size
            if remaining > 0:
                live[flow] = remaining
            else:
                live.pop(flow, None)
        return self.record_drop(now, queue, flow, size, "evicted",
                                occupancy, limit)

    def _take_snapshot(self, now: int, queue: int, detail: str,
                       occupancy: int,
                       limit: Optional[int]) -> Dict[str, Any]:
        self.snapshots_taken += 1
        composition = {flow: size for flow, size
                       in sorted(self._live.get(queue, {}).items())}
        snapshot = {"time_ns": now, "queue": queue, "detail": detail,
                    "occupancy": occupancy, "limit": limit,
                    "composition": composition}
        self.snapshots.append(snapshot)
        return snapshot

    # -- export ----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump of the whole sketch, deterministically ordered.

        JSON object keys must be strings, so window ids / queue indices /
        flow ids become decimal strings here; the query layer converts
        them back.
        """
        windows: Dict[str, Dict[str, Dict[str, int]]] = {}
        merged: Dict[int, Dict[int, Dict[int, int]]] = dict(self._archive)
        for slot in self._ring:
            if slot is not None:
                merged[slot[0]] = slot[1]
        for window_id in sorted(merged):
            per_queue = merged[window_id]
            windows[str(window_id)] = {
                str(queue): {str(flow): size for flow, size
                             in sorted(per_queue[queue].items())}
                for queue in sorted(per_queue)}
        flows = {
            str(flow): {
                "packets": stats[0],
                "total_delay_ns": stats[1],
                "max_delay_ns": stats[2],
                "max_enqueued_ns": stats[3],
                "max_dequeued_ns": stats[4],
                "max_queue": stats[5],
            }
            for flow, stats in sorted(self._flows.items())}
        drops = [
            {"queue": queue, "flow": flow, "reason": reason,
             "count": entry[0], "bytes": entry[1]}
            for (queue, flow, reason), entry in sorted(
                self._drops.items(),
                key=lambda item: (item[0][0] if item[0][0] is not None
                                  else -1, item[0][1], item[0][2]))]
        snapshots = [
            dict(snapshot,
                 composition={str(flow): size for flow, size
                              in snapshot["composition"].items()})
            for snapshot in self.snapshots]
        return {
            "port": self.port,
            "window_ns": self.window_ns,
            "updates": self.updates,
            "snapshots_taken": self.snapshots_taken,
            "windows": windows,
            "flows": flows,
            "drops": drops,
            "snapshots": snapshots,
        }
