"""Collecting diagnosis sketches from finished experiment worlds.

Ports own their sketches; nothing registers anywhere at construction
time (registration would leak ports across runs and break snapshot
restores).  Instead, an *active* :class:`DiagnosisCapture` — installed
by the :func:`capture_diagnosis` context manager, usually via the CLI's
``--diagnose-out`` — harvests every non-empty sketch when
:func:`~repro.snapshot.world.run_world` finishes a world, labelling it
``<scheme>[@load]/<port>`` from the world's metadata.  Restored worlds
need no special casing: their sketches ride inside the pickle and are
collected exactly like fresh ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .sketch import SketchSettings, active_settings, set_settings


class DiagnosisCapture:
    """Accumulates sketch dumps from one or more finished worlds."""

    def __init__(self, settings: Optional[SketchSettings] = None) -> None:
        self.settings = (settings if settings is not None
                         else active_settings())
        #: label -> sketch dump (see PortDiagnosisSketch.to_dict).
        self.ports: Dict[str, Dict[str, Any]] = {}
        self.worlds_collected = 0

    def collect(self, world: Any) -> int:
        """Harvest every non-empty sketch from ``world``; returns how
        many ports contributed."""
        meta = getattr(world, "meta", {}) or {}
        scheme = meta.get("scheme", getattr(world, "kind", "run"))
        load = meta.get("load")
        base = f"{scheme}@{load:g}" if load is not None else str(scheme)
        collected = 0
        for port in world.iter_ports():
            sketch = getattr(port, "_sketch", None)
            if sketch is None or not sketch.updates:
                continue
            label = f"{base}/{sketch.port}"
            unique = label
            suffix = 2
            while unique in self.ports:
                unique = f"{label}#{suffix}"
                suffix += 1
            self.ports[unique] = sketch.to_dict()
            collected += 1
        if collected:
            self.worlds_collected += 1
        return collected

    def as_dict(self) -> Dict[str, Any]:
        from .dump import DIAGNOSIS_SCHEMA

        return {
            "schema": DIAGNOSIS_SCHEMA,
            "window_ns": self.settings.window_ns,
            "worlds": self.worlds_collected,
            "ports": {label: self.ports[label]
                      for label in sorted(self.ports)},
        }


_active: Optional[DiagnosisCapture] = None


def active_capture() -> Optional[DiagnosisCapture]:
    """The capture ``run_world`` hands finished worlds to (or ``None``)."""
    return _active


@contextmanager
def capture_diagnosis(settings: Optional[SketchSettings] = None
                      ) -> Iterator[DiagnosisCapture]:
    """Install a fresh active capture (and, optionally, sketch settings
    for ports constructed inside the block).

    Nesting restores the previous capture on exit, so an inner capture
    (one chaos scheme, say) never swallows an outer session's ports.
    Note this only *collects*; turning the sketches on is the
    ``queue_diagnosis`` perf switch, flipped separately so the bench can
    measure sketch cost without any capture attached.
    """
    global _active
    previous = _active
    previous_settings = None
    if settings is not None:
        previous_settings = set_settings(settings)
    capture = DiagnosisCapture(settings)
    _active = capture
    try:
        yield capture
    finally:
        _active = previous
        if previous_settings is not None:
            set_settings(previous_settings)
