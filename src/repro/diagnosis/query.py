"""Offline queries over diagnosis dumps (the ``repro diagnose`` engine).

The two questions from the paper's operator point of view:

* *what filled port P's queue in window [t0, t1]?* — :meth:`fill`
  aggregates the per-window composition registers over the requested
  interval;
* *who are the culprits for this victim flow?* — :meth:`culprits` looks
  up the victim's worst queueing interval from the delay table (the
  enqueue/dequeue instants of its maximum-delay packet) and attributes
  the bytes enqueued into that queue during the covering windows, which
  is exactly PrintQueue's time-window approximation of "the packets in
  front of me".

Victim selection can come from the dump itself (:meth:`victims`, worst
max-delay flows) or be joined against an FCT CSV
(:func:`percentile_victim` — e.g. the p99-FCT flow of a workload).
Further joins: per-flow drop counts from a JSONL trace file and
threshold rows from ``--timeline-csv`` exports.  All rendering is a
pure function of the dump bytes, so two identical dumps produce
byte-identical reports.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import ConfigurationError
from ..sim.trace import TOPIC_PACKET_DROP

PathLike = Union[str, Path]


def _ms(value_ns: int) -> str:
    return f"{value_ns / 1e6:.3f}"


class DiagnosisQuery:
    """Query engine over one loaded diagnosis document."""

    def __init__(self, document: Dict[str, Any]) -> None:
        self.document = document
        self.window_ns = int(document.get("window_ns", 1_000_000))
        self.ports: Dict[str, Dict[str, Any]] = document["ports"]

    # -- port selection --------------------------------------------------------

    def labels(self) -> List[str]:
        return sorted(self.ports)

    def resolve_port(self, selector: Optional[str]) -> List[str]:
        """Labels matching ``selector`` (exact label, bare port name, or
        substring); ``None`` selects every port."""
        labels = self.labels()
        if selector is None:
            return labels
        if selector in self.ports:
            return [selector]
        exact = [label for label in labels
                 if label.split("/", 1)[-1] == selector]
        if exact:
            return exact
        loose = [label for label in labels if selector in label]
        if not loose:
            raise ConfigurationError(
                f"no diagnosed port matches {selector!r}; "
                f"known: {labels}")
        return loose

    def single_port(self, selector: Optional[str]) -> str:
        matches = self.resolve_port(selector)
        if len(matches) > 1:
            raise ConfigurationError(
                f"--port {selector or '(all)'} is ambiguous: {matches}; "
                "name one label exactly")
        return matches[0]

    # -- core queries ----------------------------------------------------------

    def _windows_overlapping(self, port_dump: Dict[str, Any],
                             start_ns: Optional[int],
                             end_ns: Optional[int]) -> List[int]:
        window_ns = int(port_dump.get("window_ns", self.window_ns))
        selected = []
        for key in port_dump["windows"]:
            window_id = int(key)
            window_start = window_id * window_ns
            window_end = window_start + window_ns
            if start_ns is not None and window_end <= start_ns:
                continue
            if end_ns is not None and window_start > end_ns:
                continue
            selected.append(window_id)
        return sorted(selected)

    def fill(self, label: str, *, queue: Optional[int] = None,
             start_ns: Optional[int] = None,
             end_ns: Optional[int] = None
             ) -> Tuple[List[int], List[Tuple[int, int]]]:
        """Bytes each flow enqueued into ``label``'s queue(s) over the
        windows overlapping [start_ns, end_ns].

        Returns ``(window_ids, rows)`` with rows ``(flow, bytes)``
        sorted by descending bytes then flow id.
        """
        port_dump = self.ports[label]
        window_ids = self._windows_overlapping(port_dump, start_ns, end_ns)
        totals: Dict[int, int] = {}
        for window_id in window_ids:
            per_queue = port_dump["windows"][str(window_id)]
            for queue_key, flows in per_queue.items():
                if queue is not None and int(queue_key) != queue:
                    continue
                for flow_key, size in flows.items():
                    flow = int(flow_key)
                    totals[flow] = totals.get(flow, 0) + size
        rows = sorted(totals.items(), key=lambda item: (-item[1], item[0]))
        return window_ids, rows

    def victims(self, *, selector: Optional[str] = None,
                top: int = 5) -> List[Dict[str, Any]]:
        """Flows ranked by worst per-packet queueing delay."""
        rows: List[Dict[str, Any]] = []
        for label in self.resolve_port(selector):
            for flow_key, stats in self.ports[label]["flows"].items():
                packets = stats["packets"]
                if packets <= 0 or stats["max_delay_ns"] < 0:
                    continue
                rows.append({
                    "flow": int(flow_key),
                    "label": label,
                    "queue": stats["max_queue"],
                    "packets": packets,
                    "max_delay_ns": stats["max_delay_ns"],
                    "mean_delay_ns": stats["total_delay_ns"] // packets,
                    "max_enqueued_ns": stats["max_enqueued_ns"],
                    "max_dequeued_ns": stats["max_dequeued_ns"],
                })
        rows.sort(key=lambda row: (-row["max_delay_ns"], row["flow"],
                                   row["label"]))
        return rows[:top]

    def culprits(self, flow: int, *, selector: Optional[str] = None,
                 top: int = 10) -> Dict[str, Any]:
        """Culprit attribution for ``flow``'s worst-delay packet."""
        candidates = []
        for label in self.resolve_port(selector):
            stats = self.ports[label]["flows"].get(str(flow))
            if stats is not None and stats["packets"] > 0:
                candidates.append((stats["max_delay_ns"], label, stats))
        if not candidates:
            raise ConfigurationError(
                f"flow {flow} was never dequeued on a diagnosed port"
                + (f" matching {selector!r}" if selector else ""))
        candidates.sort(key=lambda item: (-item[0], item[1]))
        _, label, stats = candidates[0]
        start_ns = stats["max_enqueued_ns"]
        end_ns = stats["max_dequeued_ns"]
        queue = stats["max_queue"]
        window_ids, rows = self.fill(label, queue=queue,
                                     start_ns=start_ns, end_ns=end_ns)
        total = sum(size for _, size in rows)
        return {
            "flow": flow,
            "label": label,
            "queue": queue,
            "max_delay_ns": stats["max_delay_ns"],
            "start_ns": start_ns,
            "end_ns": end_ns,
            "windows": window_ids,
            "total_bytes": total,
            "rows": rows[:top],
        }

    def drop_table(self, *, selector: Optional[str] = None
                   ) -> List[Dict[str, Any]]:
        rows = []
        for label in self.resolve_port(selector):
            for entry in self.ports[label]["drops"]:
                rows.append(dict(entry, label=label))
        rows.sort(key=lambda row: (-row["count"], row["label"],
                                   row["flow"], row["reason"]))
        return rows


# -- joins --------------------------------------------------------------------


def load_fct_csv(path: PathLike) -> List[Tuple[int, float, int]]:
    """Rows of an ``fct`` CSV export: ``(flow_id, fct_ms, size_bytes)``."""
    rows: List[Tuple[int, float, int]] = []
    with Path(path).open(newline="", encoding="utf-8") as handle:
        for row in csv.DictReader(handle):
            try:
                rows.append((int(row["flow_id"]), float(row["fct_ms"]),
                             int(row["size_bytes"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise ConfigurationError(
                    f"{path}: not an fct CSV export "
                    f"(flow_id,size_bytes,fct_ms,...): {exc}")
    if not rows:
        raise ConfigurationError(f"{path}: no completed flows")
    return rows


def percentile_victim(rows: List[Tuple[int, float, int]],
                      percentile: float) -> Tuple[int, float]:
    """The flow sitting at ``percentile`` of the FCT distribution
    (nearest-rank, ties broken by flow id — deterministic)."""
    if not 0 < percentile <= 100:
        raise ConfigurationError(
            f"--victim-percentile must be in (0, 100], got {percentile}")
    ordered = sorted(rows, key=lambda row: (row[1], row[0]))
    rank = min(len(ordered) - 1,
               max(0, math.ceil(percentile / 100 * len(ordered)) - 1))
    flow, fct_ms, _size = ordered[rank]
    return flow, fct_ms


def trace_drop_counts(path: PathLike) -> Dict[int, int]:
    """Per-flow ``packet.drop`` counts from a JSONL trace file."""
    counts: Dict[int, int] = {}
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (isinstance(record, dict)
                    and record.get("topic") == TOPIC_PACKET_DROP
                    and record.get("flow") is not None):
                flow = record["flow"]
                counts[flow] = counts.get(flow, 0) + 1
    return counts


def timeline_rows(prefix: str, port: str, *,
                  start_ns: Optional[int] = None,
                  end_ns: Optional[int] = None) -> List[str]:
    """Threshold-series rows for ``port`` inside the window, from a
    ``--timeline-csv PREFIX`` export (missing file -> empty list)."""
    path = Path(f"{prefix}.{port}.thresholds.csv")
    if not path.exists():
        return []
    lines: List[str] = []
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return []
        lines.append(",".join(header))
        for row in reader:
            if not row:
                continue
            time_ns = int(float(row[0]) * 1e9)
            if start_ns is not None and time_ns < start_ns:
                continue
            if end_ns is not None and time_ns > end_ns:
                continue
            lines.append(",".join(row))
    return lines


# -- rendering ----------------------------------------------------------------


def render_summary(query: DiagnosisQuery, *, top: int = 5) -> List[str]:
    document = query.document
    lines = [f"diagnosis: {len(query.ports)} port(s), "
             f"window {_ms(query.window_ns)} ms, "
             f"{document.get('worlds', 0)} world(s)"]
    for label in query.labels():
        port_dump = query.ports[label]
        drops = sum(entry["count"] for entry in port_dump["drops"])
        lines.append(
            f"  {label}: {port_dump['updates']} updates, "
            f"{len(port_dump['windows'])} windows, "
            f"{port_dump['snapshots_taken']} snapshots, {drops} drops")
    victims = query.victims(top=top)
    if victims:
        lines.append(f"top {len(victims)} victims by max queueing delay:")
        lines.append("  flow     port                         queue"
                     "  max(ms)  mean(ms)  packets")
        for row in victims:
            lines.append(
                f"  {row['flow']:<8} {row['label']:<28} {row['queue']:>5}"
                f"  {_ms(row['max_delay_ns']):>7}"
                f"  {_ms(row['mean_delay_ns']):>8}"
                f"  {row['packets']:>7}")
    return lines


def render_fill(query: DiagnosisQuery, label: str, *,
                queue: Optional[int], start_ns: Optional[int],
                end_ns: Optional[int], top: int,
                drop_counts: Optional[Dict[int, int]] = None) -> List[str]:
    window_ids, rows = query.fill(label, queue=queue, start_ns=start_ns,
                                  end_ns=end_ns)
    total = sum(size for _, size in rows)
    where = f"queue {queue}" if queue is not None else "all queues"
    span = (f"[{_ms(start_ns or 0)}, "
            f"{'end' if end_ns is None else _ms(end_ns)}] ms")
    lines = [f"fill report: {label}, {where}, {span} "
             f"({len(window_ids)} windows, {len(rows)} flows, "
             f"{total} bytes)"]
    lines.extend(_composition_rows(rows[:top], total, drop_counts))
    return lines


def render_culprits(query: DiagnosisQuery, report: Dict[str, Any], *,
                    drop_counts: Optional[Dict[int, int]] = None,
                    fct_ms: Optional[float] = None) -> List[str]:
    victim = report["flow"]
    suffix = f", fct {fct_ms:.3f} ms" if fct_ms is not None else ""
    lines = [
        f"victim flow {victim} ({report['label']}, "
        f"queue {report['queue']}{suffix}): "
        f"max queueing delay {_ms(report['max_delay_ns'])} ms over "
        f"[{_ms(report['start_ns'])}, {_ms(report['end_ns'])}] ms",
        f"culprits (bytes enqueued into queue {report['queue']} across "
        f"{len(report['windows'])} covering windows, "
        f"{report['total_bytes']} bytes total):",
    ]
    rows = [(flow, size) for flow, size in report["rows"]]
    lines.extend(_composition_rows(rows, report["total_bytes"],
                                   drop_counts, victim=victim))
    return lines


def _composition_rows(rows: List[Tuple[int, int]], total: int,
                      drop_counts: Optional[Dict[int, int]],
                      victim: Optional[int] = None) -> List[str]:
    header = "  flow         bytes   share"
    if drop_counts is not None:
        header += "  drops"
    lines = [header]
    for flow, size in rows:
        share = f"{100 * size / total:.1f}%" if total else "-"
        line = f"  {flow:<8} {size:>10}  {share:>6}"
        if drop_counts is not None:
            line += f"  {drop_counts.get(flow, 0):>5}"
        if victim is not None and flow == victim:
            line += "  <- victim"
        lines.append(line)
    if not rows:
        lines.append("  (no enqueues recorded in the window)")
    return lines
