"""Per-packet queue diagnosis: culprit-flow attribution (PrintQueue-style).

Aggregate metrics say *that* isolation degraded; this package answers
the operator's causal question — *which flows built the queue my victim
packet sat behind?* — with three cooperating layers:

* :mod:`~repro.diagnosis.sketch` — the data-plane side: a per-port
  :class:`~repro.diagnosis.sketch.PortDiagnosisSketch` maintained on the
  enqueue/dequeue hot path (time-windowed flow-composition ring,
  packet→queueing-delay attribution, threshold-crossing snapshots).
  Strictly opt-in behind the ``queue_diagnosis``
  :class:`~repro.perf.config.PerfConfig` switch: with the switch off,
  ports carry ``_sketch = None`` and the datapath is unchanged.
* :mod:`~repro.diagnosis.capture` — the collection side: an active
  :class:`~repro.diagnosis.capture.DiagnosisCapture` harvests sketches
  from finished :class:`~repro.snapshot.world.SimWorld` runs, and
  :mod:`~repro.diagnosis.dump` writes/loads the JSON artifact.
* :mod:`~repro.diagnosis.query` — the offline side: the
  ``repro diagnose`` CLI's query engine (victim ranking, windowed fill
  reports, culprit attribution, joins against FCT CSVs, trace files and
  threshold timelines).

See ``docs/observability.md`` for the dump format and a query cookbook.
"""

from .capture import DiagnosisCapture, active_capture, capture_diagnosis
from .dump import DIAGNOSIS_SCHEMA, load_diagnosis, write_diagnosis
from .query import DiagnosisQuery
from .sketch import DEFAULT_SETTINGS, PortDiagnosisSketch, SketchSettings

__all__ = [
    "DEFAULT_SETTINGS",
    "DIAGNOSIS_SCHEMA",
    "DiagnosisCapture",
    "DiagnosisQuery",
    "PortDiagnosisSketch",
    "SketchSettings",
    "active_capture",
    "capture_diagnosis",
    "load_diagnosis",
    "write_diagnosis",
]
