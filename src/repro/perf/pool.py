"""Object pooling for the packet hot path.

CPython allocates and garbage-collects one :class:`~repro.net.packet.Packet`
per simulated segment and one per ACK; at the packet rates of the scaling
benches the allocator itself becomes a first-order cost.  The pool
recycles dead packets through a free list and re-runs ``Packet.reset``
(== ``__init__``) on every acquire, so a recycled object is
field-for-field indistinguishable from a fresh one — including the flags
only faults set (``corrupted``), only switches set (``ecn_ce``), and
only receivers read (``ts_echo``).  ``tests/test_perf_pooling.py`` locks
that invariant in.

Ownership rules (the pool has no reference counting):

* release a packet only when nothing will touch it again — the bench
  replay driver releases on delivery and on drop, where it is the only
  owner;
* never release a packet that a collector may still normalise later
  (the telemetry recorder and flight recorder normalise at capture
  time, so port publishes are safe);
* double-release is a caller bug; the pool guards against the cheap
  case (same object twice in a row) and the tests exercise it.

Event pooling lives inside :class:`repro.sim.engine.Simulator` itself
(the free list needs the run loop's pop sites); this module only hosts
the packet side plus a tiny generic base for future pooled types.
"""

from __future__ import annotations

from typing import Generic, List, TypeVar

from ..net.packet import Packet

T = TypeVar("T")

#: Default free-list cap — covers the in-flight packet population of the
#: largest single-port benches while bounding retained memory.
DEFAULT_CAP = 4096


class ObjectPool(Generic[T]):
    """Bounded LIFO free list with acquire/reuse/release counters."""

    __slots__ = ("cap", "_free", "acquired", "reused", "released",
                 "rejected")

    def __init__(self, cap: int = DEFAULT_CAP) -> None:
        if cap <= 0:
            raise ValueError(f"pool cap must be positive, got {cap}")
        self.cap = cap
        self._free: List[T] = []
        self.acquired = 0
        self.reused = 0
        self.released = 0
        self.rejected = 0

    def _take(self):
        """Pop a recycled object, or ``None`` when the list is empty."""
        self.acquired += 1
        if self._free:
            self.reused += 1
            return self._free.pop()
        return None

    def _give(self, obj: T) -> bool:
        """Park ``obj``; returns False when the pool is full or ``obj``
        is already the most recently released object (cheap double-free
        guard)."""
        free = self._free
        if len(free) >= self.cap or (free and free[-1] is obj):
            self.rejected += 1
            return False
        free.append(obj)
        self.released += 1
        return True

    def size(self) -> int:
        """Objects currently parked in the free list."""
        return len(self._free)


class PacketPool(ObjectPool[Packet]):
    """Free list of :class:`~repro.net.packet.Packet` objects.

    ``acquire`` takes exactly the ``Packet`` constructor signature and
    returns either a recycled object re-initialised through
    ``Packet.reset`` or a fresh one — callers cannot tell the difference
    and must not try.
    """

    def acquire(self, flow_id: int, src: str, dst: str, size: int, *,
                seq: int = 0, end_seq: int = 0, service_class: int = 0,
                ecn_capable: bool = False, is_ack: bool = False,
                ack_seq: int = 0, created_at: int = 0) -> Packet:
        # Spelled-out keywords (mirroring Packet.__init__ exactly) rather
        # than **kwargs: this is called once per simulated packet, and
        # the kwargs dict build/unpack costs as much as the reset itself.
        self.acquired += 1
        free = self._free
        if free:
            self.reused += 1
            packet = free.pop()
            packet.reset(flow_id, src, dst, size, seq=seq, end_seq=end_seq,
                         service_class=service_class,
                         ecn_capable=ecn_capable, is_ack=is_ack,
                         ack_seq=ack_seq, created_at=created_at)
            return packet
        return Packet(flow_id, src, dst, size, seq=seq, end_seq=end_seq,
                      service_class=service_class, ecn_capable=ecn_capable,
                      is_ack=is_ack, ack_seq=ack_seq,
                      created_at=created_at)

    def release(self, packet: Packet) -> bool:
        """Return a dead packet to the pool (see the ownership rules)."""
        return self._give(packet)
