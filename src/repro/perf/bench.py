"""Microbenchmark suite for the simulator hot path (``repro bench``).

Each bench runs the *same deterministic workload* twice in one
invocation — once under :data:`repro.perf.config.REFERENCE` (every fast
path disabled: fresh allocations, per-publish payload closures, O(M)
victim rescans, per-packet meter subscription) and once under
:data:`~repro.perf.config.FAST` — and reports both wall times, the
speedup, and the workload's operation counters.  Because the reference
run *is* the pre-optimisation code path, every emitted ``BENCH_*.json``
carries its own baseline: the speedups are self-contained and
machine-independent, which is what the regression tier compares (see
``benchmarks/perf/`` and :mod:`repro.perf.baseline`).

The suite also doubles as a differential test: the two runs must agree
on every operation counter (packets enqueued/dropped/transmitted,
threshold steals, events executed, meter-sample digest).  A mismatch
means a fast path changed semantics and is reported as a failure, not a
slow run.

Benches
-------

``event_loop``
    Raw engine throughput: parallel self-rescheduling callback chains.
    Isolates event pooling.
``enqueue_dequeue_<scheme>``
    Port replay at ~1.6x offered load for dynaq / besteffort / pql:
    classification, admission, DRR scheduling, transmit, delivery.
``dynaq_steal_storm``
    Alternating hot queues force Algorithm 1 to shuttle thresholds back
    and forth — worst case for the victim search.
``incast_burst``
    Synchronised bursts into a rotating queue: admission storms and
    drop-heavy operation.
``fig05_traced``
    Fig. 5-style staggered-stop workload on a 4-queue DRR port with a
    TraceBus attached and a PortThroughputMeter sampling — the
    configuration every experiment in this repository actually runs.
``fig05_untraced``
    The same workload with no trace bus and no meter: the floor the
    tracing layer is measured against.
``fig05_diagnosed``
    ``fig05_traced`` with the ``queue_diagnosis`` perf switch on (on
    *both* sides): the sketch maintenance cost the ``--diagnose-out``
    flag buys, gated like every other bench.  The sketch's update and
    snapshot counters join the op-equality check.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..experiments.runner import buffer_factory
from ..metrics.throughput import PortThroughputMeter
from ..net.packet import Packet
from ..net.port import EgressPort
from ..queueing.schedulers.drr import DRRScheduler
from ..sim.engine import Simulator
from ..sim.trace import TraceBus
from ..sim.units import gbps, kilobytes, microseconds
from .config import FAST, REFERENCE, active_config, use_config
from .pool import PacketPool

SCHEMA = "repro.bench/1"

#: Wire parameters shared by the port-replay benches (the testbed's).
RATE_BPS = gbps(1)
BUFFER_BYTES = kilobytes(85)
PROP_DELAY_NS = microseconds(5)
PACKET_BYTES = 1500
RTT_NS = microseconds(500)

#: Arrival interval for ~1.6x offered load: 1500 B at 1 Gbps is 12 us on
#: the wire, so one arrival every 7.5 us oversubscribes the link.
ARRIVAL_INTERVAL_NS = 7_500


# Canonical home is repro.errors; re-exported here because this module
# defined it first and old call sites import it from here.
from ..errors import BenchError  # noqa: E402


class _Sink:
    """Delivery endpoint: counts receipts, recycles pooled packets."""

    def __init__(self, pool: Optional[PacketPool] = None) -> None:
        self.received = 0
        self.received_bytes = 0
        self.pool = pool

    def receive(self, packet: Packet) -> None:
        self.received += 1
        self.received_bytes += packet.size
        if self.pool is not None:
            self.pool.release(packet)

    def receive_many(self, packets) -> None:
        # Opt-in coalesced delivery (see EgressPort._deliver_batch): the
        # sink only counts, so it is insensitive to intra-batch delivery
        # timing and takes a whole batch in one call.
        self.received += len(packets)
        total = 0
        pool = self.pool
        if pool is not None:
            release = pool.release
            for packet in packets:
                total += packet.size
                release(packet)
        else:
            for packet in packets:
                total += packet.size
        self.received_bytes += total


class _Feeder:
    """Deterministic packet generator driving one port.

    ``classes`` maps an arrival index to a service class (or ``None`` to
    skip the slot — how the fig05 bench stops queues).  It is a list
    precomputed *outside* the timed region, and arrivals are delivered
    in batches of :attr:`BATCH` per feeder event, so the harness's own
    per-arrival overhead stays a small fraction of the measured port
    work.  The logical packet sequence is identical with and without
    pooling; only the allocation strategy differs.
    """

    BATCH = 16

    def __init__(self, sim: Simulator, port: EgressPort,
                 classes: List[Optional[int]],
                 interval_ns: int = ARRIVAL_INTERVAL_NS,
                 pool: Optional[PacketPool] = None,
                 packets: Optional[List[Optional[Packet]]] = None) -> None:
        self.sim = sim
        self.port = port
        self.classes = classes
        self.total = len(classes)
        self.interval_ns = interval_ns
        self.pool = pool
        self.packets = packets
        self.sent = 0
        self._index = 0
        self._step = interval_ns * self.BATCH
        # Pre-materialised stream: slice the per-tick bursts up front —
        # like the Packet prebuild itself, this is harness setup and
        # stays outside the timed region.
        self._chunks = (None if packets is None else
                        [[p for p in packets[i:i + self.BATCH]
                          if p is not None]
                         for i in range(0, self.total, self.BATCH)])

    def start(self) -> None:
        # Pre-schedule the whole tick train (setup time, not timed):
        # the chain used to re-schedule itself from inside each tick,
        # paying one schedule() call per burst inside the measured run.
        # Same event count as the chain: one tick per burst plus the
        # final no-op that used to notice the stream was exhausted.
        step = self._step
        schedule = self.sim.schedule
        ticks = (self.total + self.BATCH - 1) // self.BATCH + 1
        for i in range(ticks):
            schedule(step * (i + 1), self._tick)

    def _tick(self) -> None:
        index = self._index
        if index >= self.total:
            return
        stop = min(index + self.BATCH, self.total)
        self._index = stop
        port = self.port
        packets = self.packets
        sent = 0
        if packets is not None:
            # Pre-materialised stream (fig05): the timed region measures
            # port work, not harness allocation, on both config sides.
            # The whole burst goes through send_many so the harness pays
            # one port call per tick, not one per arrival.
            chunk = self._chunks[index // self.BATCH]
            sent = len(chunk)
            if chunk:
                port.send_many(chunk)
        else:
            classes = self.classes
            pool = self.pool
            now = self.sim.now
            chunk = []
            while index < stop:
                service_class = classes[index]
                if service_class is not None:
                    if pool is not None:
                        packet = pool.acquire(
                            index, "bench", "sink", PACKET_BYTES,
                            service_class=service_class, created_at=now)
                    else:
                        packet = Packet(index, "bench", "sink",
                                        PACKET_BYTES,
                                        service_class=service_class,
                                        created_at=now)
                    chunk.append(packet)
                index += 1
            sent = len(chunk)
            if chunk:
                port.send_many(chunk)
        self.sent += sent


def _make_port(sim: Simulator, scheme_key: str, num_queues: int,
               trace: Optional[TraceBus]) -> EgressPort:
    manager = buffer_factory(scheme_key, rtt_ns=RTT_NS)()
    return EgressPort(
        sim, "bench->sink", rate_bps=RATE_BPS,
        prop_delay_ns=PROP_DELAY_NS, buffer_bytes=BUFFER_BYTES,
        scheduler=DRRScheduler([1500.0] * num_queues),
        buffer_manager=manager, trace=trace)


def _port_ops(port: EgressPort, sink: _Sink,
              sim: Simulator) -> Dict[str, int]:
    ops = {
        "enqueued": port.enqueued_packets,
        "dropped": port.dropped_packets,
        "transmitted": port.transmitted_packets,
        "tx_bytes": port.transmitted_bytes,
        "received": sink.received,
        "events": sim.events_executed,
    }
    moves = getattr(port.buffer_manager, "threshold_moves", None)
    if moves is not None:
        ops["steals"] = moves
        ops["protected_drops"] = port.buffer_manager.protected_drops
    sketch = getattr(port, "_sketch", None)
    if sketch is not None:
        # Diagnosis benches: both sides must have seen the identical
        # packet stream through the sketch too.
        ops["sketch_updates"] = sketch.updates
        ops["sketch_snapshots"] = sketch.snapshots_taken
    return ops


def _replay(scheme_key: str, pattern: Callable[[int], Optional[int]],
            total: int, *, num_queues: int = 4, traced: bool = False,
            metered: bool = False,
            meter_interval_ns: Optional[int] = None,
            use_pool: Optional[bool] = None,
            prebuilt: bool = False) -> Dict[str, Any]:
    """Run one port-replay workload under the *active* perf config.

    ``use_pool`` selects the feeder's allocation strategy: ``None``
    follows the active config's ``packet_pooling`` switch (the
    enqueue/dequeue benches, which exercise the pool), ``False`` forces
    plain allocation on both sides (the fig05 benches, which mirror the
    experiment runs — their transports allocate packets directly).
    ``prebuilt`` materialises the Packet objects before the clock starts
    (identically on both sides), so the timed region is pure port work.
    """
    sim = Simulator()
    trace = TraceBus() if traced else None
    port = _make_port(sim, scheme_key, num_queues, trace)
    if use_pool is None:
        use_pool = active_config().packet_pooling
    pool = PacketPool() if use_pool else None
    sink = _Sink(pool)
    port.connect(sink)
    meter = None
    if metered:
        meter = PortThroughputMeter(sim, port,
                                    meter_interval_ns
                                    or total * ARRIVAL_INTERVAL_NS // 8)
    # Materialise the arrival sequence before the clock starts: the
    # pattern function is workload *generation*, not simulator work.
    classes = [pattern(i) for i in range(total)]
    packets = None
    if prebuilt:
        packets = [
            None if service_class is None
            else Packet(index, "bench", "sink", PACKET_BYTES,
                        service_class=service_class)
            for index, service_class in enumerate(classes)]
    feeder = _Feeder(sim, port, classes, pool=pool, packets=packets)
    feeder.start()
    start = time.perf_counter()
    sim.run(until=(total + 50) * ARRIVAL_INTERVAL_NS)
    elapsed = time.perf_counter() - start
    ops = _port_ops(port, sink, sim)
    ops["sent"] = feeder.sent
    if meter is not None:
        # Exact digest of the sample series: both meter backends must
        # produce bit-identical samples (see metrics/throughput.py).
        digest = hash(tuple(
            (s.time_ns, s.per_queue_bps) for s in meter.samples))
        ops["meter_samples"] = len(meter.samples)
        ops["meter_digest"] = digest
    return {"seconds": elapsed, "ops": ops}


# -- workload patterns --------------------------------------------------------


def _round_robin(num_queues: int) -> Callable[[int], Optional[int]]:
    return lambda index: index % num_queues


def _steal_storm(index: int) -> Optional[int]:
    # 512-arrival phases alternating between two hot queues, with a
    # trickle on the others so they stay active (and protected).
    phase, slot = divmod(index, 512)
    if slot % 8 == 7:
        return 2 + (slot // 8) % 2
    return phase % 2


def _incast(index: int) -> Optional[int]:
    # 64-packet synchronised bursts into a rotating queue, then silence
    # for the rest of the 256-slot window while the buffer drains.
    window, slot = divmod(index, 256)
    if slot < 64:
        return window % 4
    return None


def _fig05_pattern(total: int) -> Callable[[int], Optional[int]]:
    """Fig. 5-style mix: queue k weighted like 2^(k+1) flows, queues
    stopping in reverse order at staggered fractions of the run."""
    weights = (2, 4, 8, 16)
    cumulative = (2, 6, 14, 30)
    stops = (1.0, 0.85, 0.7, 0.55)  # fraction of the run each queue lives

    def pattern(index: int) -> Optional[int]:
        slot = (index * 7919) % cumulative[-1]
        for queue in range(4):
            if slot < cumulative[queue]:
                break
        if index >= total * stops[queue]:
            return None
        return queue

    return pattern


def _with_diagnosis(thunk: Callable[[], Dict[str, Any]]
                    ) -> Callable[[], Dict[str, Any]]:
    """Run ``thunk`` with ``queue_diagnosis`` flipped on over whichever
    side (REFERENCE or FAST) the harness installed."""
    def run() -> Dict[str, Any]:
        with use_config(active_config().clone(queue_diagnosis=True)):
            return thunk()
    return run


# -- the suite ----------------------------------------------------------------


class _TickChain:
    """Self-rescheduling countdown; a named bound method keeps the
    scheduled heap picklable (see tests/test_schedule_lint.py)."""

    def __init__(self, sim: Simulator, remaining: int) -> None:
        self.sim = sim
        self.remaining = remaining

    def tick(self) -> None:
        self.remaining -= 1
        if self.remaining > 0:
            self.sim.schedule(10, self.tick)


def _bench_event_loop(scale: float) -> Dict[str, Any]:
    total = int(50_000 * scale)
    sim = Simulator()
    chain = _TickChain(sim, total)
    for _ in range(4):  # four interleaved chains keep the heap honest
        sim.schedule(10, chain.tick)
    start = time.perf_counter()
    sim.run()
    return {"seconds": time.perf_counter() - start,
            "ops": {"events": sim.events_executed}}


def _suite(scale: float) -> List[Dict[str, Any]]:
    """(name, thunk) pairs; each thunk runs under the active config."""
    n = max(int(20_000 * scale), 512)
    fig05_total = max(int(24_000 * scale), 512)
    return [
        {"name": "event_loop",
         "run": lambda: _bench_event_loop(scale)},
        {"name": "enqueue_dequeue_dynaq",
         "run": lambda: _replay("dynaq", _round_robin(4), n)},
        {"name": "enqueue_dequeue_besteffort",
         "run": lambda: _replay("besteffort", _round_robin(4), n)},
        {"name": "enqueue_dequeue_pql",
         "run": lambda: _replay("pql", _round_robin(4), n)},
        {"name": "dynaq_steal_storm",
         "run": lambda: _replay("dynaq", _steal_storm, n)},
        {"name": "incast_burst",
         "run": lambda: _replay("dynaq", _incast, n)},
        {"name": "fig05_traced",
         "run": lambda: _replay("dynaq", _fig05_pattern(fig05_total),
                                fig05_total, traced=True, metered=True,
                                use_pool=False, prebuilt=True)},
        {"name": "fig05_untraced",
         "run": lambda: _replay("dynaq", _fig05_pattern(fig05_total),
                                fig05_total, use_pool=False,
                                prebuilt=True)},
        {"name": "fig05_diagnosed",
         "run": _with_diagnosis(
             lambda: _replay("dynaq", _fig05_pattern(fig05_total),
                             fig05_total, traced=True, metered=True,
                             use_pool=False, prebuilt=True))},
    ]


def run_suite(*, quick: bool = False, scale: float = 1.0,
              repeats: int = 3,
              progress: Optional[Callable[[str], None]] = None
              ) -> Dict[str, Any]:
    """Run every bench reference-then-fast and return the report dict.

    ``quick`` shrinks the workloads ~8x for CI smoke runs; ``scale``
    multiplies workload sizes on top of that.  Each bench runs
    ``repeats`` interleaved reference/fast pairs and reports the
    **minimum** wall time per side — the standard way to strip scheduler
    and allocator noise from a microbenchmark.  Op-counter disagreement
    between any pair of runs raises :class:`BenchError` — a bench that
    got faster by doing different work is a bug, not a result.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    effective = scale * (0.125 if quick else 1.0)
    results: List[Dict[str, Any]] = []
    for spec in _suite(effective):
        name = spec["name"]
        if progress is not None:
            progress(name)
        reference_runs: List[Dict[str, Any]] = []
        fast_runs: List[Dict[str, Any]] = []
        for _ in range(repeats):
            with use_config(REFERENCE.clone()):
                reference_runs.append(spec["run"]())
            with use_config(FAST.clone()):
                fast_runs.append(spec["run"]())
        reference = min(reference_runs, key=lambda run: run["seconds"])
        for run in reference_runs + fast_runs:
            if run["ops"] != reference["ops"]:
                raise BenchError(
                    f"{name}: reference and fast runs disagree: "
                    f"{reference['ops']} != {run['ops']}")
        fast = min(fast_runs, key=lambda run: run["seconds"])
        fast_s = fast["seconds"]
        speedup = (reference["seconds"] / fast_s if fast_s > 0
                   else float("inf"))
        results.append({
            "name": name,
            "reference": reference,
            "fast": fast,
            "speedup": round(speedup, 3),
            "repeats": repeats,
            "ops_equal": True,
        })
    return {
        "schema": SCHEMA,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick": quick,
        "scale": scale,
        "repeats": repeats,
        "fast_config": FAST.as_dict(),
        "benches": results,
    }


def write_report(report: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")


def default_report_path() -> str:
    """``BENCH_<date>.json`` in the current directory."""
    return time.strftime("BENCH_%Y%m%d.json")


def format_table(report: Dict[str, Any]) -> str:
    """Human-readable summary of one report."""
    lines = ["bench".ljust(28) + "reference(s)".rjust(13)
             + "fast(s)".rjust(10) + "speedup".rjust(9) + "  ops"]
    for bench in report["benches"]:
        ops = bench["fast"]["ops"]
        note = (f"events={ops.get('events', '-')}"
                + (f" steals={ops['steals']}" if "steals" in ops else "")
                + (f" drops={ops['dropped']}" if "dropped" in ops else ""))
        lines.append(
            bench["name"].ljust(28)
            + f"{bench['reference']['seconds']:.3f}".rjust(13)
            + f"{bench['fast']['seconds']:.3f}".rjust(10)
            + f"{bench['speedup']:.2f}x".rjust(9)
            + f"  {note}")
    return "\n".join(lines)
