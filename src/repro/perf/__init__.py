"""repro.perf — hot-path performance layer.

Three pieces:

* :mod:`repro.perf.config` — global feature switches selecting the fast
  or the reference datapath (components read them at construction time);
* :mod:`repro.perf.pool` — generation-counted object pooling for
  packets (event pooling lives inside the simulator itself);
* :mod:`repro.perf.bench` — the ``repro bench`` microbenchmark suite
  with in-run reference-vs-fast speedup measurement and baseline
  regression checks (:mod:`repro.perf.baseline`).

This ``__init__`` re-exports only the config API: the bench harness
imports experiment code, and pulling it in eagerly would create an
import cycle with :mod:`repro.sim.engine` (which reads the perf config).
Import :mod:`repro.perf.pool` / :mod:`repro.perf.bench` explicitly, or
access them lazily through attribute lookup on this package.
"""

from __future__ import annotations

import importlib

from .config import (
    FAST,
    REFERENCE,
    PerfConfig,
    active_config,
    fast_mode,
    reference_mode,
    set_config,
    use_config,
)

__all__ = [
    "FAST",
    "REFERENCE",
    "PerfConfig",
    "active_config",
    "fast_mode",
    "reference_mode",
    "set_config",
    "use_config",
    "pool",
    "bench",
    "baseline",
]

_LAZY_SUBMODULES = ("pool", "bench", "baseline")


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        module = importlib.import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
