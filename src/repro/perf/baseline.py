"""Benchmark baseline comparison (the regression gate).

A committed baseline (``benchmarks/perf/baseline.json``) pins down two
things per bench:

* ``ops`` — the exact operation counters of the deterministic workload.
  These must match bit-for-bit on every machine; a mismatch means the
  simulator's semantics changed, which is a failure regardless of speed.
* ``min_speedup`` — a conservatively floored fast-vs-reference speedup.
  Because both runs happen in the same process on the same machine, the
  *ratio* is meaningful across hardware even though absolute seconds are
  not.  A new report regresses when its speedup drops below
  ``min_speedup * (1 - budget)``; the default budget is 25%.

Baselines are only recorded for benches run at the same ``quick`` factor
— comparing a ``--quick`` report against a full-size baseline skips the
op check (the workloads differ) and still enforces the speedup floor,
which is scale-independent by construction.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

DEFAULT_BUDGET = 0.25


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def make_baseline(report: Dict[str, Any], *,
                  speedup_floor: float = 0.5) -> Dict[str, Any]:
    """Derive a committed baseline from one bench report.

    ``speedup_floor`` discounts the measured speedups (machine noise,
    thermal variance) before pinning them: a measured 4.0x with the
    default floor commits ``min_speedup = 2.0``.
    """
    benches = {}
    for bench in report["benches"]:
        benches[bench["name"]] = {
            "ops": bench["fast"]["ops"],
            "min_speedup": round(bench["speedup"] * speedup_floor, 3),
        }
    return {
        "schema": "repro.bench-baseline/1",
        "source_created": report.get("created"),
        "quick": report.get("quick", False),
        "scale": report.get("scale", 1.0),
        "benches": benches,
    }


def compare(report: Dict[str, Any], baseline: Dict[str, Any], *,
            budget: float = DEFAULT_BUDGET) -> List[str]:
    """Violations of ``report`` against ``baseline`` (empty = pass)."""
    if not 0.0 <= budget < 1.0:
        raise ValueError(f"budget must be in [0, 1), got {budget}")
    same_size = (report.get("quick", False) == baseline.get("quick", False)
                 and report.get("scale", 1.0) == baseline.get("scale", 1.0))
    violations: List[str] = []
    by_name = {bench["name"]: bench for bench in report["benches"]}
    for name, expected in baseline["benches"].items():
        bench = by_name.get(name)
        if bench is None:
            violations.append(f"{name}: missing from report")
            continue
        if same_size and bench["fast"]["ops"] != expected["ops"]:
            violations.append(
                f"{name}: op counters changed: {bench['fast']['ops']} "
                f"!= {expected['ops']}")
        allowed = expected["min_speedup"] * (1.0 - budget)
        if bench["speedup"] < allowed:
            violations.append(
                f"{name}: speedup {bench['speedup']:.2f}x below "
                f"{allowed:.2f}x (baseline {expected['min_speedup']:.2f}x "
                f"- {budget:.0%} budget)")
    return violations
