"""Hot-path performance configuration.

The simulator has two semantically identical datapaths:

* the **fast path** (default) — pooled :class:`~repro.sim.engine.Event`
  and :class:`~repro.net.packet.Packet` objects, cached zero-subscriber
  checks in front of every trace publish, an incremental victim-search
  structure inside DynaQ, and batched per-port stat counters read on
  sample boundaries instead of per-packet subscribers;
* the **reference path** — the straightforward implementations the fast
  paths were derived from: fresh allocations everywhere, a lazy
  ``TraceBus.emit`` per publish site, and a full ``T_i - S_i`` rescan on
  every over-threshold arrival.

Both paths must produce byte-identical results: the differential tests
in ``tests/test_perf_equivalence.py`` run the same seeded scenario under
both and compare JSONL trace hashes and operation counters, and
``repro bench`` re-checks counter equivalence on every run.

Components read the active config **at construction time** (never per
packet), so flipping modes affects objects built afterwards::

    from repro.perf import reference_mode

    with reference_mode():
        sim = Simulator()          # no event pooling
        net = build_star(...)      # eager publishes, rescanning DynaQ

This module is import-light on purpose: it must be importable from
``repro.sim.engine`` without dragging the benchmark harness (or any
experiment code) into the core import graph.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator


class PerfConfig:
    """Feature switches for the hot-path optimisations.

    Attributes
    ----------
    event_pooling:
        :class:`~repro.sim.engine.Simulator` recycles executed events
        through a free list (generation-counted; see the engine docs).
    packet_pooling:
        :class:`~repro.perf.pool.PacketPool` users recycle packets.  The
        pool API itself always works; this switch tells harnesses (the
        bench replay driver) whether to use it.
    lazy_trace:
        Ports cache per-topic subscriber flags against the bus version,
        so a zero-subscriber publish costs one int compare + dict lookup
        instead of a closure allocation.
    incremental_victim:
        DynaQ maintains the ``T_i - S_i`` argmax incrementally under
        threshold moves instead of rebuilding and rescanning the extra
        vector on every over-threshold arrival.
    batched_stats:
        :class:`~repro.metrics.throughput.PortThroughputMeter` reads
        batched per-port transmit counters on sample boundaries instead
        of subscribing to every ``packet.dequeue`` event.
    cached_decisions:
        Buffer managers return pre-built immutable
        :class:`~repro.queueing.base.Decision` singletons for the common
        accept / recurring drop outcomes instead of allocating one
        object per admission check (two per packet on the dequeue path).
    tx_time_cache:
        Ports memoise ``transmission_time(size)`` per packet size; real
        traffic uses a handful of sizes (MTU, ACK), so the per-packet
        ceil-division becomes a dict hit.
    lazy_round_time:
        DRR's round-time EWMA (consumed only by MQ-ECN) is kept off
        unless a consumer calls ``enable_round_tracking()``, removing a
        clock lambda call per scheduler rotation for every other scheme.
    inline_hot_calls:
        Construction-time call elision on the packet path: ports skip
        buffer-manager hooks that are provably the base-class no-ops,
        inline the default classifier, and DRR reads its port's queue
        state directly instead of through per-packet protocol methods.
    heap_scan_inflight:
        Ports stop tracking every scheduled delivery in a per-packet
        deque; a (rare) ``set_link_down`` finds in-flight packets by
        scanning the simulator heap for this port's delivery callback
        instead.  Moves O(1)-per-packet bookkeeping onto the fault path.
    queue_diagnosis:
        Opt-in observability, not an optimisation: ports maintain a
        :class:`~repro.diagnosis.sketch.PortDiagnosisSketch` (per-window
        flow composition, queueing-delay attribution, threshold-crossing
        snapshots) on the enqueue/dequeue path.  Off by default in
        *both* FAST and REFERENCE so the differential harness keeps
        comparing the unchanged datapaths; when enabled it must be
        enabled on both sides (see the ``fig05_diagnosed`` bench).
    calendar_queue:
        :class:`~repro.sim.engine.Simulator` swaps its binary heap for a
        bucketed calendar queue once the pending-event count crosses a
        warmup threshold (dense workloads only; small heaps stay on the
        heap).  Bucket width is sized from the observed inter-event
        spacing at engagement; far-future events overflow to a side
        heap.  Ordering stays exact ``(time, seq)`` FIFO, so traces are
        byte-identical to the heap path.
    batched_link_advance:
        ``EgressPort`` commits a run of back-to-back transmissions on an
        uncontended, fault-free, untraced link in one pass — scheduling
        every delivery plus ONE batch-completion event instead of one
        transmit-complete per packet — and unwinds to the per-packet
        boundary when an arrival, fault, or reconfiguration lands
        mid-batch.  Executed-event counters are credited so op-counter
        equality versus the per-packet path still holds.
    """

    __slots__ = ("event_pooling", "packet_pooling", "lazy_trace",
                 "incremental_victim", "batched_stats",
                 "cached_decisions", "tx_time_cache", "lazy_round_time",
                 "inline_hot_calls", "heap_scan_inflight",
                 "queue_diagnosis", "calendar_queue",
                 "batched_link_advance")

    def __init__(self, *, event_pooling: bool = True,
                 packet_pooling: bool = True,
                 lazy_trace: bool = True,
                 incremental_victim: bool = True,
                 batched_stats: bool = True,
                 cached_decisions: bool = True,
                 tx_time_cache: bool = True,
                 lazy_round_time: bool = True,
                 inline_hot_calls: bool = True,
                 heap_scan_inflight: bool = True,
                 queue_diagnosis: bool = False,
                 calendar_queue: bool = True,
                 batched_link_advance: bool = True) -> None:
        self.event_pooling = event_pooling
        self.packet_pooling = packet_pooling
        self.lazy_trace = lazy_trace
        self.incremental_victim = incremental_victim
        self.batched_stats = batched_stats
        self.cached_decisions = cached_decisions
        self.tx_time_cache = tx_time_cache
        self.lazy_round_time = lazy_round_time
        self.inline_hot_calls = inline_hot_calls
        self.heap_scan_inflight = heap_scan_inflight
        self.queue_diagnosis = queue_diagnosis
        self.calendar_queue = calendar_queue
        self.batched_link_advance = batched_link_advance

    def clone(self, **overrides: bool) -> "PerfConfig":
        """Copy with some switches flipped."""
        values = {name: getattr(self, name) for name in self.__slots__}
        values.update(overrides)
        return PerfConfig(**values)

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        on = [name for name in self.__slots__ if getattr(self, name)]
        return f"<PerfConfig on={on}>"


#: Every optimisation enabled — the default for all runs.
FAST = PerfConfig()

#: Every optimisation disabled — the pre-optimisation reference
#: semantics, used as the baseline side of differential tests and of
#: ``repro bench``'s in-run speedup measurements.
REFERENCE = PerfConfig(event_pooling=False, packet_pooling=False,
                       lazy_trace=False, incremental_victim=False,
                       batched_stats=False, cached_decisions=False,
                       tx_time_cache=False, lazy_round_time=False,
                       inline_hot_calls=False, heap_scan_inflight=False,
                       queue_diagnosis=False, calendar_queue=False,
                       batched_link_advance=False)

_active: PerfConfig = FAST


def active_config() -> PerfConfig:
    """The config newly constructed components will read."""
    return _active


def set_config(config: PerfConfig) -> PerfConfig:
    """Install ``config`` globally; returns the previous one."""
    global _active
    previous = _active
    _active = config
    return previous


@contextmanager
def use_config(config: PerfConfig) -> Iterator[PerfConfig]:
    """Temporarily install ``config`` (exception-safe)."""
    previous = set_config(config)
    try:
        yield config
    finally:
        set_config(previous)


@contextmanager
def reference_mode() -> Iterator[PerfConfig]:
    """Temporarily run with every optimisation off (reference path)."""
    with use_config(REFERENCE) as config:
        yield config


@contextmanager
def fast_mode() -> Iterator[PerfConfig]:
    """Temporarily force every optimisation on."""
    with use_config(FAST) as config:
        yield config
