"""Production traffic workloads (Fig. 2) and Poisson flow generation."""

from .datasets import (
    CACHE,
    DATA_MINING,
    HADOOP,
    WEB_SEARCH,
    WORKLOADS,
    workload,
    workload_names,
)
from .distributions import EmpiricalCDF
from .flowgen import FlowSpec, arrival_rate_per_second, generate_flows, iter_flows
from .trace import fit_cdf, load_flow_trace, save_flow_trace

__all__ = [
    "CACHE",
    "DATA_MINING",
    "HADOOP",
    "WEB_SEARCH",
    "WORKLOADS",
    "workload",
    "workload_names",
    "EmpiricalCDF",
    "FlowSpec",
    "arrival_rate_per_second",
    "generate_flows",
    "iter_flows",
    "fit_cdf",
    "load_flow_trace",
    "save_flow_trace",
]
