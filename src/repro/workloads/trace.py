"""Trace-driven workloads: replay flow traces from CSV.

Users with their own production traces can bypass the synthetic CDFs and
feed measured ``(arrival, size)`` pairs straight into the experiment
harness.  The format is a two-or-more-column CSV with a header:

    arrival_s,size_bytes[,anything else...]
    0.00125,15000
    0.00241,1200000

Arrival times are seconds (float) relative to trace start; extra columns
are preserved in the returned metadata but ignored by the generator.
An :class:`~repro.workloads.distributions.EmpiricalCDF` can also be
*fitted* from a trace so the synthetic generator matches its marginal
size distribution.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from ..sim.units import seconds
from .distributions import EmpiricalCDF
from .flowgen import FlowSpec

PathLike = Union[str, Path]


def load_flow_trace(path: PathLike) -> List[FlowSpec]:
    """Parse a CSV flow trace into sorted :class:`FlowSpec` records."""
    path = Path(path)
    specs: List[FlowSpec] = []
    with path.open() as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            raise ValueError(f"{path}: empty trace file")
        columns = [column.strip().lower() for column in header]
        try:
            arrival_index = columns.index("arrival_s")
            size_index = columns.index("size_bytes")
        except ValueError:
            raise ValueError(
                f"{path}: header must contain arrival_s and size_bytes, "
                f"got {columns}") from None
        for line_number, row in enumerate(reader, start=2):
            if not row or not "".join(row).strip():
                continue
            try:
                arrival = float(row[arrival_index])
                size = int(float(row[size_index]))
            except (ValueError, IndexError) as exc:
                raise ValueError(
                    f"{path}:{line_number}: bad row {row!r}") from exc
            if arrival < 0 or size <= 0:
                raise ValueError(
                    f"{path}:{line_number}: arrival must be >= 0 and "
                    f"size > 0, got {arrival}, {size}")
            specs.append(FlowSpec(seconds(arrival), size))
    specs.sort(key=lambda spec: spec.arrival_ns)
    return specs


def save_flow_trace(path: PathLike, specs: Sequence[FlowSpec]) -> int:
    """Write specs back out in the trace format; returns the row count."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["arrival_s", "size_bytes"])
        for spec in specs:
            writer.writerow([spec.arrival_ns / 1e9, spec.size_bytes])
    return len(specs)


def fit_cdf(specs: Sequence[FlowSpec], *, name: str = "trace",
            points: int = 20) -> EmpiricalCDF:
    """Fit a piecewise-linear CDF to a trace's flow sizes.

    Uses evenly spaced quantiles, which reproduces the trace's marginal
    size distribution closely enough for load calculations and synthetic
    extension of short traces.
    """
    if not specs:
        raise ValueError("cannot fit a CDF to an empty trace")
    if points < 2:
        raise ValueError("need at least two CDF points")
    sizes = sorted(spec.size_bytes for spec in specs)
    cdf_points: List[Tuple[int, float]] = []
    last_size = None
    for step in range(points):
        probability = step / (points - 1)
        rank = round(probability * (len(sizes) - 1))
        size = sizes[rank]
        if size == last_size:
            # Merge duplicate sizes, keeping the highest probability.
            cdf_points[-1] = (size, probability)
        else:
            cdf_points.append((size, probability))
            last_size = size
    # Guarantee a proper endpoint.
    if cdf_points[-1][1] != 1.0:
        cdf_points[-1] = (cdf_points[-1][0], 1.0)
    if len(cdf_points) == 1:
        cdf_points.append((cdf_points[0][0] + 1, 1.0))
        cdf_points[0] = (cdf_points[0][0], 0.0)
    return EmpiricalCDF(name, cdf_points)
