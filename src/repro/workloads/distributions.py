"""Empirical flow-size distributions.

Production workloads are published as CDF point sets (flow size vs.
cumulative probability).  :class:`EmpiricalCDF` samples them by inverse
transform with linear interpolation between points — the same approach the
ns-2 / PIAS traffic generators use — and computes the distribution mean,
which the open-loop flow generator needs to convert a target *load*
fraction into a Poisson arrival rate.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple

Point = Tuple[int, float]


class EmpiricalCDF:
    """Inverse-transform sampler over a piecewise-linear CDF."""

    def __init__(self, name: str, points: Sequence[Point]) -> None:
        if len(points) < 2:
            raise ValueError(f"{name}: need at least two CDF points")
        sizes = [size for size, _ in points]
        probs = [prob for _, prob in points]
        if sorted(sizes) != sizes or sorted(probs) != probs:
            raise ValueError(f"{name}: CDF points must be non-decreasing")
        if probs[-1] != 1.0:
            raise ValueError(f"{name}: CDF must end at probability 1.0")
        if probs[0] < 0.0:
            raise ValueError(f"{name}: probabilities must be in [0, 1]")
        if sizes[0] <= 0:
            raise ValueError(f"{name}: flow sizes must be positive")
        self.name = name
        self.sizes = list(sizes)
        self.probs = list(probs)

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes)."""
        u = rng.random()
        return self.inverse(u)

    def inverse(self, u: float) -> int:
        """Quantile function: smallest size with CDF >= ``u``."""
        if not 0.0 <= u <= 1.0:
            raise ValueError(f"u must be in [0, 1], got {u}")
        if u <= self.probs[0]:
            return self.sizes[0]
        index = bisect.bisect_left(self.probs, u)
        if index >= len(self.probs):
            return self.sizes[-1]
        lo_p, hi_p = self.probs[index - 1], self.probs[index]
        lo_s, hi_s = self.sizes[index - 1], self.sizes[index]
        if hi_p == lo_p:
            return hi_s
        fraction = (u - lo_p) / (hi_p - lo_p)
        return max(1, int(lo_s + fraction * (hi_s - lo_s)))

    def mean_bytes(self) -> float:
        """Mean flow size implied by the piecewise-linear CDF."""
        total = self.sizes[0] * self.probs[0]
        for i in range(1, len(self.sizes)):
            delta = self.probs[i] - self.probs[i - 1]
            total += delta * (self.sizes[i] + self.sizes[i - 1]) / 2
        return total

    def cdf_at(self, size: int) -> float:
        """Cumulative probability of flows of at most ``size`` bytes."""
        if size <= self.sizes[0]:
            return self.probs[0] if size >= self.sizes[0] else 0.0
        if size >= self.sizes[-1]:
            return 1.0
        index = bisect.bisect_right(self.sizes, size)
        lo_s, hi_s = self.sizes[index - 1], self.sizes[index]
        lo_p, hi_p = self.probs[index - 1], self.probs[index]
        if hi_s == lo_s:
            return hi_p
        return lo_p + (size - lo_s) / (hi_s - lo_s) * (hi_p - lo_p)

    def bytes_fraction_above(self, size: int, samples: int = 20000) -> float:
        """Fraction of total *bytes* carried by flows larger than ``size``.

        Computed by deterministic quadrature over the quantile function —
        used to verify the heavy-tail statements of the paper's Fig. 2
        discussion (e.g. 90 % of data-mining bytes from >100 MB flows).
        """
        total = 0.0
        above = 0.0
        for i in range(samples):
            u = (i + 0.5) / samples
            value = self.inverse(u)
            total += value
            if value > size:
                above += value
        return above / total if total else 0.0

    def truncated(self, max_bytes: int) -> "EmpiricalCDF":
        """A copy with the tail clipped at ``max_bytes``.

        Scaled-down benchmark runs clip extreme tails (a single 1 GB flow
        would dominate a 2-second simulated horizon) while keeping the
        body of the distribution identical.
        """
        if max_bytes <= self.sizes[0]:
            raise ValueError("truncation removes the whole distribution")
        points: List[Point] = []
        for size, prob in zip(self.sizes, self.probs):
            if size >= max_bytes:
                points.append((max_bytes, 1.0))
                break
            points.append((size, prob))
        else:
            return EmpiricalCDF(self.name, list(zip(self.sizes, self.probs)))
        if points[-1][0] == points[-2][0]:
            points.pop(-2)
        return EmpiricalCDF(f"{self.name}<= {max_bytes}", points)
