"""Open-loop Poisson flow generation.

The paper's dynamic-flow experiments generate requests "through available
connections" with Poisson inter-arrival times while sweeping the offered
*load* from 30 % to 80 % of the bottleneck capacity.  Load converts to an
arrival rate via the workload's mean flow size:

    lambda [flows/s] = load * C [bit/s] / (8 * mean_flow_size [B])

The generator emits plain :class:`FlowSpec` records (arrival time, size);
the experiment harness turns them into transport flows with concrete
src/dst/service-class assignments.
"""

from __future__ import annotations

import random
from typing import Iterator, List, NamedTuple

from ..sim.units import SECOND
from .distributions import EmpiricalCDF


class FlowSpec(NamedTuple):
    """One generated flow before host/queue placement."""

    arrival_ns: int
    size_bytes: int


def arrival_rate_per_second(load: float, link_rate_bps: int,
                            mean_flow_bytes: float) -> float:
    """Poisson flow arrival rate achieving ``load`` on one bottleneck."""
    if not 0.0 < load <= 1.0:
        raise ValueError(f"load must be in (0, 1], got {load}")
    if mean_flow_bytes <= 0:
        raise ValueError("mean flow size must be positive")
    return load * link_rate_bps / (8 * mean_flow_bytes)


def generate_flows(*, distribution: EmpiricalCDF, load: float,
                   link_rate_bps: int, num_flows: int,
                   rng: random.Random, start_ns: int = 0) -> List[FlowSpec]:
    """Sample ``num_flows`` Poisson arrivals with sizes from the CDF."""
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    rate = arrival_rate_per_second(
        load, link_rate_bps, distribution.mean_bytes())
    specs = []
    clock = float(start_ns)
    for _ in range(num_flows):
        clock += rng.expovariate(rate) * SECOND
        specs.append(FlowSpec(int(clock), distribution.sample(rng)))
    return specs


def iter_flows(*, distribution: EmpiricalCDF, load: float,
               link_rate_bps: int, rng: random.Random,
               start_ns: int = 0) -> Iterator[FlowSpec]:
    """Endless generator variant of :func:`generate_flows`."""
    rate = arrival_rate_per_second(
        load, link_rate_bps, distribution.mean_bytes())
    clock = float(start_ns)
    while True:
        clock += rng.expovariate(rate) * SECOND
        yield FlowSpec(int(clock), distribution.sample(rng))
