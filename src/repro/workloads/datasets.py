"""The four production workloads of the paper's Fig. 2.

* **web search** — the DCTCP workload (Alizadeh et al., SIGCOMM'10).  The
  least skewed of the four: a large share of medium flows keeps many flows
  concurrently active on the bottleneck, which is why the paper uses it
  for every testbed experiment.
* **data mining** — the VL2 workload (Greenberg et al., SIGCOMM'09).
  Extremely heavy-tailed: roughly half the flows are ~1 KB while ~90 % of
  the bytes come from flows larger than 100 MB.
* **cache** and **hadoop** — Facebook's production clusters (Roy et al.,
  SIGCOMM'15).

The point sets for web search and data mining are the ones shipped with
the open-source PIAS / MQ-ECN ns-2 generators; the Facebook curves are not
published as machine-readable CDFs, so the cache/hadoop point sets below
are piecewise-linear approximations of the paper-reported shapes
(documented substitution — see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List

from .distributions import EmpiricalCDF

KB = 1_000
MB = 1_000_000

WEB_SEARCH = EmpiricalCDF("web_search", [
    (1 * KB, 0.0),
    (10 * KB, 0.15),
    (20 * KB, 0.20),
    (30 * KB, 0.30),
    (50 * KB, 0.40),
    (80 * KB, 0.53),
    (200 * KB, 0.60),
    (1 * MB, 0.70),
    (2 * MB, 0.80),
    (5 * MB, 0.90),
    (10 * MB, 0.97),
    (30 * MB, 1.00),
])

DATA_MINING = EmpiricalCDF("data_mining", [
    (100, 0.0),
    (180, 0.10),
    (250, 0.20),
    (560, 0.30),
    (900, 0.40),
    (1100, 0.50),
    (1870, 0.60),
    (3160, 0.70),
    (10 * KB, 0.80),
    (400 * KB, 0.90),
    (3160 * KB, 0.95),
    (100 * MB, 0.98),
    (1000 * MB, 1.00),
])

CACHE = EmpiricalCDF("cache", [
    (1 * KB, 0.0),
    (2 * KB, 0.20),
    (5 * KB, 0.40),
    (10 * KB, 0.55),
    (50 * KB, 0.70),
    (100 * KB, 0.80),
    (500 * KB, 0.90),
    (1 * MB, 0.95),
    (10 * MB, 1.00),
])

HADOOP = EmpiricalCDF("hadoop", [
    (300, 0.0),
    (1 * KB, 0.20),
    (2 * KB, 0.40),
    (10 * KB, 0.60),
    (100 * KB, 0.75),
    (1 * MB, 0.85),
    (10 * MB, 0.95),
    (300 * MB, 1.00),
])

WORKLOADS: Dict[str, EmpiricalCDF] = {
    "web_search": WEB_SEARCH,
    "data_mining": DATA_MINING,
    "cache": CACHE,
    "hadoop": HADOOP,
}


def workload(name: str) -> EmpiricalCDF:
    """Look up one of the four paper workloads by name."""
    if name not in WORKLOADS:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[name]


def workload_names() -> List[str]:
    """Names of all four workloads, in a stable order."""
    return ["web_search", "data_mining", "cache", "hadoop"]
