"""Multi-seed repetition and summary statistics.

The paper reports single-run figures from a long testbed run; scaled-down
simulations are noisier, so the harness offers seed-replicated runs with
mean / standard-deviation / confidence-interval summaries.  Implemented
with plain stdlib math so the core library keeps zero dependencies.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..sim.errors import SimulationError

# Two-sided 95 % Student-t critical values for small sample sizes
# (df = n - 1); falls back to the normal 1.96 beyond df = 30, where the
# t distribution is within ~2 % of the normal.  Stopping the table at
# df = 10 understated CI half-widths by up to ~12 % (t(11) = 2.201).
_T_TABLE = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
            6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
            11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
            16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
            21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
            26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042}


class Summary(NamedTuple):
    """Mean and spread of one metric across repetitions."""

    mean: float
    std: float
    ci95: float          # half-width of the 95 % confidence interval
    count: int
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Mean / sample-std / 95 % CI half-width of ``values``."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Summary(mean, 0.0, 0.0, 1, mean, mean)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    std = math.sqrt(variance)
    critical = _T_TABLE.get(n - 1, 1.96)
    ci95 = critical * std / math.sqrt(n)
    return Summary(mean, std, ci95, n, min(data), max(data))


class SeedFailure(NamedTuple):
    """One replication that died with a :class:`SimulationError`."""

    seed: int
    error: str


class SeedSummaries(Dict[str, Summary]):
    """Per-metric summaries plus the replications that failed.

    Behaves exactly like the plain ``Dict[str, Summary]`` that
    :func:`repeat_with_seeds` used to return, with an extra
    :attr:`failures` attribute listing the seeds whose run raised a
    :class:`~repro.sim.errors.SimulationError` (those replications are
    excluded from every summary).
    """

    def __init__(self, summaries: Dict[str, Summary],
                 failures: Sequence[SeedFailure] = ()) -> None:
        super().__init__(summaries)
        self.failures: List[SeedFailure] = list(failures)


def repeat_with_seeds(run: Callable[[int], Dict[str, Optional[float]]],
                      seeds: Sequence[int]) -> SeedSummaries:
    """Run ``run(seed)`` for every seed and summarize each metric.

    ``run`` returns a flat dict of metric name -> value; ``None`` values
    (e.g. "no large flows completed in this replication") are skipped per
    metric.  Metrics absent from every replication are omitted.

    A replication that raises :class:`SimulationError` no longer aborts
    the whole repetition: the surviving seeds are summarized and the
    failures are reported on the returned mapping's ``failures``
    attribute.  Only when *every* seed fails is a
    :class:`SimulationError` raised (there is nothing to summarize).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    failures: List[SeedFailure] = []
    for seed in seeds:
        try:
            metrics = run(seed)
        except SimulationError as exc:
            failures.append(
                SeedFailure(seed, str(exc) or type(exc).__name__))
            continue
        for name, value in metrics.items():
            if value is not None:
                collected.setdefault(name, []).append(float(value))
    if failures and len(failures) == len(seeds):
        detail = "; ".join(f"seed {f.seed}: {f.error}" for f in failures)
        raise SimulationError(
            f"all {len(seeds)} replications failed ({detail})")
    return SeedSummaries({name: summarize(values)
                          for name, values in collected.items()},
                         failures)


def format_summary_table(summaries: Dict[str, Summary],
                         title: str) -> str:
    """Human-readable mean +/- CI table."""
    lines = [title, "metric".ljust(24) + "mean".rjust(12)
             + "+/-95%".rjust(10) + "min".rjust(12) + "max".rjust(12)
             + "n".rjust(4)]
    for name in sorted(summaries):
        summary = summaries[name]
        lines.append(name.ljust(24)
                     + f"{summary.mean:.3f}".rjust(12)
                     + f"{summary.ci95:.3f}".rjust(10)
                     + f"{summary.minimum:.3f}".rjust(12)
                     + f"{summary.maximum:.3f}".rjust(12)
                     + str(summary.count).rjust(4))
    return "\n".join(lines)
