"""Multi-seed repetition and summary statistics.

The paper reports single-run figures from a long testbed run; scaled-down
simulations are noisier, so the harness offers seed-replicated runs with
mean / standard-deviation / confidence-interval summaries.  Implemented
with plain stdlib math so the core library keeps zero dependencies.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

# Two-sided 95 % Student-t critical values for small sample sizes
# (df = n - 1); falls back to the normal 1.96 beyond the table.
_T_TABLE = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
            6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


class Summary(NamedTuple):
    """Mean and spread of one metric across repetitions."""

    mean: float
    std: float
    ci95: float          # half-width of the 95 % confidence interval
    count: int
    minimum: float
    maximum: float


def summarize(values: Sequence[float]) -> Summary:
    """Mean / sample-std / 95 % CI half-width of ``values``."""
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return Summary(mean, 0.0, 0.0, 1, mean, mean)
    variance = sum((v - mean) ** 2 for v in data) / (n - 1)
    std = math.sqrt(variance)
    critical = _T_TABLE.get(n - 1, 1.96)
    ci95 = critical * std / math.sqrt(n)
    return Summary(mean, std, ci95, n, min(data), max(data))


def repeat_with_seeds(run: Callable[[int], Dict[str, Optional[float]]],
                      seeds: Sequence[int]) -> Dict[str, Summary]:
    """Run ``run(seed)`` for every seed and summarize each metric.

    ``run`` returns a flat dict of metric name -> value; ``None`` values
    (e.g. "no large flows completed in this replication") are skipped per
    metric.  Metrics absent from every replication are omitted.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    collected: Dict[str, List[float]] = {}
    for seed in seeds:
        metrics = run(seed)
        for name, value in metrics.items():
            if value is not None:
                collected.setdefault(name, []).append(float(value))
    return {name: summarize(values)
            for name, values in collected.items()}


def format_summary_table(summaries: Dict[str, Summary],
                         title: str) -> str:
    """Human-readable mean +/- CI table."""
    lines = [title, "metric".ljust(24) + "mean".rjust(12)
             + "+/-95%".rjust(10) + "min".rjust(12) + "max".rjust(12)
             + "n".rjust(4)]
    for name in sorted(summaries):
        summary = summaries[name]
        lines.append(name.ljust(24)
                     + f"{summary.mean:.3f}".rjust(12)
                     + f"{summary.ci95:.3f}".rjust(10)
                     + f"{summary.minimum:.3f}".rjust(12)
                     + f"{summary.maximum:.3f}".rjust(12)
                     + str(summary.count).rjust(4))
    return "\n".join(lines)
