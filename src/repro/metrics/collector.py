"""Drop/mark counters aggregated from the trace bus.

Complements the per-port counters with a network-wide view keyed by port
name — handy for experiment sanity output ("where did the losses happen?")
and for failure-injection tests.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict

from ..sim.trace import TOPIC_PACKET_DROP, TOPIC_PACKET_MARK, TraceBus


class DropMarkCollector:
    """Counts drops and CE marks per port and per drop reason."""

    def __init__(self, trace: TraceBus) -> None:
        self.drops_by_port: Counter = Counter()
        self.drops_by_reason: Counter = Counter()
        self.marks_by_port: Counter = Counter()
        trace.subscribe(TOPIC_PACKET_DROP, self._on_drop)
        trace.subscribe(TOPIC_PACKET_MARK, self._on_mark)

    def _on_drop(self, *, port: str, time: int, packet, queue: int,
                 detail: str, queue_bytes) -> None:
        self.drops_by_port[port] += 1
        self.drops_by_reason[detail] += 1

    def _on_mark(self, *, port: str, time: int, packet, queue: int,
                 detail: str, queue_bytes) -> None:
        self.marks_by_port[port] += 1

    @property
    def total_drops(self) -> int:
        return sum(self.drops_by_port.values())

    @property
    def total_marks(self) -> int:
        return sum(self.marks_by_port.values())

    def as_dict(self) -> Dict[str, Any]:
        """Summary dictionary for experiment reports.

        Includes the per-reason and per-port breakdowns so a report can
        say *where* and *why* losses happened, not just how many.
        """
        return {
            "drops": self.total_drops,
            "marks": self.total_marks,
            "drops_by_reason": dict(self.drops_by_reason),
            "drops_by_port": dict(self.drops_by_port),
            "marks_by_port": dict(self.marks_by_port),
        }
