"""Fairness metrics.

Jain's fairness index over per-queue throughputs,

    J(x) = (sum x_i)^2 / (n * sum x_i^2),

equals 1 for a perfectly even allocation and 1/n when one queue takes
everything.  The paper computes it *between active queues* every sampling
interval (Figs. 10-12); :func:`jain_index` therefore takes only the active
shares.  For weighted scenarios, normalise each rate by its weight first
(:func:`weighted_jain_index`), so that exact weighted fair sharing also
scores 1.
"""

from __future__ import annotations

from typing import Sequence


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index of the given (active-queue) rates."""
    values = [rate for rate in rates]
    if not values:
        return 1.0
    if any(value < 0 for value in values):
        raise ValueError(f"rates must be non-negative: {values}")
    total = sum(values)
    if total == 0:
        return 1.0
    square_sum = sum(value * value for value in values)
    return total * total / (len(values) * square_sum)


def weighted_jain_index(rates: Sequence[float],
                        weights: Sequence[float]) -> float:
    """Jain index of weight-normalised rates ``x_i / w_i``."""
    if len(rates) != len(weights):
        raise ValueError("rates and weights lengths differ")
    if any(weight <= 0 for weight in weights):
        raise ValueError("weights must be positive")
    return jain_index([rate / weight for rate, weight in zip(rates, weights)])


def throughput_shares(rates: Sequence[float]) -> list:
    """``R_i / sum(R)`` as in the paper's Fig. 6 (zeros if link idle)."""
    total = sum(rates)
    if total <= 0:
        return [0.0 for _ in rates]
    return [rate / total for rate in rates]
