"""Queue-length evolution sampling.

The paper records per-queue buffer occupancy "every enqueueing and
dequeueing operation" and plots 1 K sequential samples (Figs. 1 and 4).
:class:`QueueLengthSampler` subscribes to a port's enqueue/dequeue trace
topics and stores ``(time, per-queue-bytes)`` tuples, optionally capped.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..net.port import EgressPort
from ..sim.trace import TOPIC_PACKET_DEQUEUE, TOPIC_PACKET_ENQUEUE


class QueueLengthSample(NamedTuple):
    time_ns: int
    queue_bytes: tuple


class QueueLengthSampler:
    """Record per-queue occupancy on every enqueue/dequeue of a port."""

    def __init__(self, port: EgressPort, *, start_ns: int = 0,
                 max_samples: Optional[int] = None) -> None:
        if port.trace is None:
            raise ValueError(f"port {port.name} has no trace bus attached")
        self.port = port
        self.start_ns = start_ns
        self.max_samples = max_samples
        self.samples: List[QueueLengthSample] = []
        port.trace.subscribe(TOPIC_PACKET_ENQUEUE, self._on_event)
        port.trace.subscribe(TOPIC_PACKET_DEQUEUE, self._on_event)

    def _on_event(self, *, port: str, time: int, packet, queue: int,
                  detail: str, queue_bytes) -> None:
        if port != self.port.name or time < self.start_ns:
            return
        if (self.max_samples is not None
                and len(self.samples) >= self.max_samples):
            return
        self.samples.append(QueueLengthSample(time, queue_bytes))

    # -- summaries ---------------------------------------------------------------

    def series(self, queue: int) -> List[int]:
        """Occupancy samples (bytes) of one queue, in event order."""
        return [sample.queue_bytes[queue] for sample in self.samples]

    def mean_occupancy(self, queue: int) -> float:
        """Mean sampled occupancy of one queue (bytes)."""
        series = self.series(queue)
        return sum(series) / len(series) if series else 0.0

    def peak_occupancy(self, queue: int) -> int:
        """Largest sampled occupancy of one queue (bytes)."""
        series = self.series(queue)
        return max(series) if series else 0
