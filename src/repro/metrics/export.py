"""Export measurement series to CSV / JSON-lines.

For users who want to re-plot the figures with their own tooling: every
series the report printers show can also be dumped to disk.  Pure stdlib
(``csv`` + ``json``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Sequence, Union

from .fct import FlowRecord
from .throughput import ThroughputSample

PathLike = Union[str, Path]


def write_throughput_csv(path: PathLike,
                         samples: Sequence[ThroughputSample]) -> int:
    """One row per sampling interval: time_s, q1_bps..qN_bps, aggregate.

    Returns the number of data rows written.
    """
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if not samples:
            return 0
        num_queues = len(samples[0].per_queue_bps)
        writer.writerow(["time_s"]
                        + [f"q{i + 1}_bps" for i in range(num_queues)]
                        + ["aggregate_bps"])
        for sample in samples:
            writer.writerow([sample.time_ns / 1e9]
                            + [f"{rate:.0f}" for rate in sample.per_queue_bps]
                            + [f"{sample.aggregate_bps:.0f}"])
    return len(samples)


def write_fct_csv(path: PathLike, records: Sequence[FlowRecord]) -> int:
    """One row per completed flow: id, size, FCT (ms), service class."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["flow_id", "size_bytes", "fct_ms",
                         "service_class"])
        for record in records:
            writer.writerow([record.flow_id, record.size_bytes,
                             record.fct_ns / 1e6, record.service_class])
    return len(records)


def write_sweep_csv(path: PathLike, records: Sequence[dict]) -> int:
    """Dump :func:`repro.experiments.sweeps.run_sweep` records to CSV.

    Parameter columns keep the caller's declared grid order (the order
    the keys appear in the records), followed by
    ``<metric>_mean/_ci95/_n`` triples per metric and a ``failures``
    column.  Returns the number of data rows written.
    """
    path = Path(path)
    param_names: list = []
    metric_names: list = []
    for record in records:
        for name in record:
            if name in ("metrics", "failures"):
                continue
            if name not in param_names:
                param_names.append(name)
        for name in record.get("metrics", {}):
            if name not in metric_names:
                metric_names.append(name)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if not records:
            return 0
        header = list(param_names)
        for metric in metric_names:
            header += [f"{metric}_mean", f"{metric}_ci95", f"{metric}_n"]
        header.append("failures")
        writer.writerow(header)
        for record in records:
            row = [record.get(name, "") for name in param_names]
            for metric in metric_names:
                summary = record["metrics"].get(metric)
                if summary is None:
                    row += ["", "", ""]
                else:
                    row += [repr(summary.mean), repr(summary.ci95),
                            summary.count]
            row.append(record.get("failures", 0))
            writer.writerow(row)
    return len(records)


def write_jsonl(path: PathLike, rows: Iterable[dict]) -> int:
    """Generic JSON-lines dump; returns the row count."""
    path = Path(path)
    count = 0
    with path.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: PathLike) -> list:
    """Round-trip helper for :func:`write_jsonl`."""
    with Path(path).open() as handle:
        return [json.loads(line) for line in handle if line.strip()]


def write_threshold_series_csv(path: PathLike, timeline,
                               port: str) -> int:
    """Dump one port's DynaQ ``T_i(t)`` evolution (Fig. 4 re-plots).

    One row per threshold event: ``time_s, T_1..T_M`` (bytes); a final
    comment-free header-only file results when the port saw no events.
    ``timeline`` is a :class:`repro.telemetry.ThresholdTimeline`.
    """
    path = Path(path)
    series = timeline.series(port)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if not series:
            return 0
        num_queues = len(series[0][1])
        writer.writerow(["time_s"]
                        + [f"T{i + 1}_bytes" for i in range(num_queues)])
        for time_ns, thresholds in series:
            writer.writerow([time_ns / 1e9] + list(thresholds))
    return len(series)


def write_steal_matrix_csv(path: PathLike, timeline, port: str) -> int:
    """Dump one port's steal matrix: bytes moved ``victim -> gainer``.

    Row i / column j holds the bytes queue j took from queue i over the
    run.  Returns the matrix dimension (0 when the port saw no steals).
    """
    path = Path(path)
    matrix = timeline.steal_matrix(port)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        if not matrix:
            return 0
        size = len(matrix)
        writer.writerow(["victim\\gainer"]
                        + [f"q{j + 1}" for j in range(size)])
        for i, row in enumerate(matrix):
            writer.writerow([f"q{i + 1}"] + list(row))
    return len(matrix)
