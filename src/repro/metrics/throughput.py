"""Per-queue throughput sampling at a bottleneck port.

Mirrors the paper's methodology: per-queue throughput is measured at the
bottleneck egress port every ``interval`` (0.5 s on the testbed, 10 ms in
the large-scale simulations), producing one time series per service queue
plus the aggregate.

Two sampling backends share one sample format:

* **batched** (fast path, default) — the port already maintains
  per-queue transmit byte counters (:attr:`EgressPort.queue_tx_bytes`);
  the meter snapshots them on each sample boundary and differences
  consecutive snapshots.  No per-packet subscription, so the port's
  ``packet.dequeue`` topic usually stays silent and the port's cached
  publish path skips payload construction entirely.
* **subscriber** (reference path) — subscribe to every ``packet.dequeue``
  event and accumulate sizes, as the original implementation did.

Both see exactly the dequeues executed strictly before the sample
callback (the port increments its counters in the same call that
publishes the dequeue event, and sample boundaries are simulator events
like any other), so the two backends produce identical sample series —
``tests/test_perf_equivalence.py`` asserts this on a contended run.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..net.port import EgressPort
from ..perf.config import active_config
from ..sim.engine import Simulator
from ..sim.trace import TOPIC_PACKET_DEQUEUE
from ..sim.units import SECOND


class ThroughputSample(NamedTuple):
    """One sampling interval's result."""

    time_ns: int                 # end of the interval
    per_queue_bps: tuple         # goodput-ish rate per service queue
    aggregate_bps: float


class PortThroughputMeter:
    """Samples per-queue transmit rate of one port on a fixed interval."""

    def __init__(self, sim: Simulator, port: EgressPort,
                 interval_ns: int, *,
                 batched: Optional[bool] = None) -> None:
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.port = port
        self.interval_ns = interval_ns
        self.samples: List[ThroughputSample] = []
        self._bytes_this_interval = [0] * port.num_queues
        if batched is None:
            batched = active_config().batched_stats
        self.batched = batched
        if batched:
            self._last_tx = list(port.queue_tx_bytes)
        else:
            if port.trace is None:
                raise ValueError(
                    f"port {port.name} has no trace bus attached")
            port.trace.subscribe(TOPIC_PACKET_DEQUEUE, self._on_dequeue)
        self.sim.schedule(interval_ns, self._sample)

    def _on_dequeue(self, *, port: str, time: int, packet, queue: int,
                    detail: str, queue_bytes) -> None:
        if port == self.port.name:
            self._bytes_this_interval[queue] += packet.size

    def _sample(self) -> None:
        if self.batched:
            # A port running with batched link advance may have committed
            # transmissions ahead of the clock; rewind it to the
            # per-packet boundary so the counters read below contain
            # exactly the dequeues that started strictly before now —
            # the same set both backends see on the per-packet path.
            self.port.sync_batched_advance()
            tx = self.port.queue_tx_bytes
            last = self._last_tx
            self._bytes_this_interval = [
                tx[i] - last[i] for i in range(len(tx))]
            self._last_tx = list(tx)
        scale = 8 * SECOND / self.interval_ns
        per_queue = tuple(count * scale
                          for count in self._bytes_this_interval)
        self.samples.append(ThroughputSample(
            self.sim.now, per_queue, sum(per_queue)))
        self._bytes_this_interval = [0] * self.port.num_queues
        self.sim.schedule(self.interval_ns, self._sample)

    # -- summaries ---------------------------------------------------------------

    def series(self, queue: int) -> List[float]:
        """Throughput time series (bps) for one queue."""
        return [sample.per_queue_bps[queue] for sample in self.samples]

    def aggregate_series(self) -> List[float]:
        """Aggregate throughput time series (bps)."""
        return [sample.aggregate_bps for sample in self.samples]

    def mean_rate_bps(self, queue: int, start_ns: int = 0,
                      end_ns: int = None) -> float:
        """Average rate of one queue over ``[start_ns, end_ns]``."""
        window = [s.per_queue_bps[queue] for s in self.samples
                  if s.time_ns > start_ns
                  and (end_ns is None or s.time_ns <= end_ns)]
        return sum(window) / len(window) if window else 0.0

    def mean_aggregate_bps(self, start_ns: int = 0,
                           end_ns: int = None) -> float:
        """Average aggregate rate over ``[start_ns, end_ns]``."""
        window = [s.aggregate_bps for s in self.samples
                  if s.time_ns > start_ns
                  and (end_ns is None or s.time_ns <= end_ns)]
        return sum(window) / len(window) if window else 0.0
