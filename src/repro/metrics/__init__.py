"""Measurement: throughput series, fairness indices, FCT breakdowns, traces."""

from .collector import DropMarkCollector
from .export import (
    read_jsonl,
    write_fct_csv,
    write_jsonl,
    write_sweep_csv,
    write_throughput_csv,
)
from .fairness import jain_index, throughput_shares, weighted_jain_index
from .fct import (
    FCTCollector,
    FlowRecord,
    LARGE_FLOW_MIN_BYTES,
    SMALL_FLOW_MAX_BYTES,
    mean_fct_ms,
    normalize_to,
    percentile_fct_ms,
)
from .queuelen import QueueLengthSample, QueueLengthSampler
from .stats import (
    SeedFailure,
    SeedSummaries,
    Summary,
    format_summary_table,
    repeat_with_seeds,
    summarize,
)
from .throughput import PortThroughputMeter, ThroughputSample

__all__ = [
    "DropMarkCollector",
    "read_jsonl",
    "write_fct_csv",
    "write_jsonl",
    "write_sweep_csv",
    "write_throughput_csv",
    "SeedFailure",
    "SeedSummaries",
    "Summary",
    "format_summary_table",
    "repeat_with_seeds",
    "summarize",
    "jain_index",
    "throughput_shares",
    "weighted_jain_index",
    "FCTCollector",
    "FlowRecord",
    "LARGE_FLOW_MIN_BYTES",
    "SMALL_FLOW_MAX_BYTES",
    "mean_fct_ms",
    "normalize_to",
    "percentile_fct_ms",
    "QueueLengthSample",
    "QueueLengthSampler",
    "PortThroughputMeter",
    "ThroughputSample",
]
