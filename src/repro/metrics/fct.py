"""Flow-completion-time bookkeeping and breakdowns.

The paper reports, per traffic load: average FCT of overall flows, of
small flows (<= 100 KB), of large flows (> 10 MB), and the 99th-percentile
FCT of small flows — each normalised by DynaQ's value.  This module holds
the records and computes exactly those statistics.
"""

from __future__ import annotations

import math
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..sim.units import SECOND

SMALL_FLOW_MAX_BYTES = 100_000       # <= 100 KB
LARGE_FLOW_MIN_BYTES = 10_000_000    # > 10 MB


class FlowRecord(NamedTuple):
    """One completed flow."""

    flow_id: int
    size_bytes: int
    fct_ns: int
    service_class: int


class FCTCollector:
    """Accumulates completed flows; experiments call :meth:`record`."""

    def __init__(self) -> None:
        self.records: List[FlowRecord] = []

    def record(self, flow_id: int, size_bytes: int, fct_ns: int,
               service_class: int = 0) -> None:
        if fct_ns < 0:
            raise ValueError(f"negative FCT for flow {flow_id}")
        self.records.append(
            FlowRecord(flow_id, size_bytes, fct_ns, service_class))

    def record_sender(self, sender) -> None:
        """Convenience: record a completed TransportSender."""
        self.record(sender.flow.flow_id, sender.flow.size,
                    sender.fct_ns(), sender.flow.service_class)

    # -- selections --------------------------------------------------------------

    def all_flows(self) -> List[FlowRecord]:
        return list(self.records)

    def small_flows(self) -> List[FlowRecord]:
        """Flows of at most 100 KB (the paper's "small")."""
        return [r for r in self.records
                if r.size_bytes <= SMALL_FLOW_MAX_BYTES]

    def large_flows(self) -> List[FlowRecord]:
        """Flows larger than 10 MB (the paper's "large")."""
        return [r for r in self.records
                if r.size_bytes > LARGE_FLOW_MIN_BYTES]

    def medium_flows(self) -> List[FlowRecord]:
        """Everything between small and large (omitted in the paper)."""
        return [r for r in self.records
                if SMALL_FLOW_MAX_BYTES < r.size_bytes
                <= LARGE_FLOW_MIN_BYTES]

    # -- statistics --------------------------------------------------------------

    def summary(self) -> Dict[str, Optional[float]]:
        """The paper's four FCT statistics, in milliseconds."""
        return {
            "avg_overall_ms": mean_fct_ms(self.records),
            "avg_small_ms": mean_fct_ms(self.small_flows()),
            "avg_large_ms": mean_fct_ms(self.large_flows()),
            "p99_small_ms": percentile_fct_ms(self.small_flows(), 99.0),
        }


def mean_fct_ms(records: Sequence[FlowRecord]) -> Optional[float]:
    """Average FCT in milliseconds, or ``None`` with no flows."""
    if not records:
        return None
    total_ns = sum(record.fct_ns for record in records)
    return total_ns / len(records) * 1000 / SECOND


def percentile_fct_ms(records: Sequence[FlowRecord],
                      percentile: float) -> Optional[float]:
    """Percentile FCT (linear interpolation) in milliseconds."""
    if not records:
        return None
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile out of range: {percentile}")
    values = sorted(record.fct_ns for record in records)
    if len(values) == 1:
        return values[0] * 1000 / SECOND
    rank = percentile / 100 * (len(values) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        result = values[lower]
    else:
        fraction = rank - lower
        result = values[lower] + (values[upper] - values[lower]) * fraction
    return result * 1000 / SECOND


def normalize_to(baseline: Optional[float],
                 value: Optional[float]) -> Optional[float]:
    """``value / baseline`` — the paper normalises every FCT by DynaQ's.

    Returns ``None`` when either side is missing or the baseline is zero.
    """
    if baseline is None or value is None or baseline == 0:
        return None
    return value / baseline
