"""Scenario watchdog: wall-clock and simulated-time budgets.

A faulted run can wedge in ways a healthy run cannot — a transport stuck
in RTO backoff against a link that never came back, or a pathological
schedule that makes the event loop grind.  The watchdog bounds both
axes:

* **simulated time** — a single event scheduled at the budget calls
  :meth:`~repro.sim.engine.Simulator.stop`;
* **wall clock** — a periodic check event compares ``perf_counter``
  against the budget and stops the loop when exceeded.

Either trip stops the simulator *cleanly* (after the current callback),
so partial metrics and the flight recorder's pre-abort window survive.
The runner then calls :meth:`raise_if_tripped` to turn the trip into a
:class:`~repro.sim.errors.WatchdogTimeout` once partial results are
safely collected — or inspects :attr:`tripped` to report and continue.
"""

from __future__ import annotations

from time import perf_counter
from typing import Optional

from ..sim.engine import Simulator
from ..sim.errors import WatchdogTimeout
from ..sim.units import milliseconds


class ScenarioWatchdog:
    """Budgets one simulation run in wall-clock and simulated time.

    Parameters
    ----------
    wall_budget_s:
        Real-time budget in seconds (``None`` disables the check).
    sim_budget_ns:
        Simulated-time budget (``None`` disables the check).
    check_interval_ns:
        How often (simulated time) the wall clock is sampled.  The
        default of 10 ms keeps the overhead to a few hundred events per
        simulated second.
    """

    def __init__(self, sim: Simulator, *,
                 wall_budget_s: Optional[float] = None,
                 sim_budget_ns: Optional[int] = None,
                 check_interval_ns: int = milliseconds(10)) -> None:
        if wall_budget_s is not None and wall_budget_s <= 0:
            raise ValueError(
                f"wall budget must be positive, got {wall_budget_s}")
        if sim_budget_ns is not None and sim_budget_ns <= 0:
            raise ValueError(
                f"sim budget must be positive, got {sim_budget_ns}")
        if check_interval_ns <= 0:
            raise ValueError(
                f"check interval must be positive, got {check_interval_ns}")
        self.sim = sim
        self.wall_budget_s = wall_budget_s
        self.sim_budget_ns = sim_budget_ns
        self.check_interval_ns = check_interval_ns
        self.tripped: Optional[str] = None
        self._started_at: Optional[float] = None
        self._check_event = None
        self._budget_event = None

    @property
    def active(self) -> bool:
        return self.wall_budget_s is not None or self.sim_budget_ns is not None

    def start(self) -> None:
        """Arm the budgets (call right before ``sim.run``)."""
        self._started_at = perf_counter()
        if self.sim_budget_ns is not None:
            self._budget_event = self.sim.schedule(
                self.sim_budget_ns, self._trip_sim_budget)
        if self.wall_budget_s is not None:
            self._check_event = self.sim.schedule(
                self.check_interval_ns, self._check_wall)

    def _trip_sim_budget(self) -> None:
        self._trip(f"simulated-time budget exceeded "
                   f"({self.sim_budget_ns} ns)")

    def _check_wall(self) -> None:
        elapsed = perf_counter() - (self._started_at or perf_counter())
        if elapsed > self.wall_budget_s:
            self._trip(f"wall-clock budget exceeded "
                       f"({elapsed:.1f}s > {self.wall_budget_s:.1f}s "
                       f"at sim t={self.sim.now} ns)")
            return
        self._check_event = self.sim.schedule(
            self.check_interval_ns, self._check_wall)

    def _trip(self, reason: str) -> None:
        if self.tripped is None:
            self.tripped = reason
        self.cancel()
        self.sim.stop()

    def cancel(self) -> None:
        """Disarm pending watchdog events (safe to call repeatedly)."""
        self.sim.cancel(self._check_event)
        self.sim.cancel(self._budget_event)
        self._check_event = None
        self._budget_event = None

    # -- snapshot support ------------------------------------------------------
    #
    # ``perf_counter()`` values are process-local, so a snapshot stores
    # the *elapsed* wall time instead; restore re-anchors the start so the
    # remaining wall budget carries across the save/restore boundary.

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        started = state.pop("_started_at")
        state["_elapsed_at_save"] = (
            perf_counter() - started if started is not None else None)
        return state

    def __setstate__(self, state: dict) -> None:
        elapsed = state.pop("_elapsed_at_save", None)
        self.__dict__.update(state)
        self._started_at = (
            perf_counter() - elapsed if elapsed is not None else None)

    def raise_if_tripped(self) -> None:
        """Re-raise a trip as :class:`WatchdogTimeout` (no-op otherwise)."""
        if self.tripped is not None:
            raise WatchdogTimeout(self.tripped)

    def __enter__(self) -> "ScenarioWatchdog":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.cancel()
