"""Deterministic fault injection (``repro.faults``).

The paper argues DynaQ stays work-conserving and isolated under *dynamic*
conditions; this package is how the reproduction probes that claim.  A
declarative, seed-reproducible :class:`FaultSchedule` (Python dict or
JSON file) names timed events — link flaps with in-flight loss, port
drain stalls, packet corruption, host crash/restart, and mid-run DynaQ
weight reconfiguration — and a :class:`FaultController` replays them
against a built :class:`~repro.net.topology.Network` through hooks on
ports, hosts, and buffer managers.  A :class:`ScenarioWatchdog` bounds
runs in wall-clock and simulated time so a faulted experiment aborts
cleanly with partial metrics instead of hanging.

See ``docs/robustness.md`` for the schedule format and recovery
semantics.
"""

from .controller import FaultController, ThresholdInvariantMonitor
from .schedule import FAULT_KINDS, FaultEvent, FaultSchedule
from .watchdog import ScenarioWatchdog

__all__ = [
    "FAULT_KINDS",
    "FaultController",
    "FaultEvent",
    "FaultSchedule",
    "ScenarioWatchdog",
    "ThresholdInvariantMonitor",
]
