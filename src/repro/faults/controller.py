"""Fault controller: replays a schedule against a built network.

:class:`FaultController` resolves each :class:`~.schedule.FaultEvent`
target to a port or host of the :class:`~repro.net.topology.Network`,
schedules the injection on the simulator's event loop, and — for events
with a ``duration`` — schedules the matching recovery.  Every action is
published to ``fault.inject`` / ``fault.recover`` so traces and flight
dumps show faults inline with the packet events they caused.

Resolution happens eagerly in :meth:`arm` so a schedule naming a port
that does not exist in this topology fails before the run starts.

:class:`ThresholdInvariantMonitor` is the chaos-run safety net: it
watches every ``dynaq.threshold`` / ``dynaq.reconfigure`` event and
counts violations of the paper's ``sum(T_i) == B`` equality, which must
hold across link flaps, crashes, and reconfigurations alike.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Tuple

from ..net.host import Host
from ..net.port import EgressPort
from ..net.topology import Network
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_FAULT_INJECT,
    TOPIC_FAULT_RECOVER,
    TOPIC_THRESHOLD_CHANGE,
    TraceBus,
)
from .schedule import HOST_KINDS, FaultEvent, FaultSchedule

#: (time_ns, phase, kind, target) — one line of the controller's log.
FaultAction = Tuple[int, str, str, str]

PHASE_INJECT = "inject"
PHASE_RECOVER = "recover"


class FaultController:
    """Drives one :class:`FaultSchedule` against one network."""

    def __init__(self, net: Network, schedule: FaultSchedule,
                 rng: Optional[random.Random] = None) -> None:
        self.net = net
        self.sim = net.sim
        self.trace: TraceBus = net.trace
        self.schedule = schedule
        # Corruption needs randomness; a fixed default seed keeps runs
        # reproducible even when the caller forgets to pass a stream.
        self._rng = rng if rng is not None else random.Random(0)
        self.injected = 0
        self.recovered = 0
        self.log: List[FaultAction] = []
        self._armed = False

    # -- target resolution ----------------------------------------------------

    def _resolve_port(self, name: str) -> EgressPort:
        for switch in self.net.switches.values():
            port = switch.ports.get(name)
            if port is not None:
                return port
        for host in self.net.hosts.values():
            if host.nic is not None and host.nic.name == name:
                return host.nic
        known = sorted(
            [port.name for switch in self.net.switches.values()
             for port in switch.port_list()]
            + [host.nic.name for host in self.net.hosts.values()
               if host.nic is not None])
        raise ConfigurationError(
            f"fault target {name!r} is not a port of this topology; "
            f"known ports: {known}")

    def _resolve_host(self, name: str) -> Host:
        host = self.net.hosts.get(name)
        if host is None:
            raise ConfigurationError(
                f"fault target {name!r} is not a host of this topology; "
                f"known hosts: {self.net.host_names()}")
        return host

    # -- arming ----------------------------------------------------------------

    def arm(self) -> None:
        """Resolve all targets and schedule every injection (idempotent)."""
        if self._armed:
            return
        self._armed = True
        for event in self.schedule:
            target: Any = (self._resolve_host(event.target)
                           if event.kind in HOST_KINDS
                           else self._resolve_port(event.target))
            delay = event.time_ns - self.sim.now
            if delay < 0:
                raise ConfigurationError(
                    f"fault at t={event.time_ns} is in the past "
                    f"(now={self.sim.now}); arm the controller before "
                    "running the simulation")
            self.sim.schedule(delay, self._fire, event, target)

    # -- dispatch --------------------------------------------------------------

    def _fire(self, event: FaultEvent, target: Any) -> None:
        kind = event.kind
        if kind in ("link_down", "link_flap"):
            target.set_link_down()
        elif kind == "link_up":
            target.set_link_up()
        elif kind == "stall":
            target.stall()
        elif kind == "resume":
            target.resume()
        elif kind == "corrupt":
            target.set_corruption(event.rate, rng=self._rng)
        elif kind == "host_crash":
            target.crash()
        elif kind == "host_restart":
            target.restart()
        elif kind == "reconfigure":
            target.reconfigure_weights(event.weights)
        else:  # pragma: no cover - schedule validation rejects these
            raise ConfigurationError(f"unhandled fault kind {kind!r}")
        recovering = kind in ("link_up", "resume", "host_restart") or (
            kind == "corrupt" and event.rate == 0.0)
        self._record(PHASE_RECOVER if recovering else PHASE_INJECT,
                     event, detail=kind)
        if event.duration_ns is not None and not recovering:
            self.sim.schedule(event.duration_ns, self._recover,
                              event, target)

    def _recover(self, event: FaultEvent, target: Any) -> None:
        kind = event.kind
        if kind in ("link_down", "link_flap"):
            target.set_link_up()
        elif kind == "stall":
            target.resume()
        elif kind == "corrupt":
            target.set_corruption(0.0)
        elif kind == "host_crash":
            target.restart()
        self._record(PHASE_RECOVER, event, detail=f"{kind} over")

    def _record(self, phase: str, event: FaultEvent, detail: str) -> None:
        if phase == PHASE_INJECT:
            self.injected += 1
            topic = TOPIC_FAULT_INJECT
        else:
            self.recovered += 1
            topic = TOPIC_FAULT_RECOVER
        self.log.append((self.sim.now, phase, event.kind, event.target))
        self.trace.emit(topic, lambda: dict(
            port=event.target, time=self.sim.now, detail=detail))


class ThresholdInvariantMonitor:
    """Counts ``sum(T_i) != B`` violations across a (faulted) run.

    Subscribes to both threshold topics; each event's threshold vector is
    summed and compared against ``expected`` (pass the port buffer size
    ``B``) or, when ``expected`` is ``None``, against the first sum seen
    on that port.  Chaos runs fail their invariant gate when
    :attr:`violations` is non-empty at the end.
    """

    def __init__(self, trace: TraceBus,
                 expected: Optional[int] = None) -> None:
        self._trace = trace
        self.expected = expected
        self.checked = 0
        self.violations: List[Dict[str, Any]] = []
        self._baselines: Dict[str, int] = {}
        self._handlers = []
        for topic in (TOPIC_THRESHOLD_CHANGE, TOPIC_DYNAQ_RECONFIGURE):
            # Bound method, not a per-topic closure: the monitor lives in
            # the snapshotted graph and closures cannot be pickled.
            handler = self._handle
            trace.subscribe(topic, handler)
            self._handlers.append((topic, handler))

    def _handle(self, **payload: Any) -> None:
        self._on_event(payload)

    def _on_event(self, payload: Dict[str, Any]) -> None:
        thresholds = payload.get("thresholds")
        if not thresholds:
            return
        self.checked += 1
        port = str(payload.get("port", ""))
        total = sum(thresholds)
        expected = (self.expected if self.expected is not None
                    else self._baselines.setdefault(port, total))
        if total != expected:
            self.violations.append({
                "time_ns": int(payload.get("time", 0)), "port": port,
                "sum": total, "expected": expected,
            })

    @property
    def violation_count(self) -> int:
        return len(self.violations)

    def close(self) -> None:
        for topic, handler in self._handlers:
            self._trace.unsubscribe(topic, handler)
        self._handlers = []

    def __enter__(self) -> "ThresholdInvariantMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
