"""Declarative fault schedules.

A schedule is a list of timed :class:`FaultEvent` entries, written either
as a Python dict or as a JSON file::

    {
      "name": "linkflap",
      "events": [
        {"time_ms": 40, "kind": "link_down", "target": "s0->h0",
         "duration_ms": 10},
        {"time_ms": 120, "kind": "reconfigure", "target": "s0->h0",
         "weights": [3, 1, 1, 1]}
      ]
    }

Times are simulated time.  ``time_ns`` / ``duration_ns`` are the
canonical fields; ``time_ms`` / ``duration_ms`` are sugar (milliseconds,
floats allowed).  A ``duration`` on a down-type fault schedules the
matching recovery automatically: ``link_down`` -> ``link_up``,
``stall`` -> ``resume``, ``corrupt`` -> corruption cleared,
``host_crash`` -> ``host_restart``.  ``link_flap`` is ``link_down`` with
a *required* duration.

Everything is validated eagerly with
:class:`~repro.sim.errors.ConfigurationError` so a typo in a schedule
file fails before the simulation starts, not 40 simulated milliseconds
into it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from ..sim.errors import ConfigurationError

PathLike = Union[str, Path]

#: Fault kinds a schedule may contain, and what they act on.
#: Port kinds target an egress port by name (``s0->h0``, ``h1.nic``);
#: host kinds target a host by name (``h0``).
PORT_KINDS = frozenset({
    "link_down", "link_up", "link_flap",
    "stall", "resume",
    "corrupt",
    "reconfigure",
})
HOST_KINDS = frozenset({"host_crash", "host_restart"})
FAULT_KINDS = PORT_KINDS | HOST_KINDS

#: Kinds whose ``duration`` sugar expands into an automatic recovery.
#: (``corrupt`` recovers by setting the rate back to zero.)
RECOVERABLE_KINDS = frozenset({
    "link_down", "link_flap", "stall", "corrupt", "host_crash",
})

_EVENT_KEYS = frozenset({
    "time_ns", "time_ms", "kind", "target",
    "duration_ns", "duration_ms", "rate", "weights",
})


def _time_field(spec: Dict[str, Any], ns_key: str, ms_key: str,
                context: str) -> Optional[int]:
    """Resolve the ``*_ns`` / ``*_ms`` pair of one spec to integer ns."""
    if ns_key in spec and ms_key in spec:
        raise ConfigurationError(
            f"{context}: give {ns_key} or {ms_key}, not both")
    if ns_key in spec:
        value = spec[ns_key]
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigurationError(
                f"{context}: {ns_key} must be an integer, got {value!r}")
        return value
    if ms_key in spec:
        value = spec[ms_key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ConfigurationError(
                f"{context}: {ms_key} must be a number, got {value!r}")
        return int(round(value * 1_000_000))
    return None


class FaultEvent:
    """One timed fault: *when*, *what kind*, *on which target*."""

    __slots__ = ("time_ns", "kind", "target", "duration_ns", "rate",
                 "weights")

    def __init__(self, time_ns: int, kind: str, target: str, *,
                 duration_ns: Optional[int] = None,
                 rate: Optional[float] = None,
                 weights: Optional[Sequence[float]] = None) -> None:
        self.time_ns = time_ns
        self.kind = kind
        self.target = target
        self.duration_ns = duration_ns
        self.rate = rate
        self.weights = list(weights) if weights is not None else None
        self._validate()

    def _validate(self) -> None:
        what = f"fault {self.kind!r} at t={self.time_ns}"
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {sorted(FAULT_KINDS)}")
        if not isinstance(self.time_ns, int) or self.time_ns < 0:
            raise ConfigurationError(
                f"{what}: time must be a non-negative integer ns")
        if not self.target or not isinstance(self.target, str):
            raise ConfigurationError(f"{what}: target must be a non-empty "
                                     f"string, got {self.target!r}")
        if self.duration_ns is not None:
            if self.kind not in RECOVERABLE_KINDS:
                raise ConfigurationError(
                    f"{what}: duration is only valid on "
                    f"{sorted(RECOVERABLE_KINDS)}")
            if self.duration_ns <= 0:
                raise ConfigurationError(
                    f"{what}: duration must be positive, "
                    f"got {self.duration_ns}")
        if self.kind == "link_flap" and self.duration_ns is None:
            raise ConfigurationError(
                f"{what}: link_flap requires a duration "
                "(use link_down for a permanent failure)")
        if self.kind == "corrupt":
            if self.rate is None:
                raise ConfigurationError(f"{what}: corrupt requires a rate")
            if not 0.0 <= self.rate <= 1.0:
                raise ConfigurationError(
                    f"{what}: rate must be in [0, 1], got {self.rate}")
        elif self.rate is not None:
            raise ConfigurationError(f"{what}: rate is only valid on corrupt")
        if self.kind == "reconfigure":
            if not self.weights:
                raise ConfigurationError(
                    f"{what}: reconfigure requires a weights list")
            for weight in self.weights:
                if isinstance(weight, bool) or not isinstance(
                        weight, (int, float)) or weight <= 0:
                    raise ConfigurationError(
                        f"{what}: weights must be positive numbers, "
                        f"got {self.weights}")
        elif self.weights is not None:
            raise ConfigurationError(
                f"{what}: weights is only valid on reconfigure")

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "FaultEvent":
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"fault event must be an object, got {spec!r}")
        unknown = set(spec) - _EVENT_KEYS
        if unknown:
            raise ConfigurationError(
                f"fault event has unknown keys {sorted(unknown)}")
        kind = spec.get("kind")
        context = f"fault {kind!r}" if kind else "fault event"
        time_ns = _time_field(spec, "time_ns", "time_ms", context)
        if time_ns is None:
            raise ConfigurationError(f"{context}: missing time_ns / time_ms")
        duration_ns = _time_field(spec, "duration_ns", "duration_ms",
                                  context)
        return cls(time_ns, str(kind), str(spec.get("target", "")),
                   duration_ns=duration_ns, rate=spec.get("rate"),
                   weights=spec.get("weights"))

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "time_ns": self.time_ns, "kind": self.kind,
            "target": self.target,
        }
        if self.duration_ns is not None:
            spec["duration_ns"] = self.duration_ns
        if self.rate is not None:
            spec["rate"] = self.rate
        if self.weights is not None:
            spec["weights"] = self.weights
        return spec

    @property
    def end_ns(self) -> int:
        """When the fault's effect ends (injection time if permanent)."""
        return self.time_ns + (self.duration_ns or 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" for {self.duration_ns}ns" if self.duration_ns else ""
        return (f"<FaultEvent t={self.time_ns} {self.kind} "
                f"{self.target}{extra}>")


#: Down-type kinds whose timed intervals share one piece of target
#: state: two overlapping intervals of the same family on the same
#: target would race their recoveries (the first ``link_up`` re-raises
#: a link the second flap still holds down), so schedules containing
#: them are rejected at load time instead of replaying silently.
_INTERVAL_FAMILIES = (
    frozenset({"link_down", "link_flap"}),
    frozenset({"stall"}),
    frozenset({"corrupt"}),
    frozenset({"host_crash"}),
)


def _check_overlaps(events: Sequence[FaultEvent]) -> None:
    """Reject overlapping timed down-intervals on the same target."""
    for family in _INTERVAL_FAMILIES:
        spans: Dict[str, FaultEvent] = {}
        timed = sorted((event for event in events
                        if event.kind in family
                        and event.duration_ns is not None),
                       key=lambda event: (event.time_ns, event.end_ns))
        for event in timed:
            previous = spans.get(event.target)
            if previous is not None and event.time_ns < previous.end_ns:
                raise ConfigurationError(
                    f"fault schedule: {event.kind!r} at t={event.time_ns} "
                    f"on {event.target!r} overlaps the {previous.kind!r} "
                    f"interval [{previous.time_ns}, {previous.end_ns}) "
                    "on the same target; stagger the intervals")
            spans[event.target] = event


class FaultSchedule:
    """An ordered collection of :class:`FaultEvent` entries."""

    def __init__(self, events: Sequence[FaultEvent],
                 name: str = "") -> None:
        self.name = name
        self.events: List[FaultEvent] = sorted(
            events, key=lambda event: event.time_ns)
        _check_overlaps(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def last_event_ns(self) -> int:
        """End time of the latest fault effect (0 for an empty schedule).

        Chaos runs use this to make sure the measured window covers the
        whole schedule including recoveries.
        """
        return max((event.end_ns for event in self.events), default=0)

    def validate_horizon(self, horizon_ns: int,
                         context: str = "scenario") -> None:
        """Reject events that inject (or recover) past ``horizon_ns``.

        A fault scheduled past the run's end silently no-ops — the
        schedule *looks* exercised but nothing ever fired.  Loaders that
        know their horizon (soak scenarios, fixed-duration runs) call
        this to fail loudly at load time instead.
        """
        for event in self.events:
            if event.time_ns > horizon_ns:
                raise ConfigurationError(
                    f"fault {event.kind!r} at t={event.time_ns} is "
                    f"past the {context} horizon ({horizon_ns} ns); "
                    "it would never fire")
            if event.end_ns > horizon_ns:
                raise ConfigurationError(
                    f"fault {event.kind!r} at t={event.time_ns} "
                    f"recovers at t={event.end_ns}, past the {context} "
                    f"horizon ({horizon_ns} ns); the recovery would "
                    "never fire")

    def to_dict(self) -> Dict[str, Any]:
        spec: Dict[str, Any] = {
            "events": [event.to_dict() for event in self.events]}
        if self.name:
            spec["name"] = self.name
        return spec

    @classmethod
    def from_dict(cls, spec: Any) -> "FaultSchedule":
        """Parse ``{"name": ..., "events": [...]}`` (or a bare list)."""
        if isinstance(spec, list):
            spec = {"events": spec}
        if not isinstance(spec, dict):
            raise ConfigurationError(
                f"fault schedule must be an object or list, got {spec!r}")
        unknown = set(spec) - {"name", "events"}
        if unknown:
            raise ConfigurationError(
                f"fault schedule has unknown keys {sorted(unknown)}")
        events_spec = spec.get("events")
        if not isinstance(events_spec, list):
            raise ConfigurationError(
                "fault schedule needs an 'events' list")
        events = [FaultEvent.from_dict(entry) for entry in events_spec]
        return cls(events, name=str(spec.get("name", "")))

    @classmethod
    def from_file(cls, path: PathLike) -> "FaultSchedule":
        """Load a JSON schedule file (the CLI's ``--faults`` argument)."""
        path = Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fault schedule {path}: {exc}") from exc
        try:
            spec = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault schedule {path} is not valid JSON: {exc}") from exc
        schedule = cls.from_dict(spec)
        if not schedule.name:
            schedule.name = path.stem
        return schedule
