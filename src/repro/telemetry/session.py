"""One run's telemetry wiring, bundled.

:class:`TelemetrySession` turns CLI-style options into a connected set
of collectors on one :class:`~repro.sim.trace.TraceBus`: a JSONL
:class:`~repro.telemetry.recorder.TraceRecorder`, a
:class:`~repro.telemetry.flight_recorder.FlightRecorder`, and a
:class:`~repro.telemetry.timeline.ThresholdTimeline`.  Experiment
runners pass ``session.trace`` into the topology builder and close the
session when the run ends; exiting the ``with`` block on a
:class:`~repro.sim.errors.SimulationError` dumps the flight recorder
before propagating.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Optional, Union

from ..sim.errors import SimulationError
from ..sim.trace import TraceBus
from .flight_recorder import ANOMALY_SIMULATION_ERROR, FlightRecorder
from .recorder import TraceRecorder
from .sinks import JsonlSink
from .timeline import ThresholdTimeline

PathLike = Union[str, Path]


class TelemetrySession:
    """Bundle of trace bus + optional recorder / flight recorder / timeline.

    All collectors are optional; with none requested the session is just
    a fresh (or caller-provided) bus and costs nothing.
    """

    def __init__(self, *, trace: Optional[TraceBus] = None,
                 trace_out: Optional[PathLike] = None,
                 topics: Optional[Iterable[str]] = None,
                 start_ns: Optional[int] = None,
                 end_ns: Optional[int] = None,
                 flight_dump: Optional[PathLike] = None,
                 flight_capacity: int = 512,
                 drop_burst_count: int = 32,
                 drop_burst_window_ns: int = 1_000_000,
                 timeline: bool = False) -> None:
        self.trace = trace if trace is not None else TraceBus()
        self.recorder: Optional[TraceRecorder] = None
        self.flight: Optional[FlightRecorder] = None
        self.timeline: Optional[ThresholdTimeline] = None
        if trace_out is not None:
            self.recorder = TraceRecorder(
                self.trace, JsonlSink(trace_out), topics=topics,
                start_ns=start_ns, end_ns=end_ns)
        if flight_dump is not None:
            self.flight = FlightRecorder(
                self.trace, capacity=flight_capacity,
                drop_burst_count=drop_burst_count,
                drop_burst_window_ns=drop_burst_window_ns,
                dump_path=flight_dump)
        if timeline:
            self.timeline = ThresholdTimeline(self.trace)
        self._closed = False

    @property
    def active(self) -> bool:
        """True when at least one collector is attached."""
        return any((self.recorder, self.flight, self.timeline))

    def close(self) -> None:
        """Detach every collector and flush sinks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self.recorder is not None:
            self.recorder.close()
        if self.flight is not None:
            self.flight.close()
        if self.timeline is not None:
            self.timeline.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        # A Ctrl-C mid-run is an anomaly worth a dump too: the last events
        # before the interrupt are exactly what a hung run's operator
        # wants to see.
        if (self.flight is not None
                and exc_type is not None
                and issubclass(exc_type, (SimulationError,
                                          KeyboardInterrupt))):
            self.flight.dump(ANOMALY_SIMULATION_ERROR)
        self.close()
