"""Flight recorder: last-N events per port, dumped on anomalies.

Aggregate counters tell you *that* something went wrong; the flight
recorder tells you *what happened just before*.  It keeps a bounded ring
buffer of normalised records per port (O(1) per event) and dumps the
pre-anomaly window when one of three triggers fires:

* **drop burst** — ``drop_burst_count`` drops on one port within
  ``drop_burst_window_ns`` of simulated time;
* **invariant violation** — DynaQ's ``sum(T_i)`` drifting from the value
  of the port's baseline snapshot (the ``sum(T) == B`` equality of
  paper §III-B);
* **simulation error** — wrap the run in :meth:`guard` and any
  :class:`~repro.sim.errors.SimulationError` dumps before re-raising.

A dump is a JSONL file whose first line is a ``telemetry.dump`` marker
record naming the anomaly; the rest is the ring content, oldest first.
Only the first anomaly per arm dumps (call :meth:`rearm` to re-enable),
so a drop storm produces one useful file instead of thousands.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from functools import partial
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple, Union

from ..sim.errors import SimulationError
from ..sim.trace import (
    ALL_TOPICS,
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_PACKET_DROP,
    TOPIC_THRESHOLD_CHANGE,
    TraceBus,
)
from .records import META_TOPIC_DUMP, normalize
from .sinks import JsonlSink

PathLike = Union[str, Path]

#: (reason, port, time_ns) triple describing one detected anomaly.
Anomaly = Tuple[str, str, int]

ANOMALY_DROP_BURST = "drop-burst"
ANOMALY_THRESHOLD_INVARIANT = "threshold-invariant"
ANOMALY_SIMULATION_ERROR = "simulation-error"


class FlightRecorder:
    """Bounded per-port event ring with anomaly-triggered dumps.

    Parameters
    ----------
    capacity:
        Events retained per port (the "last N" window).
    drop_burst_count / drop_burst_window_ns:
        Fire when ``count`` drops land on one port within ``window_ns``
        of simulated time.  ``count=0`` disables the trigger.
    dump_path:
        Where dumps are written.  ``None`` keeps dumps in memory only
        (``dump`` still returns the records).  Subsequent dumps after a
        :meth:`rearm` overwrite the file.
    check_threshold_invariant:
        Watch ``dynaq.threshold`` events for ``sum(T_i)`` drifting from
        the port's baseline snapshot.
    """

    def __init__(self, trace: TraceBus, *, capacity: int = 512,
                 topics: Optional[Iterable[str]] = None,
                 drop_burst_count: int = 32,
                 drop_burst_window_ns: int = 1_000_000,
                 dump_path: Optional[PathLike] = None,
                 check_threshold_invariant: bool = True) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._trace = trace
        self.capacity = capacity
        self.drop_burst_count = drop_burst_count
        self.drop_burst_window_ns = drop_burst_window_ns
        self.dump_path = Path(dump_path) if dump_path is not None else None
        self.check_threshold_invariant = check_threshold_invariant

        # Plain dicts, not defaultdict(lambda): the recorder lives inside
        # the snapshotted object graph and default factories built from
        # lambdas cannot be pickled.
        self._rings: Dict[str, Deque[Dict[str, Any]]] = {}
        self._drop_times: Dict[str, Deque[int]] = {}
        self._baseline_sum: Dict[str, int] = {}
        self.anomalies: List[Anomaly] = []
        self.dumps_written: List[Path] = []
        self.events_seen = 0
        self._armed = True

        self._handlers: List[Tuple[str, Any]] = []
        for topic in (tuple(topics) if topics is not None else ALL_TOPICS):
            handler = partial(self._handle, topic)
            trace.subscribe(topic, handler)
            self._handlers.append((topic, handler))

    # -- event path -----------------------------------------------------------

    def _handle(self, topic: str, **payload: Any) -> None:
        self._on_event(topic, payload)

    def _on_event(self, topic: str, payload: Dict[str, Any]) -> None:
        record = normalize(topic, payload)
        port = record["port"]
        time_ns = record["time_ns"]
        ring = self._rings.get(port)
        if ring is None:
            ring = self._rings[port] = deque(maxlen=self.capacity)
        ring.append(record)
        self.events_seen += 1
        if topic == TOPIC_PACKET_DROP and self.drop_burst_count > 0:
            times = self._drop_times.get(port)
            if times is None:
                times = self._drop_times[port] = deque(
                    maxlen=max(self.drop_burst_count, 1))
            times.append(time_ns)
            if (len(times) == self.drop_burst_count
                    and time_ns - times[0] <= self.drop_burst_window_ns):
                times.clear()  # one anomaly per burst, not per drop
                self._anomaly(ANOMALY_DROP_BURST, port, time_ns)
        elif (topic in (TOPIC_THRESHOLD_CHANGE, TOPIC_DYNAQ_RECONFIGURE)
                and self.check_threshold_invariant):
            thresholds = record.get("threshold")
            if thresholds:
                total = sum(thresholds)
                baseline = self._baseline_sum.setdefault(port, total)
                if total != baseline:
                    self._anomaly(ANOMALY_THRESHOLD_INVARIANT, port, time_ns)

    def _anomaly(self, reason: str, port: str, time_ns: int) -> None:
        self.anomalies.append((reason, port, time_ns))
        if self._armed:
            self._armed = False
            self.dump(reason, port=port, time_ns=time_ns)

    # -- dumping --------------------------------------------------------------

    def dump(self, reason: str, *, port: Optional[str] = None,
             time_ns: Optional[int] = None) -> List[Dict[str, Any]]:
        """Dump the ring (one port's, or all ports merged by time).

        Returns the dumped records (marker first); also writes them to
        :attr:`dump_path` when one was configured.
        """
        if port is not None and port in self._rings:
            window = list(self._rings[port])
        else:
            merged: List[Dict[str, Any]] = []
            for ring in self._rings.values():
                merged.extend(ring)
            merged.sort(key=lambda rec: rec["time_ns"])
            window = merged
        marker = {
            "time_ns": int(time_ns if time_ns is not None
                           else (window[-1]["time_ns"] if window else 0)),
            "topic": META_TOPIC_DUMP,
            "port": port or "",
            "queue": None,
            "flow": None,
            "detail": reason,
            "queue_bytes": None,
            "threshold": None,
        }
        records = [marker] + window
        if self.dump_path is not None:
            with JsonlSink(self.dump_path) as sink:
                for record in records:
                    sink.write(record)
            self.dumps_written.append(self.dump_path)
        return records

    def rearm(self) -> None:
        """Allow the next anomaly to dump again."""
        self._armed = True

    @contextmanager
    def guard(self):
        """Context manager: dump on :class:`SimulationError`, re-raise."""
        try:
            yield self
        except SimulationError:
            self._anomaly(ANOMALY_SIMULATION_ERROR, "", 0)
            raise

    # -- introspection --------------------------------------------------------

    def ring(self, port: str) -> List[Dict[str, Any]]:
        """Snapshot of one port's retained events, oldest first."""
        return list(self._rings.get(port, ()))

    def ports(self) -> List[str]:
        return sorted(self._rings)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent)."""
        for topic, handler in self._handlers:
            self._trace.unsubscribe(topic, handler)
        self._handlers.clear()

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
