"""Structured event trace: bus subscriber streaming typed records.

:class:`TraceRecorder` subscribes to the well-known topics of a
:class:`~repro.sim.trace.TraceBus`, normalises every event through
:func:`~repro.telemetry.records.normalize`, and hands the records to a
sink (usually a :class:`~repro.telemetry.sinks.JsonlSink`).  Per-topic
filters and an optional simulated-time window keep trace files small on
long runs.

Typical use::

    trace = TraceBus()
    with TraceRecorder(trace, JsonlSink("run.jsonl")) as recorder:
        net = build_star(..., trace=trace)
        ...
        net.sim.run(until=...)
    print(recorder.records_written)
"""

from __future__ import annotations

from functools import partial
from typing import Any, Iterable, List, Optional, Tuple

from ..sim.trace import ALL_TOPICS, TOPIC_SNAPSHOT_LIFECYCLE, TraceBus
from .records import normalize

#: What a recorder subscribes to when no topics are named.  Everything
#: except ``snapshot.lifecycle``: save events carry the snapshot path
#: and a restored invocation performs no saves of its own, so recording
#: them by default would break the byte-identity of killed+restored
#: traces against uninterrupted runs (the snapshot-smoke guarantee).
#: Name the topic in ``--trace-topics`` to opt in.
DEFAULT_TOPICS = tuple(topic for topic in ALL_TOPICS
                       if topic != TOPIC_SNAPSHOT_LIFECYCLE)


class TraceRecorder:
    """Subscribes to trace topics and streams typed records to a sink.

    Parameters
    ----------
    topics:
        Topics to record; defaults to :data:`DEFAULT_TOPICS` (every
        well-known topic except ``snapshot.lifecycle``).  Unknown names
        raise ``ValueError`` so a typo'd ``--trace-topics`` fails
        loudly instead of silently recording nothing.
    start_ns / end_ns:
        Optional inclusive simulated-time window; events outside it are
        counted in :attr:`records_skipped` but not written.
    """

    def __init__(self, trace: TraceBus, sink, *,
                 topics: Optional[Iterable[str]] = None,
                 start_ns: Optional[int] = None,
                 end_ns: Optional[int] = None) -> None:
        selected = tuple(topics) if topics is not None else DEFAULT_TOPICS
        unknown = [name for name in selected if name not in ALL_TOPICS]
        if unknown:
            raise ValueError(
                f"unknown trace topics {unknown}; known: {list(ALL_TOPICS)}")
        self._trace = trace
        self._sink = sink
        self.topics = selected
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.records_written = 0
        self.records_skipped = 0
        self._handlers: List[Tuple[str, Any]] = []
        for topic in selected:
            handler = partial(self._on_event, topic)
            trace.subscribe(topic, handler)
            self._handlers.append((topic, handler))
        self._closed = False

    # -- event path -----------------------------------------------------------

    def _on_event(self, topic: str, **payload: Any) -> None:
        time_ns = payload.get("time", 0)
        if ((self.start_ns is not None and time_ns < self.start_ns)
                or (self.end_ns is not None and time_ns > self.end_ns)):
            self.records_skipped += 1
            return
        self._sink.write(normalize(topic, payload))
        self.records_written += 1

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Unsubscribe from the bus and close the sink (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for topic, handler in self._handlers:
            self._trace.unsubscribe(topic, handler)
        self._handlers.clear()
        self._sink.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
