"""Simulation telemetry: structured traces, flight recorder, profiler.

Layered on :class:`repro.sim.trace.TraceBus`; see
``docs/observability.md`` for the topic table and usage recipes.
"""

from .flight_recorder import (
    ANOMALY_DROP_BURST,
    ANOMALY_SIMULATION_ERROR,
    ANOMALY_THRESHOLD_INVARIANT,
    FlightRecorder,
)
from .profiler import CallbackStats, RunProfiler
from .recorder import DEFAULT_TOPICS, TraceRecorder
from .records import (
    META_TOPIC_DUMP,
    OPTIONAL_FIELDS,
    RECORD_FIELDS,
    REQUIRED_TOPIC_FIELDS,
    normalize,
    validate_record,
    validate_trace_file,
)
from .session import TelemetrySession
from .sinks import JsonlSink, MemorySink
from .timeline import ThresholdTimeline

__all__ = [
    "ANOMALY_DROP_BURST",
    "ANOMALY_SIMULATION_ERROR",
    "ANOMALY_THRESHOLD_INVARIANT",
    "CallbackStats",
    "DEFAULT_TOPICS",
    "FlightRecorder",
    "JsonlSink",
    "META_TOPIC_DUMP",
    "MemorySink",
    "OPTIONAL_FIELDS",
    "RECORD_FIELDS",
    "REQUIRED_TOPIC_FIELDS",
    "RunProfiler",
    "TelemetrySession",
    "ThresholdTimeline",
    "TraceRecorder",
    "normalize",
    "validate_record",
    "validate_trace_file",
]
