"""Typed trace records and the JSONL trace-file schema.

Every event the :class:`~repro.sim.trace.TraceBus` carries is normalised
into one flat, JSON-serialisable record so traces from different publish
sites line up column-wise:

========== ======================= =====================================
field      type                    meaning
========== ======================= =====================================
time_ns    int                     simulated time of the event
topic      str                     well-known topic (``packet.drop`` ...)
port       str                     egress port name (may be ``""``)
queue      int or null             service-queue index
flow       int or null             flow id of the packet involved
detail     str                     free-form qualifier (drop reason, ...)
queue_bytes list[int] or null      per-queue occupancy after the event
threshold  list[int] or null       DynaQ ``T_i`` after the event
========== ======================= =====================================

DynaQ events additionally carry ``victim`` / ``gainer`` / ``size``
(``victim == gainer == -1`` marks the (re)initialisation baseline, which
also carries ``satisfaction``).  ``snapshot.lifecycle`` events carry
``path`` / ``saves``; ``diagnosis.snapshot`` events carry ``occupancy``
/ ``limit`` / ``composition`` (flow-id -> buffered bytes, string keys
because the record is JSON).  :func:`validate_record` checks one record
against this schema — including the per-topic required fields of
:data:`REQUIRED_TOPIC_FIELDS` — and :func:`validate_trace_file`
schema-checks a whole JSONL file (the ``repro trace-validate``
subcommand).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..sim.trace import (
    ALL_TOPICS,
    TOPIC_COMPETITIVE_ROUND,
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_PARALLEL_JOB,
    TOPIC_QUEUE_SNAPSHOT,
    TOPIC_SERVE_JOB,
    TOPIC_SNAPSHOT_LIFECYCLE,
    TOPIC_SOAK_CASE,
    TOPIC_THRESHOLD_CHANGE,
    TOPIC_VICTIM_STEAL,
)

PathLike = Union[str, Path]

#: Marker topic used by the flight recorder's dump files: the first line
#: of a dump names the anomaly; the remaining lines are ordinary records.
META_TOPIC_DUMP = "telemetry.dump"

#: Topics a schema-valid trace file may contain.
KNOWN_TOPICS = frozenset(ALL_TOPICS) | {META_TOPIC_DUMP}

#: The fixed record columns, in canonical order.
RECORD_FIELDS = ("time_ns", "topic", "port", "queue", "flow", "detail",
                 "queue_bytes", "threshold")

#: Extra columns only some topics carry (DynaQ moves, snapshot
#: lifecycle, diagnosis snapshots).
OPTIONAL_FIELDS = ("victim", "gainer", "size", "satisfaction",
                   "path", "saves", "occupancy", "limit", "composition")

#: Per-topic payload contract: these fields must be present and
#: non-empty for the record to validate.  Generic fields alone used to
#: let malformed ``parallel.job`` / ``dynaq.reconfigure`` payloads slip
#: through ``repro trace-validate``.
REQUIRED_TOPIC_FIELDS = {
    TOPIC_DYNAQ_RECONFIGURE: ("threshold", "satisfaction"),
    TOPIC_PARALLEL_JOB: ("detail",),
    TOPIC_SERVE_JOB: ("detail",),
    TOPIC_COMPETITIVE_ROUND: ("detail",),
    TOPIC_SOAK_CASE: ("detail",),
    TOPIC_SNAPSHOT_LIFECYCLE: ("detail", "path"),
    TOPIC_QUEUE_SNAPSHOT: ("queue", "detail", "composition"),
}


def normalize(topic: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten one bus publish into the typed record above.

    ``payload`` is the kwargs dict a publish site handed to the bus; the
    per-topic shapes are documented in ``docs/observability.md``.
    Unknown topics fall through to a generic mapping so ad-hoc probe
    topics still produce parseable records.
    """
    record: Dict[str, Any] = {
        "time_ns": int(payload.get("time", 0)),
        "topic": topic,
        "port": str(payload.get("port", "")),
        "queue": None,
        "flow": None,
        "detail": str(payload.get("detail", "")),
        "queue_bytes": None,
        "threshold": None,
    }
    packet = payload.get("packet")
    if packet is not None:
        record["flow"] = getattr(packet, "flow_id", None)
    if "queue" in payload:
        record["queue"] = payload["queue"]
    if payload.get("queue_bytes") is not None:
        record["queue_bytes"] = list(payload["queue_bytes"])
    if topic == TOPIC_DYNAQ_RECONFIGURE:
        if payload.get("thresholds") is not None:
            record["threshold"] = list(payload["thresholds"])
        if payload.get("satisfaction") is not None:
            record["satisfaction"] = list(payload["satisfaction"])
        if not record["detail"]:
            record["detail"] = "reconfigure"
    elif topic in (TOPIC_THRESHOLD_CHANGE, TOPIC_VICTIM_STEAL):
        victim = payload.get("victim", -1)
        gainer = payload.get("gainer", -1)
        size = payload.get("size", 0)
        record["victim"] = victim
        record["gainer"] = gainer
        record["size"] = size
        record["queue"] = gainer if gainer >= 0 else None
        if payload.get("thresholds") is not None:
            record["threshold"] = list(payload["thresholds"])
        if payload.get("satisfaction") is not None:
            record["satisfaction"] = list(payload["satisfaction"])
        if not record["detail"]:
            if victim < 0:
                record["detail"] = "init"
            else:
                record["detail"] = f"q{gainer} took {size}B from q{victim}"
    elif topic == TOPIC_SNAPSHOT_LIFECYCLE:
        record["path"] = str(payload.get("path", ""))
        record["saves"] = int(payload.get("saves", 0))
    elif topic == TOPIC_QUEUE_SNAPSHOT:
        if payload.get("occupancy") is not None:
            record["occupancy"] = int(payload["occupancy"])
        if payload.get("limit") is not None:
            record["limit"] = int(payload["limit"])
        if payload.get("composition") is not None:
            record["composition"] = {
                str(flow): size
                for flow, size in payload["composition"].items()}
    elif "flow" in payload:
        record["flow"] = payload["flow"]
    return record


# -- schema checking ----------------------------------------------------------

def _is_int_list(value: Any) -> bool:
    return (isinstance(value, list)
            and all(isinstance(item, int) and not isinstance(item, bool)
                    for item in value))


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_composition(value: Any) -> bool:
    return (isinstance(value, dict)
            and all(isinstance(flow, str) and _is_int(size)
                    for flow, size in value.items()))


def validate_record(record: Any) -> List[str]:
    """Schema-check one parsed record; returns human-readable problems."""
    if not isinstance(record, dict):
        return [f"record is not an object: {record!r}"]
    errors: List[str] = []
    for field in RECORD_FIELDS:
        if field not in record:
            errors.append(f"missing field {field!r}")
    unknown = set(record) - set(RECORD_FIELDS) - set(OPTIONAL_FIELDS)
    if unknown:
        errors.append(f"unknown fields {sorted(unknown)}")
    if errors:
        return errors
    if not _is_int(record["time_ns"]) or record["time_ns"] < 0:
        errors.append(f"time_ns must be a non-negative int, "
                      f"got {record['time_ns']!r}")
    if record["topic"] not in KNOWN_TOPICS:
        errors.append(f"unknown topic {record['topic']!r}")
    if not isinstance(record["port"], str):
        errors.append(f"port must be a string, got {record['port']!r}")
    if not isinstance(record["detail"], str):
        errors.append(f"detail must be a string, got {record['detail']!r}")
    for field in ("queue", "flow"):
        value = record[field]
        if value is not None and not _is_int(value):
            errors.append(f"{field} must be an int or null, got {value!r}")
    for field in ("queue_bytes", "threshold"):
        value = record[field]
        if value is not None and not _is_int_list(value):
            errors.append(f"{field} must be a list of ints or null, "
                          f"got {value!r}")
    for field in ("victim", "gainer", "size"):
        if field in record and not _is_int(record[field]):
            errors.append(f"{field} must be an int, got {record[field]!r}")
    if "satisfaction" in record and not _is_int_list(record["satisfaction"]):
        errors.append(f"satisfaction must be a list of ints, "
                      f"got {record['satisfaction']!r}")
    if "path" in record and not isinstance(record["path"], str):
        errors.append(f"path must be a string, got {record['path']!r}")
    for field in ("saves", "occupancy", "limit"):
        if field in record and not _is_int(record[field]):
            errors.append(f"{field} must be an int, got {record[field]!r}")
    if "composition" in record and not _is_composition(record["composition"]):
        errors.append(f"composition must map flow-id strings to int "
                      f"bytes, got {record['composition']!r}")
    for field in REQUIRED_TOPIC_FIELDS.get(record["topic"], ()):
        value = record.get(field)
        if value is None or value == "":
            errors.append(f"{record['topic']} record must carry a "
                          f"non-empty {field!r}")
    return errors


def validate_trace_file(path: PathLike,
                        max_errors: int = 20) -> Tuple[int, List[str]]:
    """Schema-check a JSONL trace file.

    Returns ``(record_count, errors)``; an empty error list means the
    file is schema-valid.  Reporting stops after ``max_errors`` problems
    so a corrupt multi-gigabyte trace fails fast.  The cap is exact: a
    single record with many problems stops contributing mid-record, so
    the list never exceeds ``max_errors`` lines plus the truncation
    marker.
    """
    errors: List[str] = []
    count = 0
    with Path(path).open() as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            count += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"line {line_number}: invalid JSON ({exc})")
            else:
                for problem in validate_record(record):
                    if len(errors) >= max_errors:
                        break
                    errors.append(f"line {line_number}: {problem}")
            if len(errors) >= max_errors:
                errors.append("... (stopping after "
                              f"{max_errors} problems)")
                break
    return count, errors
