"""Threshold/steal timeline: DynaQ's queue evolution over time.

Collects ``dynaq.threshold`` and ``dynaq.steal`` events into

* per-queue ``T_i(t)`` series (plus the ``S_i`` satisfaction values from
  the baseline snapshot) — the data behind the paper's Fig. 4-style
  queue-evolution plots, and
* a **steal matrix** per port: how many bytes (and moves) queue *g*
  took from queue *v* over the run.

Exportable via :func:`repro.metrics.export.write_threshold_series_csv`
and :func:`~repro.metrics.export.write_steal_matrix_csv`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..sim.trace import TOPIC_THRESHOLD_CHANGE, TOPIC_VICTIM_STEAL, TraceBus

#: One timeline point: (time_ns, per-queue values).
Point = Tuple[int, Tuple[int, ...]]


class ThresholdTimeline:
    """Per-port T_i(t)/S_i series and who-stole-from-whom accounting."""

    def __init__(self, trace: TraceBus) -> None:
        self._trace = trace
        self._series: Dict[str, List[Point]] = defaultdict(list)
        self._satisfaction: Dict[str, Tuple[int, ...]] = {}
        # Plain dict-of-dicts: nested defaultdict(lambda) factories are
        # unpicklable and the timeline rides inside simulation snapshots.
        self._steal_bytes: Dict[str, Dict[Tuple[int, int], int]] = {}
        self._steal_moves: Dict[str, Dict[Tuple[int, int], int]] = {}
        trace.subscribe(TOPIC_THRESHOLD_CHANGE, self._on_threshold)
        trace.subscribe(TOPIC_VICTIM_STEAL, self._on_steal)

    # -- event path -----------------------------------------------------------

    def _on_threshold(self, *, port: str, time: int, victim: int,
                      gainer: int, size: int, thresholds,
                      satisfaction=None, **_ignored) -> None:
        self._series[port].append((time, tuple(thresholds)))
        if satisfaction is not None:
            self._satisfaction[port] = tuple(satisfaction)

    def _on_steal(self, *, port: str, time: int, victim: int, gainer: int,
                  size: int, **_ignored) -> None:
        pair = (victim, gainer)
        stolen = self._steal_bytes.setdefault(port, {})
        stolen[pair] = stolen.get(pair, 0) + size
        moves = self._steal_moves.setdefault(port, {})
        moves[pair] = moves.get(pair, 0) + 1

    # -- series ---------------------------------------------------------------

    def ports(self) -> List[str]:
        return sorted(set(self._series) | set(self._steal_bytes))

    def num_queues(self, port: str) -> int:
        series = self._series.get(port)
        return len(series[0][1]) if series else 0

    def series(self, port: str) -> List[Point]:
        """All ``(time_ns, (T_0..T_{M-1}))`` points for a port."""
        return list(self._series.get(port, ()))

    def threshold_series(self, port: str, queue: int) -> List[Tuple[int, int]]:
        """``T_queue(t)`` as ``(time_ns, threshold_bytes)`` pairs."""
        return [(time, values[queue])
                for time, values in self._series.get(port, ())]

    def satisfaction(self, port: str) -> Optional[Tuple[int, ...]]:
        """The port's ``S_i`` values (from the baseline snapshot)."""
        return self._satisfaction.get(port)

    # -- steal accounting -----------------------------------------------------

    def steal_matrix(self, port: str) -> List[List[int]]:
        """Bytes stolen, indexed ``[victim][gainer]``."""
        size = self.num_queues(port)
        if not size:
            pairs = self._steal_bytes.get(port, {})
            size = 1 + max((max(pair) for pair in pairs), default=-1)
        matrix = [[0] * size for _ in range(size)]
        for (victim, gainer), stolen in self._steal_bytes.get(port,
                                                              {}).items():
            matrix[victim][gainer] = stolen
        return matrix

    def steal_moves(self, port: str,
                    victim: Optional[int] = None,
                    gainer: Optional[int] = None) -> int:
        """Number of threshold moves, optionally filtered by endpoint."""
        total = 0
        for (from_q, to_q), count in self._steal_moves.get(port, {}).items():
            if victim is not None and from_q != victim:
                continue
            if gainer is not None and to_q != gainer:
                continue
            total += count
        return total

    def total_stolen_bytes(self, port: str) -> int:
        return sum(self._steal_bytes.get(port, {}).values())

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        self._trace.unsubscribe(TOPIC_THRESHOLD_CHANGE, self._on_threshold)
        self._trace.unsubscribe(TOPIC_VICTIM_STEAL, self._on_steal)
