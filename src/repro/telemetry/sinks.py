"""Record sinks: where normalised trace records go.

A sink is anything with ``write(record: dict)`` and ``close()``.  The two
stdlib implementations cover the practical cases: stream to a JSONL file
(:class:`JsonlSink`) or keep records in memory for tests and interactive
analysis (:class:`MemorySink`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

PathLike = Union[str, Path]


class JsonlSink:
    """Streams records to a JSON-lines file, one object per line.

    Keys are sorted so files diff cleanly; the file is created eagerly so
    a bad path fails at construction, not mid-run.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w")
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemorySink:
    """Collects records in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)
