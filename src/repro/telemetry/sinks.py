"""Record sinks: where normalised trace records go.

A sink is anything with ``write(record: dict)`` and ``close()``.  The two
stdlib implementations cover the practical cases: stream to a JSONL file
(:class:`JsonlSink`) or keep records in memory for tests and interactive
analysis (:class:`MemorySink`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

PathLike = Union[str, Path]


class JsonlSink:
    """Streams records to a JSON-lines file, one object per line.

    Keys are sorted so files diff cleanly; the file is created eagerly so
    a bad path fails at construction, not mid-run.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w")
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True))
        self._handle.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    # -- snapshot support ------------------------------------------------------
    #
    # A sink inside a snapshotted object graph records its byte offset at
    # save time; on restore it truncates the file back to that offset so
    # the resumed run rewrites exactly the post-snapshot suffix and the
    # finished file is byte-identical to an uninterrupted run's.

    def __getstate__(self) -> Dict[str, Any]:
        offset = None
        if not self._handle.closed:
            self._handle.flush()
            offset = self._handle.tell()
        return {"path": self.path, "records_written": self.records_written,
                "offset": offset}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.records_written = state["records_written"]
        offset = state["offset"]
        if offset is not None and self.path.exists():
            self._handle = self.path.open("r+")
            self._handle.truncate(offset)
            self._handle.seek(offset)
        else:
            # Sink was closed at save time, or the file vanished: reopen
            # (fresh if missing) and immediately match the closed state.
            self._handle = self.path.open("a" if offset is None else "w")
            if offset is None:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemorySink:
    """Collects records in a list (tests, notebooks)."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def write(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self.records)
