"""Run profiler: where does simulator wall-clock time go?

:class:`RunProfiler` hooks the :class:`~repro.sim.engine.Simulator` loop
(``sim.profiler = profiler`` — :meth:`attach` does this) and measures

* events/second of wall time,
* callback time bucketed by ``callback.__qualname__``,
* the heap-depth high-water mark (sampled after every event, so exact to
  within the pushes of a single callback),
* the cancelled-event ratio (cancelled / scheduled).

This is the measurement baseline for hot-path optimisation work: run
``repro profile <scenario>`` before and after a change and compare the
per-callback table.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim.engine import Simulator


class CallbackStats:
    """Aggregated wall-clock cost of one callback qualname."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    @property
    def mean_us(self) -> float:
        return self.total_s / self.count * 1e6 if self.count else 0.0


class RunProfiler:
    """Collects per-callback timing and loop statistics for one run."""

    def __init__(self) -> None:
        self.callbacks: Dict[str, CallbackStats] = {}
        self.events = 0
        self.heap_high_water = 0
        self._first_ts: Optional[float] = None
        self._last_ts: Optional[float] = None
        self._sim: Optional[Simulator] = None

    # -- wiring ---------------------------------------------------------------

    def attach(self, sim: Simulator) -> "RunProfiler":
        """Install on a simulator; returns self for chaining."""
        sim.profiler = self
        self._sim = sim
        return self

    def detach(self) -> None:
        if self._sim is not None and self._sim.profiler is self:
            self._sim.profiler = None

    # -- hot path (called by Simulator.run) -----------------------------------

    def record(self, callback: Callable[..., Any], elapsed_s: float,
               heap_len: int) -> None:
        name = getattr(callback, "__qualname__", None) or repr(callback)
        stats = self.callbacks.get(name)
        if stats is None:
            stats = self.callbacks[name] = CallbackStats()
        stats.count += 1
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s
        self.events += 1
        if heap_len > self.heap_high_water:
            self.heap_high_water = heap_len
        now = perf_counter()
        if self._first_ts is None:
            self._first_ts = now - elapsed_s
        self._last_ts = now

    # -- results --------------------------------------------------------------

    @property
    def wall_s(self) -> float:
        """Wall-clock span from the first to the last profiled event."""
        if self._first_ts is None or self._last_ts is None:
            return 0.0
        return self._last_ts - self._first_ts

    @property
    def callback_s(self) -> float:
        """Total time spent inside event callbacks."""
        return sum(stats.total_s for stats in self.callbacks.values())

    @property
    def events_per_sec(self) -> float:
        wall = self.wall_s
        return self.events / wall if wall > 0 else 0.0

    @property
    def cancelled_ratio(self) -> float:
        """Cancelled events / scheduled events (wasted heap traffic)."""
        if self._sim is None or self._sim.events_scheduled == 0:
            return 0.0
        return self._sim.events_cancelled / self._sim.events_scheduled

    def top_callbacks(self, limit: int = 12
                      ) -> List[Tuple[str, CallbackStats]]:
        """Heaviest callbacks by total wall time, descending."""
        ranked = sorted(self.callbacks.items(),
                        key=lambda item: item[1].total_s, reverse=True)
        return ranked[:limit]

    def summary(self) -> Dict[str, Any]:
        """Flat summary dict (for reports and JSON export)."""
        return {
            "events": self.events,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "callback_s": self.callback_s,
            "heap_high_water": self.heap_high_water,
            "cancelled_ratio": self.cancelled_ratio,
            "events_scheduled": (self._sim.events_scheduled
                                 if self._sim is not None else 0),
            "events_cancelled": (self._sim.events_cancelled
                                 if self._sim is not None else 0),
            "sim_time_ns": self._sim.now if self._sim is not None else 0,
        }
