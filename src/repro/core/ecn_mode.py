"""DynaQ's ECN support mode (paper §III-B3, "ECN Support").

ECN-based transports are generic transports too, so DynaQ must coexist
with them.  Rather than invent a new marking rule, the paper adopts PMSB's
double condition: when ECN is enabled on the switch, DynaQ *does not
adjust dropping thresholds* and instead CE-marks a packet when the port
occupancy exceeds ``K = C * RTT * lambda`` **and** the arriving packet's
queue exceeds ``K_i = (w_i / sum(w)) * C * RTT * lambda``.

:class:`DynaQECNBuffer` therefore composes the PMSB marking logic with
DynaQ's identity; it reports drops/marks under the DynaQ name so the
Fig. 9 harness can compare it against TCN/PMSB/Per-Queue ECN directly.
"""

from __future__ import annotations

from ..queueing.perqueue_ecn import DEFAULT_LAMBDA
from ..queueing.pmsb import PMSBBuffer


class DynaQECNBuffer(PMSBBuffer):
    """DynaQ with switch-side ECN enabled (PMSB-style marking)."""

    name = "DynaQ-ECN"

    def __init__(self, rtt_ns: int,
                 coefficient: float = DEFAULT_LAMBDA) -> None:
        super().__init__(rtt_ns=rtt_ns, coefficient=coefficient)
