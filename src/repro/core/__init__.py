"""DynaQ — the paper's contribution: dynamic drop-threshold queue isolation."""

from .dynaq import DynaQBuffer
from .ecn_mode import DynaQECNBuffer
from .eviction import DynaQEvictBuffer
from .hardware import CycleBudget, algorithm1_cycles, cost_table, relative_overhead
from .thresholds import (
    extra_buffer,
    initial_thresholds,
    normalized_weights,
    satisfaction_thresholds,
    weighted_bdp,
)
from .victim import linear_victim, max_idx, tournament_depth, tournament_victim

__all__ = [
    "DynaQBuffer",
    "DynaQECNBuffer",
    "DynaQEvictBuffer",
    "CycleBudget",
    "algorithm1_cycles",
    "cost_table",
    "relative_overhead",
    "extra_buffer",
    "initial_thresholds",
    "normalized_weights",
    "satisfaction_thresholds",
    "weighted_bdp",
    "linear_victim",
    "max_idx",
    "tournament_depth",
    "tournament_victim",
]
