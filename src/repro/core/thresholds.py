"""Threshold arithmetic for DynaQ (paper §III-B2, Eqs. 1-3).

Three quantities per service queue *i*:

* **initial dropping threshold** ``T_i_init = B * w_i / sum(w)``   (Eq. 1)
* **satisfaction threshold**     ``S_i     = B * w_i / sum(w)``   (Eq. 3)
* **extra buffer**               ``T_i_ex  = T_i - S_i``          (Eq. 2)

The paper first derives that ``S_i`` must exceed the weighted BDP
``WBDP_i = C * RTT * w_i / sum(w)`` to absorb threshold fluctuation, then
picks the buffer-proportional value of Eq. 3 because modern line-rate
switches provision ``B > BDP`` per port, which makes ``S_i > WBDP_i``
automatic.  We keep ``weighted_bdp`` around for the ablation that compares
the two choices (EXPERIMENTS.md, "S_i = WBDP_i" ablation).
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.errors import ConfigurationError
from ..sim.units import SECOND


def normalized_weights(weights: Sequence[float]) -> List[float]:
    """Return ``w_i / sum(w)`` for each queue.

    Zero, negative, or all-zero weights raise
    :class:`~repro.sim.errors.ConfigurationError` (a ``ValueError``) here,
    at configuration time, instead of dividing by zero at the first
    enqueue admission check.
    """
    weight_list = list(weights)
    if not weight_list:
        raise ConfigurationError("weights must be non-empty")
    if any(weight < 0 for weight in weight_list):
        raise ConfigurationError(
            f"weights must be non-negative: {weight_list}")
    total = sum(weight_list)
    if total <= 0:
        raise ConfigurationError(
            f"weights must sum to a positive value: {weight_list}")
    return [weight / total for weight in weight_list]


def initial_thresholds(buffer_bytes: int,
                       weights: Sequence[float]) -> List[int]:
    """Eq. 1: split the port buffer across queues in proportion to weight.

    Integer-valued; any rounding remainder is handed to the last queue so
    the invariant ``sum(T) == B`` holds exactly from the start.
    """
    fractions = normalized_weights(weights)
    thresholds = [int(buffer_bytes * fraction) for fraction in fractions]
    thresholds[-1] += buffer_bytes - sum(thresholds)
    return thresholds


def satisfaction_thresholds(buffer_bytes: int,
                            weights: Sequence[float]) -> List[int]:
    """Eq. 3: ``S_i = B * w_i / sum(w)``."""
    fractions = normalized_weights(weights)
    return [int(buffer_bytes * fraction) for fraction in fractions]


def weighted_bdp(link_rate_bps: int, rtt_ns: int,
                 weights: Sequence[float]) -> List[int]:
    """``WBDP_i = C * RTT * w_i / sum(w)`` in bytes (paper §II-A).

    The minimum buffer queue *i* needs to saturate its weighted share of
    the bottleneck.  Used by the satisfaction-threshold ablation.
    """
    bdp_bytes = link_rate_bps * rtt_ns // (8 * SECOND)
    fractions = normalized_weights(weights)
    return [int(bdp_bytes * fraction) for fraction in fractions]


def extra_buffer(thresholds: Sequence[int],
                 satisfaction: Sequence[int]) -> List[int]:
    """Eq. 2: per-queue extra buffer ``T_i - S_i`` (may be negative)."""
    if len(thresholds) != len(satisfaction):
        raise ValueError("thresholds and satisfaction lengths differ")
    return [t - s for t, s in zip(thresholds, satisfaction)]
