"""Hardware cost model for DynaQ (paper §IV-A).

The paper argues DynaQ is cheap in a switching ASIC by counting clock
cycles through Algorithm 1 in the worst case (threshold adjustment path):

* line 1 (threshold comparison)                  — 1 cycle
* line 2 (victim tournament, ``log2(M)`` deep)   — 3 cycles for M = 8
* line 3 (protection checks; the two comparisons
  of the ``&&`` term pipeline with line 2, the
  ``||`` then costs the dependent pair)          — 2 cycles
* lines 6-7 (threshold exchange; no read/write
  dependency, so both writes pipeline)           — 1 cycle

Total: ``1 + log2(M) + 2 + 1`` = **7 cycles** on an 8-queue port.  Against
a Broadcom Trident 3 minimum per-packet processing delay of 800 ns at
1 GHz (800 cycles), the relative overhead is 7/800 = **0.88 %**.

This module recomputes that arithmetic from the same assumptions, so the
§IV-A numbers appear in the benchmark output as a reproducible "table".
"""

from __future__ import annotations

from dataclasses import dataclass

from .victim import tournament_depth

# Reference ASIC figures used in the paper's §IV-A.
TRIDENT3_CLOCK_GHZ = 1.0
TRIDENT3_MIN_PACKET_DELAY_NS = 800
COMMODITY_QUEUE_COUNTS = (4, 8)


@dataclass(frozen=True)
class CycleBudget:
    """Per-line clock-cycle costs of Algorithm 1 in the worst case."""

    threshold_check: int     # line 1
    victim_search: int       # line 2
    protection_check: int    # line 3
    threshold_exchange: int  # lines 6-7

    @property
    def total(self) -> int:
        return (self.threshold_check + self.victim_search
                + self.protection_check + self.threshold_exchange)


def algorithm1_cycles(num_queues: int) -> CycleBudget:
    """Worst-case cycle budget of Algorithm 1 for an ``num_queues`` port."""
    if num_queues < 1:
        raise ValueError("a port needs at least one queue")
    return CycleBudget(
        threshold_check=1,
        victim_search=tournament_depth(num_queues),
        protection_check=2,
        threshold_exchange=1,
    )


def relative_overhead(num_queues: int,
                      packet_delay_ns: float = TRIDENT3_MIN_PACKET_DELAY_NS,
                      clock_ghz: float = TRIDENT3_CLOCK_GHZ) -> float:
    """DynaQ cycles as a fraction of the ASIC's per-packet budget.

    With the paper's defaults this returns 7 / 800 = 0.00875 (quoted as
    "only 0.88 %").
    """
    if packet_delay_ns <= 0 or clock_ghz <= 0:
        raise ValueError("packet delay and clock must be positive")
    budget_cycles = packet_delay_ns * clock_ghz
    return algorithm1_cycles(num_queues).total / budget_cycles


def cost_table() -> list:
    """Rows of (queues, cycles line-by-line, total, Trident-3 overhead %).

    The §IV-A summary as data, consumed by ``benchmarks/test_hw_cost.py``.
    """
    rows = []
    for queues in COMMODITY_QUEUE_COUNTS:
        budget = algorithm1_cycles(queues)
        rows.append({
            "queues": queues,
            "line1_cycles": budget.threshold_check,
            "line2_cycles": budget.victim_search,
            "line3_cycles": budget.protection_check,
            "lines6_7_cycles": budget.threshold_exchange,
            "total_cycles": budget.total,
            "trident3_overhead_pct": 100 * relative_overhead(queues),
        })
    return rows
