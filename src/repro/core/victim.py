"""Victim-queue selection (paper §III-B2).

The victim is the queue — other than the arriving packet's queue — with the
largest *extra buffer* ``T_i - S_i``.  Three interchangeable implementations:

* :func:`linear_victim` — straightforward argmax; the reference semantics.
* :func:`tournament_victim` — the loop-free binary ``MaxIdx`` tournament the
  paper describes for switching ASICs, where loop instructions are
  forbidden and the comparison tree costs ``O(log M)`` pipeline stages
  (3 cycles for the 8 queues of a commodity switch).
* :class:`IncrementalVictim` — a software fast path that maintains the
  top-2 argmax under single-queue point updates, so the per-arrival
  victim query is O(1) instead of an O(M) rescan (the simulator's
  analogue of keeping the comparator tree's result registers warm).

All resolve ties toward the lower queue index, and the test suite proves
them equivalent by exhaustion and by property testing
(``tests/test_perf_equivalence.py``, ``tests/test_victim.py``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sim.trace import TOPIC_VICTIM_STEAL, TraceBus


def linear_victim(extra: Sequence[int],
                  exclude: Optional[int] = None) -> Optional[int]:
    """Index of the largest extra buffer, skipping ``exclude``.

    Returns ``None`` when every queue is excluded (i.e. a single-queue
    port, where DynaQ degenerates to tail drop).  The first candidate
    seeds the running best unconditionally, so all-negative and
    mixed-sign ``extra`` vectors (every queue over threshold, or a mix)
    still yield the true argmax rather than favouring a sentinel value —
    ``tests/test_victim.py`` pins this down.
    """
    best_index: Optional[int] = None
    best_value = None
    for index, value in enumerate(extra):
        if index == exclude:
            continue
        if best_value is None or value > best_value:
            best_index = index
            best_value = value
    return best_index


def max_idx(extra: Sequence[int], left: int, right: int) -> int:
    """The paper's ``MaxIdx`` primitive: index of the larger of two queues.

    Ties go to the left operand, which combined with the tournament order
    below reproduces linear argmax's lowest-index tie-breaking.
    """
    return left if extra[left] >= extra[right] else right


def tournament_victim(extra: Sequence[int],
                      exclude: Optional[int] = None) -> Optional[int]:
    """Loop-free victim search via a binary comparison tree.

    Conceptually ``MaxIdx(MaxIdx(1,2), MaxIdx(3,4))`` for four queues.  The
    excluded (arriving) queue simply never enters the bracket.  In hardware
    the exclusion is one extra mux; here we filter the candidate list.
    """
    candidates = [i for i in range(len(extra)) if i != exclude]
    if not candidates:
        return None
    while len(candidates) > 1:
        next_round = []
        for pair_start in range(0, len(candidates) - 1, 2):
            winner = max_idx(extra, candidates[pair_start],
                             candidates[pair_start + 1])
            next_round.append(winner)
        if len(candidates) % 2:
            next_round.append(candidates[-1])
        candidates = next_round
    return candidates[0]


class IncrementalVictim:
    """Top-2 argmax of the extra-buffer vector under point updates.

    DynaQ's per-arrival victim search scans ``T_i - S_i`` even though the
    vector only changes on threshold steals and reconfigurations.  This
    structure keeps the best and second-best indices warm so the
    per-arrival query is O(1); a point :meth:`update` is O(1) except when
    the current best or second shrinks out of place, which falls back to
    one O(M) rescan — amortised far below the reference's rescan on
    *every* over-threshold arrival.

    The total order matches :func:`linear_victim` exactly: larger value
    wins, ties go to the lower index.  ``tests/test_perf_equivalence.py``
    proves the equivalence on random update/query interleavings.
    """

    __slots__ = ("_values", "_best", "_second")

    def __init__(self, values: Sequence[int] = ()) -> None:
        self.reset(values)

    def reset(self, values: Sequence[int]) -> None:
        """Adopt a whole new vector (reinitialize / reconfigure)."""
        self._values: List[int] = list(values)
        self._rescan()

    def _beats(self, i: int, j: int) -> bool:
        """True if index ``i`` outranks ``j`` (higher value, lower-index
        ties) — the strict total order all three implementations share."""
        vi, vj = self._values[i], self._values[j]
        return vi > vj or (vi == vj and i < j)

    def _rescan(self) -> None:
        best: Optional[int] = None
        second: Optional[int] = None
        values = self._values
        for index, value in enumerate(values):
            if best is None or value > values[best]:
                second = best
                best = index
            elif second is None or value > values[second]:
                second = index
        self._best = best
        self._second = second

    def update(self, index: int, value: int) -> None:
        """Point update ``extra[index] = value``."""
        values = self._values
        old = values[index]
        values[index] = value
        best, second = self._best, self._second
        if index == best:
            if value >= old or second is None or self._beats(best, second):
                return  # grew, or still ahead of the runner-up
            # The best fell behind the runner-up; the new second could be
            # anyone (including a queue tied with the old runner-up), so
            # recompute both rather than guessing.
            self._rescan()
        elif index == second:
            if value < old:
                # The runner-up shrank and may have fallen behind a third
                # queue we never tracked.
                self._rescan()
            elif self._beats(second, best):
                self._best, self._second = second, best
        else:
            if self._beats(index, best):
                self._second = best
                self._best = index
            elif second is None or self._beats(index, second):
                self._second = index

    def query(self, exclude: Optional[int] = None) -> Optional[int]:
        """Argmax index skipping ``exclude`` — O(1).

        Equals ``linear_victim(values, exclude)`` at every point in time;
        returns ``None`` on a single-queue port.
        """
        best = self._best
        if best is None or best != exclude:
            return best
        return self._second

    def value(self, index: int) -> int:
        """Current tracked value of one queue."""
        return self._values[index]

    def as_list(self) -> List[int]:
        """Snapshot of the tracked vector (for tests and debugging)."""
        return list(self._values)

    def __len__(self) -> int:
        return len(self._values)


def publish_steal(trace: TraceBus, *, port: str, time: int, victim: int,
                  gainer: int, size: int, thresholds: Sequence[int]) -> None:
    """Publish one threshold steal to ``dynaq.steal``.

    This is the telemetry counterpart of the victim search above: every
    time Algorithm 1 moves ``size`` bytes of threshold from ``victim`` to
    ``gainer``, the steal is announced so collectors can build the
    who-stole-from-whom matrix and the per-queue S/T timelines.  Payload
    construction is deferred behind :meth:`TraceBus.emit`, so the call is
    free when nobody subscribed.
    """
    trace.emit(TOPIC_VICTIM_STEAL, lambda: dict(
        port=port, time=time, victim=victim, gainer=gainer, size=size,
        thresholds=tuple(thresholds)))


def tournament_depth(num_queues: int) -> int:
    """Comparison-tree depth = clock cycles of the victim search.

    ``log2(8) = 3`` cycles on an 8-queue port — the figure the paper's
    hardware-cost analysis (§IV-A) charges for Algorithm 1's line 2.
    """
    if num_queues < 2:
        return 0
    depth = 0
    remaining = num_queues
    while remaining > 1:
        remaining = (remaining + 1) // 2
        depth += 1
    return depth
