"""Victim-queue selection (paper §III-B2).

The victim is the queue — other than the arriving packet's queue — with the
largest *extra buffer* ``T_i - S_i``.  Two interchangeable implementations:

* :func:`linear_victim` — straightforward argmax; the reference semantics.
* :func:`tournament_victim` — the loop-free binary ``MaxIdx`` tournament the
  paper describes for switching ASICs, where loop instructions are
  forbidden and the comparison tree costs ``O(log M)`` pipeline stages
  (3 cycles for the 8 queues of a commodity switch).

Both resolve ties toward the lower queue index, and the test suite proves
them equivalent by exhaustion and by property testing.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..sim.trace import TOPIC_VICTIM_STEAL, TraceBus


def linear_victim(extra: Sequence[int],
                  exclude: Optional[int] = None) -> Optional[int]:
    """Index of the largest extra buffer, skipping ``exclude``.

    Returns ``None`` when every queue is excluded (i.e. a single-queue
    port, where DynaQ degenerates to tail drop).
    """
    best_index: Optional[int] = None
    best_value = 0
    for index, value in enumerate(extra):
        if index == exclude:
            continue
        if best_index is None or value > best_value:
            best_index = index
            best_value = value
    return best_index


def max_idx(extra: Sequence[int], left: int, right: int) -> int:
    """The paper's ``MaxIdx`` primitive: index of the larger of two queues.

    Ties go to the left operand, which combined with the tournament order
    below reproduces linear argmax's lowest-index tie-breaking.
    """
    return left if extra[left] >= extra[right] else right


def tournament_victim(extra: Sequence[int],
                      exclude: Optional[int] = None) -> Optional[int]:
    """Loop-free victim search via a binary comparison tree.

    Conceptually ``MaxIdx(MaxIdx(1,2), MaxIdx(3,4))`` for four queues.  The
    excluded (arriving) queue simply never enters the bracket.  In hardware
    the exclusion is one extra mux; here we filter the candidate list.
    """
    candidates = [i for i in range(len(extra)) if i != exclude]
    if not candidates:
        return None
    while len(candidates) > 1:
        next_round = []
        for pair_start in range(0, len(candidates) - 1, 2):
            winner = max_idx(extra, candidates[pair_start],
                             candidates[pair_start + 1])
            next_round.append(winner)
        if len(candidates) % 2:
            next_round.append(candidates[-1])
        candidates = next_round
    return candidates[0]


def publish_steal(trace: TraceBus, *, port: str, time: int, victim: int,
                  gainer: int, size: int, thresholds: Sequence[int]) -> None:
    """Publish one threshold steal to ``dynaq.steal``.

    This is the telemetry counterpart of the victim search above: every
    time Algorithm 1 moves ``size`` bytes of threshold from ``victim`` to
    ``gainer``, the steal is announced so collectors can build the
    who-stole-from-whom matrix and the per-queue S/T timelines.  Payload
    construction is deferred behind :meth:`TraceBus.emit`, so the call is
    free when nobody subscribed.
    """
    trace.emit(TOPIC_VICTIM_STEAL, lambda: dict(
        port=port, time=time, victim=victim, gainer=gainer, size=size,
        thresholds=tuple(thresholds)))


def tournament_depth(num_queues: int) -> int:
    """Comparison-tree depth = clock cycles of the victim search.

    ``log2(8) = 3`` cycles on an 8-queue port — the figure the paper's
    hardware-cost analysis (§IV-A) charges for Algorithm 1's line 2.
    """
    if num_queues < 2:
        return 0
    depth = 0
    remaining = num_queues
    while remaining > 1:
        remaining = (remaining + 1) // 2
        depth += 1
    return depth
