"""DynaQ — dynamic packet-dropping thresholds (paper §III, Algorithm 1).

Mechanism recap.  Every service queue *i* carries a dropping threshold
``T_i``; the invariant ``sum(T) == B`` holds at all times.  When a packet
*P* for queue *p* arrives and would push ``q_p`` above ``T_p``:

1. find the **victim** ``v`` — the other queue with the largest extra
   buffer ``T_i - S_i``;
2. if ``T_v < size(P)`` (threshold would go negative) **or** the victim is
   an *unsatisfied active queue* (``q_v > 0`` and ``T_v - size(P) < S_v``),
   drop *P* — this protects queues that still need their satisfaction
   threshold to reach their weighted fair share;
3. otherwise move ``size(P)`` of threshold from ``v`` to ``p``.

The final enqueue decision is then made on **port occupancy** (§III-B2,
"After this, the switch performs packet enqueueing decisions based on the
port buffer occupancy").  Inactive queues are deliberately *not* protected,
which is what makes DynaQ work-conserving: a lone active queue can grow its
threshold to the whole port buffer.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..net.packet import Packet
from ..perf.config import active_config
from ..queueing.base import BufferManager, Decision, PortView
from ..sim.errors import ConfigurationError
from ..sim.trace import (
    TOPIC_DYNAQ_RECONFIGURE,
    TOPIC_THRESHOLD_CHANGE,
    TraceBus,
)
from .thresholds import initial_thresholds, satisfaction_thresholds
from .victim import (
    IncrementalVictim,
    linear_victim,
    publish_steal,
    tournament_victim,
)

VictimSearch = Callable[[List[int], Optional[int]], Optional[int]]


class DynaQBuffer(BufferManager):
    """DynaQ admission control for one egress port.

    Parameters
    ----------
    victim_search:
        ``"linear"`` (reference argmax) or ``"tournament"`` (the loop-free
        ``MaxIdx`` tree of the hardware design).  Both are semantically
        identical; the option exists for the ablation benches.
    satisfaction_override:
        Per-queue ``S_i`` values replacing Eq. 3, used by the
        ``S_i = WBDP_i`` ablation the paper discusses (threshold
        fluctuation breaks fair sharing when the headroom is removed).
    trace:
        Optional :class:`TraceBus`; threshold exchanges are published to
        ``dynaq.threshold`` for the queue-evolution figures.
    """

    name = "DynaQ"

    def __init__(self, victim_search: str = "linear",
                 satisfaction_override: Optional[List[int]] = None,
                 trace: Optional[TraceBus] = None,
                 port_name: str = "") -> None:
        super().__init__()
        searches: dict = {
            "linear": linear_victim,
            "tournament": tournament_victim,
        }
        if victim_search not in searches:
            raise ValueError(
                f"unknown victim search {victim_search!r}; "
                f"expected one of {sorted(searches)}")
        self._search: VictimSearch = searches[victim_search]
        self._satisfaction_override = satisfaction_override
        self._trace = trace
        self._port_name = port_name
        self.threshold_moves = 0
        self.protected_drops = 0
        # Incremental victim tracker (fast path): T_i - S_i only changes
        # on steals and reconfigurations, so keeping the argmax warm
        # turns the per-arrival O(M) extra-vector rebuild + scan into an
        # O(1) query.  None in reference mode — admit() then runs the
        # configured search over a freshly built vector.  Created before
        # the threshold lists: their property setters sync it.
        self._tracker: Optional[IncrementalVictim] = (
            IncrementalVictim() if active_config().incremental_victim
            else None)
        self._thresholds: List[int] = []
        self._satisfaction: List[int] = []
        # Recurring Algorithm-1 outcomes (see Decision's docstring);
        # None (allocate fresh) in reference mode.
        if self._accept is not None:
            self._drop_no_victim = Decision.dropped(
                "threshold exceeded, no victim")
            self._drop_unsatisfied = Decision.dropped("victim unsatisfied")
            # Repeat-pure drops (see the base class): both outcomes
            # return before any threshold steal, so re-admitting the
            # same (queue, size) with no intervening accept reproduces
            # them exactly.  "port buffer full" is deliberately absent —
            # that path can follow a steal (and, in the evicting
            # subclass, trigger evictions).
            self.pure_drop_decisions = (self._drop_unsatisfied,
                                        self._drop_no_victim)
        else:
            self._drop_no_victim = None
            self._drop_unsatisfied = None

    # -- threshold state ---------------------------------------------------------
    #
    # Exposed as properties because tests and operator tooling assign
    # whole new lists (``manager.thresholds = [...]``) to set up
    # scenarios; the setters re-sync the incremental victim tracker so
    # the fast path can never observe a stale argmax.  Internal hot-path
    # code reads the private lists directly.

    @property
    def thresholds(self) -> List[int]:
        """Dropping thresholds ``T_i`` (assignment re-syncs the tracker)."""
        return self._thresholds

    @thresholds.setter
    def thresholds(self, values) -> None:
        self._thresholds = list(values)
        # DynaQ's accept path is exactly the inline-admission contract
        # (under-threshold + buffer room -> unmarked accept, no side
        # effects), so the port may bypass admit() for those packets.
        # Re-pointed here because assignment replaces the list identity.
        self.inline_admit_thresholds = self._thresholds
        self._sync_tracker()

    @property
    def satisfaction(self) -> List[int]:
        """Satisfaction thresholds ``S_i`` (assignment re-syncs the
        tracker)."""
        return self._satisfaction

    @satisfaction.setter
    def satisfaction(self, values) -> None:
        self._satisfaction = list(values)
        self._sync_tracker()

    # -- lifecycle ---------------------------------------------------------------

    def bind_trace(self, trace: TraceBus, port_name: str) -> None:
        """Adopt the port's trace bus unless one was passed explicitly."""
        if self._trace is None:
            self._trace = trace
        if not self._port_name:
            self._port_name = port_name

    def attach(self, port: PortView) -> None:
        super().attach(port)
        self.reinitialize()

    def reinitialize(self) -> None:
        """(Re)compute Eq. 1/Eq. 3 state from the port's current B and w.

        The paper's §III-B3 prescribes exactly this after an operator
        resizes the port buffer, restoring ``sum(T) == B``.
        """
        weights = self.port.queue_weights()
        self.thresholds = initial_thresholds(self.port.buffer_bytes, weights)
        self.satisfaction = self._derive_satisfaction(weights)
        self._sync_tracker()
        trace = self._trace
        if trace is not None:
            # Baseline snapshot (victim/gainer = -1): gives timeline
            # collectors T_i(0) and the otherwise-unpublished S_i values.
            trace.emit(TOPIC_THRESHOLD_CHANGE, lambda: dict(
                port=self._port_name, time=self.port.now(), victim=-1,
                gainer=-1, size=0, thresholds=tuple(self.thresholds),
                satisfaction=tuple(self.satisfaction)))

    def reconfigure(self, weights: Optional[List[float]] = None) -> None:
        """Mid-run weight reconfiguration (the operator-action fault).

        Re-derives the satisfaction thresholds ``S_i`` from the new
        weights and re-normalises the dropping thresholds to the Eq. 1
        split, so ``sum(T_i) == B`` holds exactly across the transition
        (the accumulated steals are discarded — the dynamics re-adapt
        within an RTT, exactly as after the §III-B3 buffer resize).
        ``weights=None`` re-reads the port's (already updated) scheduler
        weights; :meth:`repro.net.port.EgressPort.reconfigure_weights`
        is the usual caller.  Published to ``dynaq.reconfigure``.
        """
        if weights is not None and len(weights) != len(self.thresholds):
            raise ConfigurationError(
                f"expected {len(self.thresholds)} weights, "
                f"got {len(weights)}")
        new_weights = (list(weights) if weights is not None
                       else self.port.queue_weights())
        previous = list(self.thresholds)
        self.thresholds = initial_thresholds(
            self.port.buffer_bytes, new_weights)
        self.satisfaction = self._derive_satisfaction(new_weights)
        self._sync_tracker()
        trace = self._trace
        if trace is not None:
            trace.emit(TOPIC_DYNAQ_RECONFIGURE, lambda: dict(
                port=self._port_name, time=self.port.now(),
                thresholds=tuple(self.thresholds),
                satisfaction=tuple(self.satisfaction),
                detail=f"reconfigure from {previous}"))

    def _derive_satisfaction(self, weights: List[float]) -> List[int]:
        """Eq. 3 values (or the ablation override) for ``weights``."""
        if self._satisfaction_override is not None:
            if len(self._satisfaction_override) != len(self.thresholds):
                raise ConfigurationError(
                    "satisfaction_override must have one entry per queue")
            return list(self._satisfaction_override)
        return satisfaction_thresholds(self.port.buffer_bytes, weights)

    # -- Algorithm 1 ---------------------------------------------------------------

    def _sync_tracker(self) -> None:
        """Rebuild the incremental tracker after a wholesale T/S change.

        A length mismatch means the caller is mid-way through replacing
        both lists (reinitialize assigns T then S); the second setter
        runs the sync again with consistent state.
        """
        tracker = self._tracker
        if (tracker is not None
                and len(self._thresholds) == len(self._satisfaction)):
            tracker.reset(
                t - s for t, s in zip(self._thresholds, self._satisfaction))

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        size = packet.size
        occupancy = self._queue_occupancy
        thresholds = self._thresholds
        queue_len = (occupancy[queue_index] if occupancy is not None
                     else self.port.queue_bytes(queue_index))
        if queue_len + size > thresholds[queue_index]:
            tracker = self._tracker
            if tracker is not None:
                # Inline replica of IncrementalVictim.query: skip the
                # arriving queue.  With inline_hot_calls on, every
                # over-threshold arrival lands here, so the method call
                # and the _victim_is_protected helper below are
                # flattened into straight-line code.
                victim = tracker._best
                if victim == queue_index:
                    victim = tracker._second
            else:
                extra = [t - s for t, s in zip(thresholds,
                                               self._satisfaction)]
                victim = self._search(extra, queue_index)
            if victim is None:
                # Single-queue port: no one to steal from.
                self.drops += 1
                return (self._drop_no_victim
                        or Decision.dropped("threshold exceeded, no victim"))
            # _victim_is_protected, inlined (Algorithm 1, line 3): drop
            # when the victim cannot give up ``size`` bytes or is an
            # unsatisfied active queue.
            victim_threshold = thresholds[victim]
            if victim_threshold < size or (
                    (occupancy[victim] if occupancy is not None
                     else self.port.queue_bytes(victim)) > 0
                    and victim_threshold - size < self._satisfaction[victim]):
                self.drops += 1
                self.protected_drops += 1
                return (self._drop_unsatisfied
                        or Decision.dropped("victim unsatisfied"))
            self._move_threshold(victim, queue_index, size)
        # _port_tail_drop, inlined: this is the per-packet hot exit and
        # the helper call was the last per-admit Python call left.
        port = self.port
        total = (port._total_bytes if self._direct_total
                 else port.total_bytes())
        if total + size > port.buffer_bytes:
            self.drops += 1
            return self._drop_full or Decision.dropped("port buffer full")
        return self._accept or Decision.accepted()

    def repeat_drop(self, decision: Decision) -> None:
        self.drops += 1
        if decision is self._drop_unsatisfied:
            self.protected_drops += 1

    def _victim_is_protected(self, victim: int, size: int) -> bool:
        """Line 3 of Algorithm 1: drop instead of stealing when either
        the victim's threshold cannot give up ``size`` bytes (T_v would go
        negative) or the victim is an unsatisfied *active* queue."""
        threshold = self._thresholds[victim]
        if threshold < size:
            return True
        occupancy = self._queue_occupancy
        active = (occupancy[victim] if occupancy is not None
                  else self.port.queue_bytes(victim)) > 0
        return active and threshold - size < self._satisfaction[victim]

    def _move_threshold(self, victim: int, gainer: int, size: int) -> None:
        # Decrease the victim before increasing the gainer, preserving
        # sum(T) == B at every intermediate step (§III-B2).
        thresholds = self._thresholds
        satisfaction = self._satisfaction
        thresholds[victim] -= size
        thresholds[gainer] += size
        self.threshold_moves += 1
        tracker = self._tracker
        if tracker is not None:
            tracker.update(victim,
                           thresholds[victim] - satisfaction[victim])
            tracker.update(gainer,
                           thresholds[gainer] - satisfaction[gainer])
        trace = self._trace
        if trace is not None:
            trace.emit(TOPIC_THRESHOLD_CHANGE, lambda: dict(
                port=self._port_name, time=self.port.now(), victim=victim,
                gainer=gainer, size=size,
                thresholds=tuple(self.thresholds)))
            publish_steal(
                trace, port=self._port_name, time=self.port.now(),
                victim=victim, gainer=gainer, size=size,
                thresholds=self.thresholds)

    # -- introspection ---------------------------------------------------------------

    def threshold_sum(self) -> int:
        """``sum(T_i)`` — must equal the port buffer size (invariant)."""
        return sum(self.thresholds)

    def audit_thresholds(self) -> Optional[str]:
        """Cold-path ``sum(T_i) == B`` check (soak invariant engine).

        Returns a problem description, or ``None`` while the paper's
        §III-B equality holds.  Unlike the trace-driven
        :class:`~repro.faults.ThresholdInvariantMonitor` this reads the
        live vector directly, so it also catches a corrupted state that
        never publishes another threshold event.
        """
        total = self.threshold_sum()
        expected = self.port.buffer_bytes
        if total != expected:
            return (f"sum(T_i) == {total} != buffer {expected} "
                    f"(thresholds {list(self.thresholds)})")
        return None

    def extra_buffer(self, index: int) -> int:
        """Eq. 2 for one queue."""
        return self.thresholds[index] - self.satisfaction[index]
