"""DynaQ-Evict: a packet-eviction extension of DynaQ (beyond the paper).

The paper's related-work section (§II-C) observes that BarberQ attacks a
similar problem with *packet eviction* and concludes that plain dropping
is "enough" for service-queue isolation.  Our reproduction surfaces the
one corner where that conclusion costs latency: after thresholds are
stolen from an idle queue, the thief's packets remain buffered *above*
its reduced threshold, so the port can sit physically full and a
returning (e.g. high-priority PIAS) burst is tail-dropped even though its
own threshold has headroom — it then pays a full RTO.

``DynaQEvictBuffer`` closes that gap: when Algorithm 1 admits a packet
but the port is full, it evicts tail packets from queues whose occupancy
exceeds their *current* threshold (exactly the buffer they no longer own)
instead of dropping the arrival.  Eviction looks like loss to the victim
flow's transport, so congestion control semantics are preserved; the
difference is *who* takes the loss — the queue holding stolen buffer
rather than the queue entitled to it.

This is an extension for the ablation benches, disabled by default and
not part of the paper's evaluated design.
"""

from __future__ import annotations

from typing import Optional

from ..net.packet import Packet
from ..queueing.base import Decision
from .dynaq import DynaQBuffer


class DynaQEvictBuffer(DynaQBuffer):
    """DynaQ + tail eviction from over-threshold queues at a full port."""

    name = "DynaQ-Evict"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.evictions = 0

    def admit(self, packet: Packet, queue_index: int) -> Decision:
        decision = super().admit(packet, queue_index)
        if decision.accept or decision.reason != "port buffer full":
            return decision
        if self._make_room(packet, queue_index):
            self.drops -= 1  # the super() call counted a drop that isn't
            return Decision.accepted()
        return decision

    def _make_room(self, packet: Packet, queue_index: int) -> bool:
        """Evict over-threshold tails until ``packet`` fits, or give up."""
        needed = (self.port.total_bytes() + packet.size
                  - self.port.buffer_bytes)
        guard = self.port.num_queues * 64  # safety bound on evictions
        while needed > 0 and guard > 0:
            victim = self._most_over_threshold(exclude=queue_index)
            if victim is None:
                return False
            evicted = self.port.evict_tail(victim)
            if evicted is None:
                return False
            self.evictions += 1
            needed -= evicted.size
            guard -= 1
        return needed <= 0

    def _most_over_threshold(self, exclude: int) -> Optional[int]:
        """Queue holding the most buffer beyond its current threshold."""
        best: Optional[int] = None
        best_overage = 0
        for index in range(self.port.num_queues):
            if index == exclude:
                continue
            overage = (self.port.queue_bytes(index)
                       - self.thresholds[index])
            if overage > best_overage:
                best = index
                best_overage = overage
        return best
