"""Snapshot file format: versioned header + integrity-hashed pickle.

A snapshot is a single file::

    {"magic": "repro-snapshot", "version": 1, "sha256": "...", ...}\\n
    <pickle bytes>

The first line is a JSON header carrying the format magic/version, the
sha256 of the payload, the snapshot *kind* (which experiment family
wrote it), the simulated time at save, and caller metadata.  The rest of
the file is one :mod:`pickle` of the live object graph — a single root
pickle so that every shared reference (heap events aliased by port
in-flight deques, buffer-occupancy lists shared between ports and their
managers, the one RNG stream registry) survives with identity intact.

Writes are atomic (temp file + ``os.replace``) so an autosave killed
mid-write never clobbers the previous good snapshot; loads verify the
hash before unpickling and refuse corrupt or foreign files with
:class:`~repro.errors.SnapshotIntegrityError` /
:class:`~repro.errors.SnapshotError`.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import SnapshotError, SnapshotIntegrityError

PathLike = Union[str, Path]

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1

_JSON_SCALARS = (str, int, float, bool, type(None))


def _json_safe(meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """Coerce caller metadata into JSON-serialisable scalars."""
    safe: Dict[str, Any] = {}
    for key, value in (meta or {}).items():
        safe[str(key)] = value if isinstance(value, _JSON_SCALARS) else repr(value)
    return safe


class SnapshotManager:
    """Reads and writes versioned, integrity-hashed snapshot files."""

    magic = SNAPSHOT_MAGIC
    version = SNAPSHOT_VERSION

    # -- writing ---------------------------------------------------------------

    def save(self, obj: Any, path: PathLike, *, kind: str = "world",
             sim_now: int = 0, meta: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically write ``obj`` to ``path``; returns the final path."""
        path = Path(path)
        try:
            payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise SnapshotError(
                f"cannot pickle {kind!r} snapshot: {exc}") from exc
        header = {
            "magic": self.magic,
            "version": self.version,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload_bytes": len(payload),
            "kind": kind,
            "sim_now": int(sim_now),
            "meta": _json_safe(meta),
        }
        if path.parent and not path.parent.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        try:
            with tmp.open("wb") as handle:
                handle.write(json.dumps(header, sort_keys=True).encode("utf-8"))
                handle.write(b"\n")
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            raise SnapshotError(f"cannot write snapshot {path}: {exc}") from exc
        return path

    # -- reading ---------------------------------------------------------------

    def peek(self, path: PathLike) -> Dict[str, Any]:
        """Parse and validate the header without touching the payload."""
        path = Path(path)
        try:
            with path.open("rb") as handle:
                line = handle.readline()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        try:
            header = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise SnapshotError(
                f"{path} is not a snapshot file (unreadable header)") from exc
        if not isinstance(header, dict) or header.get("magic") != self.magic:
            raise SnapshotError(
                f"{path} is not a snapshot file (bad magic)")
        if header.get("version") != self.version:
            raise SnapshotError(
                f"{path}: unsupported snapshot version "
                f"{header.get('version')!r} (this build reads "
                f"version {self.version})")
        return header

    def load(self, path: PathLike, *,
             expect_kind: Optional[str] = None) -> Tuple[Any, Dict[str, Any]]:
        """Verify and unpickle ``path``; returns ``(object, header)``."""
        path = Path(path)
        header = self.peek(path)
        try:
            with path.open("rb") as handle:
                handle.readline()  # skip header
                payload = handle.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise SnapshotIntegrityError(
                f"{path}: payload hash mismatch (file truncated or "
                f"corrupted after write); refusing to restore")
        if expect_kind is not None and header.get("kind") != expect_kind:
            raise SnapshotError(
                f"{path}: snapshot kind {header.get('kind')!r} does not "
                f"match this experiment ({expect_kind!r})")
        try:
            obj = pickle.loads(payload)
        except Exception as exc:
            raise SnapshotError(
                f"{path}: cannot unpickle payload: {exc}") from exc
        return obj, header
