"""Experiment worlds: the snapshot-aware run driver.

A :class:`SimWorld` bundles everything an experiment needs to finish —
the built :class:`~repro.net.topology.Network`, the scenario's
collectors (meters, samplers, FCT collectors, fault controllers), the
horizon, and a module-level ``finish`` function that turns the world
into the scenario's result object.  Because the world is one connected
object graph rooted in plain picklable state, ``SnapshotManager`` can
save it whole and restore it with identity sharing intact.

``run_world`` drives a world to its horizon.  With an active
:class:`SnapshotPolicy` it schedules the autosave as an ordinary sim
event (a named bound method — the schedule-site lint in
``tests/test_schedule_lint.py`` keeps the graph closure-free): the event
sets a flag and stops the loop; the driver then saves *outside*
``Simulator.run`` (counters synced, no reentrancy), reschedules the next
autosave **before** pickling so the restored world already carries it,
and re-enters the loop.  Interrupt-at-save plus restore therefore
replays exactly the post-snapshot suffix: traces and metrics are
byte-identical to an uninterrupted run with the same cadence.

Determinism note: every autosave consumes one event sequence number, so
runs *with* and *without* autosaves differ in op counters — but the
displacement is uniform, so relative event ordering, traces, metrics,
and results are unchanged.  Differential tests compare like with like
(same cadence on both arms); parallel workers may autosave while the
serial arm does not and still produce identical results.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional, Union

from ..errors import (
    ConfigurationError,
    SimulationError,
    SnapshotError,
    SnapshotHalt,
)
from ..sim.trace import TOPIC_SNAPSHOT_LIFECYCLE
from .manager import PathLike, SnapshotManager

_MANAGER = SnapshotManager()


class SnapshotPolicy:
    """When to autosave, where, and what drills/triage to apply.

    Parameters
    ----------
    every_ns:
        Autosave cadence in simulated time (``None`` disables autosave).
    out:
        Snapshot file path; required when ``every_ns`` is set.  Each
        autosave atomically replaces the previous one.
    restore:
        Path of a snapshot to resume from instead of building the world
        fresh (see :func:`acquire_world`).
    halt_after_saves:
        Kill drill: raise :class:`~repro.errors.SnapshotHalt` immediately
        after the Nth autosave of *this* world.  The save counter is part
        of the snapshot, so a restored world (counter already past N)
        runs to completion instead of re-tripping — crash exactly once.
    triage_dir:
        When set, watchdog trips and escaping
        :class:`~repro.errors.SimulationError` write a triage bundle
        (snapshot + flight dump + counter summary) into this directory.
    restore_fallback:
        Worker mode: if the restore source is corrupt/unreadable, build
        the world fresh from t=0 instead of failing.  The CLI keeps this
        off so a bad ``--restore`` argument fails loudly.
    """

    def __init__(self, *, every_ns: Optional[int] = None,
                 out: Optional[PathLike] = None,
                 restore: Optional[PathLike] = None,
                 halt_after_saves: Optional[int] = None,
                 triage_dir: Optional[PathLike] = None,
                 restore_fallback: bool = False) -> None:
        if every_ns is not None and every_ns <= 0:
            raise ConfigurationError(
                f"snapshot cadence must be positive, got {every_ns}")
        if every_ns is not None and out is None:
            raise ConfigurationError(
                "--snapshot-every needs --snapshot-out (nowhere to save)")
        if halt_after_saves is not None:
            if halt_after_saves <= 0:
                raise ConfigurationError(
                    f"kill drill count must be positive, "
                    f"got {halt_after_saves}")
            if every_ns is None:
                raise ConfigurationError(
                    "--snapshot-kill-after needs --snapshot-every "
                    "(the drill fires on an autosave)")
        self.every_ns = every_ns
        self.out = out
        self.restore = restore
        self.halt_after_saves = halt_after_saves
        self.triage_dir = triage_dir
        self.restore_fallback = restore_fallback

    @property
    def autosaves(self) -> bool:
        return self.every_ns is not None


class SimWorld:
    """One experiment's complete live state, as a single pickle root.

    Parameters
    ----------
    kind:
        Experiment family tag written into snapshot headers ("bulk",
        "fct", "incast", "static-sim", "chaos"); restores check it so a
        chaos snapshot cannot be resumed as an fct run.
    net:
        The built network (owns the simulator and trace bus).
    finish:
        Module-level function ``finish(world) -> result`` producing the
        scenario's result object; module-level so it pickles by
        reference.
    horizon_ns:
        Simulated time to run until.
    state:
        Scenario collectors keyed by name (meter, samplers, apps,
        controllers...).  Everything the finish function needs must live
        here — it is the part of the graph the snapshot preserves for it.
    watchdog:
        Optional armed :class:`~repro.faults.ScenarioWatchdog`; a trip
        ends the run (and writes a triage bundle when configured).
    drain_key / chunk_ns:
        Drain mode (fct-style runs): instead of one run to the horizon,
        run in ``chunk_ns`` slices while ``state[drain_key].outstanding``
        is non-zero, breaking early when the event heap empties.
    meta:
        JSON-safe annotations copied into snapshot headers.
    """

    def __init__(self, *, kind: str, net: Any,
                 finish: Callable[["SimWorld"], Any],
                 horizon_ns: int,
                 state: Optional[Dict[str, Any]] = None,
                 watchdog: Any = None,
                 drain_key: Optional[str] = None,
                 chunk_ns: Optional[int] = None,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        if drain_key is not None and chunk_ns is None:
            raise ConfigurationError("drain mode needs a chunk size")
        self.kind = kind
        self.net = net
        self.finish = finish
        self.horizon_ns = horizon_ns
        self.state: Dict[str, Any] = state if state is not None else {}
        self.watchdog = watchdog
        self.drain_key = drain_key
        self.chunk_ns = chunk_ns
        self.meta: Dict[str, Any] = dict(meta or {})
        #: Autosaves completed by this world — persisted inside the
        #: snapshot, which is what makes kill drills fire exactly once.
        self.saves = 0
        #: Autosave cadence, persisted so a restored world keeps
        #: rescheduling its autosave event at the original rhythm even
        #: when the restoring invocation sets no cadence of its own
        #: (each tick consumes one event sequence number, so dropping
        #: the rhythm would diverge from the uninterrupted run).
        self.every_ns: Optional[int] = None
        #: True iff this world came out of ``restore_world``.
        self.restored = False
        #: Path of the last triage bundle written for this world.
        self.last_triage: Optional[str] = None
        self._autosave_due = False
        self._autosave_event = None
        self._next_target: Optional[int] = None

    # -- autosave event --------------------------------------------------------

    def _on_autosave(self) -> None:
        """Sim-event callback: request a save and stop the loop.

        The pickle itself happens in ``run_world`` *between* ``run``
        calls — never from inside a callback, where the engine's
        deferred counters would be mid-flight.
        """
        self._autosave_due = True
        self.net.sim.stop()

    # -- graph walking ---------------------------------------------------------

    def iter_ports(self) -> Iterator[Any]:
        """Every egress port in the network (switches, then host NICs)."""
        for switch in self.net.switches.values():
            yield from switch.ports.values()
        for host in self.net.hosts.values():
            if host.nic is not None:
                yield host.nic

    def resync(self) -> None:
        """Rebuild derived state after a restore.

        DynaQ's incremental victim tracker is recomputed from the
        restored thresholds/satisfaction vectors, so the argmax structure
        provably matches the canonical state it mirrors.
        """
        for port in self.iter_ports():
            manager = getattr(port, "buffer_manager", None)
            sync = getattr(manager, "_sync_tracker", None)
            if callable(sync):
                sync()

    def close_recorders(self) -> None:
        """Close trace recorders riding inside a restored world.

        A fresh run's recorders are owned (and closed) by the CLI's
        telemetry session; a restored world brings its own, so whoever
        finishes the run flushes them here.
        """
        from ..telemetry.recorder import TraceRecorder

        seen = set()
        subscribers = getattr(self.net.trace, "_subscribers", {})
        for callbacks in list(subscribers.values()):
            for handler in list(callbacks):
                owner = getattr(handler, "__self__", None)
                if owner is None:  # functools.partial(bound_method, ...)
                    owner = getattr(getattr(handler, "func", None),
                                    "__self__", None)
                if isinstance(owner, TraceRecorder) and id(owner) not in seen:
                    seen.add(id(owner))
                    owner.close()


# -- driver -------------------------------------------------------------------


def run_world(world: SimWorld,
              policy: Optional[SnapshotPolicy] = None) -> SimWorld:
    """Drive ``world`` to its horizon under ``policy``.

    With no policy (or an inert one) this is exactly the classic loop:
    one ``run(until=horizon)``, or chunked runs in drain mode.  With
    autosave enabled, the loop additionally services save requests
    between ``run`` calls; chunk boundaries are derived from the previous
    *target* (not the interrupted clock), so an autosave landing inside a
    chunk does not shift any later boundary.
    """
    sim = world.net.sim
    autosaving = policy is not None and policy.autosaves
    if autosaving:
        world.every_ns = policy.every_ns
        if world._autosave_event is None and not world._autosave_due:
            world._autosave_event = sim.schedule(policy.every_ns,
                                                 world._on_autosave)
    drain = world.drain_key is not None
    app = world.state[world.drain_key] if drain else None
    if drain and world._next_target is None:
        world._next_target = min(sim.now + world.chunk_ns, world.horizon_ns)
    try:
        while True:
            if drain:
                if not app.outstanding or sim.now >= world.horizon_ns:
                    break
                target = world._next_target
            else:
                target = world.horizon_ns
            sim.run(until=target)
            if world.watchdog is not None and world.watchdog.tripped:
                world.last_triage = _maybe_triage(world, policy,
                                                  "watchdog-trip")
                break
            if world._autosave_due:
                world._autosave_due = False
                # Next autosave goes into the heap *before* the save so
                # the restored world wakes up with it already pending.
                # The reschedule happens even when this invocation has
                # nowhere to save (restore without --snapshot-out):
                # each tick consumes one sequence number, keeping the
                # restored run in lockstep with the uninterrupted one.
                world._autosave_event = sim.schedule(world.every_ns,
                                                     world._on_autosave)
                if autosaving:
                    _autosave(world, policy)
                continue
            if sim._stopped:
                break  # scenario-level stop() from a callback
            if not drain:
                break  # reached the horizon
            if sim.peek_time() is None:
                break  # outstanding work but an empty heap: wedged
            world._next_target = min(target + world.chunk_ns,
                                     world.horizon_ns)
    except SnapshotHalt:
        raise
    except SimulationError:
        world.last_triage = _maybe_triage(world, policy, "simulation-error")
        raise
    capture = _active_diagnosis_capture()
    if capture is not None:
        capture.collect(world)
    return world


def _active_diagnosis_capture():
    """The session's diagnosis capture, if one is installed.

    Imported lazily so the snapshot driver stays importable without the
    diagnosis package in the graph (and costs one cached module lookup
    per finished world, never per event).
    """
    from ..diagnosis.capture import active_capture

    return active_capture()


def _publish_lifecycle(world: SimWorld, detail: str, path: PathLike) -> None:
    """Emit one ``snapshot.lifecycle`` event on the world's bus.

    Lazy ``emit``: with no subscriber the event costs a dict lookup.
    The default trace recorder deliberately does not subscribe to this
    topic (save paths differ between a reference run and a restored
    one), so recording lifecycle events is an explicit opt-in — see
    :data:`repro.sim.trace.TOPIC_SNAPSHOT_LIFECYCLE`.
    """
    trace = getattr(world.net, "trace", None)
    if trace is not None:
        trace.emit(TOPIC_SNAPSHOT_LIFECYCLE, lambda: dict(
            time=world.net.sim.now, detail=detail, path=str(path),
            saves=world.saves))


def _autosave(world: SimWorld, policy: SnapshotPolicy) -> None:
    """Save the world, then fire the kill drill if it is due."""
    world.saves += 1
    _MANAGER.save(world, policy.out, kind=world.kind,
                  sim_now=world.net.sim.now,
                  meta={**world.meta, "saves": world.saves})
    _publish_lifecycle(world, "save", policy.out)
    # Exact equality: the snapshot just written carries saves == N, so
    # after a restore the counter moves to N+1 and the drill never
    # re-fires — each drill crashes the run exactly once.
    if (policy.halt_after_saves is not None
            and world.saves == policy.halt_after_saves):
        raise SnapshotHalt(str(policy.out), world.saves)


def _maybe_triage(world: SimWorld, policy: Optional[SnapshotPolicy],
                  reason: str) -> Optional[str]:
    if policy is None or policy.triage_dir is None:
        return None
    from .triage import write_triage_bundle

    return str(write_triage_bundle(policy.triage_dir, world=world,
                                   reason=reason))


# -- restore ------------------------------------------------------------------


def restore_world(path: PathLike, *,
                  expect_kind: Optional[str] = None) -> SimWorld:
    """Load a :class:`SimWorld` snapshot and make it runnable again."""
    world, _header = _MANAGER.load(path, expect_kind=expect_kind)
    if not isinstance(world, SimWorld):
        raise SnapshotError(
            f"{path}: payload is {type(world).__name__}, not a SimWorld")
    world.restored = True
    sim = world.net.sim
    sim._running = False
    sim._stopped = False
    world.resync()
    # Subscribers that rode inside the pickle (an explicitly opted-in
    # recorder, a flight recorder) see the resume point on the bus.
    _publish_lifecycle(world, "restore", path)
    return world


def acquire_world(policy: Optional[SnapshotPolicy], kind: str,
                  build: Callable[[], SimWorld]) -> SimWorld:
    """Restore the world named by ``policy``, or build it fresh.

    The worker-injected policies set ``restore_fallback`` so a corrupt
    autosave degrades to a clean t=0 re-run; interactive ``--restore``
    keeps it strict.
    """
    if policy is not None and policy.restore is not None:
        try:
            return restore_world(policy.restore, expect_kind=kind)
        except SnapshotError:
            if not policy.restore_fallback:
                raise
    return build()
