"""Triage bundles: everything needed to debug a dead run, in one place.

A watchdog trip or an escaping :class:`~repro.errors.SimulationError`
leaves three questions: *what state was the sim in*, *what happened just
before*, and *where was the time going*.  A triage bundle answers all
three with one directory::

    <dir>/
      snapshot.bin    post-mortem SimWorld snapshot (restorable)
      flight.jsonl    flight-recorder dump (when a recorder is attached)
      profile.txt     op counters + profiler summary, human-readable
      manifest.json   reason, sim time, consistency check, file index

The snapshot is valid for ``--restore`` because the engine accounts for
an event *before* running its callback, so even an exception mid-run
leaves the heap and counters consistent (``Simulator.check_consistency``
is recorded in the manifest either way).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import SimulationError
from .manager import PathLike, SnapshotManager

_MANAGER = SnapshotManager()


def find_flight_recorder(trace: Any) -> Optional[Any]:
    """The first :class:`FlightRecorder` subscribed to ``trace``, if any.

    Recorders subscribe with ``partial(self._handle, topic)`` handlers,
    so the owner is recovered from the partial's bound function.
    """
    from ..telemetry.flight_recorder import FlightRecorder

    for callbacks in getattr(trace, "_subscribers", {}).values():
        for handler in callbacks:
            owner = getattr(getattr(handler, "func", None), "__self__", None)
            if owner is None:
                owner = getattr(handler, "__self__", None)
            if isinstance(owner, FlightRecorder):
                return owner
    return None


def _profile_text(world: Any, reason: str, consistent: bool) -> str:
    sim = world.net.sim
    lines = [
        f"triage reason:     {reason}",
        f"experiment kind:   {world.kind}",
        f"sim time (ns):     {sim.now}",
        f"horizon (ns):      {world.horizon_ns}",
        f"events scheduled:  {sim.events_scheduled}",
        f"events executed:   {sim.events_executed}",
        f"events cancelled:  {sim.events_cancelled}",
        f"events pending:    {sim.pending()}",
        f"event pool size:   {sim.pool_size()}",
        f"heap consistent:   {consistent}",
        f"autosaves so far:  {world.saves}",
    ]
    if world.watchdog is not None and world.watchdog.tripped:
        lines.append(f"watchdog tripped:  {world.watchdog.tripped}")
    profiler = getattr(sim, "profiler", None)
    if profiler is not None:
        lines.append("")
        lines.append("profiler summary:")
        try:
            summary = profiler.summary()
        except Exception as exc:  # never let reporting kill the bundle
            summary = {"error": repr(exc)}
        lines.append(json.dumps(summary, indent=2, sort_keys=True,
                                default=repr))
    return "\n".join(lines) + "\n"


def write_triage_bundle(directory: PathLike, *, world: Any, reason: str,
                        manager: Optional[SnapshotManager] = None) -> Path:
    """Write a post-mortem bundle for ``world`` into ``directory``."""
    manager = manager or _MANAGER
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sim = world.net.sim
    world._autosave_due = False  # a resumed post-mortem starts clean

    consistent = True
    try:
        sim.check_consistency()
    except SimulationError:
        consistent = False

    files: Dict[str, str] = {}
    snapshot_path = directory / "snapshot.bin"
    manager.save(world, snapshot_path, kind=world.kind, sim_now=sim.now,
                 meta={**world.meta, "triage_reason": reason})
    files["snapshot"] = snapshot_path.name

    recorder = find_flight_recorder(world.net.trace)
    if recorder is not None:
        from ..telemetry.sinks import JsonlSink

        flight_path = directory / "flight.jsonl"
        with JsonlSink(flight_path) as sink:
            for record in recorder.dump(reason):
                sink.write(record)
        files["flight"] = flight_path.name

    profile_path = directory / "profile.txt"
    profile_path.write_text(_profile_text(world, reason, consistent))
    files["profile"] = profile_path.name

    manifest = {
        "reason": reason,
        "kind": world.kind,
        "sim_now": sim.now,
        "heap_consistent": consistent,
        "watchdog_tripped": (world.watchdog.tripped
                             if world.watchdog is not None else None),
        "files": files,
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return directory
