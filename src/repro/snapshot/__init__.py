"""In-flight simulation snapshot/restore.

``repro.snapshot`` saves a *running* experiment — the simulator heap,
every port/queue/shared-buffer, DynaQ threshold state, transport timers,
RNG streams, fault controllers, and attached telemetry — into a
versioned, integrity-hashed file, and restores it such that the resumed
run emits a byte-identical trace and identical metrics versus an
uninterrupted run (see ``tests/test_snapshot.py``).

Layers
------
:class:`SnapshotManager`
    The file format: one JSON header line (magic, version, payload
    sha256, kind, sim time) followed by a pickle of the object graph.
:class:`SimWorld` / :func:`run_world` / :func:`restore_world`
    The experiment-facing driver.  A world bundles a built network with
    the scenario's collectors and a module-level ``finish`` function;
    ``run_world`` drives it to its horizon, autosaving on a
    :class:`SnapshotPolicy` cadence and writing triage bundles on
    watchdog trips and simulation errors.
:func:`write_triage_bundle`
    Post-mortem directory: snapshot + flight-recorder dump + profiler /
    counter summary + manifest (see docs/robustness.md).
"""

from .manager import SNAPSHOT_MAGIC, SNAPSHOT_VERSION, SnapshotManager
from .triage import find_flight_recorder, write_triage_bundle
from .world import (
    SimWorld,
    SnapshotPolicy,
    acquire_world,
    restore_world,
    run_world,
)

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "SnapshotManager",
    "SimWorld",
    "SnapshotPolicy",
    "acquire_world",
    "restore_world",
    "run_world",
    "find_flight_recorder",
    "write_triage_bundle",
]
