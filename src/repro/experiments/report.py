"""Plain-text reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot: per-queue throughput over time, Jain index + aggregate throughput,
normalised FCT matrices.  Everything returns the formatted string (and
optionally prints it) so tests can assert on content.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..metrics.fct import normalize_to
from ..sim.units import SECOND
from .testbed import FCTResult, ThroughputResult

GBPS = 1e9


def _fmt(value: Optional[float], width: int = 8,
         precision: int = 2) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.{precision}f}".rjust(width)


def throughput_table(results: Sequence[ThroughputResult], *,
                     title: str) -> str:
    """Per-queue mean throughput (Gbps) for several schemes side by side."""
    lines = [title]
    num_queues = results[0].num_queues
    header = "scheme".ljust(22) + "".join(
        f"q{q + 1}".rjust(8) for q in range(num_queues)) + "aggregate".rjust(11)
    lines.append(header)
    for result in results:
        rates = [result.mean_rate_bps(q) / GBPS for q in range(num_queues)]
        row = result.scheme.ljust(22)
        row += "".join(_fmt(rate) for rate in rates)
        row += _fmt(result.mean_aggregate_bps() / GBPS, width=11)
        lines.append(row)
    return "\n".join(lines)


def share_table(results: Sequence[ThroughputResult], *,
                title: str, ideal: Sequence[float]) -> str:
    """Throughput shares vs the ideal weighted shares (paper Fig. 6)."""
    lines = [title]
    num_queues = results[0].num_queues
    lines.append("scheme".ljust(22) + "".join(
        f"q{q + 1}".rjust(8) for q in range(num_queues)))
    lines.append("ideal".ljust(22) + "".join(_fmt(x) for x in ideal))
    for result in results:
        shares = result.mean_shares()
        lines.append(result.scheme.ljust(22)
                     + "".join(_fmt(share) for share in shares))
    return "\n".join(lines)


def timeseries_table(results: Sequence[ThroughputResult], *, title: str,
                     queues: Sequence[int]) -> str:
    """Throughput-vs-time series per scheme (Figs. 3, 5, 7)."""
    lines = [title]
    for result in results:
        lines.append(f"-- {result.scheme}")
        header = "t(s)".rjust(8) + "".join(
            f"q{q + 1}(Gbps)".rjust(11) for q in queues) + "agg".rjust(11)
        lines.append(header)
        for sample in result.samples:
            row = f"{sample.time_ns / SECOND:.2f}".rjust(8)
            for queue in queues:
                row += _fmt(sample.per_queue_bps[queue] / GBPS, width=11)
            row += _fmt(sample.aggregate_bps / GBPS, width=11)
            lines.append(row)
    return "\n".join(lines)


def fct_matrix(results_by_scheme: Dict[str, List[FCTResult]], *,
               metric: str, title: str,
               baseline_scheme: str = "dynaq") -> str:
    """Normalised-FCT matrix: rows = loads, columns = schemes.

    ``metric`` is one of the :meth:`FCTCollector.summary` keys.  Values
    are normalised by the baseline scheme's value at the same load — the
    paper's presentation (DynaQ == 1.0 everywhere).
    """
    if baseline_scheme not in results_by_scheme:
        raise KeyError(f"baseline {baseline_scheme!r} missing from results")
    baseline = results_by_scheme[baseline_scheme]
    schemes = list(results_by_scheme)
    lines = [title, "load".rjust(6) + "".join(
        results_by_scheme[name][0].scheme.rjust(14) for name in schemes)]
    for row_index, base_result in enumerate(baseline):
        base_value = base_result.summary[metric]
        row = f"{base_result.load:.2f}".rjust(6)
        for name in schemes:
            value = results_by_scheme[name][row_index].summary[metric]
            row += _fmt(normalize_to(base_value, value), width=14)
        lines.append(row)
    return "\n".join(lines)


def fct_absolute_table(results_by_scheme: Dict[str, List[FCTResult]], *,
                       title: str) -> str:
    """Raw FCT summaries (ms) — the un-normalised companion table."""
    lines = [title]
    header = ("scheme".ljust(16) + "load".rjust(6)
              + "overall".rjust(10) + "small".rjust(10)
              + "large".rjust(10) + "p99small".rjust(10)
              + "done".rjust(7) + "late".rjust(6))
    lines.append(header)
    for name, results in results_by_scheme.items():
        for result in results:
            summary = result.summary
            lines.append(
                result.scheme.ljust(16)
                + f"{result.load:.2f}".rjust(6)
                + _fmt(summary["avg_overall_ms"], 10)
                + _fmt(summary["avg_small_ms"], 10)
                + _fmt(summary["avg_large_ms"], 10)
                + _fmt(summary["p99_small_ms"], 10)
                + str(result.completed).rjust(7)
                + str(result.outstanding).rjust(6))
    return "\n".join(lines)


def profile_table(profiler, *, title: str = "run profile",
                  top: int = 12) -> str:
    """Opt-in profiler section: loop stats + per-callback time table.

    ``profiler`` is a :class:`repro.telemetry.RunProfiler` that was
    attached to the run's simulator.  The per-callback rows are sorted
    by total wall time, heaviest first.
    """
    summary = profiler.summary()
    lines = [title]
    lines.append(f"events executed   {summary['events']:>12,}")
    lines.append(f"wall time (s)     {summary['wall_s']:>12.3f}")
    lines.append(f"events/sec        {summary['events_per_sec']:>12,.0f}")
    lines.append(f"sim time (ms)     {summary['sim_time_ns'] / 1e6:>12.3f}")
    lines.append(f"heap high-water   {summary['heap_high_water']:>12,}")
    lines.append(f"events scheduled  {summary['events_scheduled']:>12,}")
    lines.append("cancelled ratio   "
                 + f"{summary['cancelled_ratio']:>12.4f}")
    lines.append("")
    lines.append("callback".ljust(44) + "calls".rjust(10)
                 + "total(s)".rjust(10) + "mean(us)".rjust(10)
                 + "max(us)".rjust(10))
    for name, stats in profiler.top_callbacks(top):
        lines.append(name[:43].ljust(44)
                     + f"{stats.count:,}".rjust(10)
                     + f"{stats.total_s:.3f}".rjust(10)
                     + f"{stats.mean_us:.1f}".rjust(10)
                     + f"{stats.max_s * 1e6:.1f}".rjust(10))
    return "\n".join(lines)


def drop_breakdown_table(drop_summary: Dict, *,
                         title: str = "drops by reason / port") -> str:
    """Render :meth:`DropMarkCollector.as_dict` breakdowns as text."""
    lines = [title]
    lines.append(f"total drops {drop_summary['drops']}, "
                 f"marks {drop_summary['marks']}")
    for key, label in (("drops_by_reason", "reason"),
                       ("drops_by_port", "port")):
        breakdown = drop_summary.get(key) or {}
        for name, count in sorted(breakdown.items(),
                                  key=lambda item: -item[1]):
            lines.append(f"  {label} {name:<28}{count:>10}")
    return "\n".join(lines)


def fairness_table(samples_by_scheme: Dict[str, Sequence[float]], *,
                   title: str) -> str:
    """Mean/min Jain fairness per scheme (Figs. 10-12 summary)."""
    lines = [title, "scheme".ljust(22) + "mean J".rjust(9)
             + "min J".rjust(9)]
    for name, series in samples_by_scheme.items():
        values = list(series)
        mean = sum(values) / len(values) if values else 1.0
        minimum = min(values) if values else 1.0
        lines.append(name.ljust(22) + _fmt(mean, 9) + _fmt(minimum, 9))
    return "\n".join(lines)


def failure_lines(outcomes) -> List[str]:
    """One line per failed parallel-sweep job outcome.

    Successful outcomes are skipped, so the CLI can pass a whole
    outcome list or a pre-filtered failure list — a clean sweep prints
    nothing either way (serial and parallel stdout stay identical).
    """
    return [f"FAILED {outcome.key}: {outcome.error} "
            f"(after {outcome.attempts} attempt(s))"
            for outcome in outcomes if not outcome.ok]
