"""Testbed experiments (paper §V-A, Figs. 1 and 3-9).

Every function reproduces one figure's scenario on the star "rack" that
stands in for the paper's 5-server / 1 GbE testbed.  All time-like
parameters are exposed so the benchmark harness can run shortened versions
(the dynamics converge within tens of milliseconds at 1 Gbps; the paper's
multi-second horizons exist for human-scale plotting).

Queue numbering follows the paper (queue 1..N); service-class/queue
*indexes* are 0-based internally.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from ..apps.client_server import (
    RequestResponseApp,
    random_many_to_one_placement,
)
from ..apps.iperf import IperfApp
from ..faults import FaultController, FaultSchedule
from ..metrics.fairness import jain_index, throughput_shares
from ..metrics.fct import FCTCollector
from ..metrics.queuelen import QueueLengthSampler
from ..metrics.throughput import PortThroughputMeter, ThroughputSample
from ..net.topology import Network, build_star
from ..queueing.schedulers.drr import DRRScheduler
from ..queueing.schedulers.spq import SPQDRRScheduler
from ..sim.engine import Simulator
from ..sim.randomness import RandomStreams
from ..sim.trace import TraceBus
from ..sim.units import (
    SECOND,
    gbps,
    kilobytes,
    microseconds,
    milliseconds,
    seconds,
)
from ..snapshot import SimWorld, SnapshotPolicy, acquire_world, run_world
from ..transport.pias import PIASConfig
from ..transport.registry import sender_class
from ..workloads.datasets import WEB_SEARCH
from ..workloads.distributions import EmpiricalCDF
from ..workloads.flowgen import generate_flows
from .runner import buffer_factory, scheme, transport_for


class TestbedConfig(NamedTuple):
    """The paper's testbed constants (§V-A, "Testbed Setup")."""

    rate_bps: int = gbps(1)
    buffer_bytes: int = kilobytes(85)      # Broadcom 56538 emulation
    rtt_ns: int = microseconds(500)        # base RTT
    min_rto_ns: int = milliseconds(10)     # RTO_min, per DCTCP practice
    mtu_bytes: int = 1500
    quantum_bytes: float = 1500.0          # default DRR quantum (1 MTU)


DEFAULT_CONFIG = TestbedConfig()


class ThroughputResult(NamedTuple):
    """Per-queue throughput series at the receiver's bottleneck port."""

    scheme: str
    samples: List[ThroughputSample]
    queue_lengths: Optional[QueueLengthSampler]
    config: TestbedConfig
    num_queues: int

    def mean_rate_bps(self, queue: int, start_ns: int = 0,
                      end_ns: Optional[int] = None) -> float:
        window = [s.per_queue_bps[queue] for s in self.samples
                  if s.time_ns > start_ns
                  and (end_ns is None or s.time_ns <= end_ns)]
        return sum(window) / len(window) if window else 0.0

    def mean_aggregate_bps(self, start_ns: int = 0,
                           end_ns: Optional[int] = None) -> float:
        window = [s.aggregate_bps for s in self.samples
                  if s.time_ns > start_ns
                  and (end_ns is None or s.time_ns <= end_ns)]
        return sum(window) / len(window) if window else 0.0

    def mean_shares(self, start_ns: int = 0,
                    end_ns: Optional[int] = None) -> List[float]:
        """Average throughput share of each queue (paper Fig. 6)."""
        rates = [self.mean_rate_bps(q, start_ns, end_ns)
                 for q in range(self.num_queues)]
        return throughput_shares(rates)

    def jain(self, active_queues: Sequence[int], start_ns: int = 0,
             end_ns: Optional[int] = None) -> float:
        rates = [self.mean_rate_bps(q, start_ns, end_ns)
                 for q in active_queues]
        return jain_index(rates)


def _star_with_scheme(scheme_name: str, *, num_hosts: int,
                      scheduler_factory: Callable,
                      config: TestbedConfig,
                      sim: Optional[Simulator] = None,
                      trace: Optional[TraceBus] = None) -> Network:
    return build_star(
        num_hosts=num_hosts, rate_bps=config.rate_bps,
        rtt_ns=config.rtt_ns, buffer_bytes=config.buffer_bytes,
        scheduler_factory=scheduler_factory,
        buffer_factory=buffer_factory(scheme_name, rtt_ns=config.rtt_ns),
        sim=sim, trace=trace)


def _prepare_bulk(scheme_name: str, *,
                  flows_per_queue: Sequence[int],
                  quanta: Sequence[float],
                  stop_times_ns: Optional[Sequence[Optional[int]]],
                  duration_ns: int, sample_interval_ns: int,
                  config: TestbedConfig,
                  protocols: Optional[Sequence[str]] = None,
                  queue_samples: int = 0,
                  senders_per_queue=1,
                  sim: Optional[Simulator] = None,
                  trace: Optional[TraceBus] = None,
                  faults: Optional[FaultSchedule] = None) -> SimWorld:
    """Build (but do not run) a static-flow experiment world.

    Queue *k* (0-based) gets ``flows_per_queue[k]`` bulk flows, split over
    ``senders_per_queue[k]`` sender hosts (an int means the same count for
    every queue), optionally aborted at ``stop_times_ns[k]``.  Host h0 is
    the receiver; its downlink is the bottleneck that is metered.

    The per-queue sender count matters: each sender host has its own
    line-rate NIC, so queues backed by several hosts present a higher
    aggregate arrival rate at the bottleneck (Fig. 1's setup relies on
    exactly this).

    ``faults`` arms a :class:`FaultController` for the run.  The returned
    world carries everything the scenario needs to finish, so it can be
    snapshotted mid-run and restored (the chaos harness also attaches its
    monitor/watchdog to it before running).
    """
    num_queues = len(flows_per_queue)
    if isinstance(senders_per_queue, int):
        senders_per_queue = [senders_per_queue] * num_queues
    if len(senders_per_queue) != num_queues:
        raise ValueError("senders_per_queue must match flows_per_queue")
    net = _star_with_scheme(
        scheme_name,
        num_hosts=1 + sum(senders_per_queue),
        scheduler_factory=lambda: DRRScheduler(list(quanta)),
        config=config, sim=sim, trace=trace)
    bottleneck = net.switch("s0").ports["s0->h0"]
    meter = PortThroughputMeter(net.sim, bottleneck, sample_interval_ns)
    lengths = None
    if queue_samples:
        # The paper takes "1K sequential samples at random time"; start in
        # the steady state, not during the initial slow-start transient.
        lengths = QueueLengthSampler(
            bottleneck, start_ns=duration_ns // 2,
            max_samples=queue_samples)

    flow_id = 0
    host_index = 1
    for queue, total_flows in enumerate(flows_per_queue):
        if total_flows == 0:
            host_index += senders_per_queue[queue]
            continue
        protocol = protocols[queue] if protocols else "tcp"
        per_host = _split_evenly(total_flows, senders_per_queue[queue])
        for host_flows in per_host:
            if host_flows == 0:
                host_index += 1
                continue
            app = IperfApp(
                net.sim, net.host(f"h{host_index}"), destination="h0",
                num_flows=host_flows, service_class=queue,
                sender_class=sender_class(protocol), flow_id_base=flow_id,
                mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns)
            flow_id += host_flows
            app.start_at(0)
            if stop_times_ns and stop_times_ns[queue] is not None:
                app.stop_at(stop_times_ns[queue])
            host_index += 1
    controller = None
    if faults is not None:
        controller = FaultController(net, faults)
        controller.arm()
    return SimWorld(
        kind="bulk", net=net, finish=_finish_bulk, horizon_ns=duration_ns,
        state={"scheme": scheme(scheme_name).name, "meter": meter,
               "lengths": lengths, "config": config,
               "num_queues": num_queues, "controller": controller},
        meta={"scheme": scheme_name})


def _finish_bulk(world: SimWorld) -> ThroughputResult:
    state = world.state
    return ThroughputResult(state["scheme"], state["meter"].samples,
                            state["lengths"], state["config"],
                            state["num_queues"])


def _bulk_throughput_run(scheme_name: str, *,
                         flows_per_queue: Sequence[int],
                         quanta: Sequence[float],
                         stop_times_ns: Optional[Sequence[Optional[int]]],
                         duration_ns: int, sample_interval_ns: int,
                         config: TestbedConfig,
                         protocols: Optional[Sequence[str]] = None,
                         queue_samples: int = 0,
                         senders_per_queue=1,
                         sim: Optional[Simulator] = None,
                         trace: Optional[TraceBus] = None,
                         faults: Optional[FaultSchedule] = None,
                         on_network: Optional[Callable[[Network], None]]
                         = None,
                         snapshot: Optional[SnapshotPolicy] = None
                         ) -> ThroughputResult:
    """Prepare, run, and finish a static-flow experiment.

    ``on_network`` is a hook called with the built network right before
    the simulation starts (skipped on ``--restore``: a restored world
    already carries whatever the hook attached).  ``snapshot`` enables
    autosave/restore — see :mod:`repro.snapshot`.
    """
    def build() -> SimWorld:
        world = _prepare_bulk(
            scheme_name, flows_per_queue=flows_per_queue, quanta=quanta,
            stop_times_ns=stop_times_ns, duration_ns=duration_ns,
            sample_interval_ns=sample_interval_ns, config=config,
            protocols=protocols, queue_samples=queue_samples,
            senders_per_queue=senders_per_queue, sim=sim, trace=trace,
            faults=faults)
        if on_network is not None:
            on_network(world.net)
        return world

    world = acquire_world(snapshot, "bulk", build)
    run_world(world, snapshot)
    result = world.finish(world)
    if world.restored:
        world.close_recorders()
    return result


def _split_evenly(total: int, parts: int) -> List[int]:
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


# ---------------------------------------------------------------------------
# Fig. 1 — motivation: unfair buffer occupancy under best effort
# ---------------------------------------------------------------------------

def run_motivation(scheme_name: str = "besteffort", *,
                   duration_s: float = 60.0,
                   sample_interval_s: float = 0.5,
                   flows_per_sender: int = 8,
                   queue_samples: int = 1000,
                   config: TestbedConfig = DEFAULT_CONFIG,
                   sim: Optional[Simulator] = None,
                   trace: Optional[TraceBus] = None,
                   faults: Optional[FaultSchedule] = None,
                   snapshot: Optional[SnapshotPolicy] = None
                   ) -> ThroughputResult:
    """Fig. 1: 4 senders, 8 flows each; 3 senders share queue 2.

    Queue 1 (one sender) should get half the link under equal-weight DRR
    but cannot occupy its weighted BDP, so its throughput collapses.
    """
    return _bulk_throughput_run(
        scheme_name,
        flows_per_queue=[flows_per_sender, 3 * flows_per_sender],
        quanta=[config.quantum_bytes] * 2,
        stop_times_ns=None, duration_ns=seconds(duration_s),
        sample_interval_ns=seconds(sample_interval_s), config=config,
        queue_samples=queue_samples,
        senders_per_queue=[1, 3], sim=sim, trace=trace, faults=faults,
        snapshot=snapshot)


# ---------------------------------------------------------------------------
# Figs. 3-4 — convergence and queue evolution, 2 active DRR queues
# ---------------------------------------------------------------------------

def run_convergence(scheme_name: str, *, duration_s: float = 10.0,
                    sample_interval_s: float = 0.5,
                    queue_samples: int = 1000,
                    config: TestbedConfig = DEFAULT_CONFIG,
                    sim: Optional[Simulator] = None,
                    trace: Optional[TraceBus] = None,
                    faults: Optional[FaultSchedule] = None,
                    snapshot: Optional[SnapshotPolicy] = None
                    ) -> ThroughputResult:
    """Figs. 3-4: queue 1 carries 2 flows, queue 2 carries 16.

    4 DRR queues with equal quanta are configured; queues 3-4 stay idle.
    A fair scheme converges both active queues to ~0.5 Gbps despite the
    8x flow-count imbalance.
    """
    return _bulk_throughput_run(
        scheme_name, flows_per_queue=[2, 16, 0, 0],
        quanta=[config.quantum_bytes] * 4, stop_times_ns=None,
        duration_ns=seconds(duration_s),
        sample_interval_ns=seconds(sample_interval_s), config=config,
        queue_samples=queue_samples, sim=sim, trace=trace, faults=faults,
        snapshot=snapshot)


# ---------------------------------------------------------------------------
# Fig. 5 — weighted fair sharing + work conservation over active-queue churn
# ---------------------------------------------------------------------------

def fair_sharing_stop_schedule(time_unit_s: float) -> List[int]:
    """Stop times of queues 1..4 with the paper's 5 s unit: 25/20/15/10 s."""
    return [seconds(time_unit_s * (6 - k)) for k in (1, 2, 3, 4)]


def run_fair_sharing(scheme_name: str, *, time_unit_s: float = 5.0,
                     sample_interval_s: float = 0.5,
                     config: TestbedConfig = DEFAULT_CONFIG,
                     protocols: Optional[Sequence[str]] = None,
                     sim: Optional[Simulator] = None,
                     trace: Optional[TraceBus] = None,
                     faults: Optional[FaultSchedule] = None,
                     snapshot: Optional[SnapshotPolicy] = None
                     ) -> ThroughputResult:
    """Fig. 5: queue k holds 2^k flows; queues stop 4, 3, 2, 1 in turn.

    With the paper's ``time_unit_s = 5``: queue 4 stops at 10 s, queue 3
    at 15 s, queue 2 at 20 s, queue 1 at 25 s; the run ends at 27.5 s.
    """
    stops = fair_sharing_stop_schedule(time_unit_s)
    return _bulk_throughput_run(
        scheme_name, flows_per_queue=[2, 4, 8, 16],
        quanta=[config.quantum_bytes] * 4, stop_times_ns=stops,
        duration_ns=seconds(time_unit_s * 5.5),
        sample_interval_ns=seconds(sample_interval_s), config=config,
        protocols=protocols, sim=sim, trace=trace, faults=faults,
        snapshot=snapshot)


# ---------------------------------------------------------------------------
# Fig. 6 — different queue weights (4:3:2:1)
# ---------------------------------------------------------------------------

def run_weighted_sharing(scheme_name: str, *,
                         weights: Sequence[float] = (4.0, 3.0, 2.0, 1.0),
                         duration_s: float = 10.0,
                         sample_interval_s: float = 0.5,
                         config: TestbedConfig = DEFAULT_CONFIG,
                         sim: Optional[Simulator] = None,
                         trace: Optional[TraceBus] = None,
                         faults: Optional[FaultSchedule] = None,
                         snapshot: Optional[SnapshotPolicy] = None
                         ) -> ThroughputResult:
    """Fig. 6: DRR quanta 6/4.5/3/1.5 KB; all queues active.

    Queue k still carries 2^k flows; the throughput *share* must follow
    the 4:3:2:1 weights, not the flow counts.
    """
    quanta = [config.quantum_bytes * weight for weight in weights]
    flows = [2 ** (k + 1) for k in range(len(weights))]
    return _bulk_throughput_run(
        scheme_name, flows_per_queue=flows, quanta=quanta,
        stop_times_ns=None, duration_ns=seconds(duration_s),
        sample_interval_ns=seconds(sample_interval_s), config=config,
        sim=sim, trace=trace, faults=faults, snapshot=snapshot)


# ---------------------------------------------------------------------------
# Fig. 7 — protocol independence: TCP and CUBIC side by side
# ---------------------------------------------------------------------------

def run_protocol_mix(scheme_name: str, *, time_unit_s: float = 5.0,
                     sample_interval_s: float = 0.5,
                     config: TestbedConfig = DEFAULT_CONFIG,
                     sim: Optional[Simulator] = None,
                     trace: Optional[TraceBus] = None,
                     faults: Optional[FaultSchedule] = None,
                     snapshot: Optional[SnapshotPolicy] = None
                     ) -> ThroughputResult:
    """Fig. 7: queues 1-2 run TCP(Reno), queues 3-4 run CUBIC.

    Same flow counts and stop schedule as Fig. 5; a protocol-independent
    scheme keeps the shares fair across the protocol boundary.
    """
    return run_fair_sharing(
        scheme_name, time_unit_s=time_unit_s,
        sample_interval_s=sample_interval_s, config=config,
        protocols=["tcp", "tcp", "cubic", "cubic"],
        sim=sim, trace=trace, faults=faults, snapshot=snapshot)


# ---------------------------------------------------------------------------
# Figs. 8-9 — dynamic flows: FCT under SPQ(1)/DRR(4) with PIAS
# ---------------------------------------------------------------------------

class FCTResult(NamedTuple):
    """One (scheme, load) cell of the Fig. 8/9/13 matrices."""

    scheme: str
    load: float
    summary: Dict[str, Optional[float]]
    completed: int
    outstanding: int
    collector: FCTCollector


def run_fct_experiment(scheme_name: str, *, load: float,
                       num_flows: int = 10_000,
                       num_servers: int = 4,
                       num_service_queues: int = 4,
                       distribution: EmpiricalCDF = WEB_SEARCH,
                       seed: int = 1,
                       pias_threshold: int = kilobytes(100),
                       config: TestbedConfig = DEFAULT_CONFIG,
                       drain_timeout_s: float = 60.0,
                       sim: Optional[Simulator] = None,
                       trace: Optional[TraceBus] = None,
                       snapshot: Optional[SnapshotPolicy] = None
                       ) -> FCTResult:
    """Figs. 8-9: web-search flows at the given load, PIAS + SPQ/DRR.

    Host h0 is the client; h1..h{num_servers} respond with flows drawn
    from ``distribution``.  Flows map to a random DRR service queue; PIAS
    sends every flow's first 100 KB through the shared SPQ queue.

    Runs in drain mode (1 s chunks while flows are outstanding), so an
    autosave can land inside a chunk without shifting later chunk
    boundaries — see :func:`repro.snapshot.run_world`.
    """
    def build() -> SimWorld:
        return _prepare_fct(
            scheme_name, load=load, num_flows=num_flows,
            num_servers=num_servers,
            num_service_queues=num_service_queues,
            distribution=distribution, seed=seed,
            pias_threshold=pias_threshold, config=config,
            drain_timeout_s=drain_timeout_s, sim=sim, trace=trace)

    world = acquire_world(snapshot, "fct", build)
    run_world(world, snapshot)
    result = world.finish(world)
    if world.restored:
        world.close_recorders()
    return result


def _prepare_fct(scheme_name: str, *, load: float, num_flows: int,
                 num_servers: int, num_service_queues: int,
                 distribution: EmpiricalCDF, seed: int,
                 pias_threshold: int, config: TestbedConfig,
                 drain_timeout_s: float,
                 sim: Optional[Simulator] = None,
                 trace: Optional[TraceBus] = None) -> SimWorld:
    spec = scheme(scheme_name)
    streams = RandomStreams(seed)
    rng = streams.stream(f"fct:{scheme_name}:{load}")
    net = _star_with_scheme(
        scheme_name, num_hosts=1 + num_servers,
        scheduler_factory=lambda: SPQDRRScheduler(
            1, [config.quantum_bytes] * num_service_queues),
        config=config, sim=sim, trace=trace)
    specs = generate_flows(
        distribution=distribution, load=load,
        link_rate_bps=config.rate_bps, num_flows=num_flows, rng=rng)
    servers = [f"h{i}" for i in range(1, num_servers + 1)]
    placement = random_many_to_one_placement(
        servers, "h0", num_service_queues, rng)
    app = RequestResponseApp(
        net, specs=specs, placement=placement,
        sender_class=transport_for(scheme_name),
        pias=PIASConfig(demotion_threshold=pias_threshold),
        mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns)
    horizon = specs[-1].arrival_ns + seconds(drain_timeout_s)
    return SimWorld(
        kind="fct", net=net, finish=_finish_fct, horizon_ns=horizon,
        state={"app": app, "scheme": spec.name, "load": load},
        drain_key="app", chunk_ns=seconds(1.0),
        meta={"scheme": scheme_name, "load": load})


def _finish_fct(world: SimWorld) -> FCTResult:
    app = world.state["app"]
    return FCTResult(world.state["scheme"], world.state["load"],
                     app.fct.summary(), app.completed, app.outstanding,
                     app.fct)


def fct_load_sweep(scheme_names: Sequence[str], loads: Sequence[float],
                   **kwargs) -> Dict[str, List[FCTResult]]:
    """Run :func:`run_fct_experiment` for every (scheme, load) pair."""
    results: Dict[str, List[FCTResult]] = {}
    for name in scheme_names:
        results[name] = [
            run_fct_experiment(name, load=load, **kwargs)
            for load in loads
        ]
    return results
