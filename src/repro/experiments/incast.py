"""Incast / microburst experiment (related-work territory, §II-C).

The paper's BarberQ discussion concerns latency-sensitive *microbursts*:
N workers answer an aggregation query simultaneously, their synchronized
responses slam into one egress port, and whichever scheme manages the
buffer decides how many of them pay a retransmission timeout.  While the
paper concludes dropping "is enough" for service-queue isolation, this
experiment quantifies the trade-off and exercises the
:class:`~repro.core.eviction.DynaQEvictBuffer` extension where it should
matter most.

Scenario: ``num_workers`` servers each send one ``response_bytes`` flow
to the same client at t=0 through the client's downlink (classic incast);
optionally, ``background_flows`` long-lived elephants keep the port's
DRR queues loaded so the burst meets a busy buffer.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..apps.iperf import IperfApp
from ..metrics.fct import FCTCollector
from ..net.topology import build_star
from ..queueing.schedulers.spq import SPQDRRScheduler
from ..sim.engine import Simulator
from ..sim.trace import TraceBus
from ..sim.units import kilobytes, seconds
from ..snapshot import SimWorld, SnapshotPolicy, acquire_world, run_world
from ..transport.base import Flow
from ..transport.tcp import TCPSender
from .runner import buffer_factory, scheme, transport_for
from .testbed import DEFAULT_CONFIG, TestbedConfig


class IncastResult(NamedTuple):
    """Outcome of one incast run."""

    scheme: str
    num_workers: int
    completed: int
    query_completion_ms: Optional[float]   # FCT of the slowest worker
    mean_fct_ms: Optional[float]
    timeouts: int
    drops_at_bottleneck: int

    @property
    def all_completed(self) -> bool:
        return self.completed == self.num_workers


def run_incast(scheme_name: str, *, num_workers: int = 16,
               response_bytes: int = kilobytes(32),
               background_flows: int = 4,
               num_service_queues: int = 4,
               config: TestbedConfig = DEFAULT_CONFIG,
               horizon_s: float = 5.0,
               sim: Optional[Simulator] = None,
               trace: Optional[TraceBus] = None,
               snapshot: Optional[SnapshotPolicy] = None) -> IncastResult:
    """One synchronized fan-in burst into a loaded port.

    Workers' responses ride the high-priority class 0 (as PIAS would
    classify sub-100 KB responses); the background elephants occupy the
    DRR service queues.
    """
    def build() -> SimWorld:
        return _prepare_incast(
            scheme_name, num_workers=num_workers,
            response_bytes=response_bytes,
            background_flows=background_flows,
            num_service_queues=num_service_queues, config=config,
            horizon_s=horizon_s, sim=sim, trace=trace)

    world = acquire_world(snapshot, "incast", build)
    run_world(world, snapshot)
    result = world.finish(world)
    if world.restored:
        world.close_recorders()
    return result


def _prepare_incast(scheme_name: str, *, num_workers: int,
                    response_bytes: int, background_flows: int,
                    num_service_queues: int, config: TestbedConfig,
                    horizon_s: float,
                    sim: Optional[Simulator] = None,
                    trace: Optional[TraceBus] = None) -> SimWorld:
    spec = scheme(scheme_name)
    num_hosts = 1 + num_workers + (1 if background_flows else 0)
    net = build_star(
        num_hosts=num_hosts, rate_bps=config.rate_bps,
        rtt_ns=config.rtt_ns, buffer_bytes=config.buffer_bytes,
        scheduler_factory=lambda: SPQDRRScheduler(
            1, [config.quantum_bytes] * num_service_queues),
        buffer_factory=buffer_factory(scheme_name, rtt_ns=config.rtt_ns),
        sim=sim, trace=trace)

    if background_flows:
        elephant_host = net.host(f"h{num_hosts - 1}")
        for queue in range(min(background_flows, num_service_queues)):
            app = IperfApp(
                net.sim, elephant_host, destination="h0",
                num_flows=max(background_flows // num_service_queues, 1),
                service_class=1 + queue, flow_id_base=10_000 + queue * 100,
                mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns)
            app.start_at(0)

    fct = FCTCollector()
    sender_class = transport_for(scheme_name)
    workers: List[TCPSender] = []
    warmup = seconds(0.05)  # let the elephants establish their backlog
    for worker in range(num_workers):
        flow = Flow(flow_id=worker, src=f"h{worker + 1}", dst="h0",
                    size=response_bytes, service_class=0,
                    start_time=warmup)
        sender = sender_class(
            net.sim, net.host(f"h{worker + 1}"), flow,
            mtu_bytes=config.mtu_bytes, min_rto_ns=config.min_rto_ns,
            on_complete=fct.record_sender)
        net.host(f"h{worker + 1}").register_sender(sender)
        net.sim.at(warmup, sender.start)
        workers.append(sender)

    return SimWorld(
        kind="incast", net=net, finish=_finish_incast,
        horizon_ns=seconds(horizon_s),
        state={"scheme": spec.name, "fct": fct, "workers": workers,
               "num_workers": num_workers},
        meta={"scheme": scheme_name, "num_workers": num_workers})


def _finish_incast(world: SimWorld) -> IncastResult:
    state = world.state
    fct = state["fct"]
    num_workers = state["num_workers"]
    fcts = [record.fct_ns for record in fct.records]
    bottleneck = world.net.switch("s0").ports["s0->h0"]
    return IncastResult(
        scheme=state["scheme"],
        num_workers=num_workers,
        completed=len(fcts),
        query_completion_ms=max(fcts) / 1e6 if len(fcts) == num_workers
        else None,
        mean_fct_ms=sum(fcts) / len(fcts) / 1e6 if fcts else None,
        timeouts=sum(worker.timeouts for worker in state["workers"]),
        drops_at_bottleneck=bottleneck.dropped_packets,
    )


def incast_sweep(scheme_names, worker_counts, **kwargs
                 ) -> Dict[str, List[IncastResult]]:
    """Run :func:`run_incast` for every (scheme, fan-in) combination."""
    results: Dict[str, List[IncastResult]] = {}
    for name in scheme_names:
        results[name] = [run_incast(name, num_workers=count, **kwargs)
                         for count in worker_counts]
    return results
