"""Parallel experiment execution: crash-isolated worker processes.

Every evaluation figure runs a grid of independent simulations
(scheme x load x seed).  This module fans those grid points out to
worker processes while keeping three guarantees the serial runners
already give:

**Determinism.**  Results are reassembled in grid/seed submission order,
never completion order, and workers marshal results through the same
JSON-shaped encoding the checkpoint file uses, so sweep records, summary
tables, and CSV exports are byte-identical to a serial run with the same
seeds (see ``tests/test_parallel.py`` for the differential tests).

**Crash isolation.**  A job that dies with a
:class:`~repro.sim.errors.SimulationError` — watchdog trips included —
or whose worker process disappears entirely is retried with the
deterministic :func:`~repro.experiments.runner.reseed` sequence, and a
job that exhausts its retries records a per-point failure instead of
killing the sweep.

**Resumability.**  Completed points are appended to a JSONL checkpoint
file as they finish; a sweep restarted with ``resume=True`` replays the
finished points from the file and only runs what is missing.

Workers are started with the ``spawn`` method (no inherited state, safe
under any host application), so job parameters must be picklable and
JSON-serialisable; jobs name their work through the :data:`JOB_KINDS`
registry rather than by pickling callables.  See ``docs/parallel.md``.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from collections import deque
from importlib import import_module
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..metrics.fct import FCTCollector, FlowRecord
from ..metrics.throughput import ThroughputSample
from ..sim.errors import ConfigurationError, SimulationError
from ..sim.trace import TOPIC_PARALLEL_JOB, TraceBus
from .fleet import (
    EVENT_DIED,
    EVENT_ERROR,
    EVENT_FATAL,
    EVENT_OK,
    WorkerFleet,
)
from .runner import reseed, scheme

PathLike = Union[str, Path]


# ---------------------------------------------------------------------------
# Job specs and outcomes
# ---------------------------------------------------------------------------

class JobSpec(NamedTuple):
    """One unit of work: a registry kind plus JSON-able parameters.

    ``seed`` is the job's *base* seed; on retry attempt ``k`` the
    executor rewrites the parameter at ``seed_path`` (a key path into
    ``params``) to :func:`~repro.experiments.runner.reseed`\\ ``(seed, k)``
    so two operators replaying a failing sweep land on the same
    replacement seeds.  Jobs without randomness use ``seed=None``.

    ``snapshot`` is an optional autosave spec (keys ``every_ns``,
    ``out``, and optionally ``halt_after_saves`` / ``triage_dir``).  It
    is *not* part of :func:`job_key` — autosaving is an executor
    concern, so toggling it never invalidates a checkpoint — and the
    executor turns it into a mid-sim resume: a worker that dies with an
    autosave on disk is retried with the *same* seed and restored from
    the autosave instead of starting over at t=0.
    """

    key: str
    kind: str
    params: Dict[str, Any]
    seed: Optional[int] = None
    seed_path: Tuple[str, ...] = ("seed",)
    snapshot: Optional[Dict[str, Any]] = None


class JobOutcome(NamedTuple):
    """The terminal state of one job after all attempts."""

    key: str
    value: Any                  # decoded result, None when the job failed
    error: Optional[str]        # last error when every attempt failed
    attempts: int               # 1 = first try succeeded
    seed: Optional[int]         # seed of the last attempt
    cached: bool = False        # replayed from the checkpoint file

    @property
    def ok(self) -> bool:
        return self.error is None


def job_key(kind: str, params: Dict[str, Any], label: str = "") -> str:
    """Stable checkpoint identity for a job: kind + parameter digest.

    Two sweeps asking for the same work produce the same key, so a
    resumed sweep recognises its finished points; any parameter change
    produces a fresh key and the point re-runs.
    """
    try:
        canonical = json.dumps({"kind": kind, "params": params},
                               sort_keys=True)
    except TypeError as exc:
        raise ConfigurationError(
            f"job parameters must be JSON-serialisable for "
            f"checkpointing: {exc}") from exc
    digest = hashlib.sha256(canonical.encode()).hexdigest()[:12]
    prefix = f"{label}:" if label else ""
    return f"{prefix}{kind}:{digest}"


def _with_seed(params: Dict[str, Any], path: Tuple[str, ...],
               seed: int) -> Dict[str, Any]:
    """Copy ``params`` with the value at ``path`` replaced by ``seed``."""
    out = dict(params)
    node = out
    for name in path[:-1]:
        node[name] = dict(node[name])
        node = node[name]
    node[path[-1]] = seed
    return out


def _attempt_params(spec: JobSpec,
                    attempt: int) -> Tuple[Dict[str, Any], Optional[int]]:
    if spec.seed is None:
        return spec.params, None
    seed = reseed(spec.seed, attempt)
    return _with_seed(spec.params, spec.seed_path, seed), seed


# ---------------------------------------------------------------------------
# Job-kind registry: how a worker runs a job and marshals its result
# ---------------------------------------------------------------------------

class JobKind(NamedTuple):
    """Run one job and translate its result to/from JSON-able data.

    ``encode`` runs in the worker, ``decode`` in the parent; both the
    live result path and the checkpoint-replay path decode the same
    encoded form, which is what makes resumed output identical to
    uninterrupted output.

    ``snapshot`` marks kinds whose ``run`` accepts a
    :class:`~repro.snapshot.SnapshotPolicy` keyword; only those jobs
    get executor-driven autosave/restore ("callable" jobs name
    arbitrary functions, which may not take the keyword).
    """

    run: Callable[..., Any]
    encode: Callable[[Any], Any]
    decode: Callable[[Any], Any]
    snapshot: bool = True


def resolve_target(text: str) -> Callable[..., Any]:
    """Import ``"module:qualname"`` back into the callable it names."""
    module_name, sep, qualname = text.partition(":")
    if not sep or not module_name or not qualname:
        raise ConfigurationError(
            f"job target must look like 'module:qualname', got {text!r}")
    obj: Any = import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def callable_target(fn: Callable[..., Any]) -> str:
    """The ``"module:qualname"`` a spawn-started worker can re-import.

    Lambdas, closures, and ``__main__`` functions cannot be named across
    a process boundary; they fail here, at submission time, with a clear
    message instead of a pickle error inside a worker.
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    target = f"{module}:{qualname}"
    if (not module or module == "__main__" or not qualname
            or "<" in qualname):
        raise ConfigurationError(
            f"experiment {fn!r} is not importable as {target!r}; "
            "parallel sweeps need a module-level function "
            "(lambdas/closures only work with jobs=1)")
    try:
        resolved = resolve_target(target)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(
            f"experiment {fn!r} is not importable as {target!r}: "
            f"{exc}") from exc
    if resolved is not fn:
        raise ConfigurationError(
            f"experiment {fn!r} does not round-trip through {target!r}; "
            "parallel sweeps need a module-level function")
    return target


def _jsonable(value: Any) -> Any:
    """Normalise a result through JSON so live == checkpointed output."""
    return json.loads(json.dumps(value))


def _run_callable_job(*, target: str, kwargs: Dict[str, Any]) -> Any:
    return resolve_target(target)(**kwargs)


# -- fct ----------------------------------------------------------------------

def _run_fct_job(*, scheme: str, load: float, num_flows: int,
                 workload: str, truncate_mb: float, seed: int,
                 **kwargs: Any):
    from ..workloads.datasets import workload as load_workload
    from .testbed import run_fct_experiment
    distribution = load_workload(workload)
    if truncate_mb:
        distribution = distribution.truncated(int(truncate_mb * 1_000_000))
    return run_fct_experiment(scheme, load=load, num_flows=num_flows,
                              distribution=distribution, seed=seed,
                              **kwargs)


def _encode_fct(result) -> Dict[str, Any]:
    return {
        "scheme": result.scheme,
        "load": result.load,
        "completed": result.completed,
        "outstanding": result.outstanding,
        "records": [list(record) for record in result.collector.records],
    }


def _decode_fct(payload):
    from .testbed import FCTResult
    collector = FCTCollector()
    for flow_id, size_bytes, fct_ns, service_class in payload["records"]:
        collector.records.append(
            FlowRecord(int(flow_id), int(size_bytes), int(fct_ns),
                       int(service_class)))
    return FCTResult(payload["scheme"], payload["load"],
                     collector.summary(), payload["completed"],
                     payload["outstanding"], collector)


# -- incast -------------------------------------------------------------------

def _run_incast_job(*, scheme: str, **kwargs: Any):
    from .incast import run_incast
    return run_incast(scheme, **kwargs)


def _encode_incast(result) -> List[Any]:
    return list(result)


def _decode_incast(payload):
    from .incast import IncastResult
    return IncastResult(*payload)


# -- static-sim ---------------------------------------------------------------

def _encode_samples(samples: Sequence[ThroughputSample]) -> List[List[Any]]:
    return [[sample.time_ns, list(sample.per_queue_bps),
             sample.aggregate_bps] for sample in samples]


def _decode_samples(payload) -> List[ThroughputSample]:
    return [ThroughputSample(int(time_ns), tuple(per_queue), aggregate)
            for time_ns, per_queue, aggregate in payload]


def _run_static_job(*, scheme: str, rate: str, **kwargs: Any):
    from .simulation import SIM_100G, SIM_10G, run_static_sim
    config = SIM_100G if rate == "100g" else SIM_10G
    return run_static_sim(scheme, config=config, **kwargs)


def _encode_static(result) -> Dict[str, Any]:
    return {
        "scheme": result.scheme,
        "samples": _encode_samples(result.samples),
        "stop_times_ns": list(result.stop_times_ns),
        "config": list(result.config),
        "num_queues": result.num_queues,
    }


def _decode_static(payload):
    from .simulation import SimConfig, StaticSimResult
    return StaticSimResult(
        payload["scheme"], _decode_samples(payload["samples"]),
        list(payload["stop_times_ns"]), SimConfig(*payload["config"]),
        payload["num_queues"])


# -- competitive --------------------------------------------------------------

def _run_competitive_job(*, policy: str, adversary: str,
                         buffer_cells: int, **kwargs: Any):
    from .competitive import run_cell
    return run_cell(policy, adversary, buffer_cells, **kwargs)


# -- soak ---------------------------------------------------------------------

def _run_soak_job(*, scenario: Dict[str, Any], **kwargs: Any):
    from ..soak.runner import run_case
    from ..soak.scenario import SoakScenario
    return run_case(SoakScenario.from_dict(scenario), **kwargs)


# -- chaos --------------------------------------------------------------------

def _run_chaos_job(*, scheme: str, schedule: Dict[str, Any],
                   **kwargs: Any):
    from ..faults import FaultSchedule
    from .chaos import run_chaos
    return run_chaos(scheme, FaultSchedule.from_dict(schedule), **kwargs)


def _encode_chaos(result) -> Dict[str, Any]:
    inner = result.result
    return {
        "scheme": result.scheme,
        "schedule": result.schedule,
        "result": None if inner is None else {
            "scheme": inner.scheme,
            "samples": _encode_samples(inner.samples),
            "config": list(inner.config),
            "num_queues": inner.num_queues,
        },
        "aborted": result.aborted,
        "injected": result.injected,
        "recovered": result.recovered,
        "checks": result.checks,
        "violations": result.violations,
        "jain_before": result.jain_before,
        "jain_during": result.jain_during,
        "jain_after": result.jain_after,
        "triage_bundle": result.triage_bundle,
    }


def _decode_chaos(payload):
    from .chaos import ChaosResult
    from .testbed import TestbedConfig, ThroughputResult
    inner = payload["result"]
    result = None
    if inner is not None:
        result = ThroughputResult(
            inner["scheme"], _decode_samples(inner["samples"]), None,
            TestbedConfig(*inner["config"]), inner["num_queues"])
    return ChaosResult(
        scheme=payload["scheme"], schedule=payload["schedule"],
        result=result, aborted=payload["aborted"],
        injected=payload["injected"], recovered=payload["recovered"],
        checks=payload["checks"], violations=payload["violations"],
        jain_before=payload["jain_before"],
        jain_during=payload["jain_during"],
        jain_after=payload["jain_after"],
        triage_bundle=payload.get("triage_bundle"))


#: Work a worker process knows how to run, by name.  Only the *name*
#: crosses the process boundary; the spawned worker re-imports this
#: module and looks the kind up again, so entries need not be picklable.
JOB_KINDS: Dict[str, JobKind] = {
    "callable": JobKind(_run_callable_job, _jsonable, lambda p: p,
                        snapshot=False),
    "fct": JobKind(_run_fct_job, _encode_fct, _decode_fct),
    "incast": JobKind(_run_incast_job, _encode_incast, _decode_incast),
    "static-sim": JobKind(_run_static_job, _encode_static, _decode_static),
    "chaos": JobKind(_run_chaos_job, _encode_chaos, _decode_chaos),
    # run_cell already returns a plain JSON dict, so encode just
    # normalises it (live == checkpointed) and decode is the identity.
    "competitive": JobKind(_run_competitive_job, _jsonable, lambda p: p,
                           snapshot=False),
    # run_case returns a plain JSON verdict and manages its own
    # snapshot torture internally, so executor autosave stays off.
    "soak": JobKind(_run_soak_job, _jsonable, lambda p: p,
                    snapshot=False),
}


# ---------------------------------------------------------------------------
# Mid-sim resume: autosave specs and per-attempt snapshot policies
# ---------------------------------------------------------------------------

def _autosave_dir(checkpoint: Any,
                  autosave_dir: Optional[PathLike]) -> Path:
    if autosave_dir is not None:
        return Path(autosave_dir)
    base = (checkpoint.path if isinstance(checkpoint, SweepCheckpoint)
            else Path(checkpoint))
    return base.with_name(base.name + ".autosaves")


def _with_autosave_specs(specs: List[JobSpec], every_ns: int,
                         directory: Path) -> List[JobSpec]:
    """Attach a per-job autosave spec (filename derived from the key)."""
    directory.mkdir(parents=True, exist_ok=True)
    out: List[JobSpec] = []
    for spec in specs:
        if spec.snapshot is not None or not JOB_KINDS[spec.kind].snapshot:
            out.append(spec)
            continue
        name = re.sub(r"[^\w.@=-]+", "_", spec.key) + ".snap"
        out.append(spec._replace(snapshot={"every_ns": every_ns,
                                           "out": str(directory / name)}))
    return out


def _spec_out(spec: JobSpec) -> Optional[str]:
    return (spec.snapshot or {}).get("out")


def _snapshot_policy(spec_dict: Dict[str, Any], restore: bool):
    """The worker-side policy for one attempt.

    ``restore_fallback`` is always on here: a corrupt or torn autosave
    degrades to a clean t=0 run instead of failing the job (the CLI's
    ``--restore`` path stays strict).
    """
    from ..snapshot import SnapshotPolicy
    out = spec_dict.get("out")
    restore_path = (out if restore and out and Path(out).exists()
                    else None)
    return SnapshotPolicy(
        every_ns=spec_dict.get("every_ns"), out=out,
        restore=restore_path,
        halt_after_saves=spec_dict.get("halt_after_saves"),
        triage_dir=spec_dict.get("triage_dir"),
        restore_fallback=True)


def _attempt_job(spec: JobSpec, seed_attempt: int,
                 restore: bool) -> Tuple[Dict[str, Any], Optional[int],
                                         Optional[Dict[str, Any]]]:
    """(params, seed, snapshot-spec) for one attempt of one job."""
    params, seed = _attempt_params(spec, seed_attempt)
    snapshot_spec = None
    if spec.snapshot and JOB_KINDS[spec.kind].snapshot:
        snapshot_spec = dict(spec.snapshot)
        snapshot_spec["restore"] = restore
    return params, seed, snapshot_spec


# ---------------------------------------------------------------------------
# Checkpoint file: append-only JSONL of finished points
# ---------------------------------------------------------------------------

class SweepCheckpoint:
    """Append-only JSONL record of finished sweep points.

    One line per terminal job state.  With ``resume=True`` an existing
    file is loaded and successful entries are replayed (failed entries
    re-run); otherwise the file starts fresh.  A torn final line — the
    signature of a killed process — is ignored on load.
    """

    def __init__(self, path: PathLike, *, resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = resume
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._handle = None
        if resume and self.path.exists():
            for line in self.path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(entry, dict) and "key" in entry:
                    self._entries[entry["key"]] = entry

    def __len__(self) -> int:
        return len(self._entries)

    def completed(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored entry for ``key`` if it finished successfully."""
        entry = self._entries.get(key)
        if entry is not None and entry.get("status") == "ok":
            return entry
        return None

    def entries(self) -> Dict[str, Dict[str, Any]]:
        """Latest entry per key, whatever its status.

        The serving tier's write-ahead job log reuses this file format
        and needs to see non-terminal (``accepted``) entries too;
        :meth:`completed` keeps its strict successful-only contract for
        sweep resume.
        """
        return dict(self._entries)

    def record(self, key: str, *, status: str, payload: Any = None,
               error: Optional[str] = None, attempts: int = 1,
               seed: Optional[int] = None, **extra: Any) -> None:
        entry: Dict[str, Any] = {"key": key, "status": status,
                                 "attempts": attempts, "seed": seed}
        if payload is not None:
            entry["payload"] = payload
        if error is not None:
            entry["error"] = error
        if extra:
            entry.update(extra)
        self._entries[key] = entry
        if self._handle is None:
            mode = "a" if self.resume else "w"
            self._handle = self.path.open(mode)
        self._handle.write(json.dumps(entry) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# The executor
# ---------------------------------------------------------------------------

class _Token(NamedTuple):
    """Per-attempt context the executor rides on a fleet handle."""

    spec: JobSpec
    attempt: int
    seed_attempt: int
    seed: Optional[int]


def parallel_map(specs: Sequence[JobSpec], *, jobs: int = 1,
                 retries: int = 0,
                 checkpoint: Optional[PathLike] = None,
                 resume: bool = False,
                 trace: Optional[TraceBus] = None,
                 on_result: Optional[Callable[[JobOutcome], None]] = None,
                 start_method: str = "spawn",
                 autosave_every_ns: Optional[int] = None,
                 autosave_dir: Optional[PathLike] = None
                 ) -> List[JobOutcome]:
    """Run every job and return one outcome per spec, in spec order.

    ``jobs`` worker processes run concurrently (``jobs=1`` executes
    in-process through the identical retry/marshal/checkpoint path, so
    serial and parallel runs produce the same bytes).  ``retries``
    extra attempts with :func:`~repro.experiments.runner.reseed`-derived
    seeds follow a :class:`SimulationError` or a worker death; a job
    that exhausts them yields a failed outcome instead of raising.

    ``checkpoint`` names a JSONL file that receives every terminal job
    state as it happens; with ``resume=True`` previously successful
    entries are replayed instead of re-run.  ``trace`` receives
    ``parallel.job`` lifecycle events (start/retry/done/failed/cached).
    ``on_result`` is called with each outcome as it becomes final, in
    completion order — if it raises, in-flight workers are terminated
    and the checkpoint keeps what already finished.

    ``autosave_every_ns`` turns on mid-sim resume: snapshot-capable
    jobs autosave every so many *simulated* nanoseconds into
    ``autosave_dir`` (default: ``<checkpoint>.autosaves/`` next to the
    checkpoint file), and an attempt whose worker dies restarts from
    the job's last autosave — same seed, mid-flight — instead of t=0.
    A :class:`SimulationError` retry still reseeds from scratch and
    discards the stale autosave (it belongs to the failed seed).
    Autosaves only shift internal event sequence numbers, never event
    ordering, so resumed results remain byte-identical to serial runs.
    """
    specs = list(specs)
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    keys = [spec.key for spec in specs]
    if len(set(keys)) != len(keys):
        raise ConfigurationError("duplicate job keys in one sweep")
    for spec in specs:
        if spec.kind not in JOB_KINDS:
            raise ConfigurationError(
                f"unknown job kind {spec.kind!r}; "
                f"known: {sorted(JOB_KINDS)}")
    gc_keys: set = set()
    if autosave_every_ns is not None:
        if checkpoint is None and autosave_dir is None:
            raise ConfigurationError(
                "autosave needs a checkpoint file (or an explicit "
                "autosave_dir) to derive snapshot paths")
        explicit = {spec.key for spec in specs
                    if spec.snapshot is not None}
        specs = _with_autosave_specs(
            specs, autosave_every_ns,
            _autosave_dir(checkpoint, autosave_dir))
        # Executor-attached autosaves are an implementation detail of
        # mid-sim resume; once their job has finished successfully they
        # are garbage (and a later --resume against the finished
        # checkpoint must not pick them up).  Caller-provided snapshot
        # specs are the caller's files and stay.
        gc_keys = {spec.key for spec in specs
                   if spec.snapshot is not None
                   and spec.key not in explicit}

    own_store = not isinstance(checkpoint, SweepCheckpoint)
    store: Optional[SweepCheckpoint]
    if checkpoint is None:
        store = None
    elif own_store:
        store = SweepCheckpoint(checkpoint, resume=resume)
    else:
        store = checkpoint

    started = time.monotonic()

    def publish(detail: str, key: str) -> None:
        if trace is not None:
            trace.publish(
                TOPIC_PARALLEL_JOB,
                time=int((time.monotonic() - started) * 1e9),
                detail=f"{detail} {key}")

    outcomes: Dict[str, JobOutcome] = {}

    def finish(outcome: JobOutcome) -> None:
        outcomes[outcome.key] = outcome
        # Terminal events surface the attempt count: "done[1]" is a
        # first-try success, "failed[3]" exhausted two retries.
        verdict = "done" if outcome.ok else "failed"
        publish(f"{verdict}[{outcome.attempts}]", outcome.key)
        if on_result is not None:
            on_result(outcome)

    todo: List[JobSpec] = []
    for spec in specs:
        entry = store.completed(spec.key) if store is not None else None
        if entry is not None:
            outcome = JobOutcome(
                spec.key, JOB_KINDS[spec.kind].decode(entry["payload"]),
                None, entry.get("attempts", 1),
                entry.get("seed", spec.seed), True)
            outcomes[spec.key] = outcome
            publish("cached", spec.key)
            if on_result is not None:
                on_result(outcome)
        else:
            todo.append(spec)

    # A fresh sweep must not inherit autosaves from a previous one;
    # only resume=True may restore a job mid-flight on its first try.
    if not resume:
        for spec in todo:
            out = _spec_out(spec)
            if out:
                Path(out).unlink(missing_ok=True)

    try:
        if jobs == 1:
            _run_serial(todo, retries, store, finish, publish, resume)
        elif todo:
            _run_pool(todo, jobs, retries, store, finish, publish,
                      start_method, resume)
    finally:
        if store is not None and own_store:
            store.close()
    _gc_autosaves(specs, outcomes, gc_keys)
    return [outcomes[key] for key in keys]


def _gc_autosaves(specs: Sequence[JobSpec],
                  outcomes: Dict[str, JobOutcome],
                  gc_keys: set) -> None:
    """Drop executor-attached autosaves of successfully finished jobs.

    Runs after the sweep: every ok (or cached) job's ``.snap`` is
    unlinked and the ``<checkpoint>.autosaves/`` directory is removed
    once empty.  Failed jobs keep their autosave — it is the resume
    point for the next ``--resume`` and the evidence for triage.
    """
    directories = set()
    for spec in specs:
        if spec.key not in gc_keys:
            continue
        out = _spec_out(spec)
        outcome = outcomes.get(spec.key)
        if out and outcome is not None and outcome.ok:
            Path(out).unlink(missing_ok=True)
            directories.add(Path(out).parent)
    for directory in directories:
        try:
            directory.rmdir()
        except OSError:
            pass  # non-empty (failed jobs) or already gone


def _record_success(store: Optional[SweepCheckpoint], spec: JobSpec,
                    payload: Any, attempt: int,
                    seed: Optional[int]) -> JobOutcome:
    if store is not None:
        store.record(spec.key, status="ok", payload=payload,
                     attempts=attempt, seed=seed)
    return JobOutcome(spec.key, JOB_KINDS[spec.kind].decode(payload),
                      None, attempt, seed)


def _record_failure(store: Optional[SweepCheckpoint], spec: JobSpec,
                    error: str, attempt: int,
                    seed: Optional[int]) -> JobOutcome:
    if store is not None:
        store.record(spec.key, status="error", error=error,
                     attempts=attempt, seed=seed)
    return JobOutcome(spec.key, None, error, attempt, seed)


def _run_serial(todo: Sequence[JobSpec], retries: int,
                store: Optional[SweepCheckpoint],
                finish: Callable[[JobOutcome], None],
                publish: Callable[[str, str], None],
                resume: bool = False) -> None:
    """In-process execution with the same retry/marshal semantics."""
    for spec in todo:
        kind = JOB_KINDS[spec.kind]
        out = _spec_out(spec)
        attempt = 0
        restore = bool(resume and out and Path(out).exists())
        last_error = ""
        while attempt <= retries:
            attempt += 1
            params, seed, snapshot_spec = _attempt_job(spec, attempt,
                                                       restore)
            if snapshot_spec:
                params = dict(params)
                params["snapshot"] = _snapshot_policy(snapshot_spec,
                                                      restore)
            publish("start" if attempt == 1 else f"retry[{attempt}]",
                    spec.key)
            try:
                result = kind.run(**params)
            except SimulationError as exc:
                last_error = str(exc) or type(exc).__name__
                # The next attempt reseeds, so the autosave written by
                # this one describes a run that no longer exists.
                if out:
                    Path(out).unlink(missing_ok=True)
                restore = False
                continue
            finish(_record_success(store, spec, kind.encode(result),
                                   attempt, seed))
            break
        else:
            _, seed = _attempt_params(spec, attempt)
            finish(_record_failure(store, spec, last_error, attempt, seed))


def _run_pool(todo: Sequence[JobSpec], jobs: int, retries: int,
              store: Optional[SweepCheckpoint],
              finish: Callable[[JobOutcome], None],
              publish: Callable[[str, str], None],
              start_method: str, resume: bool = False) -> None:
    """Fan jobs out to a :class:`~repro.experiments.fleet.WorkerFleet`.

    One process per job attempt: a worker that segfaults, is OOM-killed,
    or calls ``os._exit`` takes down nothing but its own job, which is
    retried or recorded as failed.  A dead worker that left an autosave
    behind is retried with the *same* seed and restored mid-flight; any
    other retry reseeds from scratch.  The fleet waits on pipes *and*
    process sentinels together so a large result being streamed and a
    silent death are both handled without deadlock.
    """
    fleet = WorkerFleet(start_method=start_method)
    # Queue entries: (spec, attempt #, seed attempt #, restore?).  The
    # seed attempt lags the attempt counter on restore retries so the
    # resumed run keeps the seed its autosave was produced under.
    pending = deque()
    for spec in todo:
        out = _spec_out(spec)
        restore = bool(resume and out and Path(out).exists())
        pending.append((spec, 1, 1, restore))

    def launch(spec: JobSpec, attempt: int, seed_attempt: int,
               restore: bool) -> None:
        params, seed, snapshot_spec = _attempt_job(spec, seed_attempt,
                                                   restore)
        fleet.launch(spec.kind, params, snapshot_spec,
                     token=_Token(spec, attempt, seed_attempt, seed))
        label = ("start" if attempt == 1
                 else f"retry[{attempt}]" + ("+restore" if restore
                                             else ""))
        publish(label, spec.key)

    try:
        while pending or len(fleet):
            while pending and len(fleet) < jobs:
                spec, attempt, seed_attempt, restore = pending.popleft()
                launch(spec, attempt, seed_attempt, restore)
            for event in fleet.poll():
                token: _Token = event.handle.token
                spec, attempt = token.spec, token.attempt
                if event.kind == EVENT_OK:
                    finish(_record_success(store, spec, event.payload,
                                           attempt, token.seed))
                    continue
                if event.kind == EVENT_FATAL:
                    raise RuntimeError(
                        f"worker for job {spec.key!r} raised: "
                        f"{event.payload}")
                if event.kind not in (EVENT_ERROR, EVENT_DIED):
                    continue  # heartbeats are a daemon concern
                out = _spec_out(spec)
                if event.kind == EVENT_DIED:
                    error = f"worker died (exit code {event.payload})"
                    resumable = bool(out and Path(out).exists())
                else:
                    error = event.payload
                    resumable = False
                if attempt <= retries:
                    if resumable:
                        # Mid-sim resume: same seed, restore from the
                        # job's last autosave instead of t=0.
                        pending.append((spec, attempt + 1,
                                        token.seed_attempt, True))
                    else:
                        if out:  # stale autosave from the failed seed
                            Path(out).unlink(missing_ok=True)
                        pending.append((spec, attempt + 1, attempt + 1,
                                        False))
                else:
                    finish(_record_failure(store, spec, error, attempt,
                                           token.seed))
    except BaseException:
        # Interrupt / fatal error: reap the fleet; the checkpoint keeps
        # everything that already finished, so the sweep can resume.
        fleet.terminate_all()
        raise


# ---------------------------------------------------------------------------
# Sweep front-ends used by the CLI (and handy for library callers)
# ---------------------------------------------------------------------------

def parallel_fct_sweep(scheme_names: Sequence[str],
                       loads: Sequence[float], *,
                       num_flows: int, workload: str,
                       truncate_mb: float = 0.0, seed: int = 1,
                       jobs: int = 1, retries: int = 0,
                       checkpoint: Optional[PathLike] = None,
                       resume: bool = False,
                       trace: Optional[TraceBus] = None,
                       on_result: Optional[Callable[[JobOutcome], None]]
                       = None,
                       autosave_every_ns: Optional[int] = None,
                       autosave_dir: Optional[PathLike] = None,
                       **kwargs: Any):
    """Figs. 8-9 load sweep across worker processes.

    Returns ``(results, failures)`` where ``results`` has the exact
    shape of :func:`~repro.experiments.testbed.fct_load_sweep` —
    ``{scheme: [FCTResult per load]}`` in declaration order — and
    ``failures`` lists the outcomes of points that exhausted their
    retries (their result slot holds an empty placeholder, so the
    report tables render ``-`` cells instead of crashing).
    """
    specs = []
    for name in scheme_names:
        scheme(name)  # fail fast on unknown schemes, like the serial path
        for load in loads:
            params = {"scheme": name, "load": load, "num_flows": num_flows,
                      "workload": workload, "truncate_mb": truncate_mb,
                      "seed": seed, **kwargs}
            specs.append(JobSpec(
                job_key("fct", params, label=f"{name}@{load:g}"),
                "fct", params, seed=seed))
    outcomes = parallel_map(specs, jobs=jobs, retries=retries,
                            checkpoint=checkpoint, resume=resume,
                            trace=trace, on_result=on_result,
                            autosave_every_ns=autosave_every_ns,
                            autosave_dir=autosave_dir)
    results: Dict[str, List[Any]] = {}
    failures: List[JobOutcome] = []
    cursor = iter(outcomes)
    for name in scheme_names:
        row = []
        for load in loads:
            outcome = next(cursor)
            if outcome.ok:
                row.append(outcome.value)
            else:
                failures.append(outcome)
                row.append(_failed_fct_placeholder(name, load))
        results[name] = row
    return results, failures


def _failed_fct_placeholder(name: str, load: float):
    from .testbed import FCTResult
    collector = FCTCollector()
    return FCTResult(scheme(name).name, load, collector.summary(), 0, 0,
                     collector)


def parallel_incast_runs(scheme_names: Sequence[str], *, jobs: int = 1,
                         retries: int = 0,
                         checkpoint: Optional[PathLike] = None,
                         resume: bool = False,
                         trace: Optional[TraceBus] = None,
                         autosave_every_ns: Optional[int] = None,
                         autosave_dir: Optional[PathLike] = None,
                         **kwargs: Any) -> List[JobOutcome]:
    """One incast run per scheme, fanned across workers (spec order)."""
    specs = []
    for name in scheme_names:
        scheme(name)
        params = {"scheme": name, **kwargs}
        specs.append(JobSpec(job_key("incast", params, label=name),
                             "incast", params))
    return parallel_map(specs, jobs=jobs, retries=retries,
                        checkpoint=checkpoint, resume=resume, trace=trace,
                        autosave_every_ns=autosave_every_ns,
                        autosave_dir=autosave_dir)


def parallel_static_runs(scheme_names: Sequence[str], *, rate: str,
                         jobs: int = 1, retries: int = 0,
                         checkpoint: Optional[PathLike] = None,
                         resume: bool = False,
                         trace: Optional[TraceBus] = None,
                         autosave_every_ns: Optional[int] = None,
                         autosave_dir: Optional[PathLike] = None,
                         **kwargs: Any) -> List[JobOutcome]:
    """One static-sim run per scheme, fanned across workers (spec order)."""
    specs = []
    for name in scheme_names:
        scheme(name)
        params = {"scheme": name, "rate": rate, **kwargs}
        specs.append(JobSpec(job_key("static-sim", params, label=name),
                             "static-sim", params))
    return parallel_map(specs, jobs=jobs, retries=retries,
                        checkpoint=checkpoint, resume=resume, trace=trace,
                        autosave_every_ns=autosave_every_ns,
                        autosave_dir=autosave_dir)
